//! Offline stand-in for the `rand` crate.
//!
//! The build container has no registry access, so the workspace patches
//! `rand` to this crate (see `[patch.crates-io]` in the root
//! `Cargo.toml`). It implements exactly the subset the workspace uses:
//! [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`] and
//! [`Rng::gen_range`] over half-open and inclusive numeric ranges.
//!
//! The generator is a SplitMix64 — deterministic, seed-stable, and good
//! enough for synthetic scenario generation. It is **not** the real
//! `StdRng` (ChaCha12): streams differ from upstream `rand`, which is
//! fine because nothing in the workspace depends on upstream's exact
//! values, only on determinism for a fixed seed.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can sample a uniform value from themselves (ranges).
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 high bits -> [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty gen_range");
        lo + unit_f64(rng) * (hi - lo)
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
int_range!(usize, u64, u32, u16, u8);

macro_rules! signed_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                ((self.start as i64).wrapping_add((rng.next_u64() % span) as i64)) as $t
            }
        }
    )*};
}
signed_int_range!(isize, i64, i32, i16, i8);

/// High-level sampling methods, blanket-implemented over [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64 (see crate docs —
    /// not upstream's ChaCha12, but deterministic per seed).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng {
                // Pre-mix so that small consecutive seeds give
                // unrelated streams.
                state: state.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x6A09_E667_F3BC_C909,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.gen_range(0.0..1.0f64).to_bits(),
                b.gen_range(0.0..1.0f64).to_bits()
            );
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(-3.0..5.0f64);
            assert!((-3.0..5.0).contains(&x));
            let n = rng.gen_range(2..9usize);
            assert!((2..9).contains(&n));
            let m = rng.gen_range(1.0..=2.0f64);
            assert!((1.0..=2.0).contains(&m));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<f64> = (0..8).map(|_| a.gen_range(0.0..1.0)).collect();
        let ys: Vec<f64> = (0..8).map(|_| b.gen_range(0.0..1.0)).collect();
        assert_ne!(xs, ys);
    }
}
