//! Offline stand-in for `proptest`.
//!
//! The build container has no registry access, so the workspace patches
//! `proptest` to this crate (see `[patch.crates-io]` in the root
//! `Cargo.toml`). It keeps the property-test surface the workspace
//! uses — the [`proptest!`] macro, [`Strategy`](strategy::Strategy)
//! with `prop_map`, range and tuple strategies,
//! [`collection::vec`], [`sample::Index`], `any`, and the
//! `prop_assert*`/`prop_assume` macros — on top of a deliberately
//! simple runner:
//!
//! * cases are generated from a **fixed** deterministic seed (stable
//!   across runs and machines — handy for CI, unlike upstream's
//!   OS-entropy default);
//! * failing cases are reported with their case number but **not
//!   shrunk**;
//! * `prop_assume` rejections simply skip the case.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// Strategies: how to generate values of a type.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values (the stand-in keeps upstream's
    /// name and `Value` associated type, but generates directly
    /// instead of building shrinkable value trees).
    pub trait Strategy {
        /// The type this strategy produces.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f` (upstream's `prop_map`).
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            lo + rng.unit_f64() * (hi - lo)
        }
    }

    macro_rules! int_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }
    int_strategies!(usize, u8, u16, u32, u64, isize, i8, i16, i32, i64);

    macro_rules! tuple_strategies {
        ($(($($s:ident $i:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategies! {
        (A 0, B 1);
        (A 0, B 1, C 2);
        (A 0, B 1, C 2, D 3);
        (A 0, B 1, C 2, D 3, E 4);
        (A 0, B 1, C 2, D 3, E 4, F 5);
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A length specification: a fixed size or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// `Vec` strategy: `size` elements of `element` each (upstream's
    /// `prop::collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let n = self.size.lo + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling helper types.
pub mod sample {
    /// An index into a collection of not-yet-known size (generate
    /// first, apply to a `len` later).
    #[derive(Debug, Clone, Copy)]
    pub struct Index(pub(crate) u64);

    impl Index {
        /// This index reduced into `0..len`.
        ///
        /// # Panics
        ///
        /// Panics if `len` is zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for crate::sample::Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            crate::sample::Index(rng.next_u64())
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64()
        }
    }

    /// The canonical strategy for any [`Arbitrary`] type.
    pub fn any<A: Arbitrary>() -> AnyStrategy<A> {
        AnyStrategy(std::marker::PhantomData)
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct AnyStrategy<A>(std::marker::PhantomData<A>);

    impl<A: Arbitrary> Strategy for AnyStrategy<A> {
        type Value = A;

        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }
}

/// The case runner and its configuration.
pub mod test_runner {
    /// Per-test configuration (only `cases` is honoured).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An assertion failed: the property is violated.
        Fail(String),
        /// The case was rejected by `prop_assume` — skip, don't fail.
        Reject,
    }

    impl TestCaseError {
        /// A failed case carrying `message`.
        pub fn fail(message: String) -> Self {
            TestCaseError::Fail(message)
        }
    }

    /// Deterministic case generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub(crate) fn for_case(case: u64) -> Self {
            TestRng {
                state: case
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(0x243F_6A88_85A3_08D3),
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A uniform sample from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Runs one property over `config.cases` generated cases.
    #[derive(Debug)]
    pub struct TestRunner {
        config: ProptestConfig,
    }

    impl TestRunner {
        /// A runner for `config`.
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner { config }
        }

        /// Runs `property` once per case.
        ///
        /// # Panics
        ///
        /// Panics (failing the enclosing `#[test]`) on the first
        /// [`TestCaseError::Fail`], naming the case number. Rejected
        /// cases are skipped without retry or penalty.
        pub fn run(&mut self, mut property: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>) {
            for case in 0..u64::from(self.config.cases) {
                let mut rng = TestRng::for_case(case);
                match property(&mut rng) {
                    Ok(()) | Err(TestCaseError::Reject) => {}
                    Err(TestCaseError::Fail(message)) => {
                        panic!("proptest case {case} failed: {message}");
                    }
                }
            }
        }
    }
}

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// The `prop::` module path used inside tests
    /// (`prop::collection::vec`, `prop::sample::Index`, ...).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated cases. An
/// optional leading `#![proptest_config(expr)]` sets the case count.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`] — one test fn per recursion
/// step.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($config:expr);) => {};
    (
        config = ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut __runner = $crate::test_runner::TestRunner::new($config);
            __runner.run(|__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), __rng);)+
                (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })()
            });
        }
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
}

/// Asserts a condition inside a property, failing the case (not
/// panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a property (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` != `{:?}`", *l, *r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` != `{:?}`: {}", *l, *r, ::std::format!($($fmt)*)
        );
    }};
}

/// Asserts inequality inside a property (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` == `{:?}`", *l, *r
        );
    }};
}

/// Skips the current case when its inputs don't satisfy a premise.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 1.5f64..9.5, n in 3usize..17) {
            prop_assert!((1.5..9.5).contains(&x));
            prop_assert!((3..17).contains(&n));
        }

        #[test]
        fn vec_and_map_compose(
            v in prop::collection::vec((0.0f64..1.0, 5.0f64..6.0), 2..7),
            pick in any::<prop::sample::Index>(),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            let i = pick.index(v.len());
            prop_assert!(v[i].0 < 1.0 && v[i].1 >= 5.0);
        }

        #[test]
        fn tuple_patterns_and_assume((a, b) in (0u32..10, 0u32..10)) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
            prop_assert_eq!(a == b, false);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let s = (0.0f64..1.0).prop_map(|x| x * 2.0);
        let mut rng1 = crate::test_runner::TestRng::for_case(7);
        let mut rng2 = crate::test_runner::TestRng::for_case(7);
        assert_eq!(
            s.generate(&mut rng1).to_bits(),
            s.generate(&mut rng2).to_bits()
        );
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_name_the_case() {
        proptest! {
            #[test]
            fn always_fails(x in 0.0f64..1.0) {
                prop_assert!(x < 0.0, "x was {x}");
            }
        }
        always_fails();
    }
}
