//! Offline stand-in for `criterion`.
//!
//! The build container has no registry access, so the workspace patches
//! `criterion` to this crate (see `[patch.crates-io]` in the root
//! `Cargo.toml`). The benches keep their upstream-shaped source; this
//! stand-in runs each benchmark body a small fixed number of times and
//! prints a rough mean instead of doing statistical analysis. That
//! keeps `cargo bench` usable for coarse comparisons and keeps the
//! bench targets compiling under `cargo test --all-targets`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How many timed iterations the stand-in runs per benchmark.
const ITERS: u32 = 10;

/// The benchmark manager: collects and immediately runs benchmarks.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Upstream parses CLI args here; the stand-in accepts them all.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(id);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
        }
    }
}

/// A named set of benchmarks (upstream adds shared configuration; the
/// stand-in only prefixes the name).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted and ignored (the stand-in has no statistics to scale).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Accepted and ignored (the stand-in's iteration count is fixed).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted and ignored.
    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.into_benchmark_id().0));
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.into_benchmark_id().0));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Times benchmark bodies.
#[derive(Debug, Default)]
pub struct Bencher {
    total: Duration,
    iters: u32,
}

impl Bencher {
    /// Times `routine`, running it a fixed number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..ITERS {
            let start = Instant::now();
            black_box(routine());
            self.total += start.elapsed();
        }
        self.iters += ITERS;
    }

    /// Times `routine` on fresh inputs from `setup` (setup untimed).
    pub fn iter_batched<I, O, S: FnMut() -> I, F: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: F,
        _size: BatchSize,
    ) {
        for _ in 0..ITERS {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total += start.elapsed();
        }
        self.iters += ITERS;
    }

    fn report(&self, id: &str) {
        if self.iters > 0 {
            let mean = self.total / self.iters;
            println!("bench {id}: {mean:?}/iter (stand-in, {} iters)", self.iters);
        } else {
            println!("bench {id}: no measurement");
        }
    }
}

/// How much work one iteration represents (ignored by the stand-in).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How inputs are batched in [`Bencher::iter_batched`] (ignored).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// A benchmark identifier, possibly parameterised.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// Just the parameter as the id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(format!("{parameter}"))
    }
}

/// Conversion into [`BenchmarkId`] accepted by group methods.
pub trait IntoBenchmarkId {
    /// The concrete id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

/// Declares a group of benchmark functions (upstream-compatible).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("grp");
        group.throughput(Throughput::Elements(4));
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("sq", 4), &4u64, |b, &n| {
            b.iter(|| n * n)
        });
        group.bench_with_input(BenchmarkId::from_parameter(9), &9u64, |b, &n| {
            b.iter_batched(|| n, |m| m + 1, BatchSize::LargeInput)
        });
        group.finish();
    }

    criterion_group!(benches, quick);

    #[test]
    fn harness_runs_every_benchmark() {
        benches();
    }
}
