//! Offline stand-in for `serde_derive`.
//!
//! Generates impls of the stand-in `serde::Serialize` /
//! `serde::Deserialize` traits (which route through the JSON-shaped
//! `serde::__private::Value` tree — see the serde stand-in's crate
//! docs). Supported shapes, which cover everything this workspace
//! derives:
//!
//! * structs with named fields → JSON objects keyed by field name;
//! * enums whose variants are all unit variants → JSON strings holding
//!   the variant name.
//!
//! Anything else (tuple structs, generics, data-carrying enums, serde
//! attributes) produces a `compile_error!` naming the limitation, so a
//! future use of an unsupported shape fails loudly at build time
//! rather than misbehaving at run time.

#![deny(missing_docs)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What a derive input parsed into.
enum Item {
    /// `struct Name { field, ... }`
    Struct { name: String, fields: Vec<String> },
    /// `enum Name { Variant, ... }` (unit variants only)
    Enum { name: String, variants: Vec<String> },
}

/// Derives the stand-in `serde::Serialize` (see crate docs).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(Item::Struct { name, fields }) => {
            let inserts: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "__m.insert(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::serialize(&self.{f}));"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::__private::Value {{\n\
                         let mut __m = ::std::collections::BTreeMap::new();\n\
                         {inserts}\n\
                         ::serde::__private::Value::Object(__m)\n\
                     }}\n\
                 }}"
            )
            .parse()
            .expect("generated Serialize impl parses")
        }
        Ok(Item::Enum { name, variants }) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => ::serde::__private::Value::String(\
                         ::std::string::String::from(\"{v}\")),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::__private::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
            .parse()
            .expect("generated Serialize impl parses")
        }
        Err(msg) => error(&msg),
    }
}

/// Derives the stand-in `serde::Deserialize` (see crate docs).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(Item::Struct { name, fields }) => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::__private::field(__o, \"{f}\")?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(__v: &::serde::__private::Value)\n\
                         -> ::std::result::Result<Self, ::serde::__private::Error> {{\n\
                         let __o = __v.as_object().ok_or_else(|| \
                             ::serde::__private::Error::custom(\
                                 \"expected object for struct {name}\"))?;\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
            .parse()
            .expect("generated Deserialize impl parses")
        }
        Ok(Item::Enum { name, variants }) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(__v: &::serde::__private::Value)\n\
                         -> ::std::result::Result<Self, ::serde::__private::Error> {{\n\
                         match __v.as_str() {{\n\
                             ::std::option::Option::Some(__s) => match __s {{\n\
                                 {arms}\n\
                                 _ => ::std::result::Result::Err(\
                                     ::serde::__private::Error::custom(::std::format!(\
                                         \"unknown variant `{{__s}}` for enum {name}\"))),\n\
                             }},\n\
                             ::std::option::Option::None => ::std::result::Result::Err(\
                                 ::serde::__private::Error::custom(\
                                     \"expected string for enum {name}\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
            .parse()
            .expect("generated Deserialize impl parses")
        }
        Err(msg) => error(&msg),
    }
}

/// Emits `compile_error!` carrying `msg`.
fn error(msg: &str) -> TokenStream {
    format!("compile_error!(\"serde stand-in derive: {}\");", msg.replace('"', "'"))
        .parse()
        .expect("compile_error parses")
}

/// Parses a derive input into [`Item`], rejecting unsupported shapes.
fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected `struct` or `enum`".into()),
    };
    i += 1;
    let name = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected a type name".into()),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("generic type `{name}` is not supported"));
    }
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!("tuple struct `{name}` is not supported"));
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                return Err(format!("unit struct `{name}` is not supported"));
            }
            Some(_) => i += 1, // `where` clauses etc. (not expected, but harmless)
            None => return Err(format!("no body found for `{name}`")),
        }
    };
    match kind.as_str() {
        "struct" => Ok(Item::Struct {
            fields: parse_named_fields(body.stream())?,
            name,
        }),
        "enum" => Ok(Item::Enum {
            variants: parse_unit_variants(body.stream())?,
            name,
        }),
        other => Err(format!("expected `struct` or `enum`, found `{other}`")),
    }
}

/// Advances past outer attributes (`#[...]`, doc comments) and a
/// `pub`/`pub(...)` visibility prefix.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // the `[...]` group
                if matches!(tokens.get(*i), Some(TokenTree::Group(_))) {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1; // optional `(crate)` / `(super)` restriction
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Field names of a named-field struct body.
///
/// Types are skipped rather than parsed — the generated code never
/// needs them (trait dispatch recovers them) — by scanning to the next
/// top-level `,`, tracking `<`/`>` nesting so commas inside generics
/// don't split a field. Exotic types containing a bare `->` or `>>`
/// punctuation outside a group would confuse the scan; none occur in
/// this workspace.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(t) => return Err(format!("expected a field name, found `{t}`")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("expected `:` after field `{name}`")),
        }
        let mut angle = 0i32;
        while let Some(t) = tokens.get(i) {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                _ => {}
            }
            i += 1;
        }
        i += 1; // past the `,` (or end)
        fields.push(name);
    }
    Ok(fields)
}

/// Variant names of an all-unit-variant enum body.
fn parse_unit_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(t) => return Err(format!("expected a variant name, found `{t}`")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => {}
            Some(TokenTree::Group(_)) => {
                return Err(format!("variant `{name}` carries data; only unit variants are supported"));
            }
            Some(t) => return Err(format!("unexpected `{t}` after variant `{name}`")),
        }
        variants.push(name);
    }
    Ok(variants)
}
