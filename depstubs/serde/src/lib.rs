//! Offline stand-in for `serde`.
//!
//! The build container has no registry access, so the workspace patches
//! `serde` to this crate (see `[patch.crates-io]` in the root
//! `Cargo.toml`). Instead of the full serde data model (visitors,
//! `Serializer`/`Deserializer` dispatch), this stand-in routes
//! everything through one concrete JSON-shaped tree, [`__private::Value`]:
//!
//! * [`Serialize`] converts a value **to** a [`__private::Value`];
//! * [`Deserialize`] reconstructs a value **from** one.
//!
//! The `serde_derive` stand-in generates impls of these two traits for
//! named-field structs and unit-variant enums, and the `serde_json`
//! stand-in renders/parses the tree as JSON text. The subset is exactly
//! what this workspace needs: `#[derive(Serialize, Deserialize)]` plus
//! `serde_json::{to_string, to_string_pretty, from_str, Value}`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Support machinery shared by the derive macro and `serde_json`.
///
/// The name mirrors real serde's hidden support module; unlike real
/// serde's, this one is a documented, stable part of the stand-in.
pub mod __private {
    use std::collections::BTreeMap;
    use std::fmt;

    /// A JSON-shaped tree: the single interchange format of the
    /// stand-in (re-exported as `serde_json::Value`).
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// JSON `null`.
        Null,
        /// JSON booleans.
        Bool(bool),
        /// JSON numbers (all stored as `f64`; integers up to 2^53
        /// round-trip exactly).
        Number(f64),
        /// JSON strings.
        String(String),
        /// JSON arrays.
        Array(Vec<Value>),
        /// JSON objects, ordered by key for deterministic output.
        Object(BTreeMap<String, Value>),
    }

    impl Value {
        /// The object map, if this is an object.
        pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
            match self {
                Value::Object(m) => Some(m),
                _ => None,
            }
        }

        /// The array items, if this is an array.
        pub fn as_array(&self) -> Option<&Vec<Value>> {
            match self {
                Value::Array(a) => Some(a),
                _ => None,
            }
        }

        /// The string contents, if this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::String(s) => Some(s),
                _ => None,
            }
        }

        /// The number as `f64`, if this is a number.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Number(n) => Some(*n),
                _ => None,
            }
        }

        /// The number as `u64`, if this is a non-negative integer.
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                    Some(*n as u64)
                }
                _ => None,
            }
        }

        /// The boolean, if this is a boolean.
        pub fn as_bool(&self) -> Option<bool> {
            match self {
                Value::Bool(b) => Some(*b),
                _ => None,
            }
        }

        /// Whether this is `null`.
        pub fn is_null(&self) -> bool {
            matches!(self, Value::Null)
        }

        /// Looks up `key` when this is an object (`None` otherwise).
        pub fn get(&self, key: &str) -> Option<&Value> {
            self.as_object().and_then(|m| m.get(key))
        }
    }

    /// Serialization/deserialization failure: a plain message.
    #[derive(Debug, Clone, PartialEq)]
    pub struct Error {
        message: String,
    }

    impl Error {
        /// An error carrying `message`.
        pub fn custom(message: impl Into<String>) -> Self {
            Error {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl std::error::Error for Error {}

    /// Typed lookup of a struct field used by derived `Deserialize`
    /// impls: a missing key behaves like an explicit `null` (so
    /// `Option` fields default to `None`).
    pub fn field<T: crate::Deserialize>(
        obj: &BTreeMap<String, Value>,
        key: &str,
    ) -> Result<T, Error> {
        T::deserialize(obj.get(key).unwrap_or(&Value::Null))
            .map_err(|e| Error::custom(format!("field `{key}`: {e}")))
    }
}

use __private::{Error, Value};

/// Conversion to the stand-in's interchange tree (see crate docs).
pub trait Serialize {
    /// This value as a [`__private::Value`].
    fn serialize(&self) -> Value;
}

/// Reconstruction from the stand-in's interchange tree (see crate
/// docs).
pub trait Deserialize: Sized {
    /// Parses `v` into `Self`.
    ///
    /// # Errors
    ///
    /// Returns [`__private::Error`] when `v` has the wrong shape.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error::custom("expected boolean"))
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Number(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Number(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .map(|n| n as f32)
            .ok_or_else(|| Error::custom("expected number"))
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) if n.fract() == 0.0 => {
                        let i = *n as i128;
                        <$t>::try_from(i)
                            .map_err(|_| Error::custom("integer out of range"))
                    }
                    _ => Err(Error::custom("expected integer")),
                }
            }
        }
    )*};
}
int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(x) => x.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        if v.is_null() {
            Ok(None)
        } else {
            T::deserialize(v).map(Some)
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self) -> Value {
        Value::Array(vec![self.0.serialize(), self.1.serialize()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let a = v.as_array().ok_or_else(|| Error::custom("expected array"))?;
        if a.len() != 2 {
            return Err(Error::custom("expected 2-element array"));
        }
        Ok((A::deserialize(&a[0])?, B::deserialize(&a[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize(&self) -> Value {
        Value::Array(vec![
            self.0.serialize(),
            self.1.serialize(),
            self.2.serialize(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let a = v.as_array().ok_or_else(|| Error::custom("expected array"))?;
        if a.len() != 3 {
            return Err(Error::custom("expected 3-element array"));
        }
        Ok((
            A::deserialize(&a[0])?,
            B::deserialize(&a[1])?,
            C::deserialize(&a[2])?,
        ))
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom("expected object"))?
            .iter()
            .map(|(k, x)| Ok((k.clone(), V::deserialize(x)?)))
            .collect()
    }
}
