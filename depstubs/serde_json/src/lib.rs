//! Offline stand-in for `serde_json`.
//!
//! Renders and parses the serde stand-in's [`Value`] tree as JSON
//! text. Numbers are stored as `f64` and printed with Rust's shortest
//! round-trip formatting, so every value survives
//! `from_str(&to_string(v))` bit-exactly (the real crate's
//! `float_roundtrip` behaviour); integers round-trip exactly up to
//! 2^53. Non-finite numbers serialize as `null`, as in the real crate.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::collections::BTreeMap;

pub use serde::__private::Error;
pub use serde::__private::Value;

/// The object representation behind [`Value::Object`].
pub type Map<K, V> = BTreeMap<K, V>;

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Never fails for the shapes the stand-in supports; the `Result` is
/// kept for call-site compatibility with the real crate.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` as two-space-indented JSON.
///
/// # Errors
///
/// Never fails (see [`to_string`]).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any [`serde::Deserialize`] type.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    T::deserialize(&v)
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => {
            if n.is_finite() {
                // Rust's `Display` for f64 is shortest-round-trip.
                out.push_str(&n.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            if !map.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..(width * depth) {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(
            self.bytes.get(self.pos),
            Some(b' ' | b'\t' | b'\n' | b'\r')
        ) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.literal("null") => Ok(Value::Null),
            Some(b't') if self.literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error::custom(format!(
                "unexpected input at byte {}",
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::custom("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::custom("bad \\u escape"))?;
                            // Surrogate pairs are not reassembled; the
                            // workspace never emits them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error::custom("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trips() {
        let mut obj = BTreeMap::new();
        obj.insert("pi".to_string(), Value::Number(3.141592653589793));
        obj.insert("neg".to_string(), Value::Number(-0.001));
        obj.insert("n".to_string(), Value::Number(12345.0));
        obj.insert("s".to_string(), Value::String("a \"b\"\n\\c".to_string()));
        obj.insert(
            "a".to_string(),
            Value::Array(vec![Value::Null, Value::Bool(true), Value::Bool(false)]),
        );
        obj.insert("empty".to_string(), Value::Array(vec![]));
        let v = Value::Object(obj);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
        // Pretty output parses back to the same tree too.
        let pretty = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for x in [1.0e-300, 0.1 + 0.2, f64::MAX, 1.5e300, -7.25] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(x.to_bits(), back.to_bits(), "{text}");
        }
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("12 34").is_err());
        assert!(from_str::<Value>("\"open").is_err());
    }
}
