//! Figure rendering for the experiment harnesses: ASCII heatmaps for
//! terminal output, CSV series for plotting, PGM images for reports,
//! and topology dumps of node deployments.
//!
//! # Example
//!
//! ```
//! use cps_field::PeaksField;
//! use cps_geometry::{GridSpec, Rect};
//! use cps_viz::ascii_heatmap;
//!
//! let region = Rect::square(100.0).unwrap();
//! let field = PeaksField::new(region, 8.0);
//! let grid = GridSpec::new(region, 41, 41).unwrap();
//! let art = ascii_heatmap(&field, &grid, 40, 20).unwrap();
//! assert_eq!(art.lines().count(), 20);
//! ```
//!
//! Renderers return [`VizError`] instead of panicking: canvas sizes
//! typically arrive from CLI flags, so bad dimensions are input errors.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod ascii;
mod csv;
mod error;
mod pgm;
mod svg;
mod topology;

pub use ascii::{ascii_heatmap, ascii_scatter};
pub use csv::{write_series, write_xy_series};
pub use error::VizError;
pub use pgm::field_to_pgm;
pub use svg::{topology_svg, trajectories_svg, SvgStyle};
pub use topology::topology_summary;
