//! Textual summaries of deployment topologies.

use cps_geometry::Point2;

/// One-paragraph summary of a deployment: node count, bounding box,
/// mean nearest-neighbor spacing.
pub fn topology_summary(positions: &[Point2]) -> String {
    if positions.is_empty() {
        return "empty deployment".to_string();
    }
    let mut min = positions[0];
    let mut max = positions[0];
    for p in positions {
        min = Point2::new(min.x.min(p.x), min.y.min(p.y));
        max = Point2::new(max.x.max(p.x), max.y.max(p.y));
    }
    let mut nn_total = 0.0;
    let mut nn_count = 0usize;
    for (i, a) in positions.iter().enumerate() {
        let mut best = f64::INFINITY;
        for (j, b) in positions.iter().enumerate() {
            if i != j {
                best = best.min(a.distance(*b));
            }
        }
        if best.is_finite() {
            nn_total += best;
            nn_count += 1;
        }
    }
    let mean_nn = if nn_count > 0 {
        nn_total / nn_count as f64
    } else {
        0.0
    };
    format!(
        "{} nodes in [{:.1}, {:.1}]x[{:.1}, {:.1}], mean nearest-neighbor spacing {:.2}",
        positions.len(),
        min.x,
        max.x,
        min.y,
        max.y,
        mean_nn
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_empty() {
        assert_eq!(topology_summary(&[]), "empty deployment");
    }

    #[test]
    fn summary_of_square() {
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(10.0, 0.0),
            Point2::new(0.0, 10.0),
            Point2::new(10.0, 10.0),
        ];
        let s = topology_summary(&pts);
        assert!(s.contains("4 nodes"));
        assert!(s.contains("[0.0, 10.0]x[0.0, 10.0]"));
        assert!(s.contains("10.00"));
    }

    #[test]
    fn summary_of_single_node() {
        let s = topology_summary(&[Point2::new(1.0, 2.0)]);
        assert!(s.contains("1 nodes"));
    }
}
