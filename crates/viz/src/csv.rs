//! CSV series export for plotting.

use std::io::Write;

use crate::VizError;

/// Writes a header plus one labelled series per row:
/// `label,value` lines after a `name,value` header.
///
/// # Errors
///
/// [`VizError::Io`] on writer failures.
pub fn write_series<W: Write>(
    mut w: W,
    name: &str,
    series: &[(String, f64)],
) -> Result<(), VizError> {
    writeln!(w, "{name},value")?;
    for (label, value) in series {
        writeln!(w, "{label},{value}")?;
    }
    Ok(())
}

/// Writes an `x,y1,y2,...` table with named columns — the natural form
/// of a figure with several curves over a shared axis.
///
/// # Errors
///
/// [`VizError::Io`] on writer failures; [`VizError::RaggedRow`] if a
/// row's arity does not match the declared columns.
pub fn write_xy_series<W: Write>(
    mut w: W,
    x_name: &str,
    y_names: &[&str],
    rows: &[(f64, Vec<f64>)],
) -> Result<(), VizError> {
    write!(w, "{x_name}")?;
    for n in y_names {
        write!(w, ",{n}")?;
    }
    writeln!(w)?;
    for (x, ys) in rows {
        if ys.len() != y_names.len() {
            return Err(VizError::RaggedRow {
                x: *x,
                got: ys.len(),
                expected: y_names.len(),
            });
        }
        write!(w, "{x}")?;
        for y in ys {
            write!(w, ",{y}")?;
        }
        writeln!(w)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_format() {
        let mut buf = Vec::new();
        write_series(
            &mut buf,
            "k",
            &[("1".to_string(), 0.5), ("2".to_string(), 0.25)],
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text, "k,value\n1,0.5\n2,0.25\n");
    }

    #[test]
    fn xy_table_format() {
        let mut buf = Vec::new();
        write_xy_series(
            &mut buf,
            "t",
            &["fra", "random"],
            &[(0.0, vec![1.0, 2.0]), (1.0, vec![0.5, 1.5])],
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text, "t,fra,random\n0,1,2\n1,0.5,1.5\n");
    }

    #[test]
    fn xy_table_rejects_ragged_rows() {
        let mut buf = Vec::new();
        let err = write_xy_series(&mut buf, "t", &["a"], &[(0.0, vec![1.0, 2.0])]).unwrap_err();
        assert!(matches!(
            err,
            VizError::RaggedRow {
                got: 2,
                expected: 1,
                ..
            }
        ));
    }
}
