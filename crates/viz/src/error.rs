//! Typed rendering errors.

use std::fmt;
use std::io;

/// Why a rendering or export failed. Replaces the crate's former
/// panic-on-misuse behavior: a CLI flag or config value flows straight
/// into canvas sizes, so bad dimensions are an input error, not a bug.
#[derive(Debug)]
#[non_exhaustive]
pub enum VizError {
    /// A canvas dimension was zero (`what` names the render).
    EmptyCanvas {
        /// Which renderer rejected the dimensions.
        what: &'static str,
        /// Requested columns (or pixels of width).
        cols: usize,
        /// Requested rows (or pixels of height).
        rows: usize,
    },
    /// A CSV row's value count does not match the declared columns.
    RaggedRow {
        /// The row's x value, to locate it.
        x: f64,
        /// Values present in the row.
        got: usize,
        /// Values the header declares.
        expected: usize,
    },
    /// The underlying writer failed.
    Io(io::Error),
}

impl fmt::Display for VizError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VizError::EmptyCanvas { what, cols, rows } => {
                write!(f, "{what} needs at least one cell, got {cols}x{rows}")
            }
            VizError::RaggedRow { x, got, expected } => {
                write!(f, "row for x={x} has {got} values, expected {expected}")
            }
            VizError::Io(e) => write!(f, "write failed: {e}"),
        }
    }
}

impl std::error::Error for VizError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VizError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for VizError {
    fn from(e: io::Error) -> Self {
        VizError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_their_context() {
        let e = VizError::EmptyCanvas {
            what: "heatmap",
            cols: 0,
            rows: 5,
        };
        assert_eq!(e.to_string(), "heatmap needs at least one cell, got 0x5");
        let e = VizError::RaggedRow {
            x: 1.5,
            got: 3,
            expected: 2,
        };
        assert!(e.to_string().contains("x=1.5"));
        let e = VizError::from(io::Error::other("disk on fire"));
        assert!(e.to_string().contains("disk on fire"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
