//! Portable graymap (PGM) export — a dependency-free image format every
//! viewer understands.

use cps_field::Field;
use cps_geometry::{GridSpec, Point2};

use crate::VizError;

/// Rasterizes a field over the grid's region into a binary 8-bit PGM
/// image (`P5`), `width × height` pixels, bright = high.
///
/// # Errors
///
/// [`VizError::EmptyCanvas`] when either dimension is zero.
pub fn field_to_pgm<F: Field>(
    field: &F,
    grid: &GridSpec,
    width: usize,
    height: usize,
) -> Result<Vec<u8>, VizError> {
    if width == 0 || height == 0 {
        return Err(VizError::EmptyCanvas {
            what: "image",
            cols: width,
            rows: height,
        });
    }
    let rect = grid.rect();
    let samples = field.sample_grid(grid);
    let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let range = (max - min).max(1e-300);

    let mut out = format!("P5\n{width} {height}\n255\n").into_bytes();
    for r in 0..height {
        // Row 0 is the top of the image = the region's north edge.
        let y = rect.min().y + rect.height() * (1.0 - (r as f64 + 0.5) / height as f64);
        for c in 0..width {
            let x = rect.min().x + rect.width() * (c as f64 + 0.5) / width as f64;
            let v = (field.value(Point2::new(x, y)) - min) / range;
            out.push((v.clamp(0.0, 1.0) * 255.0).round() as u8);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_field::PlaneField;
    use cps_geometry::Rect;

    #[test]
    fn pgm_header_and_size() {
        let region = Rect::square(10.0).unwrap();
        let grid = GridSpec::new(region, 5, 5).unwrap();
        let img = field_to_pgm(&PlaneField::new(1.0, 0.0, 0.0), &grid, 16, 8).unwrap();
        let header_end = img.windows(4).position(|w| w == b"255\n").unwrap() + 4;
        assert!(img.starts_with(b"P5\n16 8\n255\n"));
        assert_eq!(img.len() - header_end, 16 * 8);
    }

    #[test]
    fn gradient_goes_left_to_right() {
        let region = Rect::square(10.0).unwrap();
        let grid = GridSpec::new(region, 5, 5).unwrap();
        let img = field_to_pgm(&PlaneField::new(1.0, 0.0, 0.0), &grid, 10, 1).unwrap();
        let pixels = &img[img.len() - 10..];
        assert!(pixels[0] < pixels[9]);
    }
}
