//! ASCII renderings for terminal inspection.

use cps_field::Field;
use cps_geometry::{GridSpec, Point2, Rect};

use crate::VizError;

/// Density ramp from dark to bright.
const RAMP: &[u8] = b" .:-=+*#%@";

/// Renders a field as an ASCII heatmap of `cols × rows` characters
/// (row 0 printed last, so north is up).
///
/// Values are normalized to the field's range over the given grid; a
/// constant field renders as all-minimum characters.
///
/// # Errors
///
/// [`VizError::EmptyCanvas`] when either dimension is zero.
pub fn ascii_heatmap<F: Field>(
    field: &F,
    grid: &GridSpec,
    cols: usize,
    rows: usize,
) -> Result<String, VizError> {
    if cols == 0 || rows == 0 {
        return Err(VizError::EmptyCanvas {
            what: "heatmap",
            cols,
            rows,
        });
    }
    let rect = grid.rect();
    let samples = field.sample_grid(grid);
    let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let range = (max - min).max(1e-300);
    let mut out = String::with_capacity((cols + 1) * rows);
    for r in (0..rows).rev() {
        for c in 0..cols {
            let p = Point2::new(
                rect.min().x + rect.width() * (c as f64 + 0.5) / cols as f64,
                rect.min().y + rect.height() * (r as f64 + 0.5) / rows as f64,
            );
            let v = (field.value(p) - min) / range;
            let idx = ((v * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1);
            out.push(RAMP[idx] as char);
        }
        out.push('\n');
    }
    Ok(out)
}

/// Renders node positions as an ASCII scatter over `region`
/// (`*` = one node, digits 2–9 for multiplicity, `#` for ten or more).
///
/// # Errors
///
/// [`VizError::EmptyCanvas`] when either dimension is zero.
pub fn ascii_scatter(
    positions: &[Point2],
    region: Rect,
    cols: usize,
    rows: usize,
) -> Result<String, VizError> {
    if cols == 0 || rows == 0 {
        return Err(VizError::EmptyCanvas {
            what: "scatter",
            cols,
            rows,
        });
    }
    let mut counts = vec![0usize; cols * rows];
    for p in positions {
        if !region.contains(*p) {
            continue;
        }
        let c = (((p.x - region.min().x) / region.width()) * cols as f64) as usize;
        let r = (((p.y - region.min().y) / region.height()) * rows as f64) as usize;
        counts[r.min(rows - 1) * cols + c.min(cols - 1)] += 1;
    }
    let mut out = String::with_capacity((cols + 1) * rows);
    for r in (0..rows).rev() {
        for c in 0..cols {
            out.push(match counts[r * cols + c] {
                0 => '.',
                1 => '*',
                n @ 2..=9 => (b'0' + n as u8) as char,
                _ => '#',
            });
        }
        out.push('\n');
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_field::PlaneField;

    #[test]
    fn heatmap_shape_and_gradient() {
        let region = Rect::square(10.0).unwrap();
        let grid = GridSpec::new(region, 11, 11).unwrap();
        let art = ascii_heatmap(&PlaneField::new(1.0, 0.0, 0.0), &grid, 20, 5).unwrap();
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines.iter().all(|l| l.len() == 20));
        // Left edge darkest, right edge brightest.
        assert!(lines[0].starts_with(' '));
        assert!(lines[0].ends_with('@'));
    }

    #[test]
    fn constant_field_renders_uniformly() {
        let region = Rect::square(10.0).unwrap();
        let grid = GridSpec::new(region, 5, 5).unwrap();
        let art = ascii_heatmap(&PlaneField::new(0.0, 0.0, 7.0), &grid, 8, 3).unwrap();
        assert!(art.lines().all(|l| l.chars().all(|c| c == ' ')));
    }

    #[test]
    fn scatter_counts_multiplicity() {
        let region = Rect::square(10.0).unwrap();
        let positions = vec![
            Point2::new(1.0, 1.0),
            Point2::new(1.2, 1.1), // same cell
            Point2::new(9.0, 9.0),
            Point2::new(50.0, 50.0), // outside, ignored
        ];
        let art = ascii_scatter(&positions, region, 5, 5).unwrap();
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 5);
        // Bottom-left cell (printed last line, first char) holds 2.
        assert_eq!(lines[4].chars().next().unwrap(), '2');
        // Top-right holds 1.
        assert_eq!(lines[0].chars().last().unwrap(), '*');
    }

    #[test]
    fn zero_size_is_a_typed_error() {
        let region = Rect::square(1.0).unwrap();
        match ascii_scatter(&[], region, 0, 5) {
            Err(VizError::EmptyCanvas { what, cols, rows }) => {
                assert_eq!(what, "scatter");
                assert_eq!((cols, rows), (0, 5));
            }
            other => panic!("expected EmptyCanvas, got {other:?}"),
        }
        let grid = GridSpec::new(region, 3, 3).unwrap();
        assert!(matches!(
            ascii_heatmap(&PlaneField::new(0.0, 0.0, 0.0), &grid, 4, 0),
            Err(VizError::EmptyCanvas {
                what: "heatmap",
                ..
            })
        ));
    }
}
