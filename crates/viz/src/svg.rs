//! SVG export of deployment topologies: nodes, communication edges,
//! and optional trajectories — a publication-quality counterpart of
//! the ASCII scatter.

use cps_geometry::{Point2, Rect};

/// Options for [`topology_svg`].
#[derive(Debug, Clone)]
pub struct SvgStyle {
    /// Canvas width in pixels (height follows the region aspect).
    pub width: u32,
    /// Node disc radius in pixels.
    pub node_radius: f64,
    /// Node fill color.
    pub node_color: String,
    /// Edge stroke color.
    pub edge_color: String,
}

impl Default for SvgStyle {
    fn default() -> Self {
        SvgStyle {
            width: 600,
            node_radius: 4.0,
            node_color: "#1f77b4".to_string(),
            edge_color: "#bbbbbb".to_string(),
        }
    }
}

/// Renders a deployment as an SVG document: `edges` as line segments
/// under `positions` as discs, mapped from `region` coordinates
/// (y up) to SVG pixels (y down).
pub fn topology_svg(
    positions: &[Point2],
    edges: &[(usize, usize)],
    region: Rect,
    style: &SvgStyle,
) -> String {
    let scale = f64::from(style.width) / region.width();
    let height = (region.height() * scale).ceil();
    let map = |p: Point2| -> (f64, f64) {
        (
            (p.x - region.min().x) * scale,
            height - (p.y - region.min().y) * scale,
        )
    };
    let mut svg = format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{}\" height=\"{}\" \
         viewBox=\"0 0 {} {}\">\n",
        style.width, height as u32, style.width, height as u32
    );
    svg.push_str("  <rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n");
    for &(a, b) in edges {
        if a >= positions.len() || b >= positions.len() {
            continue;
        }
        let (x1, y1) = map(positions[a]);
        let (x2, y2) = map(positions[b]);
        svg.push_str(&format!(
            "  <line x1=\"{x1:.1}\" y1=\"{y1:.1}\" x2=\"{x2:.1}\" y2=\"{y2:.1}\" \
             stroke=\"{}\" stroke-width=\"1\"/>\n",
            style.edge_color
        ));
    }
    for &p in positions {
        let (cx, cy) = map(p);
        svg.push_str(&format!(
            "  <circle cx=\"{cx:.1}\" cy=\"{cy:.1}\" r=\"{}\" fill=\"{}\"/>\n",
            style.node_radius, style.node_color
        ));
    }
    svg.push_str("</svg>\n");
    svg
}

/// Renders polylines (trajectories) over the region as an SVG path
/// layer; combine with [`topology_svg`] output by hand or embed alone.
pub fn trajectories_svg(tracks: &[Vec<Point2>], region: Rect, style: &SvgStyle) -> String {
    let scale = f64::from(style.width) / region.width();
    let height = (region.height() * scale).ceil();
    let map = |p: Point2| -> (f64, f64) {
        (
            (p.x - region.min().x) * scale,
            height - (p.y - region.min().y) * scale,
        )
    };
    let mut svg = format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{}\" height=\"{}\" \
         viewBox=\"0 0 {} {}\">\n",
        style.width, height as u32, style.width, height as u32
    );
    for track in tracks {
        if track.len() < 2 {
            continue;
        }
        let mut d = String::new();
        for (i, &p) in track.iter().enumerate() {
            let (x, y) = map(p);
            d.push_str(&format!("{}{x:.1} {y:.1} ", if i == 0 { "M" } else { "L" }));
        }
        svg.push_str(&format!(
            "  <path d=\"{}\" fill=\"none\" stroke=\"{}\" stroke-width=\"1.5\"/>\n",
            d.trim_end(),
            style.node_color
        ));
    }
    svg.push_str("</svg>\n");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region() -> Rect {
        Rect::square(100.0).unwrap()
    }

    #[test]
    fn svg_contains_all_elements() {
        let pts = vec![Point2::new(0.0, 0.0), Point2::new(50.0, 50.0)];
        let svg = topology_svg(&pts, &[(0, 1)], region(), &SvgStyle::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert_eq!(svg.matches("<circle").count(), 2);
        assert_eq!(svg.matches("<line").count(), 1);
    }

    #[test]
    fn coordinates_are_flipped_and_scaled() {
        // Bottom-left region corner maps to bottom-left of the canvas
        // (y grows downward in SVG).
        let pts = vec![Point2::new(0.0, 0.0)];
        let svg = topology_svg(&pts, &[], region(), &SvgStyle::default());
        assert!(svg.contains("cx=\"0.0\" cy=\"600.0\""), "{svg}");
    }

    #[test]
    fn out_of_range_edges_are_skipped() {
        let pts = vec![Point2::new(1.0, 1.0)];
        let svg = topology_svg(&pts, &[(0, 7)], region(), &SvgStyle::default());
        assert_eq!(svg.matches("<line").count(), 0);
    }

    #[test]
    fn trajectories_render_as_paths() {
        let tracks = vec![
            vec![
                Point2::new(0.0, 0.0),
                Point2::new(10.0, 10.0),
                Point2::new(20.0, 5.0),
            ],
            vec![Point2::new(50.0, 50.0)], // too short, skipped
        ];
        let svg = trajectories_svg(&tracks, region(), &SvgStyle::default());
        assert_eq!(svg.matches("<path").count(), 1);
        assert!(svg.contains("M0.0"));
    }
}
