//! Shared setup for the experiment harnesses reproducing the paper's
//! figures (see DESIGN.md §4 for the experiment index and
//! EXPERIMENTS.md for measured results).
//!
//! Every binary in `src/bin/` uses the same canonical scenario: the
//! synthetic GreenOrbs trace with the default [`ForestConfig`], a
//! 100×100 m region of interest inside the forest plot, light (KLux)
//! as the channel, and the paper's node parameters `Rc = 10 m`,
//! `Rs = 5 m`, `v = 1 m/min`, `β = 2` (Section 6.1).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::fs;
use std::path::PathBuf;

use cps_field::GridField;
use cps_geometry::{GridSpec, Point2, Rect};
use cps_greenorbs::{Channel, Dataset, ForestConfig};

/// The paper's communication radius, metres.
pub const PAPER_RC: f64 = 10.0;

/// The paper's sensing radius, metres.
pub const PAPER_RS: f64 = 5.0;

/// Trace hour of the paper's referential surface (10:00).
pub const PAPER_HOUR: u32 = 10;

/// Evaluation grid resolution (101×101 over the 100 m region → 1 m).
pub const EVAL_RESOLUTION: usize = 101;

/// The 100×100 m region of interest inside the forest plot.
pub fn paper_region() -> Rect {
    Rect::new(Point2::new(20.0, 20.0), Point2::new(120.0, 120.0)).expect("paper region is valid")
}

/// The canonical synthetic GreenOrbs dataset (deterministic).
pub fn paper_dataset() -> Dataset {
    Dataset::generate(&ForestConfig::default())
}

/// The evaluation grid over the paper region.
pub fn eval_grid() -> GridSpec {
    GridSpec::new(paper_region(), EVAL_RESOLUTION, EVAL_RESOLUTION)
        .expect("evaluation grid is valid")
}

/// The referential light surface (the paper's Fig. 1 field): light at
/// 10:00, kernel-smoothed onto the evaluation grid.
pub fn reference_light_surface(dataset: &Dataset) -> GridField {
    dataset
        .region_field(paper_region(), Channel::Light, PAPER_HOUR, EVAL_RESOLUTION)
        .expect("reference surface extraction succeeds")
}

/// Directory where experiment outputs (CSV, PGM) are written.
pub fn output_dir() -> PathBuf {
    let dir = PathBuf::from("target/experiments");
    fs::create_dir_all(&dir).expect("can create target/experiments");
    dir
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_field::Field;

    #[test]
    fn canonical_scenario_is_consistent() {
        let region = paper_region();
        assert_eq!(region.width(), 100.0);
        let grid = eval_grid();
        assert_eq!(grid.len(), EVAL_RESOLUTION * EVAL_RESOLUTION);
        let dataset = paper_dataset();
        assert!(dataset.node_count() >= 1000);
        let surface = reference_light_surface(&dataset);
        assert!(surface.max_value() > surface.min_value());
        assert!(surface.value(region.center()).is_finite());
    }
}
