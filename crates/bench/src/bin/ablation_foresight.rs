//! **Ablation** — FRA's foresight step.
//!
//! FRA reserves budget for connectivity *during* refinement (Table 1
//! lines 5–8). The naive alternative refines greedily with no
//! connectivity plan and repairs afterwards. This ablation compares:
//!
//! * **foresighted** — FRA as published: exactly `k` nodes, connected
//!   by construction;
//! * **naive repair** — `k` pure-greedy picks, then as many relays as
//!   connectivity needs *on top* (budget overrun);
//! * **naive truncated** — pure-greedy picks cut back until picks +
//!   repair relays fit in `k` (a fair same-budget comparison).

use cps_bench::{eval_grid, paper_dataset, reference_light_surface, PAPER_RC};
use cps_core::osd::FraBuilder;
use cps_core::DeltaEvaluator;
use cps_geometry::Point2;
use cps_network::{RelayPlan, UnitDiskGraph};

/// Pure greedy refinement: FRA with a communication radius so large
/// that the foresight step never activates.
fn greedy_positions(
    reference: &cps_field::GridField,
    grid: cps_geometry::GridSpec,
    k: usize,
) -> Vec<Point2> {
    FraBuilder::new(k, 1e6)
        .grid(grid)
        .run(reference)
        .expect("greedy run succeeds")
        .positions
}

fn repair(positions: &[Point2]) -> Vec<Point2> {
    let graph = UnitDiskGraph::new(positions.to_vec(), PAPER_RC).expect("graph");
    let plan = RelayPlan::for_graph(&graph);
    let mut all = positions.to_vec();
    all.extend_from_slice(plan.relays());
    all
}

fn main() {
    let dataset = paper_dataset();
    let reference = reference_light_surface(&dataset);
    let grid = eval_grid();

    println!("=== Ablation: FRA foresight vs naive post-hoc repair (Rc = 10) ===");
    println!(
        "{:>5} {:>14} {:>20} {:>22}",
        "k", "foresighted", "naive repair (cost)", "naive truncated (k)"
    );
    for k in [30usize, 60, 100, 150] {
        let fra = FraBuilder::new(k, PAPER_RC)
            .grid(grid)
            .run(&reference)
            .expect("FRA succeeds");
        let mut evaluator = DeltaEvaluator::new(&reference, &grid, PAPER_RC);
        let fe = evaluator.evaluate(&fra.positions).expect("evaluation");

        // Naive with overrun: k greedy picks + however many relays.
        let greedy = greedy_positions(&reference, grid, k);
        let repaired = repair(&greedy);
        let re = evaluator.evaluate(&repaired).expect("evaluation");

        // Naive truncated to the same budget: shrink the greedy pick
        // count until picks + repair relays fit within k (damped steps;
        // at least 3 picks so the reconstruction stays defined).
        let mut g = k;
        let truncated = loop {
            let picks = greedy_positions(&reference, grid, g);
            let fixed = repair(&picks);
            if fixed.len() <= k || g <= 3 {
                break fixed;
            }
            let over = fixed.len() - k;
            g = g.saturating_sub(over.div_ceil(2).max(1)).max(3);
        };
        let te = evaluator.evaluate(&truncated).expect("evaluation");

        println!(
            "{k:>5} {:>14.1} {:>12.1} ({:>4}) {:>14.1} ({:>4})",
            fe.delta,
            re.delta,
            repaired.len(),
            te.delta,
            truncated.len()
        );
    }
    println!("\nforesight meets the budget exactly; naive repair overruns it, and");
    println!("truncating the naive plan back to budget shows the foresight benefit.");
}
