//! Emits `BENCH_delta.json`: wall-clock timings of the δ quadrature
//! (Eqn. 2) on the row-sharded parallel engine, serial vs 2/4/auto
//! threads, plus the raster-vs-walk kernel comparison and the
//! persistent-pool dispatch overhead.
//!
//! The workload is the hot path the engine was built for: δ between an
//! analytic reference and a Delaunay [`ReconstructedSurface`] (every
//! grid point costs a triangle walk — or, on the raster kernel, one
//! incremental scanline fill per alive triangle) on a 201×201 grid
//! with 150 nodes. Results are checked bit-identical across thread
//! counts before any timing is reported, and the two kernels are
//! cross-checked to within 1e-9.
//!
//! Besides the current timings the file carries a `trajectory` array:
//! one point per recorded run (kernel, threads, git SHA, median),
//! appended on every invocation, so the performance history of the
//! repository stays reviewable in-tree. Points written by older
//! schema versions are salvaged field-by-field.
//!
//! The `incremental` section times the tile-cached [`DeltaEvaluator`]
//! against full recompute on a sequence of single-node moves, and
//! records the cps-obs tile counters that prove only dirtied tiles
//! were re-integrated.
//!
//! Run with: `cargo run --release -p cps-bench --bin bench_delta_json`
//! (writes `BENCH_delta.json` in the current directory; pass a path to
//! override and an optional label for the trajectory points).

use std::env;
use std::fs;
use std::time::Instant;

use cps_core::osd::baselines;
use cps_core::{DeltaEvaluator, EvalOptions};
use cps_field::delta::surface_delta_rms_with;
use cps_field::par::map_rows;
use cps_field::{delta, Field, Kernel, Parallelism, PeaksField, ReconstructedSurface};
use cps_field::{GaussianBlob, Static};
use cps_geometry::{GridSpec, Point2, Rect};
use cps_sim::sweep::{run_sweep, SweepJob, SweepSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use serde_json::Value;

const NODES: usize = 150;
const RESOLUTION: usize = 201;
const WARMUP: usize = 3;
const REPS: usize = 15;

#[derive(Serialize, Deserialize)]
struct ResultEntry {
    mode: String,
    threads: usize,
    min_ns: u64,
    median_ns: u64,
    speedup_vs_serial: f64,
}

#[derive(Serialize, Deserialize)]
struct IncrementalEntry {
    edits: usize,
    uncached_total_ns: u64,
    cached_total_ns: u64,
    speedup: f64,
    max_rel_error: f64,
    tile_cache_hits: u64,
    tile_cache_misses: u64,
    tile_invalidations: u64,
    tiles_total: u64,
}

#[derive(Serialize, Deserialize)]
struct KernelEntry {
    resolution: usize,
    walk_median_ns: u64,
    raster_median_ns: u64,
    speedup: f64,
    rel_diff: f64,
}

#[derive(Serialize, Deserialize)]
struct PoolEntry {
    threads: usize,
    rows: usize,
    calls: usize,
    spawn_median_ns: u64,
    pooled_median_ns: u64,
    speedup: f64,
}

#[derive(Serialize, Deserialize)]
struct SweepWorkerEntry {
    workers: usize,
    total_ns: u64,
    jobs_per_sec: f64,
    speedup_vs_serial: f64,
}

#[derive(Serialize, Deserialize)]
struct SweepEntry {
    jobs: usize,
    minutes: u64,
    bit_identical_across_workers: bool,
    bit_identical_after_resume: bool,
    workers: Vec<SweepWorkerEntry>,
}

#[derive(Serialize, Deserialize)]
struct TrajectoryPoint {
    label: String,
    git_sha: String,
    kernel: String,
    threads: usize,
    delta: f64,
    median_ns: u64,
    available_cores: usize,
}

#[derive(Serialize, Deserialize)]
struct BenchDoc {
    benchmark: String,
    workload: String,
    grid: Vec<usize>,
    available_cores: usize,
    warmup: usize,
    repetitions: usize,
    delta: f64,
    bit_identical_across_policies: bool,
    results: Vec<ResultEntry>,
    raster_vs_walk: Vec<KernelEntry>,
    pool: PoolEntry,
    incremental: IncrementalEntry,
    sweep: SweepEntry,
    trajectory: Vec<TrajectoryPoint>,
}

/// The repository's short commit SHA, or "unknown" outside a git
/// checkout.
fn git_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Salvages the trajectory from a previous `BENCH_delta.json`, if one
/// exists. Points are decoded field-by-field so entries written by
/// older schema versions (no kernel/threads/git_sha) survive: they
/// were serial walk runs, and read back as such.
fn previous_trajectory(path: &str) -> Vec<TrajectoryPoint> {
    let Ok(text) = fs::read_to_string(path) else {
        return Vec::new();
    };
    let Ok(doc) = serde_json::from_str::<Value>(&text) else {
        return Vec::new();
    };
    let Some(points) = doc.get("trajectory").and_then(|v| v.as_array()) else {
        return Vec::new();
    };
    points
        .iter()
        .filter_map(|p| {
            let s = |k: &str| p.get(k).and_then(|v| v.as_str()).map(str::to_string);
            let u = |k: &str| p.get(k).and_then(|v| v.as_u64());
            Some(TrajectoryPoint {
                label: s("label")?,
                git_sha: s("git_sha").unwrap_or_else(|| "unknown".to_string()),
                kernel: s("kernel").unwrap_or_else(|| "walk".to_string()),
                threads: u("threads").unwrap_or(1) as usize,
                delta: p.get("delta").and_then(|v| v.as_f64())?,
                median_ns: u("median_ns").or_else(|| u("serial_median_ns"))?,
                available_cores: u("available_cores").unwrap_or(1) as usize,
            })
        })
        .collect()
}

/// Builds the standard workload surface at `resolution`.
fn workload(resolution: usize) -> (PeaksField, GridSpec, ReconstructedSurface) {
    let region = Rect::square(100.0).expect("square region");
    let grid = GridSpec::new(region, resolution, resolution).expect("grid");
    let reference = PeaksField::new(region, 8.0);
    let mut rng = StdRng::seed_from_u64(5);
    let nodes = baselines::random_deployment(region, NODES, &mut rng);
    let samples: Vec<f64> = nodes.iter().map(|&p| reference.value(p)).collect();
    let rebuilt =
        ReconstructedSurface::from_samples(region, &nodes, &samples).expect("reconstruction");
    (reference, grid, rebuilt)
}

fn median_ns(reps: usize, mut f: impl FnMut()) -> u64 {
    let mut runs: Vec<u64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos() as u64
        })
        .collect();
    runs.sort_unstable();
    runs[reps / 2]
}

fn main() {
    let out_path = env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_delta.json".into());
    let label = env::args().nth(2).unwrap_or_else(|| "local".into());

    let (reference, grid, rebuilt) = workload(RESOLUTION);

    let policies: [(&'static str, Parallelism); 4] = [
        ("serial", Parallelism::serial()),
        ("2-threads", Parallelism::fixed(2)),
        ("4-threads", Parallelism::fixed(4)),
        ("auto", Parallelism::auto()),
    ];

    // Determinism gate: every policy must reproduce the serial bits,
    // on both kernels independently.
    let expected = delta::volume_difference(&reference, &rebuilt, &grid);
    let expected_raster = surface_delta_rms_with(
        &reference,
        &rebuilt,
        &grid,
        Parallelism::serial(),
        Kernel::Raster,
    );
    for (label, par) in policies {
        let got = delta::volume_difference_with(&reference, &rebuilt, &grid, par);
        assert_eq!(
            expected.to_bits(),
            got.to_bits(),
            "{label} diverged from serial"
        );
        let got = surface_delta_rms_with(&reference, &rebuilt, &grid, par, Kernel::Raster);
        assert_eq!(
            expected_raster.delta.to_bits(),
            got.delta.to_bits(),
            "raster {label} diverged from serial"
        );
    }
    assert!(
        (expected_raster.delta - expected).abs() <= 1e-9 * expected.abs().max(1.0),
        "kernels disagree: raster {} walk {expected}",
        expected_raster.delta
    );

    let timings: Vec<(&'static str, usize, u64, u64)> = policies
        .iter()
        .map(|&(label, par)| {
            for _ in 0..WARMUP {
                delta::volume_difference_with(&reference, &rebuilt, &grid, par);
            }
            let mut runs: Vec<u64> = (0..REPS)
                .map(|_| {
                    let start = Instant::now();
                    delta::volume_difference_with(&reference, &rebuilt, &grid, par);
                    start.elapsed().as_nanos() as u64
                })
                .collect();
            runs.sort_unstable();
            (label, par.threads(), runs[0], runs[REPS / 2])
        })
        .collect();

    let serial_median = timings[0].3;
    let results: Vec<ResultEntry> = timings
        .iter()
        .map(|&(mode, threads, min_ns, median_ns)| ResultEntry {
            mode: mode.to_string(),
            threads,
            min_ns,
            median_ns,
            speedup_vs_serial: serial_median as f64 / median_ns as f64,
        })
        .collect();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let raster_vs_walk = bench_kernels();
    let pool = bench_pool();
    let incremental = bench_incremental(&reference, &grid, Rect::square(100.0).unwrap());
    let sweep = bench_sweep();

    let sha = git_sha();
    let mut trajectory = previous_trajectory(&out_path);
    trajectory.push(TrajectoryPoint {
        label: label.clone(),
        git_sha: sha.clone(),
        kernel: "walk".to_string(),
        threads: 1,
        delta: expected,
        median_ns: serial_median,
        available_cores: cores,
    });
    let raster_201 = raster_vs_walk
        .iter()
        .find(|e| e.resolution == RESOLUTION)
        .expect("201 entry");
    trajectory.push(TrajectoryPoint {
        label,
        git_sha: sha,
        kernel: "raster".to_string(),
        threads: 1,
        delta: expected_raster.delta,
        median_ns: raster_201.raster_median_ns,
        available_cores: cores,
    });

    let doc = BenchDoc {
        benchmark: "volume_difference (Eqn. 2)".to_string(),
        workload: format!("PeaksField vs ReconstructedSurface({NODES} nodes)"),
        grid: vec![RESOLUTION, RESOLUTION],
        available_cores: cores,
        warmup: WARMUP,
        repetitions: REPS,
        delta: expected,
        bit_identical_across_policies: true,
        results,
        raster_vs_walk,
        pool,
        incremental,
        sweep,
        trajectory,
    };

    let json = serde_json::to_string_pretty(&doc).expect("serialize BENCH_delta.json");
    fs::write(&out_path, json).expect("write BENCH_delta.json");
    println!(
        "wrote {out_path} ({} trajectory points)",
        doc.trajectory.len()
    );
    for t in &doc.results {
        println!(
            "  {:>10}: median {:>8.2} ms (x{:.2} vs serial)",
            t.mode,
            t.median_ns as f64 / 1e6,
            t.speedup_vs_serial
        );
    }
    for k in &doc.raster_vs_walk {
        println!(
            "  {0}x{0}: walk {1:>8.2} ms, raster {2:>8.2} ms (x{3:.2}, rel diff {4:.2e})",
            k.resolution,
            k.walk_median_ns as f64 / 1e6,
            k.raster_median_ns as f64 / 1e6,
            k.speedup,
            k.rel_diff,
        );
    }
    println!(
        "  pool dispatch ({} calls x {} rows, {} threads): spawn {:.2} ms, pooled {:.2} ms (x{:.2})",
        doc.pool.calls,
        doc.pool.rows,
        doc.pool.threads,
        doc.pool.spawn_median_ns as f64 / 1e6,
        doc.pool.pooled_median_ns as f64 / 1e6,
        doc.pool.speedup,
    );
    let inc = &doc.incremental;
    println!(
        "  incremental ({} moves): uncached {:.2} ms, cached {:.2} ms (x{:.2}); \
         tiles refreshed {} / reused {} of {} total",
        inc.edits,
        inc.uncached_total_ns as f64 / 1e6,
        inc.cached_total_ns as f64 / 1e6,
        inc.speedup,
        inc.tile_cache_misses,
        inc.tile_cache_hits,
        inc.tiles_total,
    );
    for w in &doc.sweep.workers {
        println!(
            "  sweep ({} jobs, {} workers): {:.2} ms, {:.2} jobs/s (x{:.2} vs serial)",
            doc.sweep.jobs,
            w.workers,
            w.total_ns as f64 / 1e6,
            w.jobs_per_sec,
            w.speedup_vs_serial,
        );
    }
}

/// Times a 16-job batch sweep at 1/2/8 workers, gating the timings on
/// the engine's two determinism guarantees: aggregate JSON byte-equal
/// across worker counts, and byte-equal again after an interrupt
/// (simulated by a half-full manifest) plus resume.
fn bench_sweep() -> SweepEntry {
    let spec = SweepSpec {
        seeds: vec![1, 2, 3, 4],
        k: vec![9, 16],
        comm_radius: vec![10.0, 12.0],
        minutes: 5,
        sample_every: 5,
        resolution: 41,
        ..SweepSpec::default()
    };
    let field_for = |job: &SweepJob| {
        Static::new(GaussianBlob::isotropic(
            Point2::new(40.0 + job.seed as f64 * 9.0, 70.0),
            45.0,
            18.0,
        ))
    };
    let jobs = spec.jobs().len();

    // One warm pass (spawns the pool workers) doubles as the reference
    // for the bit-identity gates.
    let reference = run_sweep(&spec, 2, None, false, field_for).expect("sweep");
    let reference_json = reference.to_json().expect("sweep json");

    let mut bit_identical_across_workers = true;
    let timings: Vec<(usize, u64)> = [1usize, 2, 8]
        .iter()
        .map(|&w| {
            let start = Instant::now();
            let results = run_sweep(&spec, w, None, false, field_for).expect("sweep");
            let total_ns = start.elapsed().as_nanos() as u64;
            bit_identical_across_workers &=
                results.to_json().expect("sweep json") == reference_json;
            (w, total_ns)
        })
        .collect();
    let serial_ns = timings[0].1;
    let workers: Vec<SweepWorkerEntry> = timings
        .into_iter()
        .map(|(w, total_ns)| SweepWorkerEntry {
            workers: w,
            total_ns,
            jobs_per_sec: jobs as f64 / (total_ns as f64 / 1e9),
            speedup_vs_serial: serial_ns as f64 / total_ns as f64,
        })
        .collect();

    // Interrupt + resume gate: a manifest holding half the outcomes
    // must replay into byte-identical output.
    let dir = env::temp_dir().join(format!("cps_bench_sweep_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("bench temp dir");
    let manifest_path = dir.join("sweep.manifest");
    let digest = spec.digest().expect("finite spec digests");
    let expanded = spec.jobs();
    let mut partial = cps_sim::SweepManifest::create(&manifest_path, digest).expect("manifest");
    for i in (0..jobs).step_by(2) {
        partial
            .record(
                i as u64,
                expanded[i].digest(digest),
                reference.outcomes[i].clone(),
            )
            .expect("manifest record");
    }
    let resumed =
        run_sweep(&spec, 8, Some(&manifest_path), true, field_for).expect("resumed sweep");
    let bit_identical_after_resume = resumed.to_json().expect("sweep json") == reference_json;
    let _ = fs::remove_dir_all(&dir);

    SweepEntry {
        jobs,
        minutes: spec.minutes,
        bit_identical_across_workers,
        bit_identical_after_resume,
        workers,
    }
}

/// Times the full δ+RMS evaluation — the quantity the evaluator
/// actually computes — on both kernels across grid resolutions. The
/// walk pays one point-location walk per grid cell twice (δ sweep and
/// RMS sweep); the raster kernel fuses both into one scanline pass.
fn bench_kernels() -> Vec<KernelEntry> {
    [101usize, 201, 401]
        .iter()
        .map(|&resolution| {
            // The 401² walk is expensive; fewer reps keep the runtime sane.
            let reps = if resolution >= 401 { 5 } else { REPS };
            let (reference, grid, rebuilt) = workload(resolution);
            let serial = Parallelism::serial();
            let walk = surface_delta_rms_with(&reference, &rebuilt, &grid, serial, Kernel::Walk);
            let raster =
                surface_delta_rms_with(&reference, &rebuilt, &grid, serial, Kernel::Raster);
            let rel_diff = (raster.delta - walk.delta).abs() / walk.delta.abs().max(1.0);
            assert!(rel_diff <= 1e-9, "kernels diverged at {resolution}");
            for _ in 0..WARMUP {
                surface_delta_rms_with(&reference, &rebuilt, &grid, serial, Kernel::Raster);
            }
            let raster_median_ns = median_ns(reps, || {
                surface_delta_rms_with(&reference, &rebuilt, &grid, serial, Kernel::Raster);
            });
            for _ in 0..WARMUP.min(1) {
                surface_delta_rms_with(&reference, &rebuilt, &grid, serial, Kernel::Walk);
            }
            let walk_median_ns = median_ns(reps, || {
                surface_delta_rms_with(&reference, &rebuilt, &grid, serial, Kernel::Walk);
            });
            KernelEntry {
                resolution,
                walk_median_ns,
                raster_median_ns,
                speedup: walk_median_ns as f64 / raster_median_ns as f64,
                rel_diff,
            }
        })
        .collect()
}

/// Times many small parallel row sweeps through the persistent pool
/// (what `map_rows` does now) against an inline per-call
/// `thread::scope` dispatch of the identical chunked workload (what it
/// did before). The work per call is deliberately small so the
/// dispatch overhead — thread creation vs queue handoff — dominates.
fn bench_pool() -> PoolEntry {
    const ROWS: usize = 128;
    const CALLS: usize = 50;
    let row_work = |j: usize| -> f64 {
        let mut acc = 0.0;
        for i in 0..ROWS {
            acc += ((i * 31 + j * 17) as f64).sqrt();
        }
        acc
    };
    let par = Parallelism::fixed(2);

    let pooled = || {
        let mut total = 0.0;
        for _ in 0..CALLS {
            total += map_rows(ROWS, par, row_work).iter().sum::<f64>();
        }
        total
    };
    let spawned = || {
        let mut total = 0.0;
        for _ in 0..CALLS {
            // The pre-pool dispatch: fresh scoped threads every call,
            // same halved row deal, same fold order.
            let mut rows: Vec<f64> = vec![0.0; ROWS];
            let (lo, hi) = rows.split_at_mut(ROWS / 2);
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    for (j, slot) in hi.iter_mut().enumerate() {
                        *slot = row_work(ROWS / 2 + j);
                    }
                });
                for (j, slot) in lo.iter_mut().enumerate() {
                    *slot = row_work(j);
                }
            });
            total += rows.iter().sum::<f64>();
        }
        total
    };

    // Warm both paths (the pool spawns its workers on the first call).
    let a = pooled();
    let b = spawned();
    assert!(
        (a - b).abs() <= 1e-6 * a.abs().max(1.0),
        "dispatch paths disagree"
    );

    let pooled_median_ns = median_ns(REPS, || {
        pooled();
    });
    let spawn_median_ns = median_ns(REPS, || {
        spawned();
    });
    PoolEntry {
        threads: 2,
        rows: ROWS,
        calls: CALLS,
        spawn_median_ns,
        pooled_median_ns,
        speedup: spawn_median_ns as f64 / pooled_median_ns as f64,
    }
}

/// Times a sequence of single-node moves through the tile-cached
/// evaluator vs full recompute, cross-checking every δ and collecting
/// the tile counters that show how much work the cache skipped.
fn bench_incremental(reference: &PeaksField, grid: &GridSpec, region: Rect) -> IncrementalEntry {
    const EDITS: usize = 20;
    let mut rng = StdRng::seed_from_u64(7);
    let base = baselines::random_deployment(region, 100, &mut rng);

    // Each step nudges one node (round-robin) by a fixed offset — the
    // CMA regime the cache is built for.
    let mut deployments = vec![base.clone()];
    let mut current = base;
    for i in 0..EDITS {
        let n = current.len();
        let node = i % n;
        current[node].x = (current[node].x + 1.7).min(region.max().x - 0.5);
        current[node].y = (current[node].y + 0.9).min(region.max().y - 0.5);
        deployments.push(current.clone());
    }

    let serial = EvalOptions::new().parallelism(Parallelism::serial());
    let mut uncached = DeltaEvaluator::new(reference, grid, 10.0).options(serial);
    let mut cached = DeltaEvaluator::new(reference, grid, 10.0).options(serial.cached(true));

    // Prime both outside the timers: the cache pays full price on its
    // first refresh, and the comparison is about steady-state edits.
    let mut reference_deltas = vec![uncached.evaluate(&deployments[0]).expect("prime").delta];
    cached.evaluate(&deployments[0]).expect("prime");

    let start = Instant::now();
    for d in &deployments[1..] {
        reference_deltas.push(uncached.evaluate(d).expect("uncached eval").delta);
    }
    let uncached_total_ns = start.elapsed().as_nanos() as u64;

    cps_obs::reset();
    cps_obs::enable();
    let start = Instant::now();
    let mut max_rel_error: f64 = 0.0;
    for (d, expected) in deployments[1..].iter().zip(&reference_deltas[1..]) {
        let got = cached.evaluate(d).expect("cached eval").delta;
        let rel = (got - expected).abs() / expected.abs().max(1.0);
        assert!(rel <= 1e-9, "cached delta diverged: {got} vs {expected}");
        max_rel_error = max_rel_error.max(rel);
    }
    let cached_total_ns = start.elapsed().as_nanos() as u64;
    let metrics = cps_obs::snapshot();
    cps_obs::disable();

    let hits = metrics.counter(cps_obs::Counter::TileCacheHits);
    let misses = metrics.counter(cps_obs::Counter::TileCacheMisses);
    assert!(
        hits > misses,
        "the cache must reuse most tiles on single-node moves ({hits} hits, {misses} misses)"
    );
    IncrementalEntry {
        edits: EDITS,
        uncached_total_ns,
        cached_total_ns,
        speedup: uncached_total_ns as f64 / cached_total_ns as f64,
        max_rel_error,
        tile_cache_hits: hits,
        tile_cache_misses: misses,
        tile_invalidations: metrics.counter(cps_obs::Counter::TileInvalidations),
        tiles_total: hits + misses,
    }
}
