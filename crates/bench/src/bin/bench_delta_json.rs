//! Emits `BENCH_delta.json`: wall-clock timings of the δ quadrature
//! (Eqn. 2) on the row-sharded parallel engine, serial vs 2/4/auto
//! threads.
//!
//! The workload is the hot path the engine was built for: δ between an
//! analytic reference and a Delaunay [`ReconstructedSurface`] (every
//! grid point costs a triangle walk) on a 201×201 grid with 150 nodes.
//! Results are checked bit-identical across thread counts before any
//! timing is reported.
//!
//! Run with: `cargo run --release -p cps-bench --bin bench_delta_json`
//! (writes `BENCH_delta.json` in the current directory; pass a path to
//! override).

use std::env;
use std::fmt::Write as _;
use std::fs;
use std::time::Instant;

use cps_core::osd::baselines;
use cps_field::{delta, Field, Parallelism, PeaksField, ReconstructedSurface};
use cps_geometry::{GridSpec, Rect};
use rand::rngs::StdRng;
use rand::SeedableRng;

const NODES: usize = 150;
const RESOLUTION: usize = 201;
const WARMUP: usize = 3;
const REPS: usize = 15;

struct Timing {
    label: &'static str,
    threads: usize,
    min_ns: u128,
    median_ns: u128,
}

fn main() {
    let out_path = env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_delta.json".into());

    let region = Rect::square(100.0).expect("square region");
    let grid = GridSpec::new(region, RESOLUTION, RESOLUTION).expect("grid");
    let reference = PeaksField::new(region, 8.0);
    let mut rng = StdRng::seed_from_u64(5);
    let nodes = baselines::random_deployment(region, NODES, &mut rng);
    let samples: Vec<f64> = nodes.iter().map(|&p| reference.value(p)).collect();
    let rebuilt =
        ReconstructedSurface::from_samples(region, &nodes, &samples).expect("reconstruction");

    let policies: [(&'static str, Parallelism); 4] = [
        ("serial", Parallelism::serial()),
        ("2-threads", Parallelism::fixed(2)),
        ("4-threads", Parallelism::fixed(4)),
        ("auto", Parallelism::auto()),
    ];

    // Determinism gate: every policy must reproduce the serial bits.
    let expected = delta::volume_difference(&reference, &rebuilt, &grid);
    for (label, par) in policies {
        let got = delta::volume_difference_with(&reference, &rebuilt, &grid, par);
        assert_eq!(
            expected.to_bits(),
            got.to_bits(),
            "{label} diverged from serial"
        );
    }

    let timings: Vec<Timing> = policies
        .iter()
        .map(|&(label, par)| {
            for _ in 0..WARMUP {
                delta::volume_difference_with(&reference, &rebuilt, &grid, par);
            }
            let mut runs: Vec<u128> = (0..REPS)
                .map(|_| {
                    let start = Instant::now();
                    delta::volume_difference_with(&reference, &rebuilt, &grid, par);
                    start.elapsed().as_nanos()
                })
                .collect();
            runs.sort_unstable();
            Timing {
                label,
                threads: par.threads(),
                min_ns: runs[0],
                median_ns: runs[REPS / 2],
            }
        })
        .collect();

    let serial_median = timings[0].median_ns;
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"benchmark\": \"volume_difference (Eqn. 2)\",");
    let _ = writeln!(
        json,
        "  \"workload\": \"PeaksField vs ReconstructedSurface({NODES} nodes)\","
    );
    let _ = writeln!(json, "  \"grid\": [{RESOLUTION}, {RESOLUTION}],");
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let _ = writeln!(json, "  \"available_cores\": {cores},");
    let _ = writeln!(json, "  \"warmup\": {WARMUP},");
    let _ = writeln!(json, "  \"repetitions\": {REPS},");
    let _ = writeln!(json, "  \"delta\": {expected},");
    let _ = writeln!(json, "  \"bit_identical_across_policies\": true,");
    json.push_str("  \"results\": [\n");
    for (i, t) in timings.iter().enumerate() {
        let speedup = serial_median as f64 / t.median_ns as f64;
        let _ = write!(
            json,
            "    {{\"mode\": \"{}\", \"threads\": {}, \"min_ns\": {}, \"median_ns\": {}, \"speedup_vs_serial\": {:.2}}}",
            t.label, t.threads, t.min_ns, t.median_ns, speedup
        );
        json.push_str(if i + 1 < timings.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    fs::write(&out_path, &json).expect("write BENCH_delta.json");
    println!("wrote {out_path}");
    for t in &timings {
        println!(
            "  {:>10}: median {:>8.2} ms (x{:.2} vs serial)",
            t.label,
            t.median_ns as f64 / 1e6,
            serial_median as f64 / t.median_ns as f64
        );
    }
}
