//! Emits `BENCH_delta.json`: wall-clock timings of the δ quadrature
//! (Eqn. 2) on the row-sharded parallel engine, serial vs 2/4/auto
//! threads.
//!
//! The workload is the hot path the engine was built for: δ between an
//! analytic reference and a Delaunay [`ReconstructedSurface`] (every
//! grid point costs a triangle walk) on a 201×201 grid with 150 nodes.
//! Results are checked bit-identical across thread counts before any
//! timing is reported.
//!
//! Besides the current timings the file carries a `trajectory` array:
//! one point per recorded run, appended on every invocation, so the
//! performance history of the repository stays reviewable in-tree.
//!
//! The `incremental` section times the tile-cached [`DeltaEvaluator`]
//! against full recompute on a sequence of single-node moves, and
//! records the cps-obs tile counters that prove only dirtied tiles
//! were re-integrated.
//!
//! Run with: `cargo run --release -p cps-bench --bin bench_delta_json`
//! (writes `BENCH_delta.json` in the current directory; pass a path to
//! override and an optional label for the trajectory point).

use std::env;
use std::fs;
use std::time::Instant;

use cps_core::osd::baselines;
use cps_core::{DeltaEvaluator, EvalOptions};
use cps_field::{delta, Field, Parallelism, PeaksField, ReconstructedSurface};
use cps_geometry::{GridSpec, Rect};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

const NODES: usize = 150;
const RESOLUTION: usize = 201;
const WARMUP: usize = 3;
const REPS: usize = 15;

#[derive(Serialize, Deserialize)]
struct ResultEntry {
    mode: String,
    threads: usize,
    min_ns: u64,
    median_ns: u64,
    speedup_vs_serial: f64,
}

#[derive(Serialize, Deserialize)]
struct IncrementalEntry {
    edits: usize,
    uncached_total_ns: u64,
    cached_total_ns: u64,
    speedup: f64,
    max_rel_error: f64,
    tile_cache_hits: u64,
    tile_cache_misses: u64,
    tile_invalidations: u64,
    tiles_total: u64,
}

#[derive(Serialize, Deserialize)]
struct TrajectoryPoint {
    label: String,
    delta: f64,
    serial_median_ns: u64,
    auto_median_ns: u64,
    available_cores: usize,
}

#[derive(Serialize, Deserialize)]
struct BenchDoc {
    benchmark: String,
    workload: String,
    grid: Vec<usize>,
    available_cores: usize,
    warmup: usize,
    repetitions: usize,
    delta: f64,
    bit_identical_across_policies: bool,
    results: Vec<ResultEntry>,
    incremental: IncrementalEntry,
    trajectory: Vec<TrajectoryPoint>,
}

/// Salvages the trajectory from a previous `BENCH_delta.json`, if one
/// exists (older files without the array contribute nothing).
fn previous_trajectory(path: &str) -> Vec<TrajectoryPoint> {
    let Ok(text) = fs::read_to_string(path) else {
        return Vec::new();
    };
    let Ok(doc) = serde_json::from_str::<serde_json::Value>(&text) else {
        return Vec::new();
    };
    doc.get("trajectory")
        .and_then(|v| Vec::<TrajectoryPoint>::deserialize(v).ok())
        .unwrap_or_default()
}

fn main() {
    let out_path = env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_delta.json".into());
    let label = env::args().nth(2).unwrap_or_else(|| "local".into());

    let region = Rect::square(100.0).expect("square region");
    let grid = GridSpec::new(region, RESOLUTION, RESOLUTION).expect("grid");
    let reference = PeaksField::new(region, 8.0);
    let mut rng = StdRng::seed_from_u64(5);
    let nodes = baselines::random_deployment(region, NODES, &mut rng);
    let samples: Vec<f64> = nodes.iter().map(|&p| reference.value(p)).collect();
    let rebuilt =
        ReconstructedSurface::from_samples(region, &nodes, &samples).expect("reconstruction");

    let policies: [(&'static str, Parallelism); 4] = [
        ("serial", Parallelism::serial()),
        ("2-threads", Parallelism::fixed(2)),
        ("4-threads", Parallelism::fixed(4)),
        ("auto", Parallelism::auto()),
    ];

    // Determinism gate: every policy must reproduce the serial bits.
    let expected = delta::volume_difference(&reference, &rebuilt, &grid);
    for (label, par) in policies {
        let got = delta::volume_difference_with(&reference, &rebuilt, &grid, par);
        assert_eq!(
            expected.to_bits(),
            got.to_bits(),
            "{label} diverged from serial"
        );
    }

    let timings: Vec<(&'static str, usize, u64, u64)> = policies
        .iter()
        .map(|&(label, par)| {
            for _ in 0..WARMUP {
                delta::volume_difference_with(&reference, &rebuilt, &grid, par);
            }
            let mut runs: Vec<u64> = (0..REPS)
                .map(|_| {
                    let start = Instant::now();
                    delta::volume_difference_with(&reference, &rebuilt, &grid, par);
                    start.elapsed().as_nanos() as u64
                })
                .collect();
            runs.sort_unstable();
            (label, par.threads(), runs[0], runs[REPS / 2])
        })
        .collect();

    let serial_median = timings[0].3;
    let auto_median = timings[3].3;
    let results: Vec<ResultEntry> = timings
        .iter()
        .map(|&(mode, threads, min_ns, median_ns)| ResultEntry {
            mode: mode.to_string(),
            threads,
            min_ns,
            median_ns,
            speedup_vs_serial: serial_median as f64 / median_ns as f64,
        })
        .collect();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let incremental = bench_incremental(&reference, &grid, region);

    let mut trajectory = previous_trajectory(&out_path);
    trajectory.push(TrajectoryPoint {
        label,
        delta: expected,
        serial_median_ns: serial_median,
        auto_median_ns: auto_median,
        available_cores: cores,
    });

    let doc = BenchDoc {
        benchmark: "volume_difference (Eqn. 2)".to_string(),
        workload: format!("PeaksField vs ReconstructedSurface({NODES} nodes)"),
        grid: vec![RESOLUTION, RESOLUTION],
        available_cores: cores,
        warmup: WARMUP,
        repetitions: REPS,
        delta: expected,
        bit_identical_across_policies: true,
        results,
        incremental,
        trajectory,
    };

    let json = serde_json::to_string_pretty(&doc).expect("serialize BENCH_delta.json");
    fs::write(&out_path, json).expect("write BENCH_delta.json");
    println!(
        "wrote {out_path} ({} trajectory points)",
        doc.trajectory.len()
    );
    for t in &doc.results {
        println!(
            "  {:>10}: median {:>8.2} ms (x{:.2} vs serial)",
            t.mode,
            t.median_ns as f64 / 1e6,
            t.speedup_vs_serial
        );
    }
    let inc = &doc.incremental;
    println!(
        "  incremental ({} moves): uncached {:.2} ms, cached {:.2} ms (x{:.2}); \
         tiles refreshed {} / reused {} of {} total",
        inc.edits,
        inc.uncached_total_ns as f64 / 1e6,
        inc.cached_total_ns as f64 / 1e6,
        inc.speedup,
        inc.tile_cache_misses,
        inc.tile_cache_hits,
        inc.tiles_total,
    );
}

/// Times a sequence of single-node moves through the tile-cached
/// evaluator vs full recompute, cross-checking every δ and collecting
/// the tile counters that show how much work the cache skipped.
fn bench_incremental(reference: &PeaksField, grid: &GridSpec, region: Rect) -> IncrementalEntry {
    const EDITS: usize = 20;
    let mut rng = StdRng::seed_from_u64(7);
    let base = baselines::random_deployment(region, 100, &mut rng);

    // Each step nudges one node (round-robin) by a fixed offset — the
    // CMA regime the cache is built for.
    let mut deployments = vec![base.clone()];
    let mut current = base;
    for i in 0..EDITS {
        let n = current.len();
        let node = i % n;
        current[node].x = (current[node].x + 1.7).min(region.max().x - 0.5);
        current[node].y = (current[node].y + 0.9).min(region.max().y - 0.5);
        deployments.push(current.clone());
    }

    let serial = EvalOptions::new().parallelism(Parallelism::serial());
    let mut uncached = DeltaEvaluator::new(reference, grid, 10.0).options(serial);
    let mut cached = DeltaEvaluator::new(reference, grid, 10.0).options(serial.cached(true));

    // Prime both outside the timers: the cache pays full price on its
    // first refresh, and the comparison is about steady-state edits.
    let mut reference_deltas = vec![uncached.evaluate(&deployments[0]).expect("prime").delta];
    cached.evaluate(&deployments[0]).expect("prime");

    let start = Instant::now();
    for d in &deployments[1..] {
        reference_deltas.push(uncached.evaluate(d).expect("uncached eval").delta);
    }
    let uncached_total_ns = start.elapsed().as_nanos() as u64;

    cps_obs::reset();
    cps_obs::enable();
    let start = Instant::now();
    let mut max_rel_error: f64 = 0.0;
    for (d, expected) in deployments[1..].iter().zip(&reference_deltas[1..]) {
        let got = cached.evaluate(d).expect("cached eval").delta;
        let rel = (got - expected).abs() / expected.abs().max(1.0);
        assert!(rel <= 1e-9, "cached delta diverged: {got} vs {expected}");
        max_rel_error = max_rel_error.max(rel);
    }
    let cached_total_ns = start.elapsed().as_nanos() as u64;
    let metrics = cps_obs::snapshot();
    cps_obs::disable();

    let hits = metrics.counter(cps_obs::Counter::TileCacheHits);
    let misses = metrics.counter(cps_obs::Counter::TileCacheMisses);
    assert!(
        hits > misses,
        "the cache must reuse most tiles on single-node moves ({hits} hits, {misses} misses)"
    );
    IncrementalEntry {
        edits: EDITS,
        uncached_total_ns,
        cached_total_ns,
        speedup: uncached_total_ns as f64 / cached_total_ns as f64,
        max_rel_error,
        tile_cache_hits: hits,
        tile_cache_misses: misses,
        tile_invalidations: metrics.counter(cps_obs::Counter::TileInvalidations),
        tiles_total: hits + misses,
    }
}
