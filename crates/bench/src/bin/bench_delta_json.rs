//! Emits `BENCH_delta.json`: wall-clock timings of the δ quadrature
//! (Eqn. 2) on the row-sharded parallel engine, serial vs 2/4/auto
//! threads.
//!
//! The workload is the hot path the engine was built for: δ between an
//! analytic reference and a Delaunay [`ReconstructedSurface`] (every
//! grid point costs a triangle walk) on a 201×201 grid with 150 nodes.
//! Results are checked bit-identical across thread counts before any
//! timing is reported.
//!
//! Besides the current timings the file carries a `trajectory` array:
//! one point per recorded run, appended on every invocation, so the
//! performance history of the repository stays reviewable in-tree.
//!
//! Run with: `cargo run --release -p cps-bench --bin bench_delta_json`
//! (writes `BENCH_delta.json` in the current directory; pass a path to
//! override and an optional label for the trajectory point).

use std::env;
use std::fs;
use std::time::Instant;

use cps_core::osd::baselines;
use cps_field::{delta, Field, Parallelism, PeaksField, ReconstructedSurface};
use cps_geometry::{GridSpec, Rect};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

const NODES: usize = 150;
const RESOLUTION: usize = 201;
const WARMUP: usize = 3;
const REPS: usize = 15;

#[derive(Serialize, Deserialize)]
struct ResultEntry {
    mode: String,
    threads: usize,
    min_ns: u64,
    median_ns: u64,
    speedup_vs_serial: f64,
}

#[derive(Serialize, Deserialize)]
struct TrajectoryPoint {
    label: String,
    delta: f64,
    serial_median_ns: u64,
    auto_median_ns: u64,
    available_cores: usize,
}

#[derive(Serialize, Deserialize)]
struct BenchDoc {
    benchmark: String,
    workload: String,
    grid: Vec<usize>,
    available_cores: usize,
    warmup: usize,
    repetitions: usize,
    delta: f64,
    bit_identical_across_policies: bool,
    results: Vec<ResultEntry>,
    trajectory: Vec<TrajectoryPoint>,
}

/// Salvages the trajectory from a previous `BENCH_delta.json`, if one
/// exists (older files without the array contribute nothing).
fn previous_trajectory(path: &str) -> Vec<TrajectoryPoint> {
    let Ok(text) = fs::read_to_string(path) else {
        return Vec::new();
    };
    let Ok(doc) = serde_json::from_str::<serde_json::Value>(&text) else {
        return Vec::new();
    };
    doc.get("trajectory")
        .and_then(|v| Vec::<TrajectoryPoint>::deserialize(v).ok())
        .unwrap_or_default()
}

fn main() {
    let out_path = env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_delta.json".into());
    let label = env::args().nth(2).unwrap_or_else(|| "local".into());

    let region = Rect::square(100.0).expect("square region");
    let grid = GridSpec::new(region, RESOLUTION, RESOLUTION).expect("grid");
    let reference = PeaksField::new(region, 8.0);
    let mut rng = StdRng::seed_from_u64(5);
    let nodes = baselines::random_deployment(region, NODES, &mut rng);
    let samples: Vec<f64> = nodes.iter().map(|&p| reference.value(p)).collect();
    let rebuilt =
        ReconstructedSurface::from_samples(region, &nodes, &samples).expect("reconstruction");

    let policies: [(&'static str, Parallelism); 4] = [
        ("serial", Parallelism::serial()),
        ("2-threads", Parallelism::fixed(2)),
        ("4-threads", Parallelism::fixed(4)),
        ("auto", Parallelism::auto()),
    ];

    // Determinism gate: every policy must reproduce the serial bits.
    let expected = delta::volume_difference(&reference, &rebuilt, &grid);
    for (label, par) in policies {
        let got = delta::volume_difference_with(&reference, &rebuilt, &grid, par);
        assert_eq!(
            expected.to_bits(),
            got.to_bits(),
            "{label} diverged from serial"
        );
    }

    let timings: Vec<(&'static str, usize, u64, u64)> = policies
        .iter()
        .map(|&(label, par)| {
            for _ in 0..WARMUP {
                delta::volume_difference_with(&reference, &rebuilt, &grid, par);
            }
            let mut runs: Vec<u64> = (0..REPS)
                .map(|_| {
                    let start = Instant::now();
                    delta::volume_difference_with(&reference, &rebuilt, &grid, par);
                    start.elapsed().as_nanos() as u64
                })
                .collect();
            runs.sort_unstable();
            (label, par.threads(), runs[0], runs[REPS / 2])
        })
        .collect();

    let serial_median = timings[0].3;
    let auto_median = timings[3].3;
    let results: Vec<ResultEntry> = timings
        .iter()
        .map(|&(mode, threads, min_ns, median_ns)| ResultEntry {
            mode: mode.to_string(),
            threads,
            min_ns,
            median_ns,
            speedup_vs_serial: serial_median as f64 / median_ns as f64,
        })
        .collect();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut trajectory = previous_trajectory(&out_path);
    trajectory.push(TrajectoryPoint {
        label,
        delta: expected,
        serial_median_ns: serial_median,
        auto_median_ns: auto_median,
        available_cores: cores,
    });

    let doc = BenchDoc {
        benchmark: "volume_difference (Eqn. 2)".to_string(),
        workload: format!("PeaksField vs ReconstructedSurface({NODES} nodes)"),
        grid: vec![RESOLUTION, RESOLUTION],
        available_cores: cores,
        warmup: WARMUP,
        repetitions: REPS,
        delta: expected,
        bit_identical_across_policies: true,
        results,
        trajectory,
    };

    let json = serde_json::to_string_pretty(&doc).expect("serialize BENCH_delta.json");
    fs::write(&out_path, json).expect("write BENCH_delta.json");
    println!(
        "wrote {out_path} ({} trajectory points)",
        doc.trajectory.len()
    );
    for t in &doc.results {
        println!(
            "  {:>10}: median {:>8.2} ms (x{:.2} vs serial)",
            t.mode,
            t.median_ns as f64 / 1e6,
            t.speedup_vs_serial
        );
    }
}
