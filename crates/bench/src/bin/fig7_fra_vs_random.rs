//! **Fig. 7** — δ versus node budget `k`: FRA against random
//! deployment.
//!
//! The paper sweeps `k` from 1 to 200 at `Rc = 10` and reports that FRA
//! clearly beats random deployment until both flatten once coverage
//! saturates (`k ≥ 125`). This harness sweeps the same range (from
//! `k = 4`, the smallest budget the reconstruction accepts on every
//! seed), averaging the random baseline over five seeds.

use cps_bench::{eval_grid, output_dir, paper_dataset, reference_light_surface, PAPER_RC};
use cps_core::osd::{baselines, FraBuilder};
use cps_core::DeltaEvaluator;
use cps_viz::write_xy_series;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fs::File;

const RANDOM_SEEDS: u64 = 5;

fn main() {
    let dataset = paper_dataset();
    let reference = reference_light_surface(&dataset);
    let grid = eval_grid();
    let region = grid.rect();

    println!("=== Fig. 7: delta vs k (FRA vs random), Rc = 10 ===");
    println!(
        "{:>5} {:>12} {:>12} {:>8} {:>7} {:>7}",
        "k", "fra", "random", "ratio", "refine", "relay"
    );

    let ks = [
        4usize, 5, 10, 15, 20, 25, 30, 40, 50, 60, 75, 90, 100, 110, 125, 150, 175, 200,
    ];
    let mut rows = Vec::new();
    for &k in &ks {
        let fra = FraBuilder::new(k, PAPER_RC)
            .grid(grid)
            .run(&reference)
            .expect("FRA succeeds");
        let mut evaluator = DeltaEvaluator::new(&reference, &grid, PAPER_RC);
        let fe = evaluator
            .evaluate(&fra.positions)
            .expect("FRA evaluation succeeds");

        let mut sum = 0.0;
        let mut count = 0usize;
        for seed in 0..RANDOM_SEEDS {
            let mut rng = StdRng::seed_from_u64(seed);
            let pts = baselines::random_deployment(region, k, &mut rng);
            if let Ok(e) = evaluator.evaluate(&pts) {
                sum += e.delta;
                count += 1;
            }
        }
        let random = sum / count as f64;
        println!(
            "{k:>5} {:>12.1} {random:>12.1} {:>8.2} {:>7} {:>7}",
            fe.delta,
            fe.delta / random,
            fra.refined,
            fra.relays
        );
        rows.push((k as f64, vec![fe.delta, random]));
    }

    let dir = output_dir();
    let file = File::create(dir.join("fig7_delta_vs_k.csv")).expect("create csv");
    write_xy_series(file, "k", &["fra", "random"], &rows).expect("write csv");
    println!("\nwrote {}/fig7_delta_vs_k.csv", dir.display());
    println!("expected shape: FRA well below random for mid k; both flatten at high k.");
}
