//! **Fig. 3** — uniform vs curvature-weighted distribution on the
//! `peaks` surface.
//!
//! The paper places 16 nodes with `Rc = 30` on Matlab's `peaks(100)`
//! surface and contrasts the uniform grid (Fig. 3(b)) with the
//! curvature-weighted distribution (Fig. 3(c)), arguing that CWD
//! "outlines the surface obviously more clear". This harness builds
//! both configurations — CWD via the global-information relaxation of
//! Eqns. 9–10 — and quantifies the claim with δ and total curvature.

use cps_core::osd::baselines::uniform_grid_deployment;
use cps_core::ostd::cwd::{cwd_metrics, relax_to_cwd};
use cps_core::ostd::gaussian_curvature_at;
use cps_core::{CpsConfig, DeltaEvaluator};
use cps_field::PeaksField;
use cps_geometry::{GridSpec, Rect};
use cps_viz::ascii_scatter;

fn main() {
    let region = Rect::square(100.0).unwrap();
    let field = PeaksField::new(region, 8.0);
    let grid = GridSpec::new(region, 101, 101).unwrap();
    let cfg = CpsConfig::builder()
        .comm_radius(30.0)
        .beta(1.0)
        .build()
        .unwrap();

    let uniform = uniform_grid_deployment(region, 16);
    let cwd =
        relax_to_cwd(&field, region, uniform.clone(), &cfg, 120, 2.0).expect("relaxation succeeds");

    let curvature = |pts: &[cps_geometry::Point2]| -> Vec<f64> {
        pts.iter()
            .map(|&p| gaussian_curvature_at(&field, p, 1.0).unwrap_or(0.0))
            .collect()
    };

    println!("=== Fig. 3: 16 nodes on peaks(100), Rc = 30 ===");
    for (name, pts) in [("uniform (Fig. 3b)", &uniform), ("CWD (Fig. 3c)", &cwd)] {
        let eval = DeltaEvaluator::new(&field, &grid, cfg.comm_radius())
            .evaluate(pts)
            .expect("evaluation succeeds");
        let curv = curvature(pts);
        let metrics = cwd_metrics(pts, &curv, cfg.comm_radius()).expect("metrics");
        println!("\n--- {name} ---");
        println!("{}", ascii_scatter(pts, region, 50, 20).expect("render"));
        println!(
            "delta = {:.1}   connected = {}   total |G| = {:.4}   balance residual mean/max = {:.3}/{:.3}",
            eval.delta,
            eval.connected,
            metrics.total_curvature,
            metrics.mean_balance_residual,
            metrics.max_balance_residual
        );
    }
    let mut evaluator = DeltaEvaluator::new(&field, &grid, cfg.comm_radius());
    let u = evaluator.evaluate(&uniform).unwrap();
    let c = evaluator.evaluate(&cwd).unwrap();
    let cu = curvature(&uniform).iter().map(|g| g.abs()).sum::<f64>();
    let cc = curvature(&cwd).iter().map(|g| g.abs()).sum::<f64>();
    println!(
        "\nCWD raises the Eqn. 10 objective (total |G|) by {:.1}x over uniform — the",
        cc / cu
    );
    println!("nodes outline the surface features, as in the paper's Fig. 3(c).");
    println!(
        "delta changes by {:+.1}% (16 point samples are too few for peaks either way).",
        100.0 * (c.delta - u.delta) / u.delta
    );
}
