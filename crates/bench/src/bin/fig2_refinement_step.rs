//! **Fig. 2** — one FRA refinement step, made visible.
//!
//! The paper's Fig. 2 illustrates a single refinement: the position
//! with the maximum local error is selected (node D inside Δ ABC) and
//! the Delaunay rules retriangulate. This demo executes exactly one
//! such step on a small instance and prints the triangulation before
//! and after, with the local-error field that drove the choice.

use cps_core::osd::LocalErrorGrid;
use cps_field::{Field, GaussianBlob};
use cps_geometry::{GridSpec, Point2, Rect, Triangulation};

fn print_triangles(dt: &Triangulation) {
    for (n, tri) in dt.triangles().iter().enumerate() {
        let g = dt.triangle_geometry(*tri);
        println!(
            "  triangle {n}: ({:.0},{:.0}) ({:.0},{:.0}) ({:.0},{:.0})  area {:.0}",
            g.a.x,
            g.a.y,
            g.b.x,
            g.b.y,
            g.c.x,
            g.c.y,
            g.area()
        );
    }
}

fn main() {
    let region = Rect::square(20.0).unwrap();
    let grid = GridSpec::new(region, 21, 21).unwrap();
    // A single off-centre bump: the obvious refinement target.
    let field = GaussianBlob::isotropic(Point2::new(13.0, 7.0), 10.0, 2.5);

    // Table 1 line 1: the region split into two triangles along the
    // diagonal (the four corners).
    let mut dt = Triangulation::new(region);
    let mut samples = Vec::new();
    for c in region.corners() {
        dt.insert(c).unwrap();
        samples.push(field.value(c));
    }

    println!("=== Fig. 2: one refinement step ===\n");
    println!("before (Fig. 2(b) — the two initial triangles):");
    print_triangles(&dt);

    let errors = LocalErrorGrid::new(grid, &field, &dt, &samples);
    let (pick, err) = errors.argmax(&[]).expect("grid has candidates");
    println!(
        "\nmax local error {err:.2} at ({:.0}, {:.0}) — the paper's node D",
        pick.x, pick.y
    );
    assert!(
        pick.distance(Point2::new(13.0, 7.0)) < 2.0,
        "the pick should land on the bump"
    );

    dt.insert(pick).unwrap();
    samples.push(field.value(pick));
    println!("\nafter (Fig. 2(d) — Delaunay retriangulation around D):");
    print_triangles(&dt);
    println!(
        "\ntriangle count 2 -> {}, still Delaunay: {}",
        dt.triangle_count(),
        dt.is_delaunay(1e-9)
    );

    // And the error under D collapsed.
    let mut after = LocalErrorGrid::new(grid, &field, &dt, &samples);
    after.mark_used(pick);
    let (next, next_err) = after.argmax(&[]).expect("candidates remain");
    println!(
        "next-best candidate: ({:.0}, {:.0}) with error {next_err:.2} (was {err:.2})",
        next.x, next.y
    );
}
