//! **Extension** — generality across environmental channels.
//!
//! The paper evaluates on light; its motivation also names temperature
//! and humidity. This ablation runs the Fig. 7 comparison (FRA vs
//! random at the paper's budget sweet spot) on all three channels of
//! the synthetic trace.

use cps_bench::{eval_grid, paper_dataset, paper_region, PAPER_RC};
use cps_core::osd::{baselines, FraBuilder};
use cps_core::DeltaEvaluator;
use cps_greenorbs::Channel;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let dataset = paper_dataset();
    let grid = eval_grid();
    let region = paper_region();
    let k = 80;

    println!("=== Extension: FRA vs random across channels (k = {k}, Rc = 10) ===");
    println!(
        "{:<14} {:>12} {:>12} {:>8} {:>10}",
        "channel", "fra", "random", "ratio", "connected"
    );
    for channel in Channel::ALL {
        let reference = dataset
            .region_field(region, channel, 10, 101)
            .expect("surface extraction succeeds");
        let fra = FraBuilder::new(k, PAPER_RC)
            .grid(grid)
            .run(&reference)
            .expect("FRA succeeds");
        let mut evaluator = DeltaEvaluator::new(&reference, &grid, PAPER_RC);
        let fe = evaluator
            .evaluate(&fra.positions)
            .expect("evaluation succeeds");
        let mut sum = 0.0;
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            let pts = baselines::random_deployment(region, k, &mut rng);
            sum += evaluator.evaluate(&pts).expect("evaluation succeeds").delta;
        }
        let random = sum / 5.0;
        println!(
            "{:<14} {:>12.1} {random:>12.1} {:>8.2} {:>10}",
            channel.to_string(),
            fe.delta,
            fe.delta / random,
            fe.connected
        );
    }
    println!("\nhumidity/temperature are smoother than light, so both methods do");
    println!("better in absolute terms — and FRA keeps its relative advantage.");
}
