//! **Ablation** — the repulsion weight β (Eqn. 18).
//!
//! The paper fixes β = 2 as "an empirical constance". This ablation
//! sweeps β on the Fig. 8-10 scenario (30 simulated minutes) and
//! reports the final δ and connectivity, showing the
//! attraction/repulsion balance the choice encodes: no repulsion (β=0)
//! lets nodes clump; too much repulsion freezes the uniform lattice.

use cps_bench::{eval_grid, paper_region, PAPER_RC};
use cps_core::CpsConfig;
use cps_greenorbs::{ForestConfig, LatentLightField};
use cps_sim::{scenario, CmaBuilder, DeltaTimeline, SimConfig};

fn main() {
    let region = paper_region();
    let field = LatentLightField::new(&ForestConfig::default());
    let grid = eval_grid();

    println!("=== Ablation: repulsion weight beta (30 min of CMA, 100 nodes) ===");
    println!(
        "{:>6} {:>12} {:>12} {:>10}",
        "beta", "delta_start", "delta_end", "connected"
    );
    for beta in [0.0, 0.5, 1.0, 2.0, 4.0, 8.0] {
        let cps = CpsConfig::builder()
            .beta(beta)
            .build()
            .expect("valid config");
        let config = SimConfig {
            cps,
            ..SimConfig::default()
        };
        let start = scenario::grid_start_spaced(region, 100, 0.93 * PAPER_RC).unwrap();
        let mut sim = CmaBuilder::new(region, start)
            .config(config)
            .start_time(600.0)
            .run(&field)
            .expect("sim constructs");
        let mut timeline = DeltaTimeline::new();
        let e0 = timeline.record(&sim, &grid).expect("evaluation");
        for _ in 0..30 {
            sim.step().expect("step succeeds");
        }
        let e1 = timeline.record(&sim, &grid).expect("evaluation");
        println!(
            "{beta:>6.1} {:>12.1} {:>12.1} {:>10}",
            e0.delta, e1.delta, e1.connected
        );
    }
}
