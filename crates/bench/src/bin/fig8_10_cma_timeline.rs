//! **Figs. 8, 9 & 10** — the CMA timeline: 100 mobile nodes exploring
//! the time-varying light field from 10:00 to 10:45.
//!
//! The paper starts 100 nodes on a connected grid (Fig. 8(a)), lets CMA
//! run at `v = 1 m/min`, shows the near-balanced configuration at 10:25
//! (Fig. 9(a)) and plots δ(t) decreasing until convergence around
//! 10:30 (Fig. 10), with the converged CMA within ~16% of FRA.
//!
//! Ground truth here is the *latent* light environment behind the
//! synthetic trace (see EXPERIMENTS.md for why the exploration
//! experiments are judged against the true field rather than against a
//! re-interpolation of the scattered trace).

use cps_bench::{eval_grid, output_dir, paper_region, PAPER_RC};
use cps_core::osd::FraBuilder;
use cps_core::DeltaEvaluator;
use cps_field::{GridField, TimeVaryingField};
use cps_greenorbs::{ForestConfig, LatentLightField};
use cps_sim::{scenario, CmaBuilder, DeltaTimeline, ExplorationTracker};
use cps_viz::{ascii_scatter, write_xy_series};
use std::fs::File;

fn main() {
    let region = paper_region();
    let field = LatentLightField::new(&ForestConfig::default());
    let grid = eval_grid();

    // Fig. 8(a): connected grid start (spacing 0.93·Rc keeps slack
    // inside the communication radius; see cps_sim::scenario docs).
    let start = scenario::grid_start_spaced(region, 100, 0.93 * PAPER_RC).unwrap();
    let mut sim = CmaBuilder::new(region, start)
        .start_time(600.0)
        .run(&field)
        .expect("simulation constructs");

    println!("=== Figs. 8-10: 100 mobile nodes, 10:00 -> 10:45 ===");
    println!("--- Fig. 8(a): initial grid at 10:00 ---");
    println!(
        "{}",
        ascii_scatter(&sim.positions(), region, 50, 20).expect("render")
    );

    let mut timeline = DeltaTimeline::new();
    let mut exploration = ExplorationTracker::new(grid);
    exploration.record(&sim);
    let e0 = timeline.record(&sim, &grid).expect("initial evaluation");
    println!(
        "10:00  delta = {:.1}  connected = {}",
        e0.delta, e0.connected
    );

    let mut rows = vec![(0.0, vec![e0.delta])];
    for minute in 1..=45 {
        let report = sim.step().expect("step succeeds");
        exploration.record(&sim);
        if minute % 5 == 0 {
            let e = timeline.record(&sim, &grid).expect("evaluation");
            println!(
                "10:{minute:02}  delta = {:.1}  connected = {}  moved = {}  lcm = {}",
                e.delta, e.connected, report.moved, report.lcm_followers
            );
            rows.push((minute as f64, vec![e.delta]));
        }
        if minute == 25 {
            println!("--- Fig. 9(a): configuration at 10:25 ---");
            println!(
                "{}",
                ascii_scatter(&sim.positions(), region, 50, 20).expect("render")
            );
        }
    }

    // FRA reference on the frozen field at 10:45 (Fig. 10's dashed
    // comparison level).
    let frozen = field.at_time(645.0);
    let snapshot = GridField::from_field(grid, &frozen);
    let fra = FraBuilder::new(100, PAPER_RC)
        .grid(grid)
        .run(&snapshot)
        .expect("FRA succeeds");
    let fra_eval = DeltaEvaluator::new(&snapshot, &grid, PAPER_RC)
        .evaluate(&fra.positions)
        .expect("evaluation");

    let last = timeline.delta_series().last().map(|&(_, d)| d).unwrap();
    println!("\n--- Fig. 10 summary ---");
    println!("initial delta (10:00):            {:.1}", e0.delta);
    println!("converged CMA delta (10:45):      {last:.1}");
    println!("FRA reference delta:              {:.1}", fra_eval.delta);
    println!(
        "CMA improvement over start:       {:.1}%",
        100.0 * (e0.delta - last) / e0.delta
    );
    println!(
        "CMA / FRA ratio:                  {:.2} (paper: ~1.16)",
        last / fra_eval.delta
    );
    println!(
        "cumulative sensed coverage:       {:.0}% of the region",
        100.0 * exploration.coverage()
    );

    let dir = output_dir();
    let file = File::create(dir.join("fig10_delta_vs_time.csv")).expect("create csv");
    write_xy_series(file, "minutes_past_10", &["cma_delta"], &rows).expect("write csv");
    println!("wrote {}/fig10_delta_vs_time.csv", dir.display());
}
