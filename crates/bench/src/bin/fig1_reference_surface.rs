//! **Fig. 1** — the referential environment surface.
//!
//! The paper visualizes the light condition of a 100×100 m region at
//! 10:00 (Nov 24, 2009 in the real trace) as a virtual surface in 3-D.
//! This harness extracts the same surface from the synthetic trace,
//! prints it as an ASCII heatmap, reports its statistics, and writes a
//! PGM rendering plus the raw grid as CSV.

use cps_bench::{eval_grid, output_dir, paper_dataset, reference_light_surface};
use cps_field::Field;
use cps_viz::{ascii_heatmap, field_to_pgm};
use std::fs;

fn main() {
    let dataset = paper_dataset();
    let surface = reference_light_surface(&dataset);
    let grid = eval_grid();

    println!("=== Fig. 1: referential light surface (100x100 m, 10:00) ===");
    println!(
        "{}",
        ascii_heatmap(&surface, &grid, 72, 30).expect("render")
    );
    let stats = surface.summarize(&grid);
    println!(
        "light (KLux): min {:.2}  max {:.2}  mean {:.2}  std {:.2}",
        stats.min, stats.max, stats.mean, stats.std_dev
    );
    println!(
        "trace: {} nodes, {} hours of readings",
        dataset.node_count(),
        dataset.hours()
    );

    let dir = output_dir();
    fs::write(
        dir.join("fig1_surface.pgm"),
        field_to_pgm(&surface, &grid, 404, 404).expect("render"),
    )
    .expect("write pgm");
    let mut csv = String::from("x,y,klux\n");
    for (i, j, p) in grid.iter() {
        csv.push_str(&format!(
            "{},{},{}\n",
            p.x,
            p.y,
            surface.values()[grid.flat_index(i, j)]
        ));
    }
    fs::write(dir.join("fig1_surface.csv"), csv).expect("write csv");
    println!("wrote {}/fig1_surface.pgm and .csv", dir.display());
}
