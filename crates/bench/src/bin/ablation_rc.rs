//! **Ablation** — the communication radius `Rc`.
//!
//! The connectivity constraint is the binding cost of OSD at small
//! radii: relays eat the budget. This ablation sweeps `Rc` at a fixed
//! budget and reports δ and the refinement/relay split.

use cps_bench::{eval_grid, paper_dataset, reference_light_surface};
use cps_core::osd::FraBuilder;
use cps_core::DeltaEvaluator;

fn main() {
    let dataset = paper_dataset();
    let reference = reference_light_surface(&dataset);
    let grid = eval_grid();

    println!("=== Ablation: communication radius (FRA, k = 60) ===");
    println!(
        "{:>6} {:>12} {:>8} {:>8} {:>10}",
        "Rc", "delta", "refined", "relays", "connected"
    );
    for rc in [5.0, 8.0, 10.0, 15.0, 20.0, 30.0, 50.0] {
        let fra = FraBuilder::new(60, rc)
            .grid(grid)
            .run(&reference)
            .expect("FRA succeeds");
        let eval = DeltaEvaluator::new(&reference, &grid, rc)
            .evaluate(&fra.positions)
            .expect("evaluation succeeds");
        println!(
            "{rc:>6.1} {:>12.1} {:>8} {:>8} {:>10}",
            eval.delta, fra.refined, fra.relays, eval.connected
        );
    }
    println!("\nsmaller Rc -> more budget spent on relays -> higher delta.");
}
