//! Guard benchmark for the instrumentation layer: the hooks compiled
//! into the δ quadrature must cost (almost) nothing when observation is
//! off.
//!
//! Strategy: time the same δ workload with `cps_obs` disabled and
//! enabled. The disabled path is a strict subset of the enabled path
//! (one relaxed atomic load vs load + two clock reads + a map update),
//! so bounding the *enabled* slowdown bounds the disabled overhead from
//! above. The process exits non-zero when the bound is violated, so CI
//! can gate on it.
//!
//! Run with: `cargo run --release -p cps-bench --bin obs_overhead`

use std::process::ExitCode;
use std::time::Instant;

use cps_core::osd::baselines;
use cps_field::delta::surface_delta_rms_with;
use cps_field::{delta, Field, Kernel, Parallelism, PeaksField, ReconstructedSurface};
use cps_geometry::{GridSpec, Rect};
use rand::rngs::StdRng;
use rand::SeedableRng;

const NODES: usize = 150;
const RESOLUTION: usize = 201;
const WARMUP: usize = 3;
const REPS: usize = 21;

/// The guard: the enabled-vs-disabled ratio on best-of-N runs. 2% is
/// the budget ISSUE'd for the whole layer; the measured cost of one
/// atomic load plus two `Instant::now` calls per ~millisecond quadrature
/// is orders of magnitude below it, so a trip means a real regression
/// (a hook moved into an inner loop, a lock on the hot path, ...).
const MAX_OVERHEAD: f64 = 1.02;

/// Budget for the pool-enabled raster path. Looser than the serial
/// guard: with worker threads in play, best-of-N still carries a few
/// percent of scheduler jitter that has nothing to do with the hooks.
const MAX_OVERHEAD_POOLED: f64 = 1.05;

fn best_of<F: FnMut() -> f64>(mut work: F) -> u64 {
    for _ in 0..WARMUP {
        std::hint::black_box(work());
    }
    (0..REPS)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(work());
            start.elapsed().as_nanos() as u64
        })
        .min()
        .expect("at least one rep")
}

fn main() -> ExitCode {
    let region = Rect::square(100.0).expect("square region");
    let grid = GridSpec::new(region, RESOLUTION, RESOLUTION).expect("grid");
    let reference = PeaksField::new(region, 8.0);
    let mut rng = StdRng::seed_from_u64(5);
    let nodes = baselines::random_deployment(region, NODES, &mut rng);
    let samples: Vec<f64> = nodes.iter().map(|&p| reference.value(p)).collect();
    let rebuilt =
        ReconstructedSurface::from_samples(region, &nodes, &samples).expect("reconstruction");
    let par = Parallelism::serial();

    cps_obs::reset();
    cps_obs::disable();
    let disabled_ns = best_of(|| delta::volume_difference_with(&reference, &rebuilt, &grid, par));

    cps_obs::enable();
    let enabled_ns = best_of(|| delta::volume_difference_with(&reference, &rebuilt, &grid, par));
    let metrics = cps_obs::snapshot();
    cps_obs::disable();

    // Sanity: the enabled run must actually have recorded itself.
    let recorded = metrics.phase_total_ns(cps_obs::Phase::DeltaQuadrature);
    assert!(
        recorded > 0,
        "enabled run recorded no delta_quadrature time — hooks are dead"
    );

    let ratio = enabled_ns as f64 / disabled_ns as f64;
    println!(
        "delta quadrature: disabled {:.3} ms, enabled {:.3} ms, ratio {:.4} (budget {:.2})",
        disabled_ns as f64 / 1e6,
        enabled_ns as f64 / 1e6,
        ratio,
        MAX_OVERHEAD
    );
    if ratio > MAX_OVERHEAD {
        eprintln!("instrumentation overhead exceeds the {MAX_OVERHEAD} budget");
        return ExitCode::FAILURE;
    }

    // Same guard on the pool-enabled raster path: the hooks it adds
    // (raster counters, pool-task counter, delta_raster timer) must
    // also be free when observation is off.
    let pooled = Parallelism::fixed(2);
    cps_obs::reset();
    cps_obs::disable();
    let disabled_ns = best_of(|| {
        surface_delta_rms_with(&reference, &rebuilt, &grid, pooled, Kernel::Raster).delta
    });

    cps_obs::enable();
    let enabled_ns = best_of(|| {
        surface_delta_rms_with(&reference, &rebuilt, &grid, pooled, Kernel::Raster).delta
    });
    let metrics = cps_obs::snapshot();
    cps_obs::disable();

    let recorded = metrics.phase_total_ns(cps_obs::Phase::DeltaRaster);
    assert!(
        recorded > 0,
        "enabled run recorded no delta_raster time — hooks are dead"
    );
    assert!(
        metrics.counter(cps_obs::Counter::TrianglesRasterized) > 0,
        "enabled run rasterized no triangles — hooks are dead"
    );

    let ratio = enabled_ns as f64 / disabled_ns as f64;
    println!(
        "raster kernel (2t pool): disabled {:.3} ms, enabled {:.3} ms, ratio {:.4} (budget {:.2})",
        disabled_ns as f64 / 1e6,
        enabled_ns as f64 / 1e6,
        ratio,
        MAX_OVERHEAD_POOLED
    );
    if ratio > MAX_OVERHEAD_POOLED {
        eprintln!("instrumentation overhead exceeds the {MAX_OVERHEAD_POOLED} budget");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
