//! **Figs. 5 & 6** — FRA-rebuilt surfaces at `k = 30` and `k = 100`.
//!
//! The paper shows the topology and the rebuilt virtual surface for 30
//! nodes (coarse: most of the budget goes to connectivity, detail is
//! lost) and 100 nodes (smooth: "almost all tiny fluctuations are
//! illustrated"). This harness reproduces both, printing topology
//! scatters, rebuilt-surface heatmaps, δ values, and the refinement /
//! relay split.

use cps_bench::{
    eval_grid, output_dir, paper_dataset, paper_region, reference_light_surface, PAPER_RC,
};
use cps_core::osd::FraBuilder;
use cps_core::DeltaEvaluator;
use cps_field::ReconstructedSurface;
use cps_viz::{ascii_heatmap, ascii_scatter, field_to_pgm, topology_summary};
use std::fs;

fn main() {
    let dataset = paper_dataset();
    let reference = reference_light_surface(&dataset);
    let grid = eval_grid();
    let region = paper_region();
    let dir = output_dir();

    println!("=== Figs. 5 & 6: FRA-rebuilt surfaces ===");
    println!("reference surface:");
    println!(
        "{}",
        ascii_heatmap(&reference, &grid, 60, 24).expect("render")
    );

    for (fig, k) in [("fig5", 30usize), ("fig6", 100)] {
        let result = FraBuilder::new(k, PAPER_RC)
            .grid(grid)
            .run(&reference)
            .expect("FRA succeeds");
        let eval = DeltaEvaluator::new(&reference, &grid, PAPER_RC)
            .evaluate(&result.positions)
            .expect("evaluation succeeds");
        use cps_field::Field;
        let samples: Vec<f64> = result
            .positions
            .iter()
            .map(|&p| reference.value(p))
            .collect();
        let rebuilt = ReconstructedSurface::from_samples(region, &result.positions, &samples)
            .expect("reconstruction succeeds");

        println!("\n--- {fig}: k = {k} ---");
        println!("topology ({}):", topology_summary(&result.positions));
        println!(
            "{}",
            ascii_scatter(&result.positions, region, 60, 24).expect("render")
        );
        println!("rebuilt surface:");
        println!(
            "{}",
            ascii_heatmap(&rebuilt, &grid, 60, 24).expect("render")
        );
        println!(
            "delta = {:.1}   connected = {}   refined = {}   relays = {}",
            eval.delta, eval.connected, result.refined, result.relays
        );
        fs::write(
            dir.join(format!("{fig}_rebuilt.pgm")),
            field_to_pgm(&rebuilt, &grid, 404, 404).expect("render"),
        )
        .expect("write pgm");
    }
    println!(
        "\nwrote {}/fig5_rebuilt.pgm and fig6_rebuilt.pgm",
        dir.display()
    );
}
