//! **Fig. 4** — the local connectivity mechanism, node by node.
//!
//! The paper's Fig. 4 walks through one LCM decision: n1 moves; n3 is
//! still in range, n4 is bridged through n3, n5 is stranded and must
//! follow to exactly `Rc` from the destination, and n2 becomes a new
//! neighbor. This demo executes the paper's exact scenario through the
//! library's LCM primitives and prints each verdict.

use cps_core::ostd::lcm;
use cps_geometry::Point2;
use cps_network::UnitDiskGraph;

fn main() {
    let rc = 10.0;
    // The Fig. 4 cast (coordinates chosen to match the paper's roles).
    let n1_old = Point2::new(10.0, 10.0);
    let n1_dest = Point2::new(4.0, 10.0); // the arrowhead position
    let n2 = Point2::new(-5.0, 12.0); // outside n1's old disk
    let n3 = Point2::new(12.0, 16.0); // stays in range of the destination
    let n4 = Point2::new(19.0, 14.0); // out of range, but bridged by n3
    let n5 = Point2::new(14.0, 0.0); // stranded: must follow

    println!("=== Fig. 4: the LCM rule on the paper's scenario (Rc = {rc}) ===\n");
    println!("n1 moves {} -> {}", n1_old, n1_dest);

    let check = |name: &str, node: Point2, others: &[Point2]| {
        let stays = lcm::stays_connected(node, n1_dest, others, rc);
        let direct = node.distance(n1_dest) <= rc;
        println!(
            "  {name} at {node}: distance to dest {:.1} -> {}",
            node.distance(n1_dest),
            if direct {
                "still a direct neighbor (stays in situ)"
            } else if stays {
                "bridged by another former neighbor (stays in situ)"
            } else {
                "stranded: follows the mover"
            }
        );
        stays
    };

    assert!(check("n3", n3, &[n4, n5]));
    assert!(check("n4", n4, &[n3, n5]));
    assert!(!check("n5", n5, &[n3, n4]));

    let n5_new = lcm::follow_position(n5, n1_dest, rc);
    println!(
        "  n5 relocates to ({:.2}, {:.2}) — exactly Rc from the destination ({:.3})",
        n5_new.x,
        n5_new.y,
        n5_new.distance(n1_dest)
    );

    // n2 becomes a new single-hop neighbor after the move (the paper's
    // closing observation).
    assert!(n2.distance(n1_old) > rc);
    assert!(n2.distance(n1_dest) < rc);
    println!(
        "  n2 at {n2}: was {:.1} away, now {:.1} — a new neighbor",
        n2.distance(n1_old),
        n2.distance(n1_dest)
    );

    // The post-move network is connected.
    let after = vec![n1_dest, n2, n3, n4, n5_new];
    let graph = UnitDiskGraph::new(after, rc).unwrap();
    println!(
        "\npost-move network: {} components (connected: {})",
        graph.component_count(),
        graph.is_connected()
    );
    assert!(graph.is_connected());
}
