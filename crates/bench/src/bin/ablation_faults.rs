//! **Ablation** — per-slot node death rate under fault injection.
//!
//! Sweeps the random death probability on the Fig. 8-10 scenario
//! (30 simulated minutes, lossy links fixed at 10%) and reports the
//! δ-vs-death-rate curve: how gracefully the swarm degrades as nodes
//! drop out mid-run. Recovery (relay re-planning toward bridged gaps)
//! is left on its default `auto` policy, so partitions heal when a
//! relay plan exists.

use cps_bench::{eval_grid, paper_region, PAPER_RC};
use cps_greenorbs::{ForestConfig, LatentLightField};
use cps_sim::{scenario, CmaBuilder, DeltaTimeline, FaultPlan};

fn main() {
    let region = paper_region();
    let field = LatentLightField::new(&ForestConfig::default());
    let grid = eval_grid();

    println!("=== Ablation: node death rate (30 min of CMA, 100 nodes, 10% link loss) ===");
    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>10} {:>10}",
        "p_death", "survivors", "delta_start", "delta_end", "partitions", "retried"
    );
    for p_death in [0.0, 0.005, 0.01, 0.02, 0.05, 0.1] {
        let plan = FaultPlan::builder()
            .seed(42)
            .death_rate(p_death)
            .link_loss(0.1, 2)
            .build()
            .expect("valid fault plan");
        let start = scenario::grid_start_spaced(region, 100, 0.93 * PAPER_RC).unwrap();
        let mut sim = CmaBuilder::new(region, start)
            .start_time(600.0)
            .faults(plan)
            .run(&field)
            .expect("sim constructs");
        let mut timeline = DeltaTimeline::new();
        let e0 = timeline.record(&sim, &grid).expect("evaluation");
        let mut retried = 0usize;
        for _ in 0..30 {
            retried += sim.step().expect("step succeeds").retried;
        }
        let e1 = timeline.record(&sim, &grid).expect("evaluation");
        let partitions = sim
            .fault_events()
            .iter()
            .filter(|e| matches!(e, cps_sim::FaultEvent::Partition { .. }))
            .count();
        println!(
            "{p_death:>8.3} {:>10} {:>12.1} {:>12.1} {:>10} {:>10}",
            sim.alive_count(),
            e0.delta,
            e1.delta,
            partitions,
            retried
        );
    }
    println!("\nhigher death rates shrink the survivor set; delta degrades smoothly");
    println!("rather than erroring, and lossy links only cost retries.");
}
