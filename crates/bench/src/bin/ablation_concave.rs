//! **Ablation** — non-convex ("concave") surfaces.
//!
//! The paper assumes a convex virtual surface and names concave cases
//! as future work (Section 7). This ablation runs FRA and the random
//! baseline on a strongly oscillating ridge field — every assumption
//! about a single dominant curvature sign is violated — to check the
//! algorithms degrade gracefully rather than break.

use cps_core::osd::{baselines, FraBuilder};
use cps_core::DeltaEvaluator;
use cps_field::RidgeField;
use cps_geometry::{GridSpec, Rect};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let region = Rect::square(100.0).unwrap();
    let field = RidgeField::new(10.0, 33.0, 41.0);
    let grid = GridSpec::new(region, 101, 101).unwrap();

    println!("=== Ablation: non-convex ridge surface (Rc = 10) ===");
    println!("{:>5} {:>12} {:>12} {:>8}", "k", "fra", "random", "ratio");
    for k in [20usize, 50, 100, 150] {
        let fra = FraBuilder::new(k, 10.0)
            .grid(grid)
            .run(&field)
            .expect("FRA succeeds on non-convex input");
        let mut evaluator = DeltaEvaluator::new(&field, &grid, 10.0);
        let fe = evaluator.evaluate(&fra.positions).expect("evaluation");
        assert!(
            fe.connected,
            "FRA must stay connected even on concave fields"
        );

        let mut sum = 0.0;
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            let pts = baselines::random_deployment(region, k, &mut rng);
            sum += evaluator.evaluate(&pts).expect("evaluation").delta;
        }
        let random = sum / 5.0;
        println!(
            "{k:>5} {:>12.1} {random:>12.1} {:>8.2}",
            fe.delta,
            fe.delta / random
        );
    }
    println!("\nno panics, connectivity holds: the pipeline degrades gracefully on");
    println!("surfaces that violate the paper's convexity assumption.");
}
