//! **Extension** — trace sampling (the paper's future-work item 2).
//!
//! Mobile nodes measure continuously while moving; folding those path
//! samples into the reconstruction should beat point sampling with the
//! same node budget. This harness runs the Fig. 8-10 swarm and reports
//! the point-only vs path-enriched δ at several freshness horizons.

use cps_bench::{eval_grid, paper_region, PAPER_RC};
use cps_greenorbs::{ForestConfig, LatentLightField};
use cps_sim::{path_sampling_gain, scenario, CmaBuilder, PathSampleBank};

fn main() {
    let region = paper_region();
    let field = LatentLightField::new(&ForestConfig::default());
    let grid = eval_grid();

    let start = scenario::grid_start_spaced(region, 100, 0.93 * PAPER_RC).unwrap();
    let mut sim = CmaBuilder::new(region, start)
        .start_time(600.0)
        .run(&field)
        .expect("simulation constructs");
    let mut bank = PathSampleBank::new(100_000);
    bank.record(&sim);

    println!("=== Extension: trace sampling vs point sampling ===");
    println!("(100 mobile nodes, path samples folded into the reconstruction)\n");
    println!(
        "{:>7} {:>14} {:>22}",
        "minute", "point delta", "with path samples"
    );
    for minute in 1..=30 {
        sim.step().expect("step succeeds");
        bank.record(&sim);
        if minute % 10 == 0 {
            // A 10-minute freshness horizon: old samples of the
            // drifting field are discarded.
            let (point, path) =
                path_sampling_gain(&sim, &bank, 10.0, &grid).expect("reconstructions succeed");
            println!(
                "{minute:>7} {point:>14.1} {path:>15.1} ({:+.1}%)",
                100.0 * (path - point) / point
            );
        }
    }
    println!("\nfreshness-horizon sweep at minute 30:");
    println!("{:>12} {:>14}", "max age", "delta");
    for max_age in [1.0, 5.0, 10.0, 30.0] {
        let (_, path) =
            path_sampling_gain(&sim, &bank, max_age, &grid).expect("reconstruction succeeds");
        println!("{max_age:>10}m {path:>14.1}");
    }
    println!("\npath samples multiply the effective sample count for free —");
    println!("the paper's future-work intuition, quantified.");
}
