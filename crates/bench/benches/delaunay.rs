//! Substrate bench: incremental Delaunay insertion and point location.

use cps_geometry::{Point2, Rect, Triangulation};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_points(n: usize, seed: u64) -> Vec<Point2> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point2::new(rng.gen_range(0.1..99.9), rng.gen_range(0.1..99.9)))
        .collect()
}

fn bench_insertion(c: &mut Criterion) {
    let bounds = Rect::square(100.0).unwrap();
    let mut group = c.benchmark_group("delaunay_insert");
    for n in [100usize, 500, 1000] {
        let pts = random_points(n, 42);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &pts, |b, pts| {
            b.iter(|| {
                let mut dt = Triangulation::new(bounds);
                for &p in pts {
                    let _ = dt.insert(p);
                }
                dt.vertex_count()
            })
        });
    }
    group.finish();
}

fn bench_interpolation(c: &mut Criterion) {
    let bounds = Rect::square(100.0).unwrap();
    let pts = random_points(500, 7);
    let mut dt = Triangulation::new(bounds);
    for c in bounds.corners() {
        dt.insert(c).unwrap();
    }
    for &p in &pts {
        let _ = dt.insert(p);
    }
    let zs: Vec<f64> = dt.vertices().map(|p| p.x + p.y).collect();
    let queries = random_points(1000, 99);
    c.bench_function("delaunay_interpolate_1000", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &q in &queries {
                acc += dt.interpolate(q, &zs).unwrap_or(0.0);
            }
            acc
        })
    });
}

criterion_group!(benches, bench_insertion, bench_interpolation);
criterion_main!(benches);
