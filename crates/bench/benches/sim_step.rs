//! System-level bench: one full simulation slot (sense → CMA → LCM →
//! move) at the paper's scale.

use cps_field::{GaussianBlob, GaussianMixtureField, Static};
use cps_geometry::{Point2, Rect};
use cps_sim::{scenario, CmaBuilder};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn environment() -> Static<GaussianMixtureField> {
    Static::new(GaussianMixtureField::new(
        2.0,
        vec![
            GaussianBlob::isotropic(Point2::new(30.0, 65.0), 25.0, 6.0),
            GaussianBlob::isotropic(Point2::new(70.0, 30.0), 20.0, 5.0),
        ],
    ))
}

fn bench_step(c: &mut Criterion) {
    let region = Rect::square(100.0).unwrap();
    let mut group = c.benchmark_group("sim_step");
    group.sample_size(20);
    for k in [25usize, 100] {
        group.throughput(Throughput::Elements(k as u64));
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            // Fresh sim per batch so node positions stay comparable.
            b.iter_batched(
                || {
                    CmaBuilder::new(region, scenario::grid_start_spaced(region, k, 9.3).unwrap())
                        .run(environment())
                        .unwrap()
                },
                |mut sim| {
                    sim.step().unwrap();
                    sim
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_step);
criterion_main!(benches);
