//! Substrate bench: the quadric fit behind Eqns. 11–13.

use cps_core::ostd::fit_quadric;
use cps_field::par::map_rows;
use cps_field::{Field, ParaboloidField, Parallelism};
use cps_geometry::Point2;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_fit(c: &mut Criterion) {
    let field = ParaboloidField::new(Point2::new(0.0, 0.0), 0.4, 0.1, 0.3);
    let mut group = c.benchmark_group("quadric_fit");
    for rs in [3i32, 5, 8] {
        let mut samples = Vec::new();
        for dx in -rs..=rs {
            for dy in -rs..=rs {
                let p = Point2::new(dx as f64, dy as f64);
                if p.distance(Point2::ORIGIN) <= rs as f64 {
                    samples.push((p, field.value(p)));
                }
            }
        }
        group.throughput(Throughput::Elements(samples.len() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("m{}", samples.len())),
            &samples,
            |b, samples| b.iter(|| fit_quadric(Point2::ORIGIN, 0.0, samples).unwrap()),
        );
    }
    group.finish();
}

/// A whole swarm's per-slot curvature sweep (100 nodes, Rs = 5 m) on
/// the sharded executor, serial vs parallel.
fn bench_fit_sweep(c: &mut Criterion) {
    let field = ParaboloidField::new(Point2::new(0.0, 0.0), 0.4, 0.1, 0.3);
    let rs = 5i32;
    let centers: Vec<Point2> = (0..100)
        .map(|i| Point2::new((i % 10) as f64 * 10.0, (i / 10) as f64 * 10.0))
        .collect();
    let sample_sets: Vec<Vec<(Point2, f64)>> = centers
        .iter()
        .map(|&center| {
            let mut samples = Vec::new();
            for dx in -rs..=rs {
                for dy in -rs..=rs {
                    let p = Point2::new(center.x + dx as f64, center.y + dy as f64);
                    if p.distance(center) <= rs as f64 {
                        samples.push((p, field.value(p)));
                    }
                }
            }
            samples
        })
        .collect();
    let mut group = c.benchmark_group("quadric_fit_sweep_100");
    for (label, par) in [
        ("serial", Parallelism::serial()),
        ("4t", Parallelism::fixed(4)),
        ("auto", Parallelism::auto()),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &par, |b, &par| {
            b.iter(|| {
                map_rows(centers.len(), par, |i| {
                    fit_quadric(centers[i], field.value(centers[i]), &sample_sets[i])
                        .unwrap()
                        .gaussian_curvature()
                })
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fit, bench_fit_sweep);
criterion_main!(benches);
