//! Substrate bench: the quadric fit behind Eqns. 11–13.

use cps_core::ostd::fit_quadric;
use cps_field::{Field, ParaboloidField};
use cps_geometry::Point2;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_fit(c: &mut Criterion) {
    let field = ParaboloidField::new(Point2::new(0.0, 0.0), 0.4, 0.1, 0.3);
    let mut group = c.benchmark_group("quadric_fit");
    for rs in [3i32, 5, 8] {
        let mut samples = Vec::new();
        for dx in -rs..=rs {
            for dy in -rs..=rs {
                let p = Point2::new(dx as f64, dy as f64);
                if p.distance(Point2::ORIGIN) <= rs as f64 {
                    samples.push((p, field.value(p)));
                }
            }
        }
        group.throughput(Throughput::Elements(samples.len() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("m{}", samples.len())),
            &samples,
            |b, samples| b.iter(|| fit_quadric(Point2::ORIGIN, 0.0, samples).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fit);
criterion_main!(benches);
