//! **Theorem 5.1** — CMA per-node complexity.
//!
//! The paper claims O(m + q) per node per iteration, where `m` is the
//! number of sensed samples and `q` the number of single-hop neighbors.
//! These benches scale `m` (via the sensing radius) and `q`
//! independently; per-element time should stay near-constant for `q`
//! and grow at most linearly-with-small-constant for `m` (the local
//! curvature map adds a bounded-window factor, see the module docs of
//! `cps_core::ostd::cma`).

use cps_core::ostd::{cma_step, CmaConfig, NeighborInfo};
use cps_field::{Field, PeaksField};
use cps_geometry::{Point2, Rect};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn sense(field: &PeaksField, center: Point2, rs: f64) -> Vec<(Point2, f64)> {
    let r = rs.ceil() as i32;
    let mut out = Vec::new();
    for dx in -r..=r {
        for dy in -r..=r {
            let p = Point2::new(center.x + dx as f64, center.y + dy as f64);
            if center.distance(p) <= rs {
                out.push((p, field.value(p)));
            }
        }
    }
    out
}

fn ring_neighbors(center: Point2, q: usize, radius: f64) -> Vec<NeighborInfo> {
    (0..q)
        .map(|i| {
            let a = std::f64::consts::TAU * i as f64 / q as f64;
            NeighborInfo {
                position: Point2::new(center.x + radius * a.cos(), center.y + radius * a.sin()),
                curvature: 0.01 * (i as f64 + 1.0),
            }
        })
        .collect()
}

fn bench_scaling_in_m(c: &mut Criterion) {
    let field = PeaksField::new(Rect::square(100.0).unwrap(), 8.0);
    let center = Point2::new(50.0, 50.0);
    let neighbors = ring_neighbors(center, 4, 8.0);
    let mut group = c.benchmark_group("cma_step_scaling_m");
    for rs in [3.0, 5.0, 7.0, 9.0] {
        let sensed = sense(&field, center, rs);
        let cfg = CmaConfig {
            sensing_radius: rs,
            ..CmaConfig::default()
        };
        group.throughput(Throughput::Elements(sensed.len() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("m{}", sensed.len())),
            &sensed,
            |b, sensed| {
                b.iter(|| cma_step(center, field.value(center), sensed, &neighbors, &cfg).unwrap())
            },
        );
    }
    group.finish();
}

fn bench_scaling_in_q(c: &mut Criterion) {
    let field = PeaksField::new(Rect::square(100.0).unwrap(), 8.0);
    let center = Point2::new(50.0, 50.0);
    let sensed = sense(&field, center, 5.0);
    let cfg = CmaConfig::default();
    let mut group = c.benchmark_group("cma_step_scaling_q");
    for q in [2usize, 4, 8, 16, 32] {
        let neighbors = ring_neighbors(center, q, 8.0);
        group.throughput(Throughput::Elements(q as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("q{q}")),
            &neighbors,
            |b, n| b.iter(|| cma_step(center, field.value(center), &sensed, n, &cfg).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scaling_in_m, bench_scaling_in_q);
criterion_main!(benches);
