//! Substrate bench: connectivity machinery at deployment scale.

use cps_geometry::{coverage_areas, Triangulation};
use cps_geometry::{Point2, Rect};
use cps_network::{articulation_points, network_diameter, RelayPlan, UnitDiskGraph};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn deployment(n: usize) -> Vec<Point2> {
    let mut rng = StdRng::seed_from_u64(13);
    (0..n)
        .map(|_| Point2::new(rng.gen_range(0.5..99.5), rng.gen_range(0.5..99.5)))
        .collect()
}

fn bench_graph_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("network_pipeline");
    for n in [100usize, 300] {
        let pts = deployment(n);
        group.bench_with_input(BenchmarkId::new("build+components", n), &pts, |b, pts| {
            b.iter(|| {
                let g = UnitDiskGraph::new(pts.clone(), 12.0).unwrap();
                g.component_count()
            })
        });
        let g = UnitDiskGraph::new(pts.clone(), 12.0).unwrap();
        group.bench_with_input(BenchmarkId::new("articulation", n), &g, |b, g| {
            b.iter(|| articulation_points(g).len())
        });
        group.bench_with_input(BenchmarkId::new("relay_plan", n), &g, |b, g| {
            b.iter(|| RelayPlan::for_graph(g).relay_count())
        });
    }
    // Diameter is O(V·E log V): bench at the small size only.
    let g = UnitDiskGraph::new(deployment(100), 15.0).unwrap();
    group.bench_function("diameter_100", |b| b.iter(|| network_diameter(&g)));
    group.finish();
}

fn bench_voronoi(c: &mut Criterion) {
    let bounds = Rect::square(100.0).unwrap();
    let mut group = c.benchmark_group("voronoi");
    for n in [50usize, 200] {
        let pts = deployment(n);
        let dt = Triangulation::from_points(bounds, pts).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &dt, |b, dt| {
            b.iter(|| coverage_areas(dt).len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_graph_pipeline, bench_voronoi);
criterion_main!(benches);
