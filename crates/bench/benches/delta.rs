//! Substrate bench: the δ quadrature (Eqn. 2) and reconstruction.

use cps_core::osd::baselines;
use cps_core::{DeltaEvaluator, EvalOptions};
use cps_field::delta::surface_delta_rms_with;
use cps_field::par::map_rows;
use cps_field::{delta, Field, Kernel, Parallelism, PeaksField, PlaneField, ReconstructedSurface};
use cps_geometry::{GridSpec, Rect};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Thread policies exercised by the parallel variants.
fn policies() -> [(&'static str, Parallelism); 4] {
    [
        ("serial", Parallelism::serial()),
        ("2t", Parallelism::fixed(2)),
        ("4t", Parallelism::fixed(4)),
        ("auto", Parallelism::auto()),
    ]
}

fn bench_volume_difference(c: &mut Criterion) {
    let region = Rect::square(100.0).unwrap();
    let grid = GridSpec::new(region, 101, 101).unwrap();
    let f = PeaksField::new(region, 8.0);
    let g = PlaneField::new(0.1, -0.05, 1.0);
    c.bench_function("volume_difference_101x101", |b| {
        b.iter(|| delta::volume_difference(&f, &g, &grid))
    });
}

/// The parallel engine on the expensive case: δ against a Delaunay
/// reconstruction (per-point triangle walks) on the 201×201 grid.
fn bench_volume_difference_parallel(c: &mut Criterion) {
    let region = Rect::square(100.0).unwrap();
    let grid = GridSpec::new(region, 201, 201).unwrap();
    let f = PeaksField::new(region, 8.0);
    let mut rng = StdRng::seed_from_u64(5);
    let nodes = baselines::random_deployment(region, 150, &mut rng);
    let samples: Vec<f64> = nodes.iter().map(|&p| f.value(p)).collect();
    let g = ReconstructedSurface::from_samples(region, &nodes, &samples).unwrap();
    let mut group = c.benchmark_group("volume_difference_201x201_reconstructed");
    group.sample_size(20);
    for (label, par) in policies() {
        group.bench_with_input(BenchmarkId::from_parameter(label), &par, |b, &par| {
            b.iter(|| delta::volume_difference_with(&f, &g, &grid, par))
        });
    }
    group.finish();
}

fn bench_full_evaluation(c: &mut Criterion) {
    let region = Rect::square(100.0).unwrap();
    let grid = GridSpec::new(region, 101, 101).unwrap();
    let f = PeaksField::new(region, 8.0);
    let mut rng = StdRng::seed_from_u64(5);
    let nodes = baselines::random_deployment(region, 100, &mut rng);
    c.bench_function("evaluate_deployment_100_nodes", |b| {
        let mut evaluator = DeltaEvaluator::new(&f, &grid, 10.0).parallelism(Parallelism::serial());
        b.iter(|| evaluator.evaluate(&nodes).unwrap().delta)
    });
    let mut group = c.benchmark_group("evaluate_deployment_100_nodes_par");
    for (label, par) in policies() {
        group.bench_with_input(BenchmarkId::from_parameter(label), &par, |b, &par| {
            let mut evaluator = DeltaEvaluator::new(&f, &grid, 10.0).parallelism(par);
            b.iter(|| evaluator.evaluate(&nodes).unwrap().delta)
        });
    }
    group.finish();
}

/// The tentpole case: re-evaluating a deployment after a single node
/// moves. The tile cache re-integrates only the dirtied tiles; the
/// uncached path sweeps the whole grid every time.
fn bench_incremental_move(c: &mut Criterion) {
    let region = Rect::square(100.0).unwrap();
    let grid = GridSpec::new(region, 201, 201).unwrap();
    let f = PeaksField::new(region, 8.0);
    let mut rng = StdRng::seed_from_u64(5);
    let nodes = baselines::random_deployment(region, 100, &mut rng);
    let mut moved = nodes.clone();
    moved[0].x += 0.5;
    moved[0].y -= 0.25;
    let mut group = c.benchmark_group("reevaluate_after_one_move_201x201");
    group.sample_size(20);
    for (label, cached) in [("uncached", false), ("cached", true)] {
        group.bench_function(label, |b| {
            let mut evaluator = DeltaEvaluator::new(&f, &grid, 10.0).options(
                EvalOptions::new()
                    .parallelism(Parallelism::serial())
                    .cached(cached),
            );
            b.iter(|| {
                let a = evaluator.evaluate(&nodes).unwrap().delta;
                let b2 = evaluator.evaluate(&moved).unwrap().delta;
                a + b2
            })
        });
    }
    group.finish();
}

/// Raster scanline kernel vs legacy per-cell walk on the full δ+RMS
/// evaluation, across grid resolutions.
fn bench_kernels(c: &mut Criterion) {
    let region = Rect::square(100.0).unwrap();
    let f = PeaksField::new(region, 8.0);
    let mut rng = StdRng::seed_from_u64(5);
    let nodes = baselines::random_deployment(region, 150, &mut rng);
    let samples: Vec<f64> = nodes.iter().map(|&p| f.value(p)).collect();
    let g = ReconstructedSurface::from_samples(region, &nodes, &samples).unwrap();
    let serial = Parallelism::serial();
    for resolution in [101usize, 201, 401] {
        let grid = GridSpec::new(region, resolution, resolution).unwrap();
        let mut group = c.benchmark_group(format!("delta_rms_{resolution}x{resolution}"));
        group.sample_size(if resolution >= 401 { 10 } else { 20 });
        for (label, kernel) in [("walk", Kernel::Walk), ("raster", Kernel::Raster)] {
            group.bench_function(label, |b| {
                b.iter(|| surface_delta_rms_with(&f, &g, &grid, serial, kernel))
            });
        }
        group.finish();
    }
}

/// Pool reuse vs per-call thread spawn on many small row sweeps: the
/// dispatch overhead the persistent pool exists to eliminate.
fn bench_pool_dispatch(c: &mut Criterion) {
    const ROWS: usize = 128;
    let row_work = |j: usize| -> f64 {
        let mut acc = 0.0;
        for i in 0..ROWS {
            acc += ((i * 31 + j * 17) as f64).sqrt();
        }
        acc
    };
    let par = Parallelism::fixed(2);
    let mut group = c.benchmark_group("pool_dispatch_128_rows_2t");
    group.bench_function("pooled", |b| {
        b.iter(|| map_rows(ROWS, par, row_work).iter().sum::<f64>())
    });
    group.bench_function("spawn_per_call", |b| {
        b.iter(|| {
            // The pre-pool dispatch: fresh scoped threads every call.
            let mut rows: Vec<f64> = vec![0.0; ROWS];
            let (lo, hi) = rows.split_at_mut(ROWS / 2);
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    for (j, slot) in hi.iter_mut().enumerate() {
                        *slot = row_work(ROWS / 2 + j);
                    }
                });
                for (j, slot) in lo.iter_mut().enumerate() {
                    *slot = row_work(j);
                }
            });
            rows.iter().sum::<f64>()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_volume_difference,
    bench_volume_difference_parallel,
    bench_full_evaluation,
    bench_incremental_move,
    bench_kernels,
    bench_pool_dispatch
);
criterion_main!(benches);
