//! Substrate bench: the δ quadrature (Eqn. 2) and reconstruction.

use cps_core::osd::baselines;
use cps_core::{evaluate_deployment, evaluate_deployment_with};
use cps_field::{delta, Field, Parallelism, PeaksField, PlaneField, ReconstructedSurface};
use cps_geometry::{GridSpec, Rect};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Thread policies exercised by the parallel variants.
fn policies() -> [(&'static str, Parallelism); 4] {
    [
        ("serial", Parallelism::serial()),
        ("2t", Parallelism::fixed(2)),
        ("4t", Parallelism::fixed(4)),
        ("auto", Parallelism::auto()),
    ]
}

fn bench_volume_difference(c: &mut Criterion) {
    let region = Rect::square(100.0).unwrap();
    let grid = GridSpec::new(region, 101, 101).unwrap();
    let f = PeaksField::new(region, 8.0);
    let g = PlaneField::new(0.1, -0.05, 1.0);
    c.bench_function("volume_difference_101x101", |b| {
        b.iter(|| delta::volume_difference(&f, &g, &grid))
    });
}

/// The parallel engine on the expensive case: δ against a Delaunay
/// reconstruction (per-point triangle walks) on the 201×201 grid.
fn bench_volume_difference_parallel(c: &mut Criterion) {
    let region = Rect::square(100.0).unwrap();
    let grid = GridSpec::new(region, 201, 201).unwrap();
    let f = PeaksField::new(region, 8.0);
    let mut rng = StdRng::seed_from_u64(5);
    let nodes = baselines::random_deployment(region, 150, &mut rng);
    let samples: Vec<f64> = nodes.iter().map(|&p| f.value(p)).collect();
    let g = ReconstructedSurface::from_samples(region, &nodes, &samples).unwrap();
    let mut group = c.benchmark_group("volume_difference_201x201_reconstructed");
    group.sample_size(20);
    for (label, par) in policies() {
        group.bench_with_input(BenchmarkId::from_parameter(label), &par, |b, &par| {
            b.iter(|| delta::volume_difference_with(&f, &g, &grid, par))
        });
    }
    group.finish();
}

fn bench_full_evaluation(c: &mut Criterion) {
    let region = Rect::square(100.0).unwrap();
    let grid = GridSpec::new(region, 101, 101).unwrap();
    let f = PeaksField::new(region, 8.0);
    let mut rng = StdRng::seed_from_u64(5);
    let nodes = baselines::random_deployment(region, 100, &mut rng);
    c.bench_function("evaluate_deployment_100_nodes", |b| {
        b.iter(|| evaluate_deployment(&f, &nodes, 10.0, &grid).unwrap().delta)
    });
    let mut group = c.benchmark_group("evaluate_deployment_100_nodes_par");
    for (label, par) in policies() {
        group.bench_with_input(BenchmarkId::from_parameter(label), &par, |b, &par| {
            b.iter(|| {
                evaluate_deployment_with(&f, &nodes, 10.0, &grid, par)
                    .unwrap()
                    .delta
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_volume_difference,
    bench_volume_difference_parallel,
    bench_full_evaluation
);
criterion_main!(benches);
