//! Substrate bench: the δ quadrature (Eqn. 2) and reconstruction.

use cps_core::evaluate_deployment;
use cps_core::osd::baselines;
use cps_field::{delta, PeaksField, PlaneField};
use cps_geometry::{GridSpec, Rect};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_volume_difference(c: &mut Criterion) {
    let region = Rect::square(100.0).unwrap();
    let grid = GridSpec::new(region, 101, 101).unwrap();
    let f = PeaksField::new(region, 8.0);
    let g = PlaneField::new(0.1, -0.05, 1.0);
    c.bench_function("volume_difference_101x101", |b| {
        b.iter(|| delta::volume_difference(&f, &g, &grid))
    });
}

fn bench_full_evaluation(c: &mut Criterion) {
    let region = Rect::square(100.0).unwrap();
    let grid = GridSpec::new(region, 101, 101).unwrap();
    let f = PeaksField::new(region, 8.0);
    let mut rng = StdRng::seed_from_u64(5);
    let nodes = baselines::random_deployment(region, 100, &mut rng);
    c.bench_function("evaluate_deployment_100_nodes", |b| {
        b.iter(|| evaluate_deployment(&f, &nodes, 10.0, &grid).unwrap().delta)
    });
}

criterion_group!(benches, bench_volume_difference, bench_full_evaluation);
criterion_main!(benches);
