//! End-to-end bench: one FRA run on the canonical scenario.

use cps_bench::{paper_dataset, paper_region, reference_light_surface, PAPER_RC};
use cps_core::osd::FraBuilder;
use cps_field::Parallelism;
use cps_geometry::GridSpec;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_fra(c: &mut Criterion) {
    let dataset = paper_dataset();
    let reference = reference_light_surface(&dataset);
    // A 51-point grid keeps bench runtimes civil; the experiments use
    // the full 101-point grid.
    let grid = GridSpec::new(paper_region(), 51, 51).unwrap();
    let mut group = c.benchmark_group("fra_run");
    group.sample_size(10);
    for k in [20usize, 50] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                FraBuilder::new(k, PAPER_RC)
                    .grid(grid)
                    .run(&reference)
                    .unwrap()
                    .positions
                    .len()
            })
        });
    }
    group.finish();

    // The same planning run on the parallel error-grid engine.
    let mut group = c.benchmark_group("fra_run_k50_par");
    group.sample_size(10);
    for (label, par) in [
        ("serial", Parallelism::serial()),
        ("4t", Parallelism::fixed(4)),
        ("auto", Parallelism::auto()),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &par, |b, &par| {
            b.iter(|| {
                FraBuilder::new(50, PAPER_RC)
                    .grid(grid)
                    .parallelism(par)
                    .run(&reference)
                    .unwrap()
                    .positions
                    .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fra);
criterion_main!(benches);
