//! Property tests for the rasterized δ-quadrature kernel: on arbitrary
//! triangulations — slivers and mostly-exterior grids included — the
//! scanline kernel must (i) agree with the walk quadrature within 1e-9
//! and (ii) stay **bit-identical** to itself across thread counts,
//! directly and through the incremental tile cache.

use cps_field::delta::{rms_difference_with, surface_delta_rms_with, volume_difference_with};
use cps_field::raster::delta_rms_raster;
use cps_field::{
    DeltaCache, GaussianBlob, GaussianMixtureField, Kernel, Parallelism, ReconstructedSurface,
};
use cps_geometry::{GridSpec, Point2, Rect};
use proptest::prelude::*;

const SIDE: f64 = 10.0;

fn region() -> Rect {
    Rect::square(SIDE).unwrap()
}

/// Random Gaussian-mixture fields: smooth but spatially busy.
fn blobs_strategy() -> impl Strategy<Value = GaussianMixtureField> {
    prop::collection::vec((0.5..9.5f64, 0.5..9.5f64, 0.5..3.0f64, -4.0..4.0f64), 1..5).prop_map(
        |blobs| {
            GaussianMixtureField::new(
                0.5,
                blobs
                    .into_iter()
                    .map(|(x, y, sigma, amp)| {
                        GaussianBlob::isotropic(Point2::new(x, y), sigma, amp)
                    })
                    .collect(),
            )
        },
    )
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * b.abs().max(1.0)
}

fn surface_from(f: &GaussianMixtureField, points: &[(f64, f64)]) -> Option<ReconstructedSurface> {
    let positions: Vec<Point2> = points.iter().map(|&(x, y)| Point2::new(x, y)).collect();
    let samples: Vec<f64> = positions
        .iter()
        .map(|&p| cps_field::Field::value(f, p))
        .collect();
    ReconstructedSurface::from_samples(region(), &positions, &samples).ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The headline guarantee: on arbitrary scattered triangulations
    /// the raster kernel reproduces the walk's δ and RMS within 1e-9,
    /// at any thread count, and each kernel is bit-identical to its
    /// own serial run.
    #[test]
    fn raster_agrees_with_walk_on_random_triangulations(
        f in blobs_strategy(),
        points in prop::collection::vec((0.5..9.5f64, 0.5..9.5f64), 5..25),
        nx in 23..47usize,
        ny in 23..47usize,
    ) {
        let Some(surface) = surface_from(&f, &points) else { return Ok(()) };
        let grid = GridSpec::new(region(), nx, ny).unwrap();
        let serial = Parallelism::serial();
        let walk = surface_delta_rms_with(&f, &surface, &grid, serial, Kernel::Walk);
        let raster = surface_delta_rms_with(&f, &surface, &grid, serial, Kernel::Raster);
        prop_assert!(close(raster.delta, walk.delta), "delta: raster {} walk {}", raster.delta, walk.delta);
        prop_assert!(close(raster.rms, walk.rms), "rms: raster {} walk {}", raster.rms, walk.rms);
        // The walk dispatch is exactly the legacy quadrature pair.
        prop_assert_eq!(walk.delta.to_bits(), volume_difference_with(&f, &surface, &grid, serial).to_bits());
        prop_assert_eq!(walk.rms.to_bits(), rms_difference_with(&f, &surface, &grid, serial).to_bits());
        for threads in [1usize, 2, 8] {
            let par = Parallelism::fixed(threads);
            let r = surface_delta_rms_with(&f, &surface, &grid, par, Kernel::Raster);
            prop_assert_eq!(r.delta.to_bits(), raster.delta.to_bits(), "raster delta at {} threads", threads);
            prop_assert_eq!(r.rms.to_bits(), raster.rms.to_bits(), "raster rms at {} threads", threads);
            let w = surface_delta_rms_with(&f, &surface, &grid, par, Kernel::Walk);
            prop_assert_eq!(w.delta.to_bits(), walk.delta.to_bits(), "walk delta at {} threads", threads);
        }
    }

    /// Sliver triangulations: nearly collinear clusters produce
    /// degenerate triangles whose plane gradients blow up; those
    /// triangles must fall back to the walk path without breaking the
    /// 1e-9 agreement.
    #[test]
    fn raster_survives_sliver_triangulations(
        f in blobs_strategy(),
        line in prop::collection::vec(0.5..9.5f64, 4..10),
        jitter in prop::collection::vec(-1e-9..1e-9f64, 10),
        off in (0.5..9.5f64, 0.5..9.5f64),
    ) {
        // Most points hug the diagonal within ±1e-9; two anchors off
        // the line keep the hull two-dimensional.
        let mut points: Vec<(f64, f64)> = line
            .iter()
            .enumerate()
            .map(|(i, &x)| (x, x + jitter[i % jitter.len()]))
            .collect();
        points.push(off);
        points.push((9.5 - off.0, off.1));
        let Some(surface) = surface_from(&f, &points) else { return Ok(()) };
        let grid = GridSpec::new(region(), 31, 29).unwrap();
        let serial = Parallelism::serial();
        let walk = surface_delta_rms_with(&f, &surface, &grid, serial, Kernel::Walk);
        let raster = surface_delta_rms_with(&f, &surface, &grid, serial, Kernel::Raster);
        prop_assert!(close(raster.delta, walk.delta), "delta: raster {} walk {}", raster.delta, walk.delta);
        prop_assert!(close(raster.rms, walk.rms), "rms: raster {} walk {}", raster.rms, walk.rms);
    }

    /// Hull-exterior cells: with every sample confined to a small
    /// interior box most of the grid falls outside the hull, so the
    /// raster scratch stays NaN there and the extrapolation fallback
    /// must reproduce the walk's values.
    #[test]
    fn raster_agrees_where_most_cells_are_outside_the_hull(
        f in blobs_strategy(),
        points in prop::collection::vec((4.0..6.0f64, 4.0..6.0f64), 3..8),
        threads in 1..9usize,
    ) {
        let Some(surface) = surface_from(&f, &points) else { return Ok(()) };
        let grid = GridSpec::new(region(), 41, 41).unwrap();
        let par = Parallelism::fixed(threads);
        let walk = surface_delta_rms_with(&f, &surface, &grid, par, Kernel::Walk);
        let raster = surface_delta_rms_with(&f, &surface, &grid, par, Kernel::Raster);
        prop_assert!(close(raster.delta, walk.delta), "delta: raster {} walk {}", raster.delta, walk.delta);
        prop_assert!(close(raster.rms, walk.rms), "rms: raster {} walk {}", raster.rms, walk.rms);
    }

    /// The tile cache on the raster kernel: a cold refresh matches the
    /// fused full-grid raster sweep within 1e-9 and is bit-identical
    /// across thread counts; cache on/off never drifts past 1e-9 from
    /// the walk ground truth.
    #[test]
    fn cached_raster_refresh_tracks_the_fused_sweep(
        f in blobs_strategy(),
        points in prop::collection::vec((0.5..9.5f64, 0.5..9.5f64), 6..16),
    ) {
        let Some(surface) = surface_from(&f, &points) else { return Ok(()) };
        let grid = GridSpec::new(region(), 41, 37).unwrap();
        let serial = Parallelism::serial();
        let fused = delta_rms_raster(&f, &surface, &grid, serial);
        let mut cache = DeltaCache::new(&f, &grid, serial);
        let cached = cache.refresh_with_kernel(&surface, serial, Kernel::Raster);
        prop_assert!(close(cached.delta, fused.delta), "delta: cached {} fused {}", cached.delta, fused.delta);
        prop_assert!(close(cached.rms, fused.rms), "rms: cached {} fused {}", cached.rms, fused.rms);
        let walk = surface_delta_rms_with(&f, &surface, &grid, serial, Kernel::Walk);
        prop_assert!(close(cached.delta, walk.delta), "delta: cached {} walk {}", cached.delta, walk.delta);
        for threads in [2usize, 8] {
            let par = Parallelism::fixed(threads);
            let mut c = DeltaCache::new(&f, &grid, par);
            let t = c.refresh_with_kernel(&surface, par, Kernel::Raster);
            prop_assert_eq!(t.delta.to_bits(), cached.delta.to_bits(), "cached raster delta at {} threads", threads);
            prop_assert_eq!(t.rms.to_bits(), cached.rms.to_bits(), "cached raster rms at {} threads", threads);
        }
    }
}
