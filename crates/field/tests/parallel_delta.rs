//! Property tests for the parallel evaluation engine: the `_with`
//! quadrature variants must be **bit-identical** to their serial
//! counterparts for arbitrary fields, grid shapes, and thread counts.

use cps_field::delta::{
    intersection_volume, intersection_volume_with, union_volume, union_volume_with,
    volume_difference, volume_difference_with,
};
use cps_field::{Field, GaussianBlob, GaussianMixtureField, Parallelism, ReconstructedSurface};
use cps_geometry::{GridSpec, Point2, Rect};
use proptest::prelude::*;

const SIDE: f64 = 10.0;

fn region() -> Rect {
    Rect::square(SIDE).unwrap()
}

/// Random Gaussian-mixture fields: smooth but spatially busy.
fn blobs_strategy() -> impl Strategy<Value = GaussianMixtureField> {
    prop::collection::vec((0.5..9.5f64, 0.5..9.5f64, 0.5..3.0f64, -4.0..4.0f64), 1..5).prop_map(
        |blobs| {
            GaussianMixtureField::new(
                0.5,
                blobs
                    .into_iter()
                    .map(|(x, y, sigma, amp)| {
                        GaussianBlob::isotropic(Point2::new(x, y), sigma, amp)
                    })
                    .collect(),
            )
        },
    )
}

/// Random odd-shaped grids (non-square on purpose: row sharding must
/// not assume nx == ny).
fn grid_strategy() -> impl Strategy<Value = GridSpec> {
    (2..40usize, 2..40usize).prop_map(|(nx, ny)| GridSpec::new(region(), nx, ny).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The tentpole determinism guarantee: δ computed in parallel is
    /// bit-for-bit the serial δ, for every thread count.
    #[test]
    fn parallel_volume_difference_is_bit_identical(
        f in blobs_strategy(),
        g in blobs_strategy(),
        grid in grid_strategy(),
        threads in 1..9usize,
    ) {
        let serial = volume_difference(&f, &g, &grid);
        let parallel = volume_difference_with(&f, &g, &grid, Parallelism::fixed(threads));
        prop_assert_eq!(serial.to_bits(), parallel.to_bits());
        // Auto must agree too, whatever the machine's core count is.
        let auto = volume_difference_with(&f, &g, &grid, Parallelism::auto());
        prop_assert_eq!(serial.to_bits(), auto.to_bits());
    }

    /// Union/intersection quadratures share the same engine and must
    /// share the same guarantee (Theorem 3.1 link: u − i == δ).
    #[test]
    fn parallel_union_and_intersection_are_bit_identical(
        f in blobs_strategy(),
        g in blobs_strategy(),
        threads in 1..9usize,
    ) {
        let grid = GridSpec::new(region(), 33, 21).unwrap();
        let par = Parallelism::fixed(threads);
        prop_assert_eq!(
            union_volume(&f, &g, &grid).to_bits(),
            union_volume_with(&f, &g, &grid, par).to_bits()
        );
        prop_assert_eq!(
            intersection_volume(&f, &g, &grid).to_bits(),
            intersection_volume_with(&f, &g, &grid, par).to_bits()
        );
    }

    /// The reconstruction surface is the paper's hot consumer: its
    /// point-location cache must not break determinism when evaluated
    /// from many threads.
    #[test]
    fn parallel_delta_against_reconstruction_is_bit_identical(
        f in blobs_strategy(),
        rows in prop::collection::vec((0.5..9.5f64, 0.5..9.5f64), 8..20),
        threads in 1..9usize,
    ) {
        let positions: Vec<Point2> = region()
            .corners()
            .into_iter()
            .chain(rows.into_iter().map(|(x, y)| Point2::new(x, y)))
            .collect();
        let samples: Vec<f64> = positions.iter().map(|&p| f.value(p)).collect();
        let surf = ReconstructedSurface::from_samples(region(), &positions, &samples).unwrap();
        let grid = GridSpec::new(region(), 41, 41).unwrap();
        let serial = volume_difference(&f, &surf, &grid);
        let parallel = volume_difference_with(&f, &surf, &grid, Parallelism::fixed(threads));
        prop_assert_eq!(serial.to_bits(), parallel.to_bits());
    }
}
