//! Property tests for the incremental δ engine: through arbitrary
//! insertion/move sequences the tile cache must (i) track the full
//! row-order quadrature within 1e-9 and (ii) stay **bit-identical**
//! across thread counts and invalidation histories.

use cps_field::delta::{rms_difference, volume_difference};
use cps_field::{
    DeltaCache, Field, GaussianBlob, GaussianMixtureField, Parallelism, ReconstructedSurface,
};
use cps_geometry::{GridSpec, Point2, Rect};
use proptest::prelude::*;

const SIDE: f64 = 10.0;

fn region() -> Rect {
    Rect::square(SIDE).unwrap()
}

/// Random Gaussian-mixture fields: smooth but spatially busy.
fn blobs_strategy() -> impl Strategy<Value = GaussianMixtureField> {
    prop::collection::vec((0.5..9.5f64, 0.5..9.5f64, 0.5..3.0f64, -4.0..4.0f64), 1..5).prop_map(
        |blobs| {
            GaussianMixtureField::new(
                0.5,
                blobs
                    .into_iter()
                    .map(|(x, y, sigma, amp)| {
                        GaussianBlob::isotropic(Point2::new(x, y), sigma, amp)
                    })
                    .collect(),
            )
        },
    )
}

/// An edit sequence: `true` inserts a node at (x, y); `false` moves
/// an existing non-corner node there.
fn edits_strategy() -> impl Strategy<Value = Vec<(bool, f64, f64, prop::sample::Index)>> {
    prop::collection::vec(
        (
            any::<bool>(),
            0.5..9.5f64,
            0.5..9.5f64,
            any::<prop::sample::Index>(),
        ),
        1..8,
    )
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * b.abs().max(1.0)
}

/// Applies one edit to the deployment (corners are pinned so the
/// surface never collapses below three vertices).
fn apply_edit(points: &mut Vec<Point2>, edit: &(bool, f64, f64, prop::sample::Index)) {
    let &(insert, x, y, which) = edit;
    if insert || points.len() <= 4 {
        points.push(Point2::new(x, y));
    } else {
        let i = 4 + which.index(points.len() - 4);
        points[i] = Point2::new(x, y);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The tentpole consistency guarantee: after every insertion or
    /// move, refreshing the cache agrees with recomputing δ and the
    /// RMS from scratch.
    #[test]
    fn cache_tracks_full_quadrature_through_random_edits(
        f in blobs_strategy(),
        initial in prop::collection::vec((0.5..9.5f64, 0.5..9.5f64), 6..14),
        edits in edits_strategy(),
        threads in 1..9usize,
    ) {
        let grid = GridSpec::new(region(), 41, 37).unwrap();
        let par = Parallelism::fixed(threads);
        let mut points: Vec<Point2> = region()
            .corners()
            .into_iter()
            .chain(initial.into_iter().map(|(x, y)| Point2::new(x, y)))
            .collect();
        let mut cache = DeltaCache::new(&f, &grid, par);
        for edit in &edits {
            apply_edit(&mut points, edit);
            let samples: Vec<f64> = points.iter().map(|&p| f.value(p)).collect();
            let surface =
                ReconstructedSurface::from_samples(region(), &points, &samples).unwrap();
            let totals = cache.refresh(&surface, par);
            let full_delta = volume_difference(&f, &surface, &grid);
            let full_rms = rms_difference(&f, &surface, &grid);
            prop_assert!(
                close(totals.delta, full_delta),
                "delta diverged: cached {} vs full {}",
                totals.delta,
                full_delta
            );
            prop_assert!(
                close(totals.rms, full_rms),
                "rms diverged: cached {} vs full {}",
                totals.rms,
                full_rms
            );
        }
    }

    /// Determinism across schedules: the same edit sequence must give
    /// bit-identical cached δ whether refreshed serially, on two
    /// threads, or on eight — and regardless of how many tiles each
    /// refresh happened to dirty.
    #[test]
    fn cached_delta_is_bit_identical_across_thread_counts(
        f in blobs_strategy(),
        initial in prop::collection::vec((0.5..9.5f64, 0.5..9.5f64), 6..12),
        edits in edits_strategy(),
    ) {
        let grid = GridSpec::new(region(), 33, 29).unwrap();
        let base: Vec<Point2> = region()
            .corners()
            .into_iter()
            .chain(initial.into_iter().map(|(x, y)| Point2::new(x, y)))
            .collect();
        let mut trajectories: Vec<Vec<u64>> = Vec::new();
        for threads in [1usize, 2, 8] {
            let par = Parallelism::fixed(threads);
            let mut points = base.clone();
            let mut cache = DeltaCache::new(&f, &grid, par);
            let mut bits = Vec::new();
            for edit in &edits {
                apply_edit(&mut points, edit);
                let samples: Vec<f64> = points.iter().map(|&p| f.value(p)).collect();
                let surface =
                    ReconstructedSurface::from_samples(region(), &points, &samples).unwrap();
                bits.push(cache.refresh(&surface, par).delta.to_bits());
            }
            trajectories.push(bits);
        }
        prop_assert_eq!(&trajectories[0], &trajectories[1]);
        prop_assert_eq!(&trajectories[0], &trajectories[2]);
    }
}
