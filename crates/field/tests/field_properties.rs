//! Property tests on the field substrate.

use cps_field::{
    delta, Field, GaussianBlob, GaussianMixtureField, GridField, KeyframeField, TimeVaryingField,
};
use cps_geometry::{GridSpec, Point2, Rect};
use proptest::prelude::*;

fn blobs_strategy() -> impl Strategy<Value = GaussianMixtureField> {
    prop::collection::vec(
        (2.0f64..48.0, 2.0f64..48.0, -15.0f64..30.0, 1.5f64..9.0),
        0..5,
    )
    .prop_map(|raw| {
        GaussianMixtureField::new(
            4.0,
            raw.into_iter()
                .map(|(x, y, a, s)| GaussianBlob::isotropic(Point2::new(x, y), a, s))
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Rasterizing any field onto a grid reproduces it exactly at the
    /// grid points and within the field's local variation between them.
    #[test]
    fn grid_field_round_trips_at_grid_points(field in blobs_strategy()) {
        let spec = GridSpec::new(Rect::square(50.0).unwrap(), 26, 26).unwrap();
        let raster = GridField::from_field(spec, &field);
        for (i, j, p) in spec.iter() {
            prop_assert!((raster.at(i, j) - field.value(p)).abs() < 1e-12);
            prop_assert!((raster.value(p) - field.value(p)).abs() < 1e-9);
        }
    }

    /// δ between a field and its rasterization shrinks as the raster
    /// refines.
    #[test]
    fn rasterization_error_shrinks_with_resolution(field in blobs_strategy()) {
        let region = Rect::square(50.0).unwrap();
        let eval = GridSpec::new(region, 41, 41).unwrap();
        let coarse = GridField::from_field(GridSpec::new(region, 6, 6).unwrap(), &field);
        let fine = GridField::from_field(GridSpec::new(region, 21, 21).unwrap(), &field);
        let d_coarse = delta::volume_difference(&field, &coarse, &eval);
        let d_fine = delta::volume_difference(&field, &fine, &eval);
        prop_assert!(d_fine <= d_coarse + 1e-9, "fine {d_fine} vs coarse {d_coarse}");
    }

    /// Keyframe interpolation is bounded by its bracketing frames at
    /// every point and instant.
    #[test]
    fn keyframes_stay_within_their_brackets(
        lo in 0.0f64..5.0,
        hi in 6.0f64..12.0,
        t in 0.0f64..20.0,
        px in 0.0f64..10.0,
        py in 0.0f64..10.0,
    ) {
        let spec = GridSpec::new(Rect::square(10.0).unwrap(), 6, 6).unwrap();
        let f0 = GridField::from_fn(spec, |_| lo);
        let f1 = GridField::from_fn(spec, |_| hi);
        let kf = KeyframeField::new(vec![(5.0, f0), (15.0, f1)]).unwrap();
        let v = kf.value_at(Point2::new(px, py), t);
        prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12, "{v} outside [{lo}, {hi}]");
    }

    /// The δ metric is a pseudometric on fields: symmetric, zero on the
    /// diagonal, triangle inequality.
    #[test]
    fn delta_is_a_pseudometric(f in blobs_strategy(), g in blobs_strategy(), h in blobs_strategy()) {
        let grid = GridSpec::new(Rect::square(50.0).unwrap(), 21, 21).unwrap();
        let dfg = delta::volume_difference(&f, &g, &grid);
        let dgf = delta::volume_difference(&g, &f, &grid);
        prop_assert!((dfg - dgf).abs() < 1e-9);
        prop_assert_eq!(delta::volume_difference(&f, &f, &grid), 0.0);
        let dfh = delta::volume_difference(&f, &h, &grid);
        let dhg = delta::volume_difference(&h, &g, &grid);
        prop_assert!(dfg <= dfh + dhg + 1e-9);
    }
}
