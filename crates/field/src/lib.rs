//! Environment-field substrate for the CPS distribution workspace.
//!
//! The paper models an environmental quantity over a region as a scalar
//! field `z = f(x, y)` — a *virtual surface* in 3-D — and, when the
//! quantity drifts, as a time-varying field `z = f(x(t), y(t))`. This
//! crate provides:
//!
//! * the [`Field`] / [`TimeVaryingField`] traits and adapters between
//!   them ([`Static`], [`Frozen`]);
//! * analytic surfaces ([`PeaksField`] — Matlab's `peaks`, used by the
//!   paper's Fig. 3 — plus planes, paraboloids, Gaussian mixtures);
//! * sampled surfaces on regular grids with bilinear interpolation
//!   ([`GridField`]);
//! * time dynamics ([`DriftingField`], [`DiurnalField`],
//!   [`KeyframeField`]);
//! * the reconstruction surface `z* = DT(x, y)` built from scattered
//!   samples by Delaunay triangulation ([`ReconstructedSurface`]);
//! * the paper's quality metric `δ` — the volume difference between two
//!   surfaces (Eqn. 2) — in [`delta`];
//! * the incremental δ engine in [`incremental`] ([`DeltaCache`]): a
//!   tile cache of partial δ integrals that re-integrates only the
//!   tiles whose reconstruction triangles changed;
//! * the row-sharded parallel evaluation engine in [`par`]
//!   ([`Parallelism`]), whose grid sweeps are bit-identical to serial
//!   at any thread count and run on a persistent worker pool;
//! * the triangle-major scanline quadrature kernel in [`raster`]
//!   ([`Kernel`], [`RasterPlan`]): plane each alive triangle once and
//!   DDA-sweep its row spans instead of locating per grid cell.
//!
//! # Example
//!
//! ```
//! use cps_field::{delta, Field, PeaksField, ReconstructedSurface};
//! use cps_geometry::{GridSpec, Point2, Rect};
//!
//! let region = Rect::square(100.0).unwrap();
//! let reference = PeaksField::new(region, 8.0);
//! // Sample the four corners and the centre, reconstruct, and measure δ.
//! let positions: Vec<Point2> = region
//!     .corners()
//!     .into_iter()
//!     .chain([Point2::new(50.0, 50.0)])
//!     .collect();
//! let samples: Vec<f64> = positions.iter().map(|&p| reference.value(p)).collect();
//! let rebuilt = ReconstructedSurface::from_samples(region, &positions, &samples).unwrap();
//! let grid = GridSpec::new(region, 51, 51).unwrap();
//! let d = delta::volume_difference(&reference, &rebuilt, &grid);
//! assert!(d > 0.0); // five samples cannot capture peaks exactly
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod analytic;
pub mod calculus;
pub mod delta;
mod dynamics;
mod error;
mod grid;
pub mod incremental;
mod noise;
mod ops;
pub mod par;
pub mod raster;
mod reconstruct;
mod traits;

pub use analytic::{
    GaussianBlob, GaussianMixtureField, ParaboloidField, PeaksField, PlaneField, RidgeField,
};
pub use dynamics::{DiurnalField, DriftingField, KeyframeField};
pub use error::FieldError;
pub use grid::GridField;
pub use incremental::{DeltaCache, DeltaTotals};
pub use noise::NoiseField;
pub use ops::{ClampedField, ScaledField, SumField, TranslatedField};
pub use par::Parallelism;
pub use raster::{Kernel, RasterPlan};
pub use reconstruct::ReconstructedSurface;
pub use traits::{Field, Frozen, Static, TimeVaryingField};
