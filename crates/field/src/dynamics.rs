//! Time dynamics: wrappers turning static fields into time-varying ones.

use cps_geometry::Point2;
use cps_linalg::Vec2;

use crate::{Field, FieldError, GridField, TimeVaryingField};

/// A static field advected with a constant velocity: the pattern drifts
/// across the region over time, the way a sun-fleck pattern slides with
/// the sun's angle.
///
/// `value_at(p, t) = inner.value(p − velocity·t)`
///
/// # Example
///
/// ```
/// use cps_field::{DriftingField, GaussianBlob, TimeVaryingField};
/// use cps_geometry::Point2;
/// use cps_linalg::Vec2;
///
/// let blob = GaussianBlob::isotropic(Point2::new(0.0, 0.0), 1.0, 1.0);
/// let f = DriftingField::new(blob, Vec2::new(1.0, 0.0));
/// // After 5 time units the peak has moved to x = 5.
/// assert!((f.value_at(Point2::new(5.0, 0.0), 5.0) - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftingField<F> {
    inner: F,
    velocity: Vec2,
}

impl<F: Field> DriftingField<F> {
    /// Creates a field drifting at `velocity` (region units per time
    /// unit).
    pub fn new(inner: F, velocity: Vec2) -> Self {
        DriftingField { inner, velocity }
    }

    /// The drift velocity.
    pub fn velocity(&self) -> Vec2 {
        self.velocity
    }
}

impl<F: Field> TimeVaryingField for DriftingField<F> {
    fn value_at(&self, p: Point2, t: f64) -> f64 {
        self.inner.value(Point2::new(
            p.x - self.velocity.x * t,
            p.y - self.velocity.y * t,
        ))
    }
}

/// A field whose amplitude is modulated by a diurnal (sinusoidal)
/// cycle around a base level, mimicking light/temperature daily swings.
///
/// `value_at(p, t) = base(p) · (1 + depth·sin(2π·(t − phase)/period))`
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiurnalField<F> {
    inner: F,
    period: f64,
    depth: f64,
    phase: f64,
}

impl<F: Field> DiurnalField<F> {
    /// Creates a diurnal modulation with the given `period` (time
    /// units per cycle), relative modulation `depth` (0 = constant) and
    /// `phase` offset.
    ///
    /// # Errors
    ///
    /// Returns [`FieldError::NonFiniteValue`] when `period` is zero or
    /// not finite.
    pub fn new(inner: F, period: f64, depth: f64, phase: f64) -> Result<Self, FieldError> {
        if period == 0.0 || !period.is_finite() || !depth.is_finite() {
            return Err(FieldError::NonFiniteValue);
        }
        Ok(DiurnalField {
            inner,
            period,
            depth,
            phase,
        })
    }
}

impl<F: Field> TimeVaryingField for DiurnalField<F> {
    fn value_at(&self, p: Point2, t: f64) -> f64 {
        let m = 1.0 + self.depth * (std::f64::consts::TAU * (t - self.phase) / self.period).sin();
        self.inner.value(p) * m
    }
}

/// A time-varying field defined by snapshots ("keyframes") at known
/// instants, linearly interpolated in time and clamped outside the
/// covered interval. Backed by [`GridField`] snapshots — the natural
/// output of an hourly sensing trace.
#[derive(Debug, Clone, PartialEq)]
pub struct KeyframeField {
    /// `(time, snapshot)` pairs, strictly increasing in time.
    frames: Vec<(f64, GridField)>,
}

impl KeyframeField {
    /// Creates a keyframe field.
    ///
    /// # Errors
    ///
    /// Returns [`FieldError::InvalidKeyframes`] when `frames` is empty
    /// or times are not strictly increasing, and
    /// [`FieldError::LengthMismatch`] when snapshots use different grids.
    pub fn new(frames: Vec<(f64, GridField)>) -> Result<Self, FieldError> {
        if frames.is_empty() {
            return Err(FieldError::InvalidKeyframes);
        }
        if frames.windows(2).any(|w| w[0].0 >= w[1].0) {
            return Err(FieldError::InvalidKeyframes);
        }
        let spec = *frames[0].1.spec();
        if frames.iter().any(|(_, f)| *f.spec() != spec) {
            return Err(FieldError::LengthMismatch {
                positions: spec.len(),
                values: 0,
            });
        }
        Ok(KeyframeField { frames })
    }

    /// Time of the first keyframe.
    pub fn start_time(&self) -> f64 {
        self.frames[0].0
    }

    /// Time of the last keyframe.
    pub fn end_time(&self) -> f64 {
        self.frames[self.frames.len() - 1].0
    }

    /// Number of keyframes.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Always `false` (construction rejects empty frame lists).
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl TimeVaryingField for KeyframeField {
    fn value_at(&self, p: Point2, t: f64) -> f64 {
        let frames = &self.frames;
        if t <= frames[0].0 {
            return frames[0].1.value(p);
        }
        if t >= frames[frames.len() - 1].0 {
            return frames[frames.len() - 1].1.value(p);
        }
        // Find the bracketing pair.
        let hi = frames.partition_point(|(ft, _)| *ft <= t);
        let (t0, ref f0) = frames[hi - 1];
        let (t1, ref f1) = frames[hi];
        let w = (t - t0) / (t1 - t0);
        f0.value(p) * (1.0 - w) + f1.value(p) * w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PlaneField;
    use cps_geometry::{GridSpec, Rect};

    fn snapshot(level: f64) -> GridField {
        let spec = GridSpec::new(Rect::square(10.0).unwrap(), 3, 3).unwrap();
        GridField::from_fn(spec, |_| level)
    }

    #[test]
    fn drift_moves_pattern() {
        let f = DriftingField::new(PlaneField::new(1.0, 0.0, 0.0), Vec2::new(2.0, 0.0));
        let p = Point2::new(10.0, 0.0);
        assert_eq!(f.value_at(p, 0.0), 10.0);
        assert_eq!(f.value_at(p, 3.0), 4.0);
        assert_eq!(f.velocity(), Vec2::new(2.0, 0.0));
    }

    #[test]
    fn diurnal_modulates_and_validates() {
        let f = DiurnalField::new(PlaneField::new(0.0, 0.0, 10.0), 24.0, 0.5, 0.0).unwrap();
        let p = Point2::ORIGIN;
        assert!((f.value_at(p, 0.0) - 10.0).abs() < 1e-12);
        assert!((f.value_at(p, 6.0) - 15.0).abs() < 1e-12); // quarter cycle
        assert!((f.value_at(p, 18.0) - 5.0).abs() < 1e-12);
        assert!(DiurnalField::new(PlaneField::default(), 0.0, 0.5, 0.0).is_err());
        assert!(DiurnalField::new(PlaneField::default(), f64::NAN, 0.5, 0.0).is_err());
    }

    #[test]
    fn keyframes_interpolate_and_clamp() {
        let f = KeyframeField::new(vec![
            (0.0, snapshot(0.0)),
            (10.0, snapshot(10.0)),
            (20.0, snapshot(0.0)),
        ])
        .unwrap();
        let p = Point2::new(5.0, 5.0);
        assert_eq!(f.value_at(p, -5.0), 0.0); // clamp before
        assert_eq!(f.value_at(p, 0.0), 0.0);
        assert_eq!(f.value_at(p, 5.0), 5.0); // halfway up
        assert_eq!(f.value_at(p, 10.0), 10.0);
        assert_eq!(f.value_at(p, 15.0), 5.0); // halfway down
        assert_eq!(f.value_at(p, 99.0), 0.0); // clamp after
        assert_eq!(f.len(), 3);
        assert_eq!(f.start_time(), 0.0);
        assert_eq!(f.end_time(), 20.0);
    }

    #[test]
    fn keyframes_validate() {
        assert!(matches!(
            KeyframeField::new(vec![]),
            Err(FieldError::InvalidKeyframes)
        ));
        assert!(matches!(
            KeyframeField::new(vec![(1.0, snapshot(0.0)), (1.0, snapshot(1.0))]),
            Err(FieldError::InvalidKeyframes)
        ));
        let other_spec = GridSpec::new(Rect::square(10.0).unwrap(), 5, 5).unwrap();
        let other = GridField::from_fn(other_spec, |_| 0.0);
        assert!(matches!(
            KeyframeField::new(vec![(0.0, snapshot(0.0)), (1.0, other)]),
            Err(FieldError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn frozen_adapter_over_dynamics() {
        let f = DriftingField::new(PlaneField::new(1.0, 0.0, 0.0), Vec2::new(1.0, 0.0));
        let snap = f.at_time(2.0);
        assert_eq!(snap.value(Point2::new(5.0, 0.0)), 3.0);
    }
}
