//! The paper's surface-difference metric `δ` (Section 3.3).
//!
//! The difference between the real surface `z = f(x, y)` and the rebuilt
//! surface `z* = DT(x, y)` is defined as the volume difference between
//! the polytopes under the two surfaces:
//!
//! ```text
//! δ(V(z), V(z*)) = |V(z) ∪ V(z*)| − |V(z) ∩ V(z*)|
//!               = ∬_A |f(x,y) − DT(x,y)| dx dy        (Eqn. 2)
//! ```
//!
//! All integrals are evaluated by grid quadrature over a [`GridSpec`]
//! with trapezoidal weights (boundary points count half, corners a
//! quarter), which converges at O(h²) for the piecewise-smooth surfaces
//! used in the experiments.
//!
//! # Parallelism and determinism
//!
//! Every quadrature here is evaluated row by row: each grid row is
//! summed left to right into a private partial, and the row partials
//! are folded in row order. Because that operation order never depends
//! on how rows are distributed, the `_with` variants taking a
//! [`Parallelism`] return results **bit-identical** to the serial
//! functions at any thread count (property-tested in
//! `tests/parallel_delta.rs`).

use cps_geometry::GridSpec;

use crate::par::{map_rows, Parallelism};
use crate::Field;

/// Quadrature weight for grid point `(i, j)`: trapezoidal rule. Shared
/// with the incremental tile cache so both integrate the identical
/// quadrature.
#[inline]
pub(crate) fn weight(grid: &GridSpec, i: usize, j: usize) -> f64 {
    let wx = if i == 0 || i == grid.nx() - 1 {
        0.5
    } else {
        1.0
    };
    let wy = if j == 0 || j == grid.ny() - 1 {
        0.5
    } else {
        1.0
    };
    wx * wy
}

/// Weighted sum of `combine(f, g)` over row `j`, left to right — the
/// unit of work the parallel engine shards, and the canonical operand
/// order both serial and parallel reductions share.
#[inline]
fn row_sum<F, G, C>(f: &F, g: &G, grid: &GridSpec, j: usize, combine: &C) -> f64
where
    F: Field,
    G: Field,
    C: Fn(f64, f64) -> f64,
{
    let mut row = 0.0;
    for i in 0..grid.nx() {
        let p = grid.point(i, j);
        row += weight(grid, i, j) * combine(f.value(p), g.value(p));
    }
    row
}

/// Integrates an arbitrary pointwise combination of two fields over the
/// grid (row-by-row reduction; see the module docs).
pub fn integrate2<F, G, C>(f: &F, g: &G, grid: &GridSpec, combine: C) -> f64
where
    F: Field,
    G: Field,
    C: Fn(f64, f64) -> f64,
{
    let _timer = cps_obs::time(cps_obs::Phase::DeltaQuadrature, 1);
    let mut total = 0.0;
    for j in 0..grid.ny() {
        total += row_sum(f, g, grid, j, &combine);
    }
    total * grid.cell_area()
}

/// Parallel [`integrate2`]: rows are sharded across `par.threads()`
/// scoped threads and reduced in row order, so the result is
/// bit-identical to the serial function.
pub fn integrate2_with<F, G, C>(f: &F, g: &G, grid: &GridSpec, par: Parallelism, combine: C) -> f64
where
    F: Field + Sync,
    G: Field + Sync,
    C: Fn(f64, f64) -> f64 + Sync,
{
    let _timer = cps_obs::time(cps_obs::Phase::DeltaQuadrature, par.threads());
    let rows = map_rows(grid.ny(), par, |j| row_sum(f, g, grid, j, &combine));
    let mut total = 0.0;
    for row in rows {
        total += row;
    }
    total * grid.cell_area()
}

/// The paper's `δ` (Eqn. 2): `∬ |f − g| dA` over the grid's region.
///
/// # Example
///
/// ```
/// use cps_field::{delta::volume_difference, PlaneField};
/// use cps_geometry::{GridSpec, Rect};
///
/// let grid = GridSpec::new(Rect::square(10.0).unwrap(), 11, 11).unwrap();
/// let f = PlaneField::new(0.0, 0.0, 3.0);
/// let g = PlaneField::new(0.0, 0.0, 1.0);
/// let d = volume_difference(&f, &g, &grid);
/// assert!((d - 200.0).abs() < 1e-9); // |3−1| × area 100
/// ```
pub fn volume_difference<F: Field, G: Field>(f: &F, g: &G, grid: &GridSpec) -> f64 {
    integrate2(f, g, grid, |a, b| (a - b).abs())
}

/// Parallel [`volume_difference`]; bit-identical to the serial function
/// at any thread count.
pub fn volume_difference_with<F: Field + Sync, G: Field + Sync>(
    f: &F,
    g: &G,
    grid: &GridSpec,
    par: Parallelism,
) -> f64 {
    integrate2_with(f, g, grid, par, |a, b| (a - b).abs())
}

/// Volume under a single surface, `∬ f dA` (Eqn. 4/5). For surfaces that
/// dip below zero the integral is signed.
pub fn volume<F: Field>(f: &F, grid: &GridSpec) -> f64 {
    let _timer = cps_obs::time(cps_obs::Phase::DeltaQuadrature, 1);
    let mut total = 0.0;
    for j in 0..grid.ny() {
        let mut row = 0.0;
        for i in 0..grid.nx() {
            row += weight(grid, i, j) * f.value(grid.point(i, j));
        }
        total += row;
    }
    total * grid.cell_area()
}

/// Parallel [`volume`]; bit-identical to the serial function at any
/// thread count.
pub fn volume_with<F: Field + Sync>(f: &F, grid: &GridSpec, par: Parallelism) -> f64 {
    let _timer = cps_obs::time(cps_obs::Phase::DeltaQuadrature, par.threads());
    let rows = map_rows(grid.ny(), par, |j| {
        let mut row = 0.0;
        for i in 0..grid.nx() {
            row += weight(grid, i, j) * f.value(grid.point(i, j));
        }
        row
    });
    let mut total = 0.0;
    for row in rows {
        total += row;
    }
    total * grid.cell_area()
}

/// `|V(f) ∪ V(g)| = ∬ max(f, g) dA` (Eqn. 6).
pub fn union_volume<F: Field, G: Field>(f: &F, g: &G, grid: &GridSpec) -> f64 {
    integrate2(f, g, grid, f64::max)
}

/// Parallel [`union_volume`]; bit-identical to the serial function at
/// any thread count.
pub fn union_volume_with<F: Field + Sync, G: Field + Sync>(
    f: &F,
    g: &G,
    grid: &GridSpec,
    par: Parallelism,
) -> f64 {
    integrate2_with(f, g, grid, par, f64::max)
}

/// `|V(f) ∩ V(g)| = ∬ min(f, g) dA` (Eqn. 7).
pub fn intersection_volume<F: Field, G: Field>(f: &F, g: &G, grid: &GridSpec) -> f64 {
    integrate2(f, g, grid, f64::min)
}

/// Parallel [`intersection_volume`]; bit-identical to the serial
/// function at any thread count.
pub fn intersection_volume_with<F: Field + Sync, G: Field + Sync>(
    f: &F,
    g: &G,
    grid: &GridSpec,
    par: Parallelism,
) -> f64 {
    integrate2_with(f, g, grid, par, f64::min)
}

/// Weighted-less sum of squared differences over row `j`.
#[inline]
fn row_sum_squares<F: Field, G: Field>(f: &F, g: &G, grid: &GridSpec, j: usize) -> f64 {
    let mut row = 0.0;
    for i in 0..grid.nx() {
        let p = grid.point(i, j);
        let d = f.value(p) - g.value(p);
        row += d * d;
    }
    row
}

/// Root-mean-square pointwise difference over the grid — a secondary
/// error metric reported alongside δ in the experiment harnesses.
pub fn rms_difference<F: Field, G: Field>(f: &F, g: &G, grid: &GridSpec) -> f64 {
    let _timer = cps_obs::time(cps_obs::Phase::DeltaQuadrature, 1);
    let mut ss = 0.0;
    for j in 0..grid.ny() {
        ss += row_sum_squares(f, g, grid, j);
    }
    (ss / grid.len() as f64).sqrt()
}

/// Parallel [`rms_difference`]; bit-identical to the serial function at
/// any thread count.
pub fn rms_difference_with<F: Field + Sync, G: Field + Sync>(
    f: &F,
    g: &G,
    grid: &GridSpec,
    par: Parallelism,
) -> f64 {
    let _timer = cps_obs::time(cps_obs::Phase::DeltaQuadrature, par.threads());
    let rows = map_rows(grid.ny(), par, |j| row_sum_squares(f, g, grid, j));
    let mut ss = 0.0;
    for row in rows {
        ss += row;
    }
    (ss / grid.len() as f64).sqrt()
}

/// δ and RMS of `|reference − surface|` under the chosen
/// [`Kernel`](crate::Kernel): [`Walk`](crate::Kernel::Walk) runs the
/// classic per-cell locate-walk pair ([`volume_difference_with`] +
/// [`rms_difference_with`], two sweeps),
/// [`Raster`](crate::Kernel::Raster) the fused scanline kernel
/// ([`crate::raster::delta_rms_raster`], one sweep). Both agree within
/// quadrature tolerance (≤1e-9 relative) and each is bit-identical
/// across thread counts.
pub fn surface_delta_rms_with<F: Field + Sync>(
    reference: &F,
    surface: &crate::ReconstructedSurface,
    grid: &GridSpec,
    par: Parallelism,
    kernel: crate::Kernel,
) -> crate::DeltaTotals {
    match kernel {
        crate::Kernel::Walk => crate::DeltaTotals {
            delta: volume_difference_with(reference, surface, grid, par),
            rms: rms_difference_with(reference, surface, grid, par),
        },
        crate::Kernel::Raster => crate::raster::delta_rms_raster(reference, surface, grid, par),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GaussianBlob, PeaksField, PlaneField};
    use cps_geometry::{Point2, Rect};

    fn grid() -> GridSpec {
        GridSpec::new(Rect::square(10.0).unwrap(), 21, 21).unwrap()
    }

    #[test]
    fn delta_of_identical_surfaces_is_zero() {
        let f = PeaksField::new(Rect::square(10.0).unwrap(), 5.0);
        assert_eq!(volume_difference(&f, &f, &grid()), 0.0);
    }

    #[test]
    fn delta_is_symmetric_and_nonnegative() {
        let f = PlaneField::new(1.0, 0.0, 0.0);
        let g = GaussianBlob::isotropic(Point2::new(5.0, 5.0), 4.0, 2.0);
        let d1 = volume_difference(&f, &g, &grid());
        let d2 = volume_difference(&g, &f, &grid());
        assert!(d1 > 0.0);
        assert!((d1 - d2).abs() < 1e-12);
    }

    #[test]
    fn union_minus_intersection_equals_delta() {
        // Theorem 3.1: |V∪V*| − |V∩V*| = ∬|f − g|.
        let f = PlaneField::new(0.5, -0.2, 3.0);
        let g = GaussianBlob::isotropic(Point2::new(4.0, 6.0), 5.0, 2.0);
        let u = union_volume(&f, &g, &grid());
        let i = intersection_volume(&f, &g, &grid());
        let d = volume_difference(&f, &g, &grid());
        assert!((u - i - d).abs() < 1e-9);
    }

    #[test]
    fn volume_of_constant_field() {
        let f = PlaneField::new(0.0, 0.0, 2.5);
        assert!((volume(&f, &grid()) - 250.0).abs() < 1e-9);
    }

    #[test]
    fn volume_of_linear_ramp() {
        // ∬ x dA over [0,10]² = 500.
        let f = PlaneField::new(1.0, 0.0, 0.0);
        assert!((volume(&f, &grid()) - 500.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_minimal_grid_quadrature_is_exact() {
        // The smallest legal grid is 2×2: every node is a corner, so
        // every trapezoid weight is 0.25 and one cell covers the whole
        // region. Constant and bilinear integrands are exact there.
        let rect = Rect::square(10.0).unwrap();
        let tiny = GridSpec::new(rect, 2, 2).unwrap();
        let c = PlaneField::new(0.0, 0.0, 3.0);
        assert!((volume(&c, &tiny) - 300.0).abs() < 1e-12);
        // ∬ x dA over [0,10]² = 500: the trapezoid rule is exact for
        // linear integrands even on a single cell.
        let ramp = PlaneField::new(1.0, 0.0, 0.0);
        assert!((volume(&ramp, &tiny) - 500.0).abs() < 1e-12);
        // δ against itself stays exactly zero, and the parallel engine
        // agrees bit-for-bit even when rows outnumber workers requests.
        assert_eq!(volume_difference(&c, &c, &tiny), 0.0);
        let serial = volume_difference(&c, &ramp, &tiny);
        for par in [Parallelism::fixed(2), Parallelism::fixed(7)] {
            let p = volume_difference_with(&c, &ramp, &tiny, par);
            assert_eq!(serial.to_bits(), p.to_bits());
        }
        // Asymmetric degenerate strip: 2 columns, many rows.
        let strip = GridSpec::new(rect, 2, 9).unwrap();
        assert!((volume(&c, &strip) - 300.0).abs() < 1e-12);
    }

    #[test]
    fn triangle_inequality_on_delta() {
        let f = PlaneField::new(1.0, 0.0, 0.0);
        let g = PlaneField::new(0.0, 1.0, 0.0);
        let h = GaussianBlob::isotropic(Point2::new(5.0, 5.0), 3.0, 3.0);
        let fg = volume_difference(&f, &g, &grid());
        let fh = volume_difference(&f, &h, &grid());
        let hg = volume_difference(&h, &g, &grid());
        assert!(fg <= fh + hg + 1e-9);
    }

    #[test]
    fn rms_difference_of_constant_offset() {
        let f = PlaneField::new(0.0, 0.0, 1.0);
        let g = PlaneField::new(0.0, 0.0, 4.0);
        assert!((rms_difference(&f, &g, &grid()) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_variants_are_bit_identical_to_serial() {
        let f = PeaksField::new(Rect::square(10.0).unwrap(), 5.0);
        let g = GaussianBlob::isotropic(Point2::new(3.0, 7.0), 4.0, 2.0);
        let grid = grid();
        for par in [
            Parallelism::serial(),
            Parallelism::fixed(2),
            Parallelism::fixed(3),
            Parallelism::auto(),
        ] {
            assert_eq!(
                volume_difference_with(&f, &g, &grid, par).to_bits(),
                volume_difference(&f, &g, &grid).to_bits(),
                "volume_difference with {par:?}"
            );
            assert_eq!(
                union_volume_with(&f, &g, &grid, par).to_bits(),
                union_volume(&f, &g, &grid).to_bits()
            );
            assert_eq!(
                intersection_volume_with(&f, &g, &grid, par).to_bits(),
                intersection_volume(&f, &g, &grid).to_bits()
            );
            assert_eq!(
                volume_with(&f, &grid, par).to_bits(),
                volume(&f, &grid).to_bits()
            );
            assert_eq!(
                rms_difference_with(&f, &g, &grid, par).to_bits(),
                rms_difference(&f, &g, &grid).to_bits()
            );
        }
    }

    #[test]
    fn quadrature_refines() {
        // Finer grids converge: compare a coarse and a fine δ on a
        // smooth field against a very fine reference.
        let region = Rect::square(10.0).unwrap();
        let f = PeaksField::new(region, 5.0);
        let g = PlaneField::new(0.0, 0.0, 0.0);
        let coarse = volume_difference(&f, &g, &GridSpec::new(region, 11, 11).unwrap());
        let fine = volume_difference(&f, &g, &GridSpec::new(region, 81, 81).unwrap());
        let reference = volume_difference(&f, &g, &GridSpec::new(region, 161, 161).unwrap());
        assert!((fine - reference).abs() < (coarse - reference).abs());
    }
}
