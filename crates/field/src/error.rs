//! Error type for field construction and evaluation.

use std::error::Error;
use std::fmt;

/// Errors produced when building or evaluating fields.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FieldError {
    /// Sample positions and values differ in length.
    LengthMismatch {
        /// Number of positions supplied.
        positions: usize,
        /// Number of values supplied.
        values: usize,
    },
    /// Too few distinct samples to build a surface (needs ≥ 3
    /// non-collinear points).
    TooFewSamples {
        /// Number of usable samples.
        count: usize,
    },
    /// A sample position fell outside the region of interest.
    SampleOutOfRegion,
    /// A value was NaN or infinite.
    NonFiniteValue,
    /// Keyframes were empty or not strictly increasing in time.
    InvalidKeyframes,
    /// An underlying geometric operation failed.
    Geometry(cps_geometry::GeometryError),
}

impl fmt::Display for FieldError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldError::LengthMismatch { positions, values } => write!(
                f,
                "length mismatch: {positions} positions but {values} values"
            ),
            FieldError::TooFewSamples { count } => {
                write!(f, "too few samples to build a surface: {count}")
            }
            FieldError::SampleOutOfRegion => {
                write!(f, "sample position lies outside the region of interest")
            }
            FieldError::NonFiniteValue => write!(f, "value was NaN or infinite"),
            FieldError::InvalidKeyframes => {
                write!(
                    f,
                    "keyframes must be non-empty and strictly increasing in time"
                )
            }
            FieldError::Geometry(e) => write!(f, "geometry error: {e}"),
        }
    }
}

impl Error for FieldError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FieldError::Geometry(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cps_geometry::GeometryError> for FieldError {
    fn from(e: cps_geometry::GeometryError) -> Self {
        FieldError::Geometry(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = FieldError::LengthMismatch {
            positions: 3,
            values: 2,
        };
        assert!(e.to_string().contains("3 positions"));
        let g: FieldError = cps_geometry::GeometryError::EmptyGrid.into();
        assert!(Error::source(&g).is_some());
        assert!(Error::source(&FieldError::NonFiniteValue).is_none());
    }
}
