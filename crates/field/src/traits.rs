//! The [`Field`] and [`TimeVaryingField`] traits and adapters.

use cps_geometry::{GridSpec, Point2};
use cps_linalg::Summary;

/// A static scalar field `z = f(x, y)` over the plane — the paper's
/// virtual surface.
///
/// Implementations must return finite values for all finite points
/// inside their region of interest; behaviour outside the region is
/// implementation-defined (most fields extend smoothly or clamp).
///
/// The trait is object-safe, so heterogeneous references
/// (`&dyn Field`) can be passed to the evaluation harnesses.
pub trait Field {
    /// Field value at `p`.
    fn value(&self, p: Point2) -> f64;

    /// Samples the field at every point of `grid`, row-major
    /// (`j`-major, matching [`GridSpec::flat_index`]).
    fn sample_grid(&self, grid: &GridSpec) -> Vec<f64>
    where
        Self: Sized,
    {
        let mut out = vec![0.0; grid.len()];
        for (i, j, p) in grid.iter() {
            out[grid.flat_index(i, j)] = self.value(p);
        }
        out
    }

    /// Summary statistics of the field over `grid`.
    fn summarize(&self, grid: &GridSpec) -> Summary
    where
        Self: Sized,
    {
        Summary::from_values(&self.sample_grid(grid))
    }
}

impl<F: Field + ?Sized> Field for &F {
    fn value(&self, p: Point2) -> f64 {
        (**self).value(p)
    }
}

impl<F: Field + ?Sized> Field for Box<F> {
    fn value(&self, p: Point2) -> f64 {
        (**self).value(p)
    }
}

/// A scalar field that also varies with time: `z = f(x, y, t)`.
///
/// Time is measured in the simulation's time unit (minutes in the
/// paper's OSTD experiments).
pub trait TimeVaryingField {
    /// Field value at `p` at time `t`.
    fn value_at(&self, p: Point2, t: f64) -> f64;

    /// Borrows the field frozen at an instant, yielding a [`Field`].
    fn at_time(&self, t: f64) -> Frozen<'_, Self> {
        Frozen { inner: self, t }
    }
}

impl<F: TimeVaryingField + ?Sized> TimeVaryingField for &F {
    fn value_at(&self, p: Point2, t: f64) -> f64 {
        (**self).value_at(p, t)
    }
}

/// Adapter: a static [`Field`] viewed as a (constant) time-varying one.
///
/// # Example
///
/// ```
/// use cps_field::{Field, PlaneField, Static, TimeVaryingField};
/// use cps_geometry::Point2;
///
/// let f = Static::new(PlaneField::new(1.0, 0.0, 0.0));
/// let p = Point2::new(2.0, 5.0);
/// assert_eq!(f.value_at(p, 0.0), f.value_at(p, 100.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Static<F> {
    inner: F,
}

impl<F: Field> Static<F> {
    /// Wraps a static field.
    pub fn new(inner: F) -> Self {
        Static { inner }
    }

    /// Returns the wrapped field.
    pub fn into_inner(self) -> F {
        self.inner
    }
}

impl<F: Field> TimeVaryingField for Static<F> {
    fn value_at(&self, p: Point2, _t: f64) -> f64 {
        self.inner.value(p)
    }
}

impl<F: Field> Field for Static<F> {
    fn value(&self, p: Point2) -> f64 {
        self.inner.value(p)
    }
}

/// Adapter: a [`TimeVaryingField`] frozen at a fixed instant, usable as
/// a static [`Field`]. Produced by [`TimeVaryingField::at_time`].
#[derive(Debug, Clone, Copy)]
pub struct Frozen<'a, F: ?Sized> {
    inner: &'a F,
    t: f64,
}

impl<F: TimeVaryingField + ?Sized> Frozen<'_, F> {
    /// The freeze instant.
    pub fn time(&self) -> f64 {
        self.t
    }
}

impl<F: TimeVaryingField + ?Sized> Field for Frozen<'_, F> {
    fn value(&self, p: Point2) -> f64 {
        self.inner.value_at(p, self.t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_geometry::Rect;

    struct Gradient;
    impl Field for Gradient {
        fn value(&self, p: Point2) -> f64 {
            p.x + 2.0 * p.y
        }
    }

    struct Wave;
    impl TimeVaryingField for Wave {
        fn value_at(&self, p: Point2, t: f64) -> f64 {
            p.x + t
        }
    }

    #[test]
    fn sample_grid_matches_values() {
        let grid = GridSpec::new(Rect::square(2.0).unwrap(), 3, 3).unwrap();
        let samples = Gradient.sample_grid(&grid);
        assert_eq!(samples.len(), 9);
        assert_eq!(samples[grid.flat_index(2, 2)], 6.0);
        assert_eq!(samples[grid.flat_index(1, 0)], 1.0);
    }

    #[test]
    fn summarize_reports_extremes() {
        let grid = GridSpec::new(Rect::square(2.0).unwrap(), 3, 3).unwrap();
        let s = Gradient.summarize(&grid);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 6.0);
    }

    #[test]
    fn reference_impl_forwards() {
        let g = Gradient;
        let r: &dyn Field = &g;
        assert_eq!(r.value(Point2::new(1.0, 1.0)), 3.0);
        let boxed: Box<dyn Field> = Box::new(Gradient);
        assert_eq!(boxed.value(Point2::new(1.0, 1.0)), 3.0);
    }

    #[test]
    fn frozen_fixes_time() {
        let w = Wave;
        let f5 = w.at_time(5.0);
        assert_eq!(f5.time(), 5.0);
        assert_eq!(f5.value(Point2::new(1.0, 0.0)), 6.0);
    }

    #[test]
    fn static_is_time_invariant() {
        let s = Static::new(Gradient);
        let p = Point2::new(1.0, 1.0);
        assert_eq!(s.value_at(p, 0.0), 3.0);
        assert_eq!(s.value_at(p, 9.0), 3.0);
        assert_eq!(s.value(p), 3.0);
        let _inner = s.into_inner();
    }
}
