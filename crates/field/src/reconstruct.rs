//! The reconstruction surface `z* = DT(x, y)`: scattered samples lifted
//! to a piecewise-linear surface by Delaunay triangulation.

use cps_geometry::{LocateCache, LocateCursor, Point2, Rect, Triangulation};

use crate::{Field, FieldError};

/// A piecewise-linear surface interpolating scattered samples over their
/// Delaunay triangulation — the paper's `z* = DT(x, y)` (Section 3.1,
/// "Environment reconstruction").
///
/// Queries inside the convex hull of the samples are barycentric
/// interpolations on the containing triangle; queries outside the hull
/// fall back to the nearest sample's value (the surface is total over
/// the region so that the δ integral of Eqn. 2 is defined everywhere).
///
/// # Example
///
/// ```
/// use cps_field::{Field, ReconstructedSurface};
/// use cps_geometry::{Point2, Rect};
///
/// let region = Rect::square(10.0).unwrap();
/// let positions = [
///     Point2::new(0.0, 0.0),
///     Point2::new(10.0, 0.0),
///     Point2::new(10.0, 10.0),
///     Point2::new(0.0, 10.0),
/// ];
/// // Sample the plane z = x + y at the corners.
/// let samples: Vec<f64> = positions.iter().map(|p| p.x + p.y).collect();
/// let surf = ReconstructedSurface::from_samples(region, &positions, &samples).unwrap();
/// assert!((surf.value(Point2::new(3.0, 4.0)) - 7.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct ReconstructedSurface {
    triangulation: Triangulation,
    samples: Vec<f64>,
    /// Point-location accelerator snapshotted at construction; the
    /// triangulation is immutable from here on, so the cache never goes
    /// stale and keeps `value` lookups O(1) amortized during grid
    /// quadrature — including from many threads at once.
    cache: LocateCache,
}

impl ReconstructedSurface {
    /// Builds the surface from node positions and their sampled values.
    ///
    /// Duplicate positions (within the triangulation's tolerance) are
    /// merged, keeping the first value — a scattered deployment may land
    /// two nodes on the same spot.
    ///
    /// # Errors
    ///
    /// * [`FieldError::LengthMismatch`] — `positions` and `samples`
    ///   differ in length.
    /// * [`FieldError::TooFewSamples`] — fewer than 3 distinct usable
    ///   positions.
    /// * [`FieldError::SampleOutOfRegion`] — a position outside `region`.
    /// * [`FieldError::NonFiniteValue`] — a non-finite sample value or
    ///   coordinate.
    pub fn from_samples(
        region: Rect,
        positions: &[Point2],
        samples: &[f64],
    ) -> Result<Self, FieldError> {
        if positions.len() != samples.len() {
            return Err(FieldError::LengthMismatch {
                positions: positions.len(),
                values: samples.len(),
            });
        }
        if samples.iter().any(|v| !v.is_finite()) {
            return Err(FieldError::NonFiniteValue);
        }
        let mut triangulation = Triangulation::new(region);
        let mut kept = Vec::with_capacity(samples.len());
        for (&p, &z) in positions.iter().zip(samples) {
            match triangulation.insert(p) {
                Ok(_) => kept.push(z),
                Err(cps_geometry::GeometryError::DuplicatePoint { .. }) => {
                    // Merged with an earlier node at the same spot.
                }
                Err(cps_geometry::GeometryError::OutOfBounds { .. }) => {
                    return Err(FieldError::SampleOutOfRegion)
                }
                Err(cps_geometry::GeometryError::NonFiniteCoordinate) => {
                    return Err(FieldError::NonFiniteValue)
                }
                Err(e) => return Err(FieldError::Geometry(e)),
            }
        }
        if triangulation.vertex_count() < 3 {
            return Err(FieldError::TooFewSamples {
                count: triangulation.vertex_count(),
            });
        }
        let cache = triangulation.locate_cache();
        Ok(ReconstructedSurface {
            triangulation,
            samples: kept,
            cache,
        })
    }

    /// Wraps an existing triangulation whose vertices already carry the
    /// given values (`samples[i]` belongs to `VertexId(i)`).
    ///
    /// # Errors
    ///
    /// * [`FieldError::LengthMismatch`] — `samples.len()` differs from
    ///   the triangulation's vertex count.
    /// * [`FieldError::TooFewSamples`] — fewer than 3 vertices.
    /// * [`FieldError::NonFiniteValue`] — a non-finite sample.
    pub fn from_triangulation(
        triangulation: Triangulation,
        samples: Vec<f64>,
    ) -> Result<Self, FieldError> {
        if samples.len() != triangulation.vertex_count() {
            return Err(FieldError::LengthMismatch {
                positions: triangulation.vertex_count(),
                values: samples.len(),
            });
        }
        if triangulation.vertex_count() < 3 {
            return Err(FieldError::TooFewSamples {
                count: triangulation.vertex_count(),
            });
        }
        if samples.iter().any(|v| !v.is_finite()) {
            return Err(FieldError::NonFiniteValue);
        }
        let cache = triangulation.locate_cache();
        Ok(ReconstructedSurface {
            triangulation,
            samples,
            cache,
        })
    }

    /// Number of distinct sample sites in the surface.
    pub fn sample_count(&self) -> usize {
        self.samples.len()
    }

    /// The underlying triangulation.
    pub fn triangulation(&self) -> &Triangulation {
        &self.triangulation
    }

    /// Sample values, indexed by vertex id.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Like [`Field::value`], but also reports whether the query fell
    /// outside the sample hull and was answered by nearest-sample
    /// extrapolation.
    ///
    /// The incremental δ tile cache uses the flag to know which tiles
    /// depend on the extrapolation region (and must be invalidated
    /// whenever the vertex set changes, not just when a triangle does).
    pub fn value_extrapolated(&self, p: Point2) -> (f64, bool) {
        // A fresh cursor per query keeps the result independent of call
        // history (and hence of thread count); the bucket cache alone
        // already provides the O(1) warm start.
        let mut cursor = LocateCursor::new();
        match self
            .triangulation
            .interpolate_with(&self.cache, &mut cursor, p, &self.samples)
        {
            Some(z) => (z, false),
            None => {
                // Outside the hull of the samples: nearest-sample value.
                // Construction guarantees at least 3 vertices, so the
                // lookup cannot fail; degrade to the sample mean rather
                // than panicking mid-quadrature if that ever changes.
                let z = match self.triangulation.nearest_vertex(p) {
                    Some(id) => self.samples[id.0],
                    None => self.samples.iter().sum::<f64>() / self.samples.len().max(1) as f64,
                };
                (z, true)
            }
        }
    }
}

impl Field for ReconstructedSurface {
    fn value(&self, p: Point2) -> f64 {
        self.value_extrapolated(p).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region() -> Rect {
        Rect::square(10.0).unwrap()
    }

    fn corners_and(center: bool) -> (Vec<Point2>, Vec<f64>) {
        let mut ps: Vec<Point2> = region().corners().to_vec();
        if center {
            ps.push(Point2::new(5.0, 5.0));
        }
        let zs = ps.iter().map(|p| 2.0 * p.x - p.y).collect();
        (ps, zs)
    }

    #[test]
    fn validation_errors() {
        let (ps, zs) = corners_and(false);
        assert!(matches!(
            ReconstructedSurface::from_samples(region(), &ps, &zs[..3]),
            Err(FieldError::LengthMismatch { .. })
        ));
        assert!(matches!(
            ReconstructedSurface::from_samples(region(), &ps[..2], &zs[..2]),
            Err(FieldError::TooFewSamples { count: 2 })
        ));
        let bad = vec![f64::NAN; 4];
        assert!(matches!(
            ReconstructedSurface::from_samples(region(), &ps, &bad),
            Err(FieldError::NonFiniteValue)
        ));
        let outside = vec![Point2::new(50.0, 50.0); 4];
        assert!(matches!(
            ReconstructedSurface::from_samples(region(), &outside, &zs),
            Err(FieldError::SampleOutOfRegion)
        ));
    }

    #[test]
    fn duplicates_are_merged() {
        let (mut ps, mut zs) = corners_and(true);
        ps.push(Point2::new(5.0, 5.0)); // exact duplicate of the centre
        zs.push(999.0); // later value must be dropped
        let surf = ReconstructedSurface::from_samples(region(), &ps, &zs).unwrap();
        assert_eq!(surf.sample_count(), 5);
        assert!((surf.value(Point2::new(5.0, 5.0)) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn interpolates_plane_exactly() {
        let (ps, zs) = corners_and(true);
        let surf = ReconstructedSurface::from_samples(region(), &ps, &zs).unwrap();
        for p in [
            Point2::new(1.0, 9.0),
            Point2::new(7.3, 2.2),
            Point2::new(5.0, 0.0),
        ] {
            assert!((surf.value(p) - (2.0 * p.x - p.y)).abs() < 1e-9);
        }
    }

    #[test]
    fn outside_hull_falls_back_to_nearest() {
        // Three samples in the middle of the region: hull misses corners.
        let ps = [
            Point2::new(4.0, 4.0),
            Point2::new(6.0, 4.0),
            Point2::new(5.0, 6.0),
        ];
        let zs = [1.0, 2.0, 3.0];
        let surf = ReconstructedSurface::from_samples(region(), &ps, &zs).unwrap();
        // Near the region corner (0,0), the nearest sample is the first.
        assert_eq!(surf.value(Point2::new(0.0, 0.0)), 1.0);
        assert_eq!(surf.value(Point2::new(10.0, 10.0)), 3.0);
    }

    #[test]
    fn from_triangulation_checks_lengths() {
        let dt = Triangulation::from_points(region(), region().corners()).unwrap();
        assert!(ReconstructedSurface::from_triangulation(dt.clone(), vec![0.0; 3]).is_err());
        let ok = ReconstructedSurface::from_triangulation(dt, vec![1.0; 4]).unwrap();
        assert_eq!(ok.sample_count(), 4);
        assert_eq!(ok.samples(), &[1.0; 4]);
        assert_eq!(ok.triangulation().vertex_count(), 4);
    }
}
