//! Incremental δ evaluation: a tile cache over the quadrature grid.
//!
//! Both OSD and OSTD re-measure the volume difference δ (Eqn. 2) after
//! every small change to the reconstruction — FRA after each Delaunay
//! insertion, CMA after each movement round — yet the full quadrature
//! re-walks every grid point even though the reconstructed surface
//! `z* = DT(x, y)` only changed inside a handful of triangles.
//!
//! [`DeltaCache`] partitions the grid into square tiles of
//! [`DeltaCache::tile_size`] × `tile_size` points and stores, per tile,
//! the partial trapezoid-weighted `Σ w·|f − DT|` and the partial
//! `Σ (f − DT)²` over the tile's points. A [`refresh`](DeltaCache::refresh)
//! against a new surface then
//!
//! 1. diffs the surface's triangle set (vertex positions + sample
//!    values) against the previous refresh — the symmetric difference
//!    is exactly where `DT` changed: the Delaunay cavity of an
//!    insertion, or the retriangulated stars around moved nodes;
//! 2. invalidates only the tiles overlapping a changed triangle's
//!    bounding box (plus every tile containing extrapolated points
//!    whenever the vertex set changed at all, since nearest-sample
//!    extrapolation outside the hull is a global function of the
//!    vertices);
//! 3. re-integrates the invalid tiles on the row-sharded parallel
//!    engine and folds all tile partials in fixed tile order.
//!
//! A retriangulation that changes many triangles simply invalidates
//! many tiles; an unprimed or grid-incompatible cache degrades to a
//! full recompute. Either way the result is the same quadrature sum
//! regrouped per tile, so it matches the row-order
//! [`delta::volume_difference`](crate::delta::volume_difference) within
//! floating-point regrouping error (≪ 1e-9 relative; property-tested),
//! and is **bit-identical across thread counts and invalidation
//! histories**: a tile's partial never depends on when or why it was
//! recomputed.
//!
//! The reference field `f` is swept once at priming time and memoized
//! per grid point. A deterministic probe set guards reuse: if the
//! reference's probe values change (a time-varying field advanced
//! between refreshes), the cache re-primes itself — correct, but no
//! faster than the full quadrature, which is why the cached paths pay
//! off for static references.

use std::collections::HashSet;

use cps_geometry::{GridSpec, Point2};

use crate::delta::weight;
use crate::par::{map_rows, Parallelism};
use crate::raster::{Kernel, RasterPlan};
use crate::{Field, ReconstructedSurface};

/// Default tile side, in grid points. 16×16 keeps a 201×201 grid at
/// 169 tiles: small enough that a single cavity touches only a few,
/// large enough that per-tile bookkeeping stays negligible.
pub const DEFAULT_TILE_SIZE: usize = 16;

/// Number of deterministic probe points used to detect a changed
/// reference field between refreshes.
const REFERENCE_PROBES: usize = 32;

/// Canonical key of one reconstruction triangle: the three
/// `(x, y, z)` bit-patterns of its vertices, sorted so the same
/// geometric triangle matches across independently built
/// triangulations.
type TriKey = [u64; 9];

/// One vertex's `(x, y, z)` bit-pattern.
type VertKey = [u64; 3];

/// The two totals the δ quadrature produces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeltaTotals {
    /// The paper's δ: `∬ |f − DT| dA` (Eqn. 2).
    pub delta: f64,
    /// Root-mean-square pointwise difference (secondary metric).
    pub rms: f64,
}

/// A tile cache of partial δ integrals over a [`GridSpec`], reusable
/// across successive reconstructions of a slowly changing deployment.
///
/// # Example
///
/// ```
/// use cps_field::{DeltaCache, Field, Parallelism, PeaksField, ReconstructedSurface};
/// use cps_field::delta::volume_difference;
/// use cps_geometry::{GridSpec, Point2, Rect};
///
/// let region = Rect::square(100.0).unwrap();
/// let grid = GridSpec::new(region, 101, 101).unwrap();
/// let reference = PeaksField::new(region, 8.0);
/// let mut positions: Vec<Point2> = region.corners().to_vec();
/// let samples = |ps: &[Point2]| ps.iter().map(|&p| reference.value(p)).collect::<Vec<_>>();
///
/// let mut cache = DeltaCache::new(&reference, &grid, Parallelism::serial());
/// let s0 = ReconstructedSurface::from_samples(region, &positions, &samples(&positions)).unwrap();
/// let t0 = cache.refresh(&s0, Parallelism::serial());
///
/// // One interior insertion: only the tiles under its cavity re-integrate.
/// positions.push(Point2::new(40.0, 60.0));
/// let s1 = ReconstructedSurface::from_samples(region, &positions, &samples(&positions)).unwrap();
/// let t1 = cache.refresh(&s1, Parallelism::serial());
/// let full = volume_difference(&reference, &s1, &grid);
/// assert!((t1.delta - full).abs() <= 1e-9 * full.max(1.0));
/// assert!(t1.delta < t0.delta);
/// ```
#[derive(Debug, Clone)]
pub struct DeltaCache {
    grid: GridSpec,
    tile: usize,
    /// Tiles per axis.
    tx: usize,
    ty: usize,
    /// Reference values, one per grid point (`grid.flat_index` order).
    ref_vals: Vec<f64>,
    /// Deterministic `(flat_index, value_bits)` probes of the reference.
    probes: Vec<(usize, u64)>,
    /// Per-tile partial `Σ w·|f − DT|` over the tile's points.
    tile_abs: Vec<f64>,
    /// Per-tile partial `Σ (f − DT)²` over the tile's points.
    tile_sq: Vec<f64>,
    /// Whether any of the tile's points fell outside the sample hull at
    /// its last recomputation.
    tile_extrapolates: Vec<bool>,
    valid: Vec<bool>,
    tri_keys: HashSet<TriKey>,
    vert_keys: HashSet<VertKey>,
    /// Whether a surface has ever been integrated into the tiles.
    primed: bool,
}

impl DeltaCache {
    /// Builds a cache for `grid` with the default tile size, sweeping
    /// the reference once on `par` threads.
    pub fn new<F: Field + Sync>(reference: &F, grid: &GridSpec, par: Parallelism) -> Self {
        Self::with_tile_size(reference, grid, DEFAULT_TILE_SIZE, par)
    }

    /// Like [`DeltaCache::new`] with an explicit tile side in grid
    /// points (clamped to at least 1).
    pub fn with_tile_size<F: Field + Sync>(
        reference: &F,
        grid: &GridSpec,
        tile: usize,
        par: Parallelism,
    ) -> Self {
        let tile = tile.max(1);
        let tx = grid.nx().div_ceil(tile);
        let ty = grid.ny().div_ceil(tile);
        let tiles = tx * ty;
        let mut cache = DeltaCache {
            grid: *grid,
            tile,
            tx,
            ty,
            ref_vals: Vec::new(),
            probes: Vec::new(),
            tile_abs: vec![0.0; tiles],
            tile_sq: vec![0.0; tiles],
            tile_extrapolates: vec![false; tiles],
            valid: vec![false; tiles],
            tri_keys: HashSet::new(),
            vert_keys: HashSet::new(),
            primed: false,
        };
        cache.sweep_reference(reference, par);
        cache
    }

    /// Tile side, in grid points.
    pub fn tile_size(&self) -> usize {
        self.tile
    }

    /// Total number of tiles covering the grid.
    pub fn tile_count(&self) -> usize {
        self.tx * self.ty
    }

    /// Whether this cache was built over an identical grid.
    pub fn compatible(&self, grid: &GridSpec) -> bool {
        self.grid == *grid
    }

    /// Whether the reference the cache was primed with still produces
    /// the same values at the cache's probe points (bit-compared).
    ///
    /// Probing is a spot check, not a proof: a reference that changed
    /// *only* away from every probe point would go unnoticed. The probe
    /// set spans the whole grid, so any physically plausible field
    /// change (drift, diurnal cycles, keyframes) trips it.
    pub fn reference_matches<F: Field>(&self, reference: &F) -> bool {
        self.probes.iter().all(|&(flat, bits)| {
            let (i, j) = (flat % self.grid.nx(), flat / self.grid.nx());
            reference.value(self.grid.point(i, j)).to_bits() == bits
        })
    }

    /// Re-sweeps the reference and invalidates every tile. Call when
    /// [`DeltaCache::reference_matches`] reports a changed reference.
    pub fn reprime<F: Field + Sync>(&mut self, reference: &F, par: Parallelism) {
        self.sweep_reference(reference, par);
        self.invalidate_all();
    }

    /// Marks every tile dirty (the full-recompute fallback).
    pub fn invalidate_all(&mut self) {
        let flips = self.valid.iter().filter(|&&v| v).count() as u64;
        cps_obs::count_by(cps_obs::Counter::TileInvalidations, flips);
        self.valid.fill(false);
        self.primed = false;
        self.tri_keys.clear();
        self.vert_keys.clear();
    }

    /// Marks every tile overlapping the closed box `[lo, hi]` dirty —
    /// e.g. a Delaunay cavity bounding box from
    /// [`Triangulation::last_insert_bbox`](cps_geometry::Triangulation::last_insert_bbox).
    pub fn invalidate_box(&mut self, lo: Point2, hi: Point2) {
        let min = self.grid.rect().min();
        let (dx, dy) = (self.grid.dx(), self.grid.dy());
        // Conservative index ranges: floor on the low side, ceil on the
        // high side, so every grid point inside the box is covered.
        let clampi = |v: f64, n: usize| (v.max(0.0) as usize).min(n - 1);
        let i0 = clampi(((lo.x - min.x) / dx).floor(), self.grid.nx());
        let i1 = clampi(((hi.x - min.x) / dx).ceil(), self.grid.nx());
        let j0 = clampi(((lo.y - min.y) / dy).floor(), self.grid.ny());
        let j1 = clampi(((hi.y - min.y) / dy).ceil(), self.grid.ny());
        let mut flips = 0u64;
        for tj in (j0 / self.tile)..=(j1 / self.tile) {
            for ti in (i0 / self.tile)..=(i1 / self.tile) {
                let t = tj * self.tx + ti;
                if self.valid[t] {
                    self.valid[t] = false;
                    flips += 1;
                }
            }
        }
        cps_obs::count_by(cps_obs::Counter::TileInvalidations, flips);
    }

    /// Integrates `surface` into the tiles, recomputing only what the
    /// dirty-triangle diff invalidates, and returns the grid totals.
    ///
    /// The first refresh (or the first after
    /// [`invalidate_all`](DeltaCache::invalidate_all) /
    /// [`reprime`](DeltaCache::reprime)) integrates every tile. Tiles
    /// are integrated with the per-cell locate walk; see
    /// [`DeltaCache::refresh_with_kernel`] for the raster kernel.
    pub fn refresh(&mut self, surface: &ReconstructedSurface, par: Parallelism) -> DeltaTotals {
        self.refresh_with_kernel(surface, par, Kernel::Walk)
    }

    /// [`DeltaCache::refresh`] with an explicit quadrature [`Kernel`].
    ///
    /// Under [`Kernel::Raster`] a [`RasterPlan`] is built once per
    /// refresh and each dirty tile fills its rows from the plan's
    /// spans (clipped to the tile), falling back to per-cell
    /// extrapolation only for unclaimed cells. A tile's partial stays
    /// a pure function of `(tile bounds, surface)` for either kernel,
    /// so results remain bit-identical across thread counts and
    /// invalidation histories; walk and raster tiles agree within
    /// quadrature tolerance (≤1e-9 relative).
    pub fn refresh_with_kernel(
        &mut self,
        surface: &ReconstructedSurface,
        par: Parallelism,
        kernel: Kernel,
    ) -> DeltaTotals {
        let _t = cps_obs::time(cps_obs::Phase::DeltaTileRefresh, par.threads());

        let dt = surface.triangulation();
        let zs = surface.samples();
        let mut new_tris: HashSet<TriKey> = HashSet::with_capacity(2 * zs.len());
        dt.for_each_triangle(|ids, _| {
            new_tris.insert(tri_key(
                [dt.vertex(ids[0]), dt.vertex(ids[1]), dt.vertex(ids[2])],
                [zs[ids[0].0], zs[ids[1].0], zs[ids[2].0]],
            ));
        });
        let new_verts: HashSet<VertKey> = dt
            .vertices()
            .zip(zs)
            .map(|(p, &z)| [p.x.to_bits(), p.y.to_bits(), z.to_bits()])
            .collect();

        if self.primed {
            let dirty_boxes: Vec<(Point2, Point2)> = new_tris
                .symmetric_difference(&self.tri_keys)
                .map(tri_key_bbox)
                .collect();
            for (lo, hi) in dirty_boxes {
                self.invalidate_box(lo, hi);
            }
            if new_verts != self.vert_keys {
                // Nearest-sample extrapolation outside the hull depends
                // on the whole vertex set, not on any one triangle.
                let mut flips = 0u64;
                for t in 0..self.valid.len() {
                    if self.valid[t] && self.tile_extrapolates[t] {
                        self.valid[t] = false;
                        flips += 1;
                    }
                }
                cps_obs::count_by(cps_obs::Counter::TileInvalidations, flips);
            }
        }
        self.tri_keys = new_tris;
        self.vert_keys = new_verts;

        let dirty: Vec<usize> = (0..self.valid.len()).filter(|&t| !self.valid[t]).collect();
        cps_obs::count_by(cps_obs::Counter::TileCacheMisses, dirty.len() as u64);
        cps_obs::count_by(
            cps_obs::Counter::TileCacheHits,
            (self.valid.len() - dirty.len()) as u64,
        );

        let grid = self.grid;
        let (tile, tx) = (self.tile, self.tx);
        let ref_vals = &self.ref_vals;
        let plan = match kernel {
            Kernel::Raster if !dirty.is_empty() => Some(RasterPlan::build(
                surface.triangulation(),
                surface.samples(),
                &grid,
            )),
            _ => None,
        };
        let recomputed = map_rows(dirty.len(), par, |k| match &plan {
            Some(plan) => compute_tile_raster(&grid, tile, tx, ref_vals, dirty[k], surface, plan),
            None => compute_tile(&grid, tile, tx, ref_vals, dirty[k], surface),
        });
        for (&t, (abs, sq, extra)) in dirty.iter().zip(recomputed) {
            self.tile_abs[t] = abs;
            self.tile_sq[t] = sq;
            self.tile_extrapolates[t] = extra;
            self.valid[t] = true;
        }
        self.primed = true;
        self.totals().expect("all tiles valid after refresh")
    }

    /// The totals of the last refresh, or `None` if any tile is dirty
    /// (or nothing has been integrated yet).
    pub fn totals(&self) -> Option<DeltaTotals> {
        if !self.primed || self.valid.iter().any(|&v| !v) {
            return None;
        }
        // Fixed fold order over tiles: the result is independent of
        // which tiles any particular refresh recomputed.
        let mut abs = 0.0;
        let mut sq = 0.0;
        for t in 0..self.tile_abs.len() {
            abs += self.tile_abs[t];
            sq += self.tile_sq[t];
        }
        Some(DeltaTotals {
            delta: abs * self.grid.cell_area(),
            rms: (sq / self.grid.len() as f64).sqrt(),
        })
    }

    fn sweep_reference<F: Field + Sync>(&mut self, reference: &F, par: Parallelism) {
        let grid = self.grid;
        let rows = map_rows(grid.ny(), par, |j| {
            (0..grid.nx())
                .map(|i| reference.value(grid.point(i, j)))
                .collect::<Vec<f64>>()
        });
        self.ref_vals = rows.concat();
        let stride = (self.ref_vals.len() / REFERENCE_PROBES).max(1);
        self.probes = self
            .ref_vals
            .iter()
            .enumerate()
            .step_by(stride)
            .map(|(flat, v)| (flat, v.to_bits()))
            .collect();
    }
}

/// Canonical triangle key: per-vertex `(x, y, z)` bit-triples in sorted
/// order, so vertex rotation/relabeling between rebuilds cannot hide a
/// match.
fn tri_key(ps: [Point2; 3], zs: [f64; 3]) -> TriKey {
    let mut triples: [[u64; 3]; 3] = [[0; 3]; 3];
    for (slot, (p, z)) in triples.iter_mut().zip(ps.iter().zip(zs)) {
        *slot = [p.x.to_bits(), p.y.to_bits(), z.to_bits()];
    }
    triples.sort_unstable();
    [
        triples[0][0],
        triples[0][1],
        triples[0][2],
        triples[1][0],
        triples[1][1],
        triples[1][2],
        triples[2][0],
        triples[2][1],
        triples[2][2],
    ]
}

/// Bounding box of a [`tri_key`]'s three vertices.
fn tri_key_bbox(key: &TriKey) -> (Point2, Point2) {
    let xs = [
        f64::from_bits(key[0]),
        f64::from_bits(key[3]),
        f64::from_bits(key[6]),
    ];
    let ys = [
        f64::from_bits(key[1]),
        f64::from_bits(key[4]),
        f64::from_bits(key[7]),
    ];
    let fold = |vals: [f64; 3], pick: fn(f64, f64) -> f64| vals.into_iter().reduce(pick).unwrap();
    (
        Point2::new(fold(xs, f64::min), fold(ys, f64::min)),
        Point2::new(fold(xs, f64::max), fold(ys, f64::max)),
    )
}

/// Integrates one tile: row-major over the tile's points, rows summed
/// left to right then folded in row order — a fixed operand order, so
/// the partial is bit-identical no matter when or on which thread the
/// tile is recomputed.
fn compute_tile(
    grid: &GridSpec,
    tile: usize,
    tx: usize,
    ref_vals: &[f64],
    t: usize,
    surface: &ReconstructedSurface,
) -> (f64, f64, bool) {
    let (ti, tj) = (t % tx, t / tx);
    let (i0, j0) = (ti * tile, tj * tile);
    let i1 = (i0 + tile).min(grid.nx());
    let j1 = (j0 + tile).min(grid.ny());
    let mut abs = 0.0;
    let mut sq = 0.0;
    let mut extrapolates = false;
    for j in j0..j1 {
        let mut row_abs = 0.0;
        let mut row_sq = 0.0;
        for i in i0..i1 {
            let p = grid.point(i, j);
            let (g, outside) = surface.value_extrapolated(p);
            extrapolates |= outside;
            let d = ref_vals[grid.flat_index(i, j)] - g;
            row_abs += weight(grid, i, j) * d.abs();
            row_sq += d * d;
        }
        abs += row_abs;
        sq += row_sq;
    }
    (abs, sq, extrapolates)
}

/// [`compute_tile`] under the raster kernel: the tile's rows are
/// filled from the plan's spans (clipped to the tile's cell range) and
/// only unclaimed cells pay the per-cell extrapolation fallback. Same
/// fixed operand order as the walk variant.
fn compute_tile_raster(
    grid: &GridSpec,
    tile: usize,
    tx: usize,
    ref_vals: &[f64],
    t: usize,
    surface: &ReconstructedSurface,
    plan: &RasterPlan,
) -> (f64, f64, bool) {
    let (ti, tj) = (t % tx, t / tx);
    let (i0, j0) = (ti * tile, tj * tile);
    let i1 = (i0 + tile).min(grid.nx());
    let j1 = (j0 + tile).min(grid.ny());
    let mut heights = vec![f64::NAN; i1 - i0];
    let mut abs = 0.0;
    let mut sq = 0.0;
    let mut extrapolates = false;
    for j in j0..j1 {
        heights.fill(f64::NAN);
        plan.fill_row_values(j, i0, i1 - 1, &mut heights);
        let mut row_abs = 0.0;
        let mut row_sq = 0.0;
        for i in i0..i1 {
            let z = heights[i - i0];
            let (g, outside) = if z.is_nan() {
                surface.value_extrapolated(grid.point(i, j))
            } else {
                (z, false)
            };
            extrapolates |= outside;
            let d = ref_vals[grid.flat_index(i, j)] - g;
            row_abs += weight(grid, i, j) * d.abs();
            row_sq += d * d;
        }
        abs += row_abs;
        sq += row_sq;
    }
    (abs, sq, extrapolates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::{rms_difference, volume_difference};
    use crate::PeaksField;
    use cps_geometry::Rect;

    fn setting() -> (Rect, GridSpec, PeaksField) {
        let region = Rect::square(100.0).unwrap();
        (
            region,
            GridSpec::new(region, 81, 81).unwrap(),
            PeaksField::new(region, 8.0),
        )
    }

    fn surface(region: Rect, f: &PeaksField, positions: &[Point2]) -> ReconstructedSurface {
        let samples: Vec<f64> = positions.iter().map(|&p| f.value(p)).collect();
        ReconstructedSurface::from_samples(region, positions, &samples).unwrap()
    }

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-9 * b.abs().max(1.0)
    }

    #[test]
    fn primed_refresh_matches_full_quadrature() {
        let (region, grid, f) = setting();
        let positions: Vec<Point2> = region
            .corners()
            .into_iter()
            .chain([Point2::new(50.0, 50.0)])
            .collect();
        let s = surface(region, &f, &positions);
        let mut cache = DeltaCache::new(&f, &grid, Parallelism::serial());
        assert!(cache.totals().is_none());
        let t = cache.refresh(&s, Parallelism::serial());
        assert!(close(t.delta, volume_difference(&f, &s, &grid)));
        assert!(close(t.rms, rms_difference(&f, &s, &grid)));
        assert_eq!(cache.totals(), Some(t));
    }

    #[test]
    fn incremental_insertions_match_full_quadrature() {
        let (region, grid, f) = setting();
        let mut positions: Vec<Point2> = region.corners().to_vec();
        let mut cache = DeltaCache::new(&f, &grid, Parallelism::serial());
        cache.refresh(&surface(region, &f, &positions), Parallelism::serial());
        for (k, p) in [
            Point2::new(30.0, 40.0),
            Point2::new(71.0, 22.0),
            Point2::new(55.0, 80.0),
            Point2::new(12.0, 64.0),
            Point2::new(90.0, 90.0),
        ]
        .into_iter()
        .enumerate()
        {
            positions.push(p);
            let s = surface(region, &f, &positions);
            let t = cache.refresh(&s, Parallelism::serial());
            let full = volume_difference(&f, &s, &grid);
            assert!(close(t.delta, full), "insert {k}: {} vs {full}", t.delta);
            assert!(close(t.rms, rms_difference(&f, &s, &grid)), "insert {k}");
        }
    }

    #[test]
    fn interior_insertion_recomputes_a_strict_tile_subset() {
        let (region, grid, f) = setting();
        // A dense deployment keeps triangles small, and the corner
        // scaffolding keeps the hull fixed, so an interior insert must
        // dirty only the cavity tiles.
        let mut positions: Vec<Point2> = Vec::new();
        for j in 0..6 {
            for i in 0..6 {
                positions.push(Point2::new(20.0 * i as f64, 20.0 * j as f64));
            }
        }
        let mut cache = DeltaCache::new(&f, &grid, Parallelism::serial());
        cache.refresh(&surface(region, &f, &positions), Parallelism::serial());

        cps_obs::reset();
        cps_obs::enable();
        positions.push(Point2::new(52.0, 47.0));
        cache.refresh(&surface(region, &f, &positions), Parallelism::serial());
        cps_obs::disable();
        let m = cps_obs::snapshot();
        let misses = m.counter(cps_obs::Counter::TileCacheMisses);
        let hits = m.counter(cps_obs::Counter::TileCacheHits);
        assert_eq!(hits + misses, cache.tile_count() as u64);
        assert!(misses > 0);
        assert!(
            misses < cache.tile_count() as u64 / 2,
            "interior insert recomputed {misses}/{} tiles",
            cache.tile_count()
        );
    }

    #[test]
    fn refresh_is_bit_identical_across_thread_counts_and_histories() {
        let (region, grid, f) = setting();
        let mut positions: Vec<Point2> = region.corners().to_vec();
        positions.push(Point2::new(33.0, 41.0));

        // Incremental history on varying thread counts…
        let mut incremental = DeltaCache::new(&f, &grid, Parallelism::serial());
        incremental.refresh(&surface(region, &f, &positions), Parallelism::fixed(2));
        positions.push(Point2::new(61.0, 58.0));
        let s = surface(region, &f, &positions);
        let a = incremental.refresh(&s, Parallelism::fixed(3));
        // …must equal a cold cache integrating the final surface only.
        for par in [Parallelism::serial(), Parallelism::fixed(8)] {
            let mut cold = DeltaCache::new(&f, &grid, par);
            let b = cold.refresh(&s, par);
            assert_eq!(a.delta.to_bits(), b.delta.to_bits(), "{par:?}");
            assert_eq!(a.rms.to_bits(), b.rms.to_bits(), "{par:?}");
        }
    }

    #[test]
    fn changed_reference_is_detected_and_reprimed() {
        let (region, grid, f) = setting();
        let positions: Vec<Point2> = region
            .corners()
            .into_iter()
            .chain([Point2::new(44.0, 51.0)])
            .collect();
        let s = surface(region, &f, &positions);
        let mut cache = DeltaCache::new(&f, &grid, Parallelism::serial());
        cache.refresh(&s, Parallelism::serial());
        assert!(cache.reference_matches(&f));

        let shifted = PeaksField::new(region, 9.5);
        assert!(!cache.reference_matches(&shifted));
        cache.reprime(&shifted, Parallelism::serial());
        let t = cache.refresh(&s, Parallelism::serial());
        assert!(close(t.delta, volume_difference(&shifted, &s, &grid)));
    }

    #[test]
    fn incompatible_grid_is_reported() {
        let (region, grid, f) = setting();
        let cache = DeltaCache::new(&f, &grid, Parallelism::serial());
        assert!(cache.compatible(&grid));
        let other = GridSpec::new(region, 41, 41).unwrap();
        assert!(!cache.compatible(&other));
    }

    #[test]
    fn tiny_tile_and_degenerate_grid_still_agree() {
        let region = Rect::square(10.0).unwrap();
        let grid = GridSpec::new(region, 2, 9).unwrap();
        let f = PeaksField::new(region, 5.0);
        let positions: Vec<Point2> = region
            .corners()
            .into_iter()
            .chain([Point2::new(5.0, 5.0)])
            .collect();
        let s = surface(region, &f, &positions);
        for tile in [1, 3, 100] {
            let mut cache = DeltaCache::with_tile_size(&f, &grid, tile, Parallelism::serial());
            let t = cache.refresh(&s, Parallelism::serial());
            assert!(
                close(t.delta, volume_difference(&f, &s, &grid)),
                "tile {tile}"
            );
        }
    }
}
