//! Seeded gradient-noise fields for stress testing.
//!
//! A smooth pseudo-random field with controllable feature scale —
//! deterministic in its seed, defined everywhere, no allocation per
//! query. Used by the robustness tests to throw "terrain nobody
//! designed" at the distribution algorithms.

use cps_geometry::Point2;

use crate::Field;

/// Value noise: pseudo-random lattice values blended with a smoothstep,
/// octaved for broad-plus-fine structure.
///
/// # Example
///
/// ```
/// use cps_field::{Field, NoiseField};
/// use cps_geometry::Point2;
///
/// let f = NoiseField::new(7, 20.0, 10.0);
/// let g = NoiseField::new(7, 20.0, 10.0);
/// let p = Point2::new(12.3, 45.6);
/// assert_eq!(f.value(p), g.value(p)); // deterministic in the seed
/// let other = NoiseField::new(8, 20.0, 10.0);
/// assert_ne!(f.value(p), other.value(p));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseField {
    seed: u64,
    /// Feature wavelength of the coarsest octave, in region units.
    scale: f64,
    /// Peak-to-peak output amplitude.
    amplitude: f64,
}

impl NoiseField {
    /// Creates a two-octave value-noise field.
    ///
    /// # Panics
    ///
    /// Panics if `scale` or `amplitude` is not positive and finite.
    pub fn new(seed: u64, scale: f64, amplitude: f64) -> Self {
        assert!(
            scale > 0.0 && scale.is_finite(),
            "scale must be positive and finite"
        );
        assert!(
            amplitude > 0.0 && amplitude.is_finite(),
            "amplitude must be positive and finite"
        );
        NoiseField {
            seed,
            scale,
            amplitude,
        }
    }

    /// Deterministic lattice value in [0, 1) at integer coordinates.
    fn lattice(&self, ix: i64, iy: i64, octave: u64) -> f64 {
        // SplitMix64-style avalanche over the packed coordinates.
        let mut h = self
            .seed
            .wrapping_add(octave.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            ^ (ix as u64).wrapping_mul(0xff51_afd7_ed55_8ccd)
            ^ (iy as u64).wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        h ^= h >> 33;
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    fn octave_value(&self, p: Point2, wavelength: f64, octave: u64) -> f64 {
        let x = p.x / wavelength;
        let y = p.y / wavelength;
        let ix = x.floor() as i64;
        let iy = y.floor() as i64;
        let smooth = |t: f64| t * t * (3.0 - 2.0 * t);
        let tx = smooth(x - ix as f64);
        let ty = smooth(y - iy as f64);
        let v00 = self.lattice(ix, iy, octave);
        let v10 = self.lattice(ix + 1, iy, octave);
        let v01 = self.lattice(ix, iy + 1, octave);
        let v11 = self.lattice(ix + 1, iy + 1, octave);
        v00 * (1.0 - tx) * (1.0 - ty)
            + v10 * tx * (1.0 - ty)
            + v01 * (1.0 - tx) * ty
            + v11 * tx * ty
    }
}

impl Field for NoiseField {
    fn value(&self, p: Point2) -> f64 {
        // Two octaves: base structure plus half-scale detail.
        let coarse = self.octave_value(p, self.scale, 0);
        let fine = self.octave_value(p, self.scale / 2.0, 1);
        self.amplitude * ((2.0 * coarse + fine) / 3.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_geometry::{GridSpec, Rect};

    #[test]
    fn output_range_and_determinism() {
        let f = NoiseField::new(42, 15.0, 8.0);
        let grid = GridSpec::new(Rect::square(100.0).unwrap(), 51, 51).unwrap();
        let s = f.summarize(&grid);
        assert!(s.min >= 0.0);
        assert!(s.max <= 8.0);
        assert!(s.std_dev > 0.1, "noise should vary: std {}", s.std_dev);
        // Deterministic resampling.
        let again = f.sample_grid(&grid);
        assert_eq!(again, f.sample_grid(&grid));
    }

    #[test]
    fn seeds_decorrelate() {
        let a = NoiseField::new(1, 10.0, 1.0);
        let b = NoiseField::new(2, 10.0, 1.0);
        let grid = GridSpec::new(Rect::square(50.0).unwrap(), 21, 21).unwrap();
        let va = a.sample_grid(&grid);
        let vb = b.sample_grid(&grid);
        let differing = va.iter().zip(&vb).filter(|(x, y)| x != y).count();
        assert!(differing > 400);
    }

    #[test]
    fn continuity_across_lattice_cells() {
        // Values straddling a lattice line must agree to first order.
        let f = NoiseField::new(9, 10.0, 5.0);
        for k in 1..5 {
            let x = 10.0 * k as f64;
            let left = f.value(Point2::new(x - 1e-6, 3.3));
            let right = f.value(Point2::new(x + 1e-6, 3.3));
            assert!((left - right).abs() < 1e-4, "jump at lattice line {x}");
        }
    }

    #[test]
    fn negative_coordinates_are_fine() {
        let f = NoiseField::new(5, 10.0, 2.0);
        let v = f.value(Point2::new(-37.2, -18.9));
        assert!(v.is_finite() && (0.0..=2.0).contains(&v));
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn invalid_scale_panics() {
        NoiseField::new(1, 0.0, 1.0);
    }
}
