//! Field combinators: build compound environments from parts.
//!
//! All combinators are zero-cost wrappers implementing [`Field`], so a
//! test scenario like "the forest floor plus a heat plume, offset by a
//! calibration bias" composes without new field types.

use cps_geometry::Point2;

use crate::Field;

/// Pointwise sum of two fields.
///
/// # Example
///
/// ```
/// use cps_field::{Field, PlaneField, SumField};
/// use cps_geometry::Point2;
///
/// let f = SumField::new(PlaneField::new(1.0, 0.0, 0.0), PlaneField::new(0.0, 1.0, 2.0));
/// assert_eq!(f.value(Point2::new(3.0, 4.0)), 3.0 + 4.0 + 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SumField<A, B> {
    a: A,
    b: B,
}

impl<A: Field, B: Field> SumField<A, B> {
    /// Creates `a + b`.
    pub fn new(a: A, b: B) -> Self {
        SumField { a, b }
    }
}

impl<A: Field, B: Field> Field for SumField<A, B> {
    fn value(&self, p: Point2) -> f64 {
        self.a.value(p) + self.b.value(p)
    }
}

/// Affine transform of a field's values: `scale · f(p) + offset`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaledField<F> {
    inner: F,
    scale: f64,
    offset: f64,
}

impl<F: Field> ScaledField<F> {
    /// Creates `scale · f + offset`.
    pub fn new(inner: F, scale: f64, offset: f64) -> Self {
        ScaledField {
            inner,
            scale,
            offset,
        }
    }
}

impl<F: Field> Field for ScaledField<F> {
    fn value(&self, p: Point2) -> f64 {
        self.scale * self.inner.value(p) + self.offset
    }
}

/// A field evaluated in shifted coordinates:
/// `f(p − displacement)` — move a pattern without rebuilding it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TranslatedField<F> {
    inner: F,
    dx: f64,
    dy: f64,
}

impl<F: Field> TranslatedField<F> {
    /// Creates a field whose pattern is displaced by `(dx, dy)`.
    pub fn new(inner: F, dx: f64, dy: f64) -> Self {
        TranslatedField { inner, dx, dy }
    }
}

impl<F: Field> Field for TranslatedField<F> {
    fn value(&self, p: Point2) -> f64 {
        self.inner.value(Point2::new(p.x - self.dx, p.y - self.dy))
    }
}

/// Values clamped to a range — e.g. a sensor that saturates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClampedField<F> {
    inner: F,
    min: f64,
    max: f64,
}

impl<F: Field> ClampedField<F> {
    /// Creates a field clamped to `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `min > max`.
    pub fn new(inner: F, min: f64, max: f64) -> Self {
        assert!(min <= max, "clamp range is inverted");
        ClampedField { inner, min, max }
    }
}

impl<F: Field> Field for ClampedField<F> {
    fn value(&self, p: Point2) -> f64 {
        self.inner.value(p).clamp(self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GaussianBlob, PlaneField};

    #[test]
    fn sum_adds_pointwise() {
        let f = SumField::new(
            PlaneField::new(1.0, 0.0, 0.0),
            GaussianBlob::isotropic(Point2::ORIGIN, 2.0, 1.0),
        );
        assert_eq!(f.value(Point2::ORIGIN), 2.0);
        assert!((f.value(Point2::new(10.0, 0.0)) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn scale_and_offset() {
        let f = ScaledField::new(PlaneField::new(1.0, 0.0, 0.0), -2.0, 5.0);
        assert_eq!(f.value(Point2::new(3.0, 0.0)), -1.0);
    }

    #[test]
    fn translation_moves_the_pattern() {
        let blob = GaussianBlob::isotropic(Point2::ORIGIN, 1.0, 1.0);
        let moved = TranslatedField::new(blob, 5.0, -2.0);
        assert!((moved.value(Point2::new(5.0, -2.0)) - 1.0).abs() < 1e-12);
        assert!(moved.value(Point2::ORIGIN) < 1e-5);
    }

    #[test]
    fn clamping_saturates() {
        let f = ClampedField::new(PlaneField::new(1.0, 0.0, 0.0), 0.0, 5.0);
        assert_eq!(f.value(Point2::new(-3.0, 0.0)), 0.0);
        assert_eq!(f.value(Point2::new(2.0, 0.0)), 2.0);
        assert_eq!(f.value(Point2::new(99.0, 0.0)), 5.0);
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_clamp_panics() {
        ClampedField::new(PlaneField::default(), 2.0, 1.0);
    }

    #[test]
    fn combinators_compose() {
        let f = ClampedField::new(
            ScaledField::new(
                SumField::new(
                    PlaneField::new(1.0, 1.0, 0.0),
                    PlaneField::new(0.0, 0.0, 1.0),
                ),
                2.0,
                0.0,
            ),
            0.0,
            10.0,
        );
        // (x + y + 1)·2 clamped to [0, 10] at (1, 1) = 6.
        assert_eq!(f.value(Point2::new(1.0, 1.0)), 6.0);
        assert_eq!(f.value(Point2::new(50.0, 50.0)), 10.0);
    }
}
