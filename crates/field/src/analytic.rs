//! Analytic benchmark surfaces.
//!
//! [`PeaksField`] reproduces Matlab's `peaks` function, which the paper
//! uses in Fig. 3 to contrast the uniform and curvature-weighted
//! distributions. The Gaussian-mixture machinery also underlies the
//! synthetic GreenOrbs trace generator.

use cps_geometry::{Point2, Rect};

use crate::Field;

/// Matlab's `peaks` surface mapped onto a rectangle.
///
/// The canonical formula is defined on `[-3, 3]²`:
///
/// ```text
/// z = 3(1−x)²·e^(−x²−(y+1)²) − 10(x/5 − x³ − y⁵)·e^(−x²−y²) − ⅓·e^(−(x+1)²−y²)
/// ```
///
/// [`PeaksField::new`] rescales a region of interest (the paper uses a
/// 100×100 square) onto that canonical domain and scales the amplitude.
///
/// # Example
///
/// ```
/// use cps_field::{Field, PeaksField};
/// use cps_geometry::{Point2, Rect};
///
/// let f = PeaksField::new(Rect::square(100.0).unwrap(), 8.0);
/// let center = f.value(Point2::new(50.0, 50.0));
/// assert!(center.is_finite());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeaksField {
    region: Rect,
    amplitude: f64,
}

impl PeaksField {
    /// Creates a peaks surface over `region` with the given amplitude
    /// multiplier (1.0 reproduces Matlab's range of roughly ±8).
    pub fn new(region: Rect, amplitude: f64) -> Self {
        PeaksField { region, amplitude }
    }

    /// The mapped region.
    pub fn region(&self) -> Rect {
        self.region
    }
}

impl Field for PeaksField {
    fn value(&self, p: Point2) -> f64 {
        // Map the region onto the canonical [-3, 3]² domain.
        let x = (p.x - self.region.min().x) / self.region.width() * 6.0 - 3.0;
        let y = (p.y - self.region.min().y) / self.region.height() * 6.0 - 3.0;
        let term1 = 3.0 * (1.0 - x) * (1.0 - x) * (-x * x - (y + 1.0) * (y + 1.0)).exp();
        let term2 = -10.0 * (x / 5.0 - x.powi(3) - y.powi(5)) * (-x * x - y * y).exp();
        let term3 = -(1.0 / 3.0) * (-(x + 1.0) * (x + 1.0) - y * y).exp();
        self.amplitude * (term1 + term2 + term3)
    }
}

/// A single anisotropic Gaussian bump (or dip, with negative amplitude).
///
/// `value = amplitude · exp(−((x−cx)/σx)²/2 − ((y−cy)/σy)²/2)`
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaussianBlob {
    /// Blob centre.
    pub center: Point2,
    /// Peak value at the centre (may be negative for a dip).
    pub amplitude: f64,
    /// Standard deviation along X (must be positive).
    pub sigma_x: f64,
    /// Standard deviation along Y (must be positive).
    pub sigma_y: f64,
}

impl GaussianBlob {
    /// Creates an isotropic blob.
    pub fn isotropic(center: Point2, amplitude: f64, sigma: f64) -> Self {
        GaussianBlob {
            center,
            amplitude,
            sigma_x: sigma,
            sigma_y: sigma,
        }
    }
}

impl Field for GaussianBlob {
    fn value(&self, p: Point2) -> f64 {
        let dx = (p.x - self.center.x) / self.sigma_x;
        let dy = (p.y - self.center.y) / self.sigma_y;
        self.amplitude * (-0.5 * (dx * dx + dy * dy)).exp()
    }
}

/// A sum of Gaussian blobs over a constant base level — the workhorse
/// synthetic environment (sun flecks over ambient light, heat islands,
/// humidity pockets).
///
/// # Example
///
/// ```
/// use cps_field::{Field, GaussianBlob, GaussianMixtureField};
/// use cps_geometry::Point2;
///
/// let f = GaussianMixtureField::new(
///     1.0,
///     vec![GaussianBlob::isotropic(Point2::new(0.0, 0.0), 2.0, 1.0)],
/// );
/// assert!((f.value(Point2::new(0.0, 0.0)) - 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GaussianMixtureField {
    base: f64,
    blobs: Vec<GaussianBlob>,
}

impl GaussianMixtureField {
    /// Creates a mixture with a constant `base` level plus `blobs`.
    pub fn new(base: f64, blobs: Vec<GaussianBlob>) -> Self {
        GaussianMixtureField { base, blobs }
    }

    /// The constant base level.
    pub fn base(&self) -> f64 {
        self.base
    }

    /// The component blobs.
    pub fn blobs(&self) -> &[GaussianBlob] {
        &self.blobs
    }

    /// Adds a blob.
    pub fn push(&mut self, blob: GaussianBlob) {
        self.blobs.push(blob);
    }

    /// Returns a copy with every blob centre displaced by `(dx, dy)` —
    /// used by the drifting-field dynamics.
    pub fn translated(&self, dx: f64, dy: f64) -> GaussianMixtureField {
        GaussianMixtureField {
            base: self.base,
            blobs: self
                .blobs
                .iter()
                .map(|b| GaussianBlob {
                    center: Point2::new(b.center.x + dx, b.center.y + dy),
                    ..*b
                })
                .collect(),
        }
    }
}

impl Field for GaussianMixtureField {
    fn value(&self, p: Point2) -> f64 {
        self.base + self.blobs.iter().map(|b| b.value(p)).sum::<f64>()
    }
}

/// The affine field `z = a·x + b·y + c`. Its Delaunay reconstruction is
/// exact from any three non-collinear samples, making it the canonical
/// zero-error test case.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PlaneField {
    a: f64,
    b: f64,
    c: f64,
}

impl PlaneField {
    /// Creates `z = a·x + b·y + c`.
    pub fn new(a: f64, b: f64, c: f64) -> Self {
        PlaneField { a, b, c }
    }
}

impl Field for PlaneField {
    fn value(&self, p: Point2) -> f64 {
        self.a * p.x + self.b * p.y + self.c
    }
}

/// The quadric `z = a·x² + b·xy + c·y²` centred on a point. Its
/// Gaussian curvature at the centre is known in closed form, making it
/// the ground truth for the curvature-estimation tests (Eqns. 11–13 of
/// the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParaboloidField {
    center: Point2,
    /// Coefficient of `x²`.
    pub a: f64,
    /// Coefficient of `xy`.
    pub b: f64,
    /// Coefficient of `y²`.
    pub c: f64,
}

impl ParaboloidField {
    /// Creates `z = a·(x−cx)² + b·(x−cx)(y−cy) + c·(y−cy)²`.
    pub fn new(center: Point2, a: f64, b: f64, c: f64) -> Self {
        ParaboloidField { center, a, b, c }
    }

    /// The paper's principal curvatures at the centre
    /// (`g₁,₂ = a + c ∓ √((a−c)² + b²)`, Eqns. 12–13).
    pub fn principal_curvatures(&self) -> (f64, f64) {
        let s = ((self.a - self.c) * (self.a - self.c) + self.b * self.b).sqrt();
        (self.a + self.c - s, self.a + self.c + s)
    }

    /// The paper's Gaussian curvature `G = g₁·g₂` at the centre.
    pub fn gaussian_curvature(&self) -> f64 {
        let (g1, g2) = self.principal_curvatures();
        g1 * g2
    }
}

impl Field for ParaboloidField {
    fn value(&self, p: Point2) -> f64 {
        let x = p.x - self.center.x;
        let y = p.y - self.center.y;
        self.a * x * x + self.b * x * y + self.c * y * y
    }
}

/// A sinusoidal ridge field `z = amplitude · sin(2π·x/λx) · cos(2π·y/λy)`,
/// useful as a non-convex stress surface (the paper's future-work
/// concave case).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RidgeField {
    /// Peak height.
    pub amplitude: f64,
    /// Wavelength along X (must be non-zero).
    pub wavelength_x: f64,
    /// Wavelength along Y (must be non-zero).
    pub wavelength_y: f64,
}

impl RidgeField {
    /// Creates a ridge field.
    pub fn new(amplitude: f64, wavelength_x: f64, wavelength_y: f64) -> Self {
        RidgeField {
            amplitude,
            wavelength_x,
            wavelength_y,
        }
    }
}

impl Field for RidgeField {
    fn value(&self, p: Point2) -> f64 {
        let tau = std::f64::consts::TAU;
        self.amplitude
            * (tau * p.x / self.wavelength_x).sin()
            * (tau * p.y / self.wavelength_y).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_geometry::GridSpec;

    #[test]
    fn peaks_has_matlab_extremes() {
        // Matlab's peaks ranges roughly over [-6.55, 8.11] on [-3,3]².
        let region = Rect::square(100.0).unwrap();
        let f = PeaksField::new(region, 1.0);
        let grid = GridSpec::new(region, 201, 201).unwrap();
        let s = f.summarize(&grid);
        assert!((s.max - 8.1).abs() < 0.2, "max {}", s.max);
        assert!((s.min + 6.55).abs() < 0.2, "min {}", s.min);
    }

    #[test]
    fn peaks_amplitude_scales_linearly() {
        let region = Rect::square(10.0).unwrap();
        let f1 = PeaksField::new(region, 1.0);
        let f2 = PeaksField::new(region, 3.0);
        let p = Point2::new(4.0, 7.0);
        assert!((f2.value(p) - 3.0 * f1.value(p)).abs() < 1e-12);
        assert_eq!(f1.region(), region);
    }

    #[test]
    fn blob_peaks_at_center_and_decays() {
        let b = GaussianBlob::isotropic(Point2::new(5.0, 5.0), 2.0, 1.0);
        assert_eq!(b.value(Point2::new(5.0, 5.0)), 2.0);
        assert!(b.value(Point2::new(6.0, 5.0)) < 2.0);
        assert!(b.value(Point2::new(15.0, 5.0)) < 1e-8);
    }

    #[test]
    fn anisotropic_blob_stretches() {
        let b = GaussianBlob {
            center: Point2::ORIGIN,
            amplitude: 1.0,
            sigma_x: 4.0,
            sigma_y: 1.0,
        };
        // Same offset decays slower along the wide axis.
        assert!(b.value(Point2::new(2.0, 0.0)) > b.value(Point2::new(0.0, 2.0)));
    }

    #[test]
    fn mixture_sums_components() {
        let mut f = GaussianMixtureField::new(10.0, vec![]);
        assert_eq!(f.value(Point2::ORIGIN), 10.0);
        f.push(GaussianBlob::isotropic(Point2::ORIGIN, 5.0, 2.0));
        assert_eq!(f.value(Point2::ORIGIN), 15.0);
        assert_eq!(f.blobs().len(), 1);
        assert_eq!(f.base(), 10.0);
    }

    #[test]
    fn mixture_translation_shifts_peaks() {
        let f = GaussianMixtureField::new(
            0.0,
            vec![GaussianBlob::isotropic(Point2::new(1.0, 1.0), 1.0, 0.5)],
        );
        let g = f.translated(2.0, -1.0);
        assert!((g.value(Point2::new(3.0, 0.0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn plane_is_affine() {
        let f = PlaneField::new(2.0, -1.0, 3.0);
        assert_eq!(f.value(Point2::new(1.0, 1.0)), 4.0);
    }

    #[test]
    fn paraboloid_curvature_closed_form() {
        // Isotropic bowl z = x² + y²: g1 = g2 = 2, G = 4.
        let f = ParaboloidField::new(Point2::ORIGIN, 1.0, 0.0, 1.0);
        let (g1, g2) = f.principal_curvatures();
        assert_eq!((g1, g2), (2.0, 2.0));
        assert_eq!(f.gaussian_curvature(), 4.0);
        // Saddle z = x² − y²: G = (0−2)·(0+2)... g1 = 0−2 = hmm, from the
        // formula: a=1, c=−1 ⇒ g1 = 0 − 2 = −2, g2 = 2, G = −4.
        let s = ParaboloidField::new(Point2::ORIGIN, 1.0, 0.0, -1.0);
        assert_eq!(s.gaussian_curvature(), -4.0);
    }

    #[test]
    fn ridge_oscillates() {
        let f = RidgeField::new(2.0, 4.0, 4.0);
        assert!((f.value(Point2::new(1.0, 0.0)) - 2.0).abs() < 1e-12);
        assert!((f.value(Point2::new(3.0, 0.0)) + 2.0).abs() < 1e-12);
        assert!(f.value(Point2::new(0.0, 0.0)).abs() < 1e-12);
    }
}
