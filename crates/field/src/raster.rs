//! Triangle-major scanline rasterization of the reconstruction surface.
//!
//! The locate-walk quadrature answers "which triangle contains this grid
//! point?" once per cell. This module inverts the loop: each alive
//! triangle is *planed* once (the linear `z = za + gx·(x−ax) + gy·(y−ay)`
//! its lifted vertices span), clipped to the grid rows it crosses, and
//! swept along each row span with an incremental DDA (`z += gx·Δx`) —
//! no point location at all for cells inside the hull. Cells no span
//! claims (outside the hull, or under a degenerate sliver the plan
//! rejects) fall back to the surface's existing extrapolation
//! semantics, so hull-exterior behavior is unchanged.
//!
//! Two fill modes exist:
//!
//! * **value mode** ([`RasterPlan::fill_row_values`]) writes plane
//!   heights directly and is used by the δ quadrature and the tile
//!   cache. Span cells are claimed without re-verifying containment:
//!   the reconstruction is continuous across interior edges, so a cell
//!   attributed to either neighbor of an fp-ambiguous edge crossing
//!   gets the same height up to one rounding step.
//! * **locate mode** ([`RasterPlan::fill_row_owners`]) records *which*
//!   triangle owns each cell and only claims cells strictly inside by
//!   more than the walk's `1e-12` orientation tolerance — any such
//!   cell is one the walk provably assigns to the same triangle, which
//!   lets the FRA error grid reproduce walk results bit-for-bit while
//!   skipping the walk for the vast majority of cells.

use cps_geometry::scanline::{span_cells, triangle_row_span};
use cps_geometry::{predicates::orient2d, GridSpec, Point2, Triangle, Triangulation, VertexId};

use crate::delta::weight;
use crate::incremental::DeltaTotals;
use crate::par::{map_rows, Parallelism};
use crate::reconstruct::ReconstructedSurface;
use crate::traits::Field;

/// Sentinel for "no triangle claimed this cell" in locate mode.
pub const NO_OWNER: u32 = u32::MAX;

/// Margin beyond the walk's orientation tolerance required before
/// locate mode claims a cell: strictly inside every edge by more than
/// the walk's acceptance slack means the walk cannot stop in any other
/// triangle for that point.
const STRICT_INSIDE: f64 = 1e-12;

/// Which δ-quadrature / error-grid kernel to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Kernel {
    /// Per-cell point location via the cursor walk (the original path).
    Walk,
    /// Triangle-major scanline rasterization (this module). Default.
    #[default]
    Raster,
}

impl Kernel {
    /// Stable lowercase name (CLI flag value, checkpoint field).
    pub fn as_str(self) -> &'static str {
        match self {
            Kernel::Walk => "walk",
            Kernel::Raster => "raster",
        }
    }
}

impl std::str::FromStr for Kernel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "walk" => Ok(Kernel::Walk),
            "raster" => Ok(Kernel::Raster),
            other => Err(format!("unknown kernel '{other}' (use walk|raster)")),
        }
    }
}

/// One planed triangle of the reconstruction surface.
#[derive(Debug, Clone, Copy)]
struct PlanTri {
    geom: Triangle,
    /// Vertex ids in the exact order the walk reports them, so locate
    /// mode can reproduce `interpolate_with` arithmetic bit-for-bit.
    ids: [VertexId; 3],
    /// Plane gradient of the lifted triangle.
    gx: f64,
    gy: f64,
    /// Sample height at vertex `a` (the plane's anchor).
    za: f64,
}

/// A rasterization plan: every alive triangle planed once and bucketed
/// by the grid rows it crosses. Building is `O(tris + ny)`; each fill
/// touches only the triangles crossing its row.
///
/// The plan is a pure function of `(triangulation, samples, grid)` —
/// it holds no cursor or other call-history state — so every fill from
/// the same plan is deterministic regardless of thread interleaving.
#[derive(Debug, Clone)]
pub struct RasterPlan {
    grid: GridSpec,
    tris: Vec<PlanTri>,
    /// Indices into `tris` for each grid row.
    rows: Vec<Vec<u32>>,
}

impl RasterPlan {
    /// Planes every alive triangle of `dt` (lifted by `samples`) and
    /// clips it to the rows of `grid`.
    ///
    /// Triangles whose plane gradient is non-finite (degenerate or
    /// fp-catastrophic slivers) are left out of the plan; the cells
    /// under them simply fall back to per-cell location.
    pub fn build(dt: &Triangulation, samples: &[f64], grid: &GridSpec) -> Self {
        let mut tris: Vec<PlanTri> = Vec::new();
        let mut rows: Vec<Vec<u32>> = vec![Vec::new(); grid.ny()];
        let oy = grid.rect().min().y;
        let dy = grid.dy();
        dt.for_each_triangle(|ids, geom| {
            let e1x = geom.b.x - geom.a.x;
            let e1y = geom.b.y - geom.a.y;
            let e2x = geom.c.x - geom.a.x;
            let e2y = geom.c.y - geom.a.y;
            let det = e1x * e2y - e1y * e2x;
            let dz1 = samples[ids[1].0] - samples[ids[0].0];
            let dz2 = samples[ids[2].0] - samples[ids[0].0];
            let gx = (dz1 * e2y - dz2 * e1y) / det;
            let gy = (dz2 * e1x - dz1 * e2x) / det;
            if !(gx.is_finite() && gy.is_finite()) {
                return;
            }
            let ymin = geom.a.y.min(geom.b.y).min(geom.c.y);
            let ymax = geom.a.y.max(geom.b.y).max(geom.c.y);
            let Some((j0, j1)) = span_cells(ymin, ymax, oy, dy, grid.ny()) else {
                return;
            };
            let t = tris.len() as u32;
            tris.push(PlanTri {
                geom,
                ids,
                gx,
                gy,
                za: samples[ids[0].0],
            });
            for row in &mut rows[j0..=j1] {
                row.push(t);
            }
        });
        cps_obs::count_by(cps_obs::Counter::TrianglesRasterized, tris.len() as u64);
        RasterPlan {
            grid: *grid,
            tris,
            rows,
        }
    }

    /// Number of triangles in the plan.
    pub fn triangle_count(&self) -> usize {
        self.tris.len()
    }

    /// The inclusive span of cells triangle `t` covers on row `j`,
    /// clipped to `[i0, i1]`.
    fn row_cells(&self, t: u32, j: usize, i0: usize, i1: usize) -> Option<(usize, usize)> {
        let y = self.grid.point(0, j).y;
        let (lo, hi) = triangle_row_span(&self.tris[t as usize].geom, y)?;
        let ox = self.grid.rect().min().x;
        let (s, e) = span_cells(lo, hi, ox, self.grid.dx(), self.grid.nx())?;
        let (s, e) = (s.max(i0), e.min(i1));
        (s <= e).then_some((s, e))
    }

    /// Value mode: overwrites `out[i - i0]` with the plane height for
    /// every cell `i ∈ [i0, i1]` of row `j` claimed by a span, leaving
    /// unclaimed slots untouched (callers pre-fill with NaN). Returns
    /// the number of cells written (with multiplicity, which only
    /// differs on fp-exact edge crossings).
    pub fn fill_row_values(&self, j: usize, i0: usize, i1: usize, out: &mut [f64]) -> usize {
        debug_assert_eq!(out.len(), i1 - i0 + 1);
        let y = self.grid.point(0, j).y;
        let dx = self.grid.dx();
        let mut claimed = 0;
        for &t in &self.rows[j] {
            let Some((s, e)) = self.row_cells(t, j, i0, i1) else {
                continue;
            };
            let tri = &self.tris[t as usize];
            let x0 = self.grid.point(s, j).x;
            let mut z = tri.za + tri.gx * (x0 - tri.geom.a.x) + tri.gy * (y - tri.geom.a.y);
            let step = tri.gx * dx;
            for slot in &mut out[s - i0..=e - i0] {
                *slot = z;
                z += step;
            }
            claimed += e - s + 1;
        }
        cps_obs::count_by(cps_obs::Counter::RasterCells, claimed as u64);
        claimed
    }

    /// Locate mode: writes the owning plan-triangle index into
    /// `out[i - i0]` for every cell of row `j` that lies strictly
    /// inside a planed triangle (beyond the walk tolerance), leaving
    /// other slots untouched (callers pre-fill with [`NO_OWNER`]).
    /// Returns the number of cells claimed.
    pub fn fill_row_owners(&self, j: usize, i0: usize, i1: usize, out: &mut [u32]) -> usize {
        debug_assert_eq!(out.len(), i1 - i0 + 1);
        let mut claimed = 0;
        for &t in &self.rows[j] {
            let Some((s, e)) = self.row_cells(t, j, i0, i1) else {
                continue;
            };
            let tri = &self.tris[t as usize];
            let (a, b, c) = (tri.geom.a, tri.geom.b, tri.geom.c);
            for i in s..=e {
                let p = self.grid.point(i, j);
                if orient2d(a, b, p) > STRICT_INSIDE
                    && orient2d(b, c, p) > STRICT_INSIDE
                    && orient2d(c, a, p) > STRICT_INSIDE
                {
                    out[i - i0] = t;
                    claimed += 1;
                }
            }
        }
        cps_obs::count_by(cps_obs::Counter::RasterCells, claimed as u64);
        claimed
    }

    /// Interpolates `samples` at `p` inside plan triangle `owner`,
    /// using the same barycentric arithmetic as the locate walk (so a
    /// cell claimed by locate mode reproduces the walk's value
    /// bit-for-bit). `None` for [`NO_OWNER`] or a degenerate triangle.
    pub fn interpolate_owned(&self, owner: u32, p: Point2, samples: &[f64]) -> Option<f64> {
        let tri = self.tris.get(owner as usize)?;
        tri.geom.interpolate(
            p,
            [
                samples[tri.ids[0].0],
                samples[tri.ids[1].0],
                samples[tri.ids[2].0],
            ],
        )
    }
}

/// Fused δ + RMS quadrature of `|reference − surface|` over `grid`
/// using the raster kernel: one sweep computes both integrals, with
/// hull-exterior (and sliver-fallback) cells answered by the surface's
/// usual extrapolation path.
///
/// Rows are whole work units and are folded in row order, so the
/// result is bit-identical at every thread count — and, like the walk
/// quadrature, within quadrature tolerance (≤1e-9 relative) of the
/// walk kernel's `volume_difference` / `rms_difference` pair.
pub fn delta_rms_raster<F: Field + Sync>(
    reference: &F,
    surface: &ReconstructedSurface,
    grid: &GridSpec,
    par: Parallelism,
) -> DeltaTotals {
    let _t = cps_obs::time(
        cps_obs::Phase::DeltaRaster,
        par.effective_workers(grid.ny()),
    );
    let plan = RasterPlan::build(surface.triangulation(), surface.samples(), grid);
    let nx = grid.nx();
    let rows = map_rows(grid.ny(), par, |j| {
        let mut heights = vec![f64::NAN; nx];
        plan.fill_row_values(j, 0, nx - 1, &mut heights);
        let mut row_abs = 0.0;
        let mut row_sq = 0.0;
        for (i, &z) in heights.iter().enumerate() {
            let p = grid.point(i, j);
            let approx = if z.is_nan() {
                surface.value_extrapolated(p).0
            } else {
                z
            };
            let d = reference.value(p) - approx;
            row_abs += weight(grid, i, j) * d.abs();
            row_sq += d * d;
        }
        (row_abs, row_sq)
    });
    let mut abs = 0.0;
    let mut sq = 0.0;
    for (row_abs, row_sq) in rows {
        abs += row_abs;
        sq += row_sq;
    }
    DeltaTotals {
        delta: abs * grid.cell_area(),
        rms: (sq / grid.len() as f64).sqrt(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::{PeaksField, PlaneField};
    use crate::delta::{rms_difference, volume_difference};
    use cps_geometry::Rect;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn scattered_surface(n: usize, seed: u64) -> (Rect, PeaksField, ReconstructedSurface) {
        let region = Rect::square(100.0).unwrap();
        let reference = PeaksField::new(region, 8.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut positions: Vec<Point2> = region.corners().to_vec();
        for _ in 0..n {
            positions.push(Point2::new(
                rng.gen_range(5.0..95.0),
                rng.gen_range(5.0..95.0),
            ));
        }
        let samples: Vec<f64> = positions.iter().map(|&p| reference.value(p)).collect();
        let surface = ReconstructedSurface::from_samples(region, &positions, &samples).unwrap();
        (region, reference, surface)
    }

    #[test]
    fn raster_quadrature_matches_walk_within_tolerance() {
        let (region, reference, surface) = scattered_surface(60, 9);
        let grid = GridSpec::new(region, 81, 81).unwrap();
        let walk_delta = volume_difference(&reference, &surface, &grid);
        let walk_rms = rms_difference(&reference, &surface, &grid);
        let got = delta_rms_raster(&reference, &surface, &grid, Parallelism::serial());
        assert!(
            (got.delta - walk_delta).abs() <= 1e-9 * walk_delta.abs().max(1.0),
            "delta: raster {} vs walk {}",
            got.delta,
            walk_delta
        );
        assert!(
            (got.rms - walk_rms).abs() <= 1e-9 * walk_rms.abs().max(1.0),
            "rms: raster {} vs walk {}",
            got.rms,
            walk_rms
        );
    }

    #[test]
    fn raster_reconstructs_a_plane_exactly() {
        // The reconstruction of samples drawn from a plane IS that
        // plane, so raster δ must be ~0 inside and outside the hull.
        let region = Rect::square(50.0).unwrap();
        let plane = PlaneField::new(0.03, -0.01, 2.0);
        let positions: Vec<Point2> = vec![
            Point2::new(10.0, 10.0),
            Point2::new(40.0, 12.0),
            Point2::new(25.0, 40.0),
            Point2::new(12.0, 30.0),
        ];
        let samples: Vec<f64> = positions.iter().map(|&p| plane.value(p)).collect();
        let surface = ReconstructedSurface::from_samples(region, &positions, &samples).unwrap();
        let grid = GridSpec::new(region, 41, 41).unwrap();
        let interior = GridSpec::new(
            Rect::new(Point2::new(15.0, 15.0), Point2::new(30.0, 30.0)).unwrap(),
            21,
            21,
        )
        .unwrap();
        let got = delta_rms_raster(&plane, &surface, &interior, Parallelism::serial());
        assert!(got.delta < 1e-9, "interior plane delta {}", got.delta);
        // Hull-exterior cells go through extrapolation: identical to
        // the walk kernel by construction (same fallback call).
        let walk = volume_difference(&plane, &surface, &grid);
        let full = delta_rms_raster(&plane, &surface, &grid, Parallelism::serial());
        assert!((full.delta - walk).abs() <= 1e-9 * walk.max(1.0));
    }

    #[test]
    fn raster_is_bit_identical_across_thread_counts() {
        let (region, reference, surface) = scattered_surface(40, 4);
        let grid = GridSpec::new(region, 67, 73).unwrap();
        let reference_run = delta_rms_raster(&reference, &surface, &grid, Parallelism::serial());
        for threads in [2, 3, 8] {
            let got = delta_rms_raster(&reference, &surface, &grid, Parallelism::fixed(threads));
            assert_eq!(got.delta.to_bits(), reference_run.delta.to_bits());
            assert_eq!(got.rms.to_bits(), reference_run.rms.to_bits());
        }
    }

    #[test]
    fn locate_mode_owners_agree_with_the_walk() {
        let (region, _reference, surface) = scattered_surface(50, 11);
        let grid = GridSpec::new(region, 61, 61).unwrap();
        let dt = surface.triangulation();
        let samples = surface.samples();
        let plan = RasterPlan::build(dt, samples, &grid);
        let mut owners = vec![NO_OWNER; grid.nx()];
        let mut verified = 0usize;
        for j in 0..grid.ny() {
            owners.fill(NO_OWNER);
            plan.fill_row_owners(j, 0, grid.nx() - 1, &mut owners);
            for (i, &o) in owners.iter().enumerate() {
                if o == NO_OWNER {
                    continue;
                }
                let p = grid.point(i, j);
                let raster = plan.interpolate_owned(o, p, samples).unwrap();
                let walk = dt.interpolate(p, samples).unwrap();
                assert_eq!(
                    raster.to_bits(),
                    walk.to_bits(),
                    "cell ({i},{j}) raster {raster} vs walk {walk}"
                );
                verified += 1;
            }
        }
        assert!(
            verified > grid.len() / 2,
            "locate mode should claim most interior cells, got {verified}"
        );
    }

    #[test]
    fn kernel_parses_and_round_trips() {
        assert_eq!("walk".parse::<Kernel>().unwrap(), Kernel::Walk);
        assert_eq!("raster".parse::<Kernel>().unwrap(), Kernel::Raster);
        assert!("speedy".parse::<Kernel>().is_err());
        assert_eq!(Kernel::default(), Kernel::Raster);
        for k in [Kernel::Walk, Kernel::Raster] {
            assert_eq!(k.as_str().parse::<Kernel>().unwrap(), k);
        }
    }
}
