//! Scalar fields sampled on a regular grid.

use cps_geometry::{GridSpec, Point2};

use crate::{Field, FieldError};

/// A scalar field stored as samples on a regular grid, evaluated
/// anywhere by bilinear interpolation.
///
/// Queries outside the grid's rectangle are clamped to the boundary, so
/// the field is total over the plane (constant extension).
///
/// # Example
///
/// ```
/// use cps_field::{Field, GridField};
/// use cps_geometry::{GridSpec, Point2, Rect};
///
/// let grid = GridSpec::new(Rect::square(10.0).unwrap(), 11, 11).unwrap();
/// let f = GridField::from_fn(grid, |p| p.x * p.y);
/// // Bilinear interpolation reproduces the bilinear function exactly.
/// assert!((f.value(Point2::new(2.5, 3.5)) - 8.75).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GridField {
    spec: GridSpec,
    /// Row-major (`j`-major) samples, `values[j * nx + i]`.
    values: Vec<f64>,
}

impl GridField {
    /// Wraps existing samples (row-major, `j`-major, as produced by
    /// [`Field::sample_grid`]).
    ///
    /// # Errors
    ///
    /// * [`FieldError::LengthMismatch`] — `values.len() != spec.len()`.
    /// * [`FieldError::NonFiniteValue`] — any sample is NaN/∞.
    pub fn new(spec: GridSpec, values: Vec<f64>) -> Result<Self, FieldError> {
        if values.len() != spec.len() {
            return Err(FieldError::LengthMismatch {
                positions: spec.len(),
                values: values.len(),
            });
        }
        if values.iter().any(|v| !v.is_finite()) {
            return Err(FieldError::NonFiniteValue);
        }
        Ok(GridField { spec, values })
    }

    /// Samples `f` at every grid point.
    pub fn from_fn<F: FnMut(Point2) -> f64>(spec: GridSpec, mut f: F) -> Self {
        let mut values = vec![0.0; spec.len()];
        for (i, j, p) in spec.iter() {
            values[spec.flat_index(i, j)] = f(p);
        }
        GridField { spec, values }
    }

    /// Rasterizes any [`Field`] onto a grid.
    pub fn from_field<F: Field>(spec: GridSpec, field: &F) -> Self {
        GridField::from_fn(spec, |p| field.value(p))
    }

    /// The grid specification.
    #[inline]
    pub fn spec(&self) -> &GridSpec {
        &self.spec
    }

    /// Borrows the raw samples (row-major, `j`-major).
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Sample at grid point `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of the grid.
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> f64 {
        self.values[self.spec.flat_index(i, j)]
    }

    /// Pointwise map, producing a new field on the same grid.
    pub fn map<F: FnMut(f64) -> f64>(&self, mut f: F) -> GridField {
        GridField {
            spec: self.spec,
            values: self.values.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Minimum sample value.
    pub fn min_value(&self) -> f64 {
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum sample value.
    pub fn max_value(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

impl Field for GridField {
    fn value(&self, p: Point2) -> f64 {
        let rect = self.spec.rect();
        let q = rect.clamp(p);
        let fx = (q.x - rect.min().x) / self.spec.dx();
        let fy = (q.y - rect.min().y) / self.spec.dy();
        let i0 = (fx.floor() as usize).min(self.spec.nx() - 2);
        let j0 = (fy.floor() as usize).min(self.spec.ny() - 2);
        let tx = (fx - i0 as f64).clamp(0.0, 1.0);
        let ty = (fy - j0 as f64).clamp(0.0, 1.0);
        let v00 = self.at(i0, j0);
        let v10 = self.at(i0 + 1, j0);
        let v01 = self.at(i0, j0 + 1);
        let v11 = self.at(i0 + 1, j0 + 1);
        v00 * (1.0 - tx) * (1.0 - ty)
            + v10 * tx * (1.0 - ty)
            + v01 * (1.0 - tx) * ty
            + v11 * tx * ty
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_geometry::Rect;

    fn spec() -> GridSpec {
        GridSpec::new(Rect::square(10.0).unwrap(), 11, 11).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(matches!(
            GridField::new(spec(), vec![0.0; 5]),
            Err(FieldError::LengthMismatch { .. })
        ));
        let mut vals = vec![0.0; spec().len()];
        vals[3] = f64::NAN;
        assert!(matches!(
            GridField::new(spec(), vals),
            Err(FieldError::NonFiniteValue)
        ));
        assert!(GridField::new(spec(), vec![1.0; spec().len()]).is_ok());
    }

    #[test]
    fn exact_at_grid_points() {
        let f = GridField::from_fn(spec(), |p| p.x - 3.0 * p.y);
        for (i, j, p) in spec().iter() {
            assert_eq!(f.at(i, j), p.x - 3.0 * p.y);
            assert!((f.value(p) - (p.x - 3.0 * p.y)).abs() < 1e-12);
        }
    }

    #[test]
    fn bilinear_between_grid_points() {
        let f = GridField::from_fn(spec(), |p| 2.0 * p.x + p.y);
        // Affine functions are reproduced exactly by bilinear interpolation.
        for (x, y) in [(0.5, 0.5), (3.3, 7.7), (9.99, 0.01)] {
            let p = Point2::new(x, y);
            assert!((f.value(p) - (2.0 * x + y)).abs() < 1e-9);
        }
    }

    #[test]
    fn out_of_region_queries_clamp() {
        let f = GridField::from_fn(spec(), |p| p.x);
        assert_eq!(f.value(Point2::new(-5.0, 5.0)), 0.0);
        assert_eq!(f.value(Point2::new(25.0, 5.0)), 10.0);
    }

    #[test]
    fn map_and_extremes() {
        let f = GridField::from_fn(spec(), |p| p.x);
        let g = f.map(|v| -v);
        assert_eq!(g.min_value(), -10.0);
        assert_eq!(g.max_value(), 0.0);
        assert_eq!(f.max_value(), 10.0);
    }

    #[test]
    fn from_field_round_trip() {
        struct Lin;
        impl Field for Lin {
            fn value(&self, p: Point2) -> f64 {
                p.y
            }
        }
        let f = GridField::from_field(spec(), &Lin);
        assert_eq!(f.values().len(), 121);
        assert_eq!(f.at(0, 10), 10.0);
    }
}
