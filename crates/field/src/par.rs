//! Row-sharded parallel execution for grid sweeps.
//!
//! Every experiment in the paper reduces to dense-grid evaluation —
//! quadrature for the δ metric, curvature sweeps, per-cell error
//! refreshes — so this module provides the one primitive they all
//! share: *split the rows of a grid across threads, compute each row
//! independently, and reduce in row order*. Reducing in a fixed order
//! keeps floating-point results **bit-identical regardless of thread
//! count**, which the workspace's determinism tests rely on.
//!
//! Parallel batches run on the persistent worker pool in [`cps_pool`]
//! rather than spawning scoped threads per call: workers are created
//! lazily on first use and then parked between calls, so the hot
//! evaluation path pays no spawn cost. Small batches under
//! [`AUTO_SERIAL_CUTOFF`] stay on the calling thread when the policy is
//! [`Parallelism::auto`]. This crate itself stays `unsafe`-free; the
//! one lifetime-erasure `unsafe` lives in `cps-pool`.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::thread;

/// Row counts below this stay serial under [`Parallelism::auto`].
///
/// Handing a batch to the pool costs a couple of microseconds of
/// queueing and wake-up; a grid sweep of a few dozen rows finishes in
/// less than that, so `auto` never forwards such batches. Explicit
/// [`Parallelism::fixed`] requests are always honored.
pub const AUTO_SERIAL_CUTOFF: usize = 64;

/// Each worker's share is split this many ways so that uneven rows
/// (e.g. hull-heavy bands) rebalance dynamically via the chunk counter.
const CHUNKS_PER_WORKER: usize = 4;

/// Thread-count policy for the parallel evaluation engine.
///
/// The default asks the OS via [`std::thread::available_parallelism`];
/// [`Parallelism::serial`] pins everything to the calling thread, and
/// [`Parallelism::fixed`] requests an exact worker count. Results of
/// the engine are bit-identical across all of these — the policy only
/// changes wall-clock time.
///
/// # Example
///
/// ```
/// use cps_field::Parallelism;
///
/// assert_eq!(Parallelism::serial().threads(), 1);
/// assert_eq!(Parallelism::fixed(4).threads(), 4);
/// assert!(Parallelism::auto().threads() >= 1);
/// // `from_threads` maps a CLI-style `--threads 0` to auto.
/// assert_eq!(Parallelism::from_threads(0), Parallelism::auto());
/// assert_eq!(Parallelism::from_threads(2), Parallelism::fixed(2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Parallelism {
    /// Requested worker count; `0` means "ask the OS".
    requested: usize,
}

impl Parallelism {
    /// Uses [`std::thread::available_parallelism`] at execution time.
    pub fn auto() -> Self {
        Parallelism { requested: 0 }
    }

    /// Runs everything on the calling thread.
    pub fn serial() -> Self {
        Parallelism { requested: 1 }
    }

    /// Requests exactly `n` workers (`n = 0` is treated as 1).
    pub fn fixed(n: usize) -> Self {
        Parallelism {
            requested: n.max(1),
        }
    }

    /// CLI-flag convention: `0` selects [`Parallelism::auto`], anything
    /// else [`Parallelism::fixed`].
    pub fn from_threads(n: usize) -> Self {
        if n == 0 {
            Parallelism::auto()
        } else {
            Parallelism::fixed(n)
        }
    }

    /// The effective worker count this policy resolves to right now.
    pub fn threads(&self) -> usize {
        if self.requested == 0 {
            thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.requested
        }
    }

    /// Worker count actually used for a batch of `items` rows.
    ///
    /// [`Parallelism::auto`] resolves to a single (calling) thread for
    /// batches under [`AUTO_SERIAL_CUTOFF`] — small grids never pay
    /// pool overhead — while explicit `fixed` requests are honored as
    /// given. Never exceeds `items` and never returns 0.
    pub fn effective_workers(&self, items: usize) -> usize {
        if self.requested == 0 && items < AUTO_SERIAL_CUTOFF {
            return 1;
        }
        self.threads().min(items.max(1))
    }

    /// Whether execution would stay on the calling thread.
    pub fn is_serial(&self) -> bool {
        self.threads() <= 1
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::auto()
    }
}

/// Computes `f(0), f(1), …, f(n - 1)` with rows sharded across up to
/// `par.threads()` pool workers, returning results **in index order**.
///
/// Rows are dealt out in contiguous chunks through a shared counter;
/// the calling thread participates alongside the pool workers, and
/// results are reassembled by chunk start index, so any fold over the
/// returned vector observes the same operand order at every thread
/// count — the determinism guarantee the δ quadrature builds on. Falls
/// back to a plain serial loop when one worker (or one item) remains,
/// and under [`Parallelism::auto`] whenever `n` is below
/// [`AUTO_SERIAL_CUTOFF`].
pub fn map_rows<T, F>(n: usize, par: Parallelism, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = par.effective_workers(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let chunk = n.div_ceil(workers * CHUNKS_PER_WORKER).max(1);
    let n_chunks = n.div_ceil(chunk);
    let next = AtomicUsize::new(0);
    let (res_tx, res_rx) = channel::<(usize, Vec<T>)>();
    let next = &next;
    let f = &f;
    let work = move |tx: Sender<(usize, Vec<T>)>| loop {
        let c = next.fetch_add(1, Ordering::Relaxed);
        if c >= n_chunks {
            break;
        }
        let start = c * chunk;
        let end = (start + chunk).min(n);
        let vals: Vec<T> = (start..end).map(f).collect();
        let _ = tx.send((start, vals));
    };
    let jobs: Vec<cps_pool::Job<'_>> = (1..workers)
        .map(|_| {
            let tx = res_tx.clone();
            Box::new(move || work(tx)) as cps_pool::Job<'_>
        })
        .collect();
    cps_obs::count_by(cps_obs::Counter::PoolTasks, jobs.len() as u64);
    cps_pool::run_with(jobs, || work(res_tx.clone()));
    drop(res_tx);

    let mut out: Vec<Option<T>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    while let Ok((start, vals)) = res_rx.try_recv() {
        for (k, v) in vals.into_iter().enumerate() {
            out[start + k] = Some(v);
        }
    }
    out.into_iter()
        .map(|slot| slot.expect("pool workers filled every chunk"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policies_resolve_to_expected_counts() {
        assert_eq!(Parallelism::serial().threads(), 1);
        assert!(Parallelism::serial().is_serial());
        assert_eq!(Parallelism::fixed(3).threads(), 3);
        assert_eq!(Parallelism::fixed(0).threads(), 1);
        assert!(Parallelism::auto().threads() >= 1);
        assert_eq!(Parallelism::default(), Parallelism::auto());
        assert_eq!(Parallelism::from_threads(0), Parallelism::auto());
        assert_eq!(Parallelism::from_threads(5), Parallelism::fixed(5));
    }

    #[test]
    fn auto_stays_serial_below_the_cutoff() {
        let auto = Parallelism::auto();
        assert_eq!(auto.effective_workers(0), 1);
        assert_eq!(auto.effective_workers(1), 1);
        assert_eq!(auto.effective_workers(AUTO_SERIAL_CUTOFF - 1), 1);
        // At or above the cutoff, auto scales with the hardware again.
        let at = auto.effective_workers(AUTO_SERIAL_CUTOFF);
        assert_eq!(at, auto.threads().min(AUTO_SERIAL_CUTOFF));
        // Explicit requests are honored even for tiny batches.
        assert_eq!(Parallelism::fixed(4).effective_workers(8), 4);
        assert_eq!(Parallelism::fixed(4).effective_workers(2), 2);
        assert_eq!(Parallelism::serial().effective_workers(1000), 1);
    }

    #[test]
    fn map_rows_preserves_index_order() {
        for par in [
            Parallelism::serial(),
            Parallelism::fixed(2),
            Parallelism::fixed(3),
            Parallelism::fixed(7),
            Parallelism::auto(),
        ] {
            let got = map_rows(23, par, |i| i * i);
            let want: Vec<usize> = (0..23).map(|i| i * i).collect();
            assert_eq!(got, want, "with {par:?}");
        }
    }

    #[test]
    fn map_rows_handles_edge_sizes() {
        assert!(map_rows(0, Parallelism::fixed(4), |i| i).is_empty());
        assert_eq!(map_rows(1, Parallelism::fixed(4), |i| i + 10), vec![10]);
        // More workers than items.
        assert_eq!(map_rows(3, Parallelism::fixed(16), |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn map_rows_folds_bit_identically_across_thread_counts() {
        // A deliberately ill-conditioned per-row value: summing it in a
        // different order would change the result's last bits.
        let row = |j: usize| ((j as f64) * 0.1).sin() * 1e10 + 1.0 / (j as f64 + 1.0);
        let fold = |par: Parallelism| -> f64 { map_rows(97, par, row).iter().sum() };
        let reference = fold(Parallelism::serial());
        for threads in [2, 3, 4, 8] {
            let got = fold(Parallelism::fixed(threads));
            assert_eq!(got.to_bits(), reference.to_bits(), "{threads} threads");
        }
    }
}
