//! Row-sharded parallel execution for grid sweeps.
//!
//! Every experiment in the paper reduces to dense-grid evaluation —
//! quadrature for the δ metric, curvature sweeps, per-cell error
//! refreshes — so this module provides the one primitive they all
//! share: *split the rows of a grid across threads, compute each row
//! independently, and reduce in row order*. Reducing in a fixed order
//! keeps floating-point results **bit-identical regardless of thread
//! count**, which the workspace's determinism tests rely on.
//!
//! Built on [`std::thread::scope`] only; no external dependencies and
//! no `unsafe`.

use std::num::NonZeroUsize;
use std::thread;

/// Thread-count policy for the parallel evaluation engine.
///
/// The default asks the OS via [`std::thread::available_parallelism`];
/// [`Parallelism::serial`] pins everything to the calling thread, and
/// [`Parallelism::fixed`] requests an exact worker count. Results of
/// the engine are bit-identical across all of these — the policy only
/// changes wall-clock time.
///
/// # Example
///
/// ```
/// use cps_field::Parallelism;
///
/// assert_eq!(Parallelism::serial().threads(), 1);
/// assert_eq!(Parallelism::fixed(4).threads(), 4);
/// assert!(Parallelism::auto().threads() >= 1);
/// // `from_threads` maps a CLI-style `--threads 0` to auto.
/// assert_eq!(Parallelism::from_threads(0), Parallelism::auto());
/// assert_eq!(Parallelism::from_threads(2), Parallelism::fixed(2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Parallelism {
    /// Requested worker count; `0` means "ask the OS".
    requested: usize,
}

impl Parallelism {
    /// Uses [`std::thread::available_parallelism`] at execution time.
    pub fn auto() -> Self {
        Parallelism { requested: 0 }
    }

    /// Runs everything on the calling thread.
    pub fn serial() -> Self {
        Parallelism { requested: 1 }
    }

    /// Requests exactly `n` workers (`n = 0` is treated as 1).
    pub fn fixed(n: usize) -> Self {
        Parallelism {
            requested: n.max(1),
        }
    }

    /// CLI-flag convention: `0` selects [`Parallelism::auto`], anything
    /// else [`Parallelism::fixed`].
    pub fn from_threads(n: usize) -> Self {
        if n == 0 {
            Parallelism::auto()
        } else {
            Parallelism::fixed(n)
        }
    }

    /// The effective worker count this policy resolves to right now.
    pub fn threads(&self) -> usize {
        if self.requested == 0 {
            thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.requested
        }
    }

    /// Whether execution would stay on the calling thread.
    pub fn is_serial(&self) -> bool {
        self.threads() <= 1
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::auto()
    }
}

/// Computes `f(0), f(1), …, f(n - 1)` with rows sharded across up to
/// `par.threads()` scoped threads, returning results **in index
/// order**.
///
/// The assignment of indices to workers is a static contiguous
/// partition, and each worker evaluates its indices in ascending order,
/// so any fold over the returned vector observes the same operand order
/// at every thread count — the determinism guarantee the δ quadrature
/// builds on. Falls back to a plain serial loop when one worker (or one
/// item) remains.
pub fn map_rows<T, F>(n: usize, par: Parallelism, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = par.threads().min(n.max(1));
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let mut out: Vec<Option<T>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let chunk = n.div_ceil(workers);
    let f = &f;
    thread::scope(|scope| {
        for (w, slots) in out.chunks_mut(chunk).enumerate() {
            let base = w * chunk;
            scope.spawn(move || {
                for (k, slot) in slots.iter_mut().enumerate() {
                    *slot = Some(f(base + k));
                }
            });
        }
    });
    out.into_iter()
        .map(|slot| slot.expect("scoped worker filled every slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policies_resolve_to_expected_counts() {
        assert_eq!(Parallelism::serial().threads(), 1);
        assert!(Parallelism::serial().is_serial());
        assert_eq!(Parallelism::fixed(3).threads(), 3);
        assert_eq!(Parallelism::fixed(0).threads(), 1);
        assert!(Parallelism::auto().threads() >= 1);
        assert_eq!(Parallelism::default(), Parallelism::auto());
        assert_eq!(Parallelism::from_threads(0), Parallelism::auto());
        assert_eq!(Parallelism::from_threads(5), Parallelism::fixed(5));
    }

    #[test]
    fn map_rows_preserves_index_order() {
        for par in [
            Parallelism::serial(),
            Parallelism::fixed(2),
            Parallelism::fixed(3),
            Parallelism::fixed(7),
            Parallelism::auto(),
        ] {
            let got = map_rows(23, par, |i| i * i);
            let want: Vec<usize> = (0..23).map(|i| i * i).collect();
            assert_eq!(got, want, "with {par:?}");
        }
    }

    #[test]
    fn map_rows_handles_edge_sizes() {
        assert!(map_rows(0, Parallelism::fixed(4), |i| i).is_empty());
        assert_eq!(map_rows(1, Parallelism::fixed(4), |i| i + 10), vec![10]);
        // More workers than items.
        assert_eq!(map_rows(3, Parallelism::fixed(16), |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn map_rows_folds_bit_identically_across_thread_counts() {
        // A deliberately ill-conditioned per-row value: summing it in a
        // different order would change the result's last bits.
        let row = |j: usize| ((j as f64) * 0.1).sin() * 1e10 + 1.0 / (j as f64 + 1.0);
        let fold = |par: Parallelism| -> f64 { map_rows(97, par, row).iter().sum() };
        let reference = fold(Parallelism::serial());
        for threads in [2, 3, 4, 8] {
            let got = fold(Parallelism::fixed(threads));
            assert_eq!(got.to_bits(), reference.to_bits(), "{threads} threads");
        }
    }
}
