//! Numeric field calculus: gradients, Hessians, and curvature maps by
//! central differences.
//!
//! These helpers provide "ground truth" differential quantities for any
//! [`Field`] — the reference the node-local quadric estimates
//! (Eqns. 11–13 of the paper) are validated against, and the input to
//! coverage/curvature analyses.

use cps_geometry::{GridSpec, Point2};
use cps_linalg::{SymMat2, Vec2};

use crate::Field;

/// Gradient `(∂f/∂x, ∂f/∂y)` at `p` by central differences with step
/// `h`.
///
/// # Panics
///
/// Debug-panics when `h` is not positive.
pub fn gradient<F: Field>(field: &F, p: Point2, h: f64) -> Vec2 {
    debug_assert!(h > 0.0, "step must be positive");
    let fx = (field.value(Point2::new(p.x + h, p.y)) - field.value(Point2::new(p.x - h, p.y)))
        / (2.0 * h);
    let fy = (field.value(Point2::new(p.x, p.y + h)) - field.value(Point2::new(p.x, p.y - h)))
        / (2.0 * h);
    Vec2::new(fx, fy)
}

/// Hessian `[[f_xx, f_xy], [f_xy, f_yy]]` at `p` by central differences
/// with step `h`.
pub fn hessian<F: Field>(field: &F, p: Point2, h: f64) -> SymMat2 {
    debug_assert!(h > 0.0, "step must be positive");
    let f0 = field.value(p);
    let fxx = (field.value(Point2::new(p.x + h, p.y)) - 2.0 * f0
        + field.value(Point2::new(p.x - h, p.y)))
        / (h * h);
    let fyy = (field.value(Point2::new(p.x, p.y + h)) - 2.0 * f0
        + field.value(Point2::new(p.x, p.y - h)))
        / (h * h);
    let fxy = (field.value(Point2::new(p.x + h, p.y + h))
        - field.value(Point2::new(p.x + h, p.y - h))
        - field.value(Point2::new(p.x - h, p.y + h))
        + field.value(Point2::new(p.x - h, p.y - h)))
        / (4.0 * h * h);
    SymMat2::new(fxx, fxy, fyy)
}

/// Gaussian curvature of the *graph surface* `z = f(x, y)` at `p`:
/// `K = (f_xx·f_yy − f_xy²) / (1 + f_x² + f_y²)²`.
///
/// (The paper's height-field convention — its Eqns. 11–13 — drops the
/// metric denominator; use [`hessian`]`.det()` for that variant.)
pub fn gaussian_curvature<F: Field>(field: &F, p: Point2, h: f64) -> f64 {
    let g = gradient(field, p, h);
    let hess = hessian(field, p, h);
    let denom = 1.0 + g.norm_squared();
    hess.det() / (denom * denom)
}

/// Samples `|Hessian determinant|` (the paper's curvature weight) at
/// every grid point — the curvature map used for coverage analyses.
pub fn curvature_map<F: Field>(field: &F, grid: &GridSpec, h: f64) -> Vec<f64> {
    let mut out = vec![0.0; grid.len()];
    for (i, j, p) in grid.iter() {
        out[grid.flat_index(i, j)] = hessian(field, p, h).det().abs();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ParaboloidField, PlaneField};
    use cps_geometry::Rect;

    #[test]
    fn gradient_of_a_plane_is_constant() {
        let f = PlaneField::new(2.0, -3.0, 1.0);
        let g = gradient(&f, Point2::new(4.0, 7.0), 0.5);
        assert!((g.x - 2.0).abs() < 1e-9);
        assert!((g.y + 3.0).abs() < 1e-9);
    }

    #[test]
    fn hessian_of_a_quadric_is_exact() {
        // f = x² + 3xy − 2y² → Hessian [[2, 3], [3, −4]] (constant, so
        // central differences are exact up to rounding).
        let f = ParaboloidField::new(Point2::ORIGIN, 1.0, 3.0, -2.0);
        let h = hessian(&f, Point2::new(1.0, -2.0), 0.25);
        assert!((h.a - 2.0).abs() < 1e-8);
        assert!((h.b - 3.0).abs() < 1e-8);
        assert!((h.c + 4.0).abs() < 1e-8);
    }

    #[test]
    fn gaussian_curvature_signs() {
        let bowl = ParaboloidField::new(Point2::ORIGIN, 1.0, 0.0, 1.0);
        assert!(gaussian_curvature(&bowl, Point2::ORIGIN, 0.1) > 0.0);
        let saddle = ParaboloidField::new(Point2::ORIGIN, 1.0, 0.0, -1.0);
        assert!(gaussian_curvature(&saddle, Point2::ORIGIN, 0.1) < 0.0);
        let plane = PlaneField::new(1.0, 1.0, 0.0);
        assert!(gaussian_curvature(&plane, Point2::ORIGIN, 0.1).abs() < 1e-9);
    }

    #[test]
    fn metric_denominator_shrinks_steep_curvature() {
        // Same Hessian, steeper slope → smaller |K| for the graph
        // surface.
        struct Tilted;
        impl Field for Tilted {
            fn value(&self, p: Point2) -> f64 {
                10.0 * p.x + p.x * p.x + p.y * p.y
            }
        }
        let flat_bowl = ParaboloidField::new(Point2::ORIGIN, 1.0, 0.0, 1.0);
        let k_flat = gaussian_curvature(&flat_bowl, Point2::ORIGIN, 0.1);
        let k_tilted = gaussian_curvature(&Tilted, Point2::ORIGIN, 0.1);
        assert!(k_tilted < k_flat);
        assert!(k_tilted > 0.0);
    }

    #[test]
    fn curvature_map_peaks_where_features_are() {
        let region = Rect::square(20.0).unwrap();
        let grid = GridSpec::new(region, 21, 21).unwrap();
        let f = crate::GaussianBlob::isotropic(Point2::new(10.0, 10.0), 10.0, 2.0);
        let map = curvature_map(&f, &grid, 0.5);
        let center = map[grid.flat_index(10, 10)];
        let corner = map[grid.flat_index(0, 0)];
        assert!(center > 100.0 * corner.max(1e-12));
    }
}
