//! Zero-cost-when-disabled instrumentation for the CPS workspace:
//! event [`Counter`]s, [`Phase`] wall-clock timers keyed by thread
//! count, and a structured [`RunMetrics`] record serializable as JSON.
//!
//! # Design
//!
//! The collector is a process-global that starts **disabled**. Every
//! hook — [`count`], [`count_by`], [`time`] — begins with a single
//! relaxed atomic load and returns immediately when disabled, so
//! instrumented hot paths pay one predictable branch (verified to be
//! <2% on the δ quadrature bench by `cps-bench`'s `obs_overhead`
//! guard). Hooks never touch floating-point state, RNG streams, or
//! iteration order, so enabling them cannot perturb the engine's
//! bit-identical determinism guarantees.
//!
//! Counters are lock-free relaxed atomics. Timers take a mutex only
//! when enabled, and only at phase granularity (a handful of times per
//! run step, never per grid point).
//!
//! # Usage
//!
//! ```
//! cps_obs::reset();
//! cps_obs::enable();
//! cps_obs::count(cps_obs::Counter::DelaunayInserts);
//! {
//!     let _t = cps_obs::time(cps_obs::Phase::DeltaQuadrature, 4);
//!     // ... timed work ...
//! }
//! cps_obs::disable();
//! let metrics = cps_obs::snapshot();
//! assert_eq!(metrics.counter(cps_obs::Counter::DelaunayInserts), 1);
//! assert_eq!(metrics.phases.len(), 1);
//! println!("{}", metrics.to_json().unwrap());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use serde::{Deserialize, Serialize};

/// Monotonic event counters over the workspace's hot paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Counter {
    /// Points inserted into a Delaunay triangulation.
    DelaunayInserts,
    /// FRA error-grid refreshes limited to the retriangulated cavity.
    CavityRecomputes,
    /// FRA error-grid refreshes that had to rescan the full grid
    /// (convex-hull growth).
    FullGridRecomputes,
    /// FRA argmax picks rejected for violating the foresight budget.
    ArgmaxRejections,
    /// Relay plans recomputed to bridge a fault-partitioned network.
    RelayReplans,
    /// Message retries drawn by the fault-injection runtime.
    FaultRetries,
    /// Survivor evaluations that fell back to the constant surface
    /// (fleet culled below the triangulation minimum).
    SurvivorFallbacks,
    /// δ-cache tiles reused as-is by a refresh (no recomputation).
    TileCacheHits,
    /// δ-cache tiles re-integrated by a refresh (initial priming or
    /// invalidated by a dirty triangle).
    TileCacheMisses,
    /// δ-cache tiles flipped valid → invalid by dirty-triangle or
    /// extrapolation-region invalidation.
    TileInvalidations,
    /// δ-cache reference re-primes: the reference field's probe values
    /// changed (e.g. a time-varying field advanced), forcing a full
    /// reference sweep and tile rebuild.
    CacheReprimes,
    /// Simulation snapshots persisted to a checkpoint directory.
    CheckpointsWritten,
    /// Snapshots successfully loaded and verified on restore.
    CheckpointsLoaded,
    /// Snapshot candidates rejected on load (bad checksum, truncated
    /// file, unsupported version) and skipped in favor of an older one.
    CheckpointsRejected,
    /// Total bytes of snapshot payloads written.
    CheckpointBytes,
    /// Alive triangles planed and scanline-clipped by the raster
    /// quadrature kernel.
    TrianglesRasterized,
    /// Grid cells filled by incremental DDA spans (the remainder fell
    /// back to per-cell location/extrapolation).
    RasterCells,
    /// Jobs handed to the persistent worker pool by `map_rows` (the
    /// calling thread's own share is not counted).
    PoolTasks,
    /// Sweep jobs executed (simulated) by the batch engine this
    /// process; resumed jobs are counted separately.
    SweepJobs,
    /// Sweep jobs restored from a manifest instead of re-simulated.
    SweepResumed,
    /// Simulation slots stepped through the stage pipeline (counted by
    /// the engine's built-in observer adapter).
    SimSteps,
}

impl Counter {
    /// Every counter, in declaration order.
    pub const ALL: [Counter; 21] = [
        Counter::DelaunayInserts,
        Counter::CavityRecomputes,
        Counter::FullGridRecomputes,
        Counter::ArgmaxRejections,
        Counter::RelayReplans,
        Counter::FaultRetries,
        Counter::SurvivorFallbacks,
        Counter::TileCacheHits,
        Counter::TileCacheMisses,
        Counter::TileInvalidations,
        Counter::CacheReprimes,
        Counter::CheckpointsWritten,
        Counter::CheckpointsLoaded,
        Counter::CheckpointsRejected,
        Counter::CheckpointBytes,
        Counter::TrianglesRasterized,
        Counter::RasterCells,
        Counter::PoolTasks,
        Counter::SweepJobs,
        Counter::SweepResumed,
        Counter::SimSteps,
    ];

    /// Stable snake_case key used in [`RunMetrics`] JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            Counter::DelaunayInserts => "delaunay_inserts",
            Counter::CavityRecomputes => "cavity_recomputes",
            Counter::FullGridRecomputes => "full_grid_recomputes",
            Counter::ArgmaxRejections => "argmax_rejections",
            Counter::RelayReplans => "relay_replans",
            Counter::FaultRetries => "fault_retries",
            Counter::SurvivorFallbacks => "survivor_fallbacks",
            Counter::TileCacheHits => "tile_cache_hits",
            Counter::TileCacheMisses => "tile_cache_misses",
            Counter::TileInvalidations => "tile_invalidations",
            Counter::CacheReprimes => "cache_reprimes",
            Counter::CheckpointsWritten => "checkpoints_written",
            Counter::CheckpointsLoaded => "checkpoints_loaded",
            Counter::CheckpointsRejected => "checkpoints_rejected",
            Counter::CheckpointBytes => "checkpoint_bytes",
            Counter::TrianglesRasterized => "triangles_rasterized",
            Counter::RasterCells => "raster_cells",
            Counter::PoolTasks => "pool_tasks",
            Counter::SweepJobs => "sweep_jobs",
            Counter::SweepResumed => "sweep_resumed",
            Counter::SimSteps => "sim_steps",
        }
    }
}

/// Timed phases of the two algorithms and the evaluation engine.
///
/// CMA phases map to the engine's orchestration stages:
/// `CmaCurvature` is the parallel per-node sense/fit/decide sweep,
/// `CmaForce` the LCM connectivity-maintenance rounds, and `CmaMove`
/// the speed-clamp-and-apply stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Phase {
    /// FRA: the foresight argmax/budget loop choosing the next point.
    FraForesight,
    /// FRA: error-grid refresh after an insertion.
    FraRefine,
    /// FRA: Delaunay retriangulation (point insertion + cavity walk).
    FraRetriangulate,
    /// CMA: per-node curvature fit and force decision sweep.
    CmaCurvature,
    /// CMA: LCM connectivity-maintenance rounds.
    CmaForce,
    /// CMA: speed clamping and position application.
    CmaMove,
    /// δ quadrature over the evaluation grid (Eqn. 2).
    DeltaQuadrature,
    /// Incremental δ refresh: dirty-triangle diff plus re-integration
    /// of the invalidated tiles only.
    DeltaTileRefresh,
    /// Checkpoint persistence: snapshot encoding plus the atomic
    /// write-checksum-fsync-rename sequence.
    CheckpointWrite,
    /// δ quadrature via the scanline raster kernel (plane build plus
    /// fused |f − DT| and squared-error sweep).
    DeltaRaster,
    /// One batch-sweep job: a full simulation run plus its δ timeline
    /// and outcome extraction.
    SweepJob,
    /// Stage pipeline: slot-start fault deaths (`FaultStage`).
    StageFault,
    /// Stage pipeline: slot-start world snapshot — alive set,
    /// unit-disk graph, components (`SenseStage`).
    StageSense,
    /// Stage pipeline: message-level fault draws and attempt
    /// accounting (`ExchangeStage`).
    StageExchange,
    /// Stage pipeline: partition-recovery overrides (`RecoveryStage`).
    StageRecovery,
    /// Stage pipeline: CMA decisions, speed clamp, LCM repair, and
    /// position application (`OptimizeStage`).
    StageOptimize,
    /// Stage pipeline: clock advance, gossip scale, battery drain, and
    /// report assembly (`RecordStage`).
    StageRecord,
}

impl Phase {
    /// Stable snake_case key used in [`RunMetrics`] JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::FraForesight => "fra_foresight",
            Phase::FraRefine => "fra_refine",
            Phase::FraRetriangulate => "fra_retriangulate",
            Phase::CmaCurvature => "cma_curvature",
            Phase::CmaForce => "cma_force",
            Phase::CmaMove => "cma_move",
            Phase::DeltaQuadrature => "delta_quadrature",
            Phase::DeltaTileRefresh => "delta_tile_refresh",
            Phase::CheckpointWrite => "checkpoint_write",
            Phase::DeltaRaster => "delta_raster",
            Phase::SweepJob => "sweep_job",
            Phase::StageFault => "stage_fault",
            Phase::StageSense => "stage_sense",
            Phase::StageExchange => "stage_exchange",
            Phase::StageRecovery => "stage_recovery",
            Phase::StageOptimize => "stage_optimize",
            Phase::StageRecord => "stage_record",
        }
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);

/// One slot per [`Counter::ALL`] entry.
static COUNTERS: [AtomicU64; 21] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

/// `(phase, threads) -> (calls, total_ns)`, populated only while
/// enabled.
static TIMERS: Mutex<BTreeMap<(Phase, usize), (u64, u64)>> = Mutex::new(BTreeMap::new());

/// Turns the collector on. Hooks start recording from this point.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns the collector off. Hooks return to their no-op fast path;
/// recorded data is kept until [`reset`].
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether the collector is currently recording.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Clears all recorded counters and timers (the enabled flag is left
/// as-is).
pub fn reset() {
    for slot in &COUNTERS {
        slot.store(0, Ordering::Relaxed);
    }
    TIMERS.lock().expect("obs timer table poisoned").clear();
}

/// Records one occurrence of `counter`. No-op while disabled.
#[inline]
pub fn count(counter: Counter) {
    count_by(counter, 1);
}

/// Records `n` occurrences of `counter`. No-op while disabled.
#[inline]
pub fn count_by(counter: Counter, n: u64) {
    if ENABLED.load(Ordering::Relaxed) {
        COUNTERS[counter as usize].fetch_add(n, Ordering::Relaxed);
    }
}

/// Starts timing `phase` under a thread-count key; the returned guard
/// records the elapsed wall clock when dropped. While disabled the
/// guard is inert (no clock read, no lock).
///
/// `threads` is the *resolved* thread count the phase ran with
/// (serial = 1), so serial-vs-parallel timings land in separate rows.
#[must_use = "the timer records on drop; binding to `_` drops immediately"]
pub fn time(phase: Phase, threads: usize) -> PhaseTimer {
    PhaseTimer {
        active: ENABLED
            .load(Ordering::Relaxed)
            .then(|| (phase, threads, Instant::now())),
    }
}

/// RAII guard returned by [`time`].
#[derive(Debug)]
pub struct PhaseTimer {
    active: Option<(Phase, usize, Instant)>,
}

impl Drop for PhaseTimer {
    fn drop(&mut self) {
        if let Some((phase, threads, start)) = self.active.take() {
            let elapsed = start.elapsed().as_nanos() as u64;
            let mut timers = TIMERS.lock().expect("obs timer table poisoned");
            let slot = timers.entry((phase, threads)).or_insert((0, 0));
            slot.0 += 1;
            slot.1 += elapsed;
        }
    }
}

/// Copies the collector's current state into a [`RunMetrics`] record.
///
/// Counters that never fired are included with value 0, so consumers
/// see a stable schema; phases appear only if they ran at least once.
pub fn snapshot() -> RunMetrics {
    let counters = Counter::ALL
        .iter()
        .map(|&c| {
            (
                c.as_str().to_string(),
                COUNTERS[c as usize].load(Ordering::Relaxed),
            )
        })
        .collect();
    let phases = TIMERS
        .lock()
        .expect("obs timer table poisoned")
        .iter()
        .map(|(&(phase, threads), &(calls, total_ns))| PhaseRecord {
            phase: phase.as_str().to_string(),
            threads,
            calls,
            total_ns,
        })
        .collect();
    RunMetrics {
        counters,
        phases,
        survivability: None,
    }
}

/// Accumulated wall-clock for one `(phase, thread-count)` pair.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseRecord {
    /// The phase key ([`Phase::as_str`]).
    pub phase: String,
    /// Resolved thread count the phase ran with (serial = 1).
    pub threads: usize,
    /// Number of completed timer guards.
    pub calls: u64,
    /// Total wall-clock across those calls, nanoseconds.
    pub total_ns: u64,
}

/// A structured record of what happened inside one run: counters,
/// per-phase timings, and (optionally) the fault-injection
/// survivability summary merged in via
/// [`RunMetrics::merge_survivability`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Event totals keyed by [`Counter::as_str`]; every counter is
    /// present (0 when it never fired).
    pub counters: BTreeMap<String, u64>,
    /// Per-`(phase, threads)` wall-clock rows, sorted by phase then
    /// thread count.
    pub phases: Vec<PhaseRecord>,
    /// The run's `SurvivabilityReport` JSON, when fault injection was
    /// active.
    pub survivability: Option<serde_json::Value>,
}

impl RunMetrics {
    /// The value of `counter` (0 when absent).
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters.get(counter.as_str()).copied().unwrap_or(0)
    }

    /// Total wall-clock of `phase` summed over all thread counts,
    /// nanoseconds.
    pub fn phase_total_ns(&self, phase: Phase) -> u64 {
        self.phases
            .iter()
            .filter(|r| r.phase == phase.as_str())
            .map(|r| r.total_ns)
            .sum()
    }

    /// Attaches a survivability summary (e.g. parsed from
    /// `SurvivabilityReport::to_json`).
    pub fn merge_survivability(&mut self, report: serde_json::Value) {
        self.survivability = Some(report);
    }

    /// Pretty-printed JSON for `--metrics` output files.
    ///
    /// # Errors
    ///
    /// Propagates serializer errors (none for this shape in practice).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Parses [`RunMetrics::to_json`] output back.
    ///
    /// # Errors
    ///
    /// Returns the underlying error on malformed JSON or a shape
    /// mismatch.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Global-collector tests share process state; serialize them.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_collector_records_nothing() {
        let _l = locked();
        disable();
        reset();
        count(Counter::DelaunayInserts);
        count_by(Counter::FaultRetries, 10);
        drop(time(Phase::DeltaQuadrature, 2));
        let m = snapshot();
        assert_eq!(m.counter(Counter::DelaunayInserts), 0);
        assert_eq!(m.counter(Counter::FaultRetries), 0);
        assert!(m.phases.is_empty());
    }

    #[test]
    fn enabled_collector_records_counts_and_times() {
        let _l = locked();
        reset();
        enable();
        count(Counter::ArgmaxRejections);
        count_by(Counter::ArgmaxRejections, 2);
        {
            let _t = time(Phase::FraForesight, 1);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        {
            let _t = time(Phase::FraForesight, 4);
        }
        disable();
        let m = snapshot();
        assert_eq!(m.counter(Counter::ArgmaxRejections), 3);
        assert_eq!(m.phases.len(), 2);
        let serial = m
            .phases
            .iter()
            .find(|r| r.threads == 1)
            .expect("serial row");
        assert_eq!(serial.phase, "fra_foresight");
        assert_eq!(serial.calls, 1);
        assert!(serial.total_ns >= 1_000_000, "slept >= 1ms");
        assert!(m.phase_total_ns(Phase::FraForesight) >= serial.total_ns);
        reset();
        assert!(snapshot().phases.is_empty());
    }

    #[test]
    fn guards_do_not_record_after_disable_snapshot() {
        let _l = locked();
        reset();
        enable();
        count(Counter::RelayReplans);
        disable();
        // Started while disabled: must stay silent even though data
        // from the enabled window is still present.
        drop(time(Phase::CmaMove, 2));
        count(Counter::RelayReplans);
        let m = snapshot();
        assert_eq!(m.counter(Counter::RelayReplans), 1);
        assert!(m.phases.is_empty());
    }

    #[test]
    fn run_metrics_json_round_trips_losslessly() {
        let _l = locked();
        reset();
        enable();
        count_by(Counter::DelaunayInserts, 42);
        count(Counter::SurvivorFallbacks);
        drop(time(Phase::DeltaQuadrature, 8));
        disable();
        let mut m = snapshot();
        m.merge_survivability(
            serde_json::from_str("{\"surviving_nodes\":8,\"degradation\":0.25}").unwrap(),
        );
        let json = m.to_json().unwrap();
        let back = RunMetrics::from_json(&json).unwrap();
        assert_eq!(m, back);
        // Second round trip is a fixed point.
        assert_eq!(json, back.to_json().unwrap());
    }

    #[test]
    fn snapshot_has_a_stable_counter_schema() {
        let _l = locked();
        disable();
        reset();
        let m = snapshot();
        assert_eq!(m.counters.len(), Counter::ALL.len());
        for c in Counter::ALL {
            assert!(m.counters.contains_key(c.as_str()), "{}", c.as_str());
        }
    }
}
