//! Persistent worker-thread pool for the hot evaluation path.
//!
//! The δ quadrature and the tile-cache refresh are called thousands of times
//! per simulation, and spawning scoped threads on every call costs far more
//! than the row work itself on small grids.  This crate keeps a small set of
//! long-lived workers parked on a shared queue; callers hand over a batch of
//! erased jobs plus a closure to run on the calling thread, and block until
//! every job has signalled completion.
//!
//! # Soundness
//!
//! Jobs borrow the caller's stack, so they are transmuted to `'static` before
//! crossing into the pool.  This is sound because [`run_with`] does not return
//! until it has received one completion signal per submitted job, and a
//! worker sends that signal only *after* the job closure has been consumed
//! and dropped (via `catch_unwind`).  No borrow held by a job can therefore
//! outlive the `run_with` call.  Panics inside jobs are captured, forwarded
//! over the completion channel, and re-raised on the calling thread once the
//! batch has fully drained.
//!
//! This is the only crate in the workspace that contains `unsafe`; everything
//! above it (`cps-field`, `cps-core`, …) keeps `#![forbid(unsafe_code)]`.

#![deny(missing_docs)]

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread;

/// A borrowed job: a closure the pool runs exactly once on some worker.
pub type Job<'a> = Box<dyn FnOnce() + Send + 'a>;

type StaticJob = Box<dyn FnOnce() + Send + 'static>;
type DoneSignal = Result<(), Box<dyn Any + Send>>;
type QueueItem = (StaticJob, Sender<DoneSignal>);

/// Upper bound on pool size; requests beyond this are clamped.  Generous
/// compared to any realistic `Parallelism::fixed` setting, but bounds the
/// damage of a runaway request.
const MAX_WORKERS: usize = 64;

struct WorkerPool {
    injector: Mutex<Sender<QueueItem>>,
    queue: Arc<Mutex<Receiver<QueueItem>>>,
    spawned: Mutex<usize>,
}

impl WorkerPool {
    fn new() -> Self {
        let (tx, rx) = channel();
        WorkerPool {
            injector: Mutex::new(tx),
            queue: Arc::new(Mutex::new(rx)),
            spawned: Mutex::new(0),
        }
    }

    /// Lazily grow the pool until at least `want` workers exist.
    fn ensure_workers(&self, want: usize) {
        let want = want.min(MAX_WORKERS);
        let mut spawned = self.spawned.lock().expect("pool spawn lock");
        while *spawned < want {
            let queue = Arc::clone(&self.queue);
            thread::Builder::new()
                .name(format!("cps-pool-{}", *spawned))
                .spawn(move || worker_loop(queue))
                .expect("spawn pool worker");
            *spawned += 1;
        }
    }
}

fn worker_loop(queue: Arc<Mutex<Receiver<QueueItem>>>) {
    loop {
        // Take one job under the lock, then release it before running so a
        // panicking job cannot poison the queue for other workers.
        let item = match queue.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return,
        };
        let Ok((job, done)) = item else { return };
        let result = catch_unwind(AssertUnwindSafe(job));
        // The job closure (and every borrow it held) is dead by this point;
        // only now is the caller allowed to observe completion.
        let _ = done.send(result);
    }
}

fn global() -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    POOL.get_or_init(WorkerPool::new)
}

/// Number of workers the global pool has spawned so far (for diagnostics).
pub fn spawned_workers() -> usize {
    *global().spawned.lock().expect("pool spawn lock")
}

/// Runs `jobs` on pool workers while executing `local` on the calling
/// thread, then blocks until every job has completed.
///
/// The typical pattern is a shared atomic chunk counter: each of the `jobs`
/// and the `local` closure pull chunks from it until the work is exhausted,
/// so the caller participates instead of idling.  Completion order is
/// irrelevant to callers because results are keyed by chunk index.
///
/// If any job — or `local` itself — panics, the panic is re-raised here, but
/// only after every submitted job has finished, so borrows never escape.
pub fn run_with<'a>(jobs: Vec<Job<'a>>, local: impl FnOnce()) {
    let pool = global();
    pool.ensure_workers(jobs.len());
    let count = jobs.len();
    let (done_tx, done_rx) = channel();
    {
        let injector = pool.injector.lock().expect("pool injector lock");
        for job in jobs {
            // SAFETY: `run_with` blocks below until `count` completion
            // signals arrive, and each signal is sent only after its job
            // closure has been consumed and dropped.  The borrows captured
            // by `job` therefore strictly outlive every use of it.
            let job: StaticJob = unsafe { std::mem::transmute::<Job<'a>, StaticJob>(job) };
            injector
                .send((job, done_tx.clone()))
                .expect("pool workers alive");
        }
    }
    drop(done_tx);

    let local_result = catch_unwind(AssertUnwindSafe(local));

    // Closure-death barrier: every job must signal before we return (or
    // unwind), whether it succeeded or panicked.
    let mut first_panic: Option<Box<dyn Any + Send>> = None;
    for _ in 0..count {
        match done_rx.recv() {
            Ok(Ok(())) => {}
            Ok(Err(payload)) => {
                first_panic.get_or_insert(payload);
            }
            // Unreachable by construction: the queue holds the paired
            // sender until a worker takes the job, and workers always send.
            Err(_) => panic!("pool worker vanished mid-batch"),
        }
    }

    if let Err(payload) = local_result {
        resume_unwind(payload);
    }
    if let Some(payload) = first_panic {
        resume_unwind(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_job_exactly_once() {
        let hits = AtomicUsize::new(0);
        let jobs: Vec<Job<'_>> = (0..7)
            .map(|_| {
                Box::new(|| {
                    hits.fetch_add(1, Ordering::Relaxed);
                }) as Job<'_>
            })
            .collect();
        run_with(jobs, || {
            hits.fetch_add(100, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 107);
    }

    #[test]
    fn workers_persist_across_batches() {
        for _ in 0..3 {
            let jobs: Vec<Job<'_>> = (0..4).map(|_| Box::new(|| {}) as Job<'_>).collect();
            run_with(jobs, || {});
        }
        let after_first = spawned_workers();
        let jobs: Vec<Job<'_>> = (0..4).map(|_| Box::new(|| {}) as Job<'_>).collect();
        run_with(jobs, || {});
        assert_eq!(spawned_workers(), after_first, "pool must not respawn");
        assert!(after_first >= 4);
    }

    #[test]
    fn chunk_counter_pattern_covers_all_items() {
        let n = 1000;
        let next = AtomicUsize::new(0);
        let claimed: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let work = || loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            claimed[i].fetch_add(1, Ordering::Relaxed);
        };
        let jobs: Vec<Job<'_>> = (0..3).map(|_| Box::new(work) as Job<'_>).collect();
        run_with(jobs, work);
        assert!(claimed.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn job_panic_is_reraised_after_the_batch_drains() {
        let survivors = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let jobs: Vec<Job<'_>> = vec![
                Box::new(|| panic!("boom")),
                Box::new(|| {
                    survivors.fetch_add(1, Ordering::Relaxed);
                }),
            ];
            run_with(jobs, || {});
        }));
        assert!(result.is_err(), "job panic must propagate to the caller");
        assert_eq!(
            survivors.load(Ordering::Relaxed),
            1,
            "sibling jobs still run to completion before the panic surfaces"
        );
        // The pool must stay usable after a panicking batch.
        let ok = AtomicUsize::new(0);
        let jobs: Vec<Job<'_>> = vec![Box::new(|| {
            ok.fetch_add(1, Ordering::Relaxed);
        })];
        run_with(jobs, || {});
        assert_eq!(ok.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn local_panic_waits_for_outstanding_jobs() {
        let done = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let jobs: Vec<Job<'_>> = (0..4)
                .map(|_| {
                    Box::new(|| {
                        done.fetch_add(1, Ordering::Relaxed);
                    }) as Job<'_>
                })
                .collect();
            run_with(jobs, || panic!("local boom"));
        }));
        assert!(result.is_err());
        assert_eq!(done.load(Ordering::Relaxed), 4, "jobs finish before unwind");
    }

    #[test]
    fn borrowed_results_are_visible_after_run_with() {
        let mut out = vec![0usize; 16];
        let chunks: Vec<&mut [usize]> = out.chunks_mut(4).collect();
        let jobs: Vec<Job<'_>> = chunks
            .into_iter()
            .enumerate()
            .map(|(c, chunk)| {
                Box::new(move || {
                    for (k, slot) in chunk.iter_mut().enumerate() {
                        *slot = c * 4 + k;
                    }
                }) as Job<'_>
            })
            .collect();
        run_with(jobs, || {});
        assert_eq!(out, (0..16).collect::<Vec<_>>());
    }
}
