//! Error type for connectivity structures.

use std::error::Error;
use std::fmt;

/// Errors produced when building connectivity structures.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetworkError {
    /// The communication radius must be a positive finite number.
    InvalidRadius,
    /// A node position was NaN or infinite.
    NonFinitePosition,
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::InvalidRadius => {
                write!(f, "communication radius must be positive and finite")
            }
            NetworkError::NonFinitePosition => {
                write!(f, "node position was NaN or infinite")
            }
        }
    }
}

impl Error for NetworkError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(NetworkError::InvalidRadius.to_string().contains("radius"));
        assert!(NetworkError::NonFinitePosition.to_string().contains("NaN"));
    }
}
