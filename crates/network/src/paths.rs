//! Weighted shortest paths over the communication graph.
//!
//! Hop counts come from [`UnitDiskGraph::bfs_hops`]; this module adds
//! Euclidean-weighted routes — the distances data actually travels —
//! plus the network diameter used in the robustness reports.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::UnitDiskGraph;

/// A candidate in the Dijkstra frontier (min-heap by distance).
#[derive(Debug, PartialEq)]
struct Frontier {
    dist: f64,
    node: usize,
}

impl Eq for Frontier {}

impl Ord for Frontier {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for Frontier {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Euclidean-weighted shortest-path distances from `start` to every
/// node (`None` = unreachable), by Dijkstra's algorithm.
///
/// # Panics
///
/// Panics if `start` is out of range.
///
/// # Example
///
/// ```
/// use cps_geometry::Point2;
/// use cps_network::{shortest_distances, UnitDiskGraph};
///
/// let g = UnitDiskGraph::new(
///     vec![Point2::new(0.0, 0.0), Point2::new(1.0, 0.0), Point2::new(2.0, 0.0)],
///     1.5,
/// ).unwrap();
/// let d = shortest_distances(&g, 0);
/// assert_eq!(d[2], Some(2.0)); // via the middle node
/// ```
pub fn shortest_distances(graph: &UnitDiskGraph, start: usize) -> Vec<Option<f64>> {
    let n = graph.node_count();
    assert!(start < n, "start node out of range");
    let mut dist: Vec<Option<f64>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[start] = Some(0.0);
    heap.push(Frontier {
        dist: 0.0,
        node: start,
    });
    while let Some(Frontier { dist: d, node: u }) = heap.pop() {
        if dist[u].is_none_or(|best| d > best + 1e-12) {
            continue; // stale entry
        }
        for &v in graph.neighbors(u) {
            let w = graph.position(u).distance(graph.position(v));
            let cand = d + w;
            if dist[v].is_none_or(|best| cand < best - 1e-12) {
                dist[v] = Some(cand);
                heap.push(Frontier {
                    dist: cand,
                    node: v,
                });
            }
        }
    }
    dist
}

/// The network's Euclidean diameter: the largest finite shortest-path
/// distance over all pairs, or `None` for an empty/disconnected graph
/// where no pair is reachable.
pub fn network_diameter(graph: &UnitDiskGraph) -> Option<f64> {
    let n = graph.node_count();
    let mut best: Option<f64> = None;
    for start in 0..n {
        for d in shortest_distances(graph, start).into_iter().flatten() {
            if d > 0.0 {
                best = Some(best.map_or(d, |b: f64| b.max(d)));
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_geometry::Point2;

    fn l_shape() -> UnitDiskGraph {
        // 0-(0,0), 1-(1,0), 2-(1,1): path 0→2 must route via 1
        // (0 and 2 are √2 apart, beyond the radius).
        UnitDiskGraph::new(
            vec![
                Point2::new(0.0, 0.0),
                Point2::new(1.0, 0.0),
                Point2::new(1.0, 1.0),
            ],
            1.2,
        )
        .unwrap()
    }

    #[test]
    fn routes_around_missing_edges() {
        let g = l_shape();
        let d = shortest_distances(&g, 0);
        assert_eq!(d[0], Some(0.0));
        assert_eq!(d[1], Some(1.0));
        assert_eq!(d[2], Some(2.0));
    }

    #[test]
    fn prefers_the_direct_edge_when_present() {
        let g = UnitDiskGraph::new(
            vec![
                Point2::new(0.0, 0.0),
                Point2::new(3.0, 4.0), // 5 away, directly reachable
                Point2::new(3.0, 0.0),
            ],
            6.0,
        )
        .unwrap();
        let d = shortest_distances(&g, 0);
        assert!((d[1].unwrap() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn unreachable_nodes_are_none() {
        let g =
            UnitDiskGraph::new(vec![Point2::new(0.0, 0.0), Point2::new(100.0, 0.0)], 1.0).unwrap();
        let d = shortest_distances(&g, 0);
        assert_eq!(d[1], None);
        assert_eq!(network_diameter(&g), None);
    }

    #[test]
    fn diameter_of_a_chain() {
        let pts: Vec<Point2> = (0..5).map(|i| Point2::new(i as f64 * 2.0, 0.0)).collect();
        let g = UnitDiskGraph::new(pts, 2.0).unwrap();
        assert_eq!(network_diameter(&g), Some(8.0));
    }

    #[test]
    fn dijkstra_matches_bfs_on_unit_spacing() {
        // With all edges the same length, weighted distance = hops × len.
        let pts: Vec<Point2> = (0..6).map(|i| Point2::new(i as f64, 0.0)).collect();
        let g = UnitDiskGraph::new(pts, 1.0).unwrap();
        let hops = g.bfs_hops(0);
        let dist = shortest_distances(&g, 0);
        for i in 0..6 {
            assert!((dist[i].unwrap() - hops[i].unwrap() as f64).abs() < 1e-12);
        }
    }
}
