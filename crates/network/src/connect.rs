//! Relay planning: the paper's `L(G, r)` / `P(G, i)` primitives.
//!
//! When the partially built FRA deployment has `C(G) > 1` connected
//! subgraphs, the foresight step must know (a) the least number of extra
//! nodes with radius `r` that would stitch the subgraphs into one
//! network and (b) where those nodes would go (Table 1). The plan here
//! steinerizes the minimum spanning tree over the components: for each
//! MST edge, relays are spread evenly along the closest-pair segment
//! between the two components, every hop at most `r` long.

use cps_geometry::Point2;

use crate::{prim_mst_weighted, UnitDiskGraph};

/// A relay plan connecting the components of a [`UnitDiskGraph`].
///
/// # Example
///
/// ```
/// use cps_geometry::Point2;
/// use cps_network::{RelayPlan, UnitDiskGraph};
///
/// let g = UnitDiskGraph::new(
///     vec![Point2::new(0.0, 0.0), Point2::new(30.0, 0.0)],
///     10.0,
/// ).unwrap();
/// let plan = RelayPlan::for_graph(&g);
/// assert_eq!(plan.relay_count(), 2); // 30 m gap, 10 m hops
/// // Adding the relays yields one connected network.
/// let mut all = g.positions().to_vec();
/// all.extend_from_slice(plan.relays());
/// assert!(UnitDiskGraph::new(all, 10.0).unwrap().is_connected());
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RelayPlan {
    relays: Vec<Point2>,
    bridged_gaps: Vec<(Point2, Point2)>,
}

impl RelayPlan {
    /// Plans relays for `graph` using the graph's own radius.
    pub fn for_graph(graph: &UnitDiskGraph) -> Self {
        RelayPlan::for_graph_with_radius(graph, graph.radius())
    }

    /// Plans relays for `graph` assuming the relays have communication
    /// radius `r` — the paper's `L(G, r)` generalization.
    ///
    /// # Panics
    ///
    /// Panics if `r` is not a positive finite number.
    pub fn for_graph_with_radius(graph: &UnitDiskGraph, r: f64) -> Self {
        assert!(r > 0.0 && r.is_finite(), "relay radius must be positive");
        let components = graph.components();
        let c = components.len();
        if c <= 1 {
            return RelayPlan::default();
        }

        // Closest pair of positions between every pair of components.
        let inf = Point2::new(f64::INFINITY, f64::INFINITY);
        let mut gap = vec![vec![(f64::INFINITY, inf, inf); c]; c];
        for a in 0..c {
            for b in a + 1..c {
                let mut best = (f64::INFINITY, inf, inf);
                for &i in &components[a] {
                    for &j in &components[b] {
                        let d = graph.position(i).distance(graph.position(j));
                        if d < best.0 {
                            best = (d, graph.position(i), graph.position(j));
                        }
                    }
                }
                gap[a][b] = best;
                gap[b][a] = (best.0, best.2, best.1);
            }
        }

        // MST over components, weighted by the closest-pair gap.
        let mst = prim_mst_weighted(c, |a, b| gap[a][b].0);

        let mut relays = Vec::new();
        let mut bridged_gaps = Vec::new();
        for (a, b) in mst {
            let (d, from, to) = gap[a][b];
            bridged_gaps.push((from, to));
            // Hops of length ≤ r: ceil(d / r) segments need that many
            // minus one interior relay nodes.
            let segments = (d / r).ceil().max(1.0) as usize;
            for s in 1..segments {
                relays.push(from.lerp(to, s as f64 / segments as f64));
            }
        }
        RelayPlan {
            relays,
            bridged_gaps,
        }
    }

    /// The relay positions — the paper's `P(G, i)` with
    /// `i = relay_count()`.
    pub fn relays(&self) -> &[Point2] {
        &self.relays
    }

    /// The least number of relays that connect the graph — the paper's
    /// `L(G, r)`.
    pub fn relay_count(&self) -> usize {
        self.relays.len()
    }

    /// The closest-pair segments bridged by the plan (one per MST edge
    /// over the components).
    pub fn bridged_gaps(&self) -> &[(Point2, Point2)] {
        &self.bridged_gaps
    }

    /// Whether no relays are needed (graph already connected).
    pub fn is_empty(&self) -> bool {
        self.relays.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn udg(pts: Vec<Point2>, r: f64) -> UnitDiskGraph {
        UnitDiskGraph::new(pts, r).unwrap()
    }

    #[test]
    fn connected_graph_needs_no_relays() {
        let g = udg(vec![Point2::ORIGIN, Point2::new(1.0, 0.0)], 2.0);
        let plan = RelayPlan::for_graph(&g);
        assert!(plan.is_empty());
        assert_eq!(plan.relay_count(), 0);
        assert!(plan.bridged_gaps().is_empty());
    }

    #[test]
    fn single_gap_relay_count_is_ceiling() {
        for (gap, r, expected) in [
            (10.0, 10.0, 0usize), // exactly one hop
            (10.1, 10.0, 1),
            (25.0, 10.0, 2),
            (30.0, 10.0, 2),
            (30.1, 10.0, 3),
        ] {
            let g = udg(vec![Point2::ORIGIN, Point2::new(gap, 0.0)], r);
            if g.is_connected() {
                assert_eq!(expected, 0, "gap {gap} should need no relays");
                continue;
            }
            let plan = RelayPlan::for_graph(&g);
            assert_eq!(plan.relay_count(), expected, "gap {gap} radius {r}");
        }
    }

    #[test]
    fn relays_make_the_network_connected() {
        // Three clusters in a triangle.
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(2.0, 0.0),
            Point2::new(40.0, 0.0),
            Point2::new(42.0, 0.0),
            Point2::new(20.0, 35.0),
        ];
        let g = udg(pts.clone(), 5.0);
        assert_eq!(g.component_count(), 3);
        let plan = RelayPlan::for_graph(&g);
        assert!(!plan.is_empty());
        let mut all = pts;
        all.extend_from_slice(plan.relays());
        assert!(udg(all, 5.0).is_connected());
        assert_eq!(plan.bridged_gaps().len(), 2); // MST over 3 components
    }

    #[test]
    fn plan_uses_closest_pair_between_components() {
        // Component A = {(0,0), (4,0)}, B = {(10,0)}: the gap must be
        // bridged from (4,0), not (0,0).
        let g = udg(
            vec![
                Point2::new(0.0, 0.0),
                Point2::new(4.0, 0.0),
                Point2::new(10.0, 0.0),
            ],
            4.0,
        );
        let plan = RelayPlan::for_graph(&g);
        let (from, to) = plan.bridged_gaps()[0];
        let pair = [from, to];
        assert!(pair.contains(&Point2::new(4.0, 0.0)));
        assert!(pair.contains(&Point2::new(10.0, 0.0)));
        // 6 m gap at radius 4 → 1 relay at the midpoint.
        assert_eq!(plan.relay_count(), 1);
        assert_eq!(plan.relays()[0], Point2::new(7.0, 0.0));
    }

    #[test]
    fn custom_relay_radius() {
        let g = udg(vec![Point2::ORIGIN, Point2::new(30.0, 0.0)], 10.0);
        // Stronger relays need fewer of them.
        let strong = RelayPlan::for_graph_with_radius(&g, 15.0);
        assert_eq!(strong.relay_count(), 1);
        let weak = RelayPlan::for_graph_with_radius(&g, 5.0);
        assert_eq!(weak.relay_count(), 5);
    }

    #[test]
    #[should_panic(expected = "relay radius")]
    fn invalid_radius_panics() {
        let g = udg(vec![Point2::ORIGIN], 1.0);
        RelayPlan::for_graph_with_radius(&g, 0.0);
    }
}
