//! Connectivity substrate for the CPS distribution workspace.
//!
//! The paper constrains every node distribution to form a *connected*
//! unit-disk communication graph: nodes `u, v` share an edge iff
//! `‖u − v‖ ≤ Rc` (Definition 3.1). This crate supplies the pieces the
//! FRA foresight step (Table 1) needs:
//!
//! * [`UnitDiskGraph`] — the communication graph over node positions;
//! * [`UnionFind`] and component queries — the paper's `C(G)` count of
//!   connected subgraphs;
//! * [`prim_mst`] — Prim's minimum spanning tree, which the paper uses
//!   to link subgraphs at minimum cost;
//! * [`RelayPlan`] — the paper's `L(G, r)` (least number of relay nodes
//!   that connect the subgraphs) and `P(G, i)` (their positions), built
//!   by steinerizing the inter-component MST.
//!
//! # Example
//!
//! ```
//! use cps_geometry::Point2;
//! use cps_network::{RelayPlan, UnitDiskGraph};
//!
//! // Two clusters 10 apart with communication radius 4.
//! let positions = vec![
//!     Point2::new(0.0, 0.0),
//!     Point2::new(2.0, 0.0),
//!     Point2::new(12.0, 0.0),
//! ];
//! let g = UnitDiskGraph::new(positions, 4.0).unwrap();
//! assert_eq!(g.component_count(), 2);
//! let plan = RelayPlan::for_graph(&g);
//! // Gap is 10; two relays at spacing ≤ 4 bridge it.
//! assert_eq!(plan.relay_count(), 2);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod articulation;
mod components;
mod connect;
mod error;
mod graph;
mod mst;
mod paths;

pub use articulation::{articulation_points, criticality};
pub use components::UnionFind;
pub use connect::RelayPlan;
pub use error::NetworkError;
pub use graph::UnitDiskGraph;
pub use mst::{prim_mst, prim_mst_weighted};
pub use paths::{network_diameter, shortest_distances};
