//! The unit-disk communication graph.

use cps_geometry::Point2;

use crate::{NetworkError, UnionFind};

/// The communication graph of a node deployment: vertices are node
/// positions, and an edge joins every pair within the communication
/// radius `Rc` (Definition 3.1 of the paper).
///
/// # Example
///
/// ```
/// use cps_geometry::Point2;
/// use cps_network::UnitDiskGraph;
///
/// let g = UnitDiskGraph::new(
///     vec![Point2::new(0.0, 0.0), Point2::new(3.0, 0.0), Point2::new(9.0, 0.0)],
///     5.0,
/// ).unwrap();
/// assert_eq!(g.neighbors(0), &[1]);
/// assert!(!g.is_connected());
/// assert_eq!(g.component_count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct UnitDiskGraph {
    positions: Vec<Point2>,
    radius: f64,
    adjacency: Vec<Vec<usize>>,
}

impl UnitDiskGraph {
    /// Builds the graph over `positions` with communication radius
    /// `radius` (inclusive: distance exactly `radius` forms an edge).
    ///
    /// # Errors
    ///
    /// * [`NetworkError::InvalidRadius`] — `radius` non-positive or
    ///   non-finite.
    /// * [`NetworkError::NonFinitePosition`] — a NaN/∞ coordinate.
    pub fn new(positions: Vec<Point2>, radius: f64) -> Result<Self, NetworkError> {
        if !radius.is_finite() || radius <= 0.0 {
            return Err(NetworkError::InvalidRadius);
        }
        if positions.iter().any(|p| !p.is_finite()) {
            return Err(NetworkError::NonFinitePosition);
        }
        let n = positions.len();
        let mut adjacency = vec![Vec::new(); n];
        // Inclusive radius with a relative tolerance: relay chains are
        // deliberately planned at hops of exactly `radius`, and the
        // floating-point lerp that places them can overshoot by an ulp
        // — a strict comparison would drop those edges.
        let tolerant_radius = radius * (1.0f64 + 1e-9).sqrt();
        let r2 = radius * radius * (1.0 + 1e-9);
        if n > 64 {
            // Bucket-grid construction: O(n) for bounded densities.
            let index = cps_geometry::GridIndex::new(&positions, radius.max(1e-9));
            for i in 0..n {
                index.for_each_within(positions[i], tolerant_radius, |j| {
                    if j > i {
                        adjacency[i].push(j);
                        adjacency[j].push(i);
                    }
                });
            }
            for nbrs in &mut adjacency {
                nbrs.sort_unstable();
            }
        } else {
            for i in 0..n {
                for j in i + 1..n {
                    if positions[i].distance_squared(positions[j]) <= r2 {
                        adjacency[i].push(j);
                        adjacency[j].push(i);
                    }
                }
            }
        }
        Ok(UnitDiskGraph {
            positions,
            radius,
            adjacency,
        })
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.positions.len()
    }

    /// The communication radius.
    #[inline]
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Position of node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn position(&self, i: usize) -> Point2 {
        self.positions[i]
    }

    /// All node positions.
    #[inline]
    pub fn positions(&self) -> &[Point2] {
        &self.positions
    }

    /// Single-hop neighbors of node `i` (ascending order).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn neighbors(&self, i: usize) -> &[usize] {
        &self.adjacency[i]
    }

    /// Degree of node `i`.
    #[inline]
    pub fn degree(&self, i: usize) -> usize {
        self.adjacency[i].len()
    }

    /// Iterates over undirected edges as `(i, j)` with `i < j`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.adjacency
            .iter()
            .enumerate()
            .flat_map(|(i, nbrs)| nbrs.iter().filter(move |&&j| j > i).map(move |&j| (i, j)))
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Union–find over the graph's connectivity.
    pub fn union_find(&self) -> UnionFind {
        let mut uf = UnionFind::new(self.node_count());
        for (i, j) in self.edges() {
            uf.union(i, j);
        }
        uf
    }

    /// Number of connected components — the paper's `C(G)`. An empty
    /// graph has zero components.
    pub fn component_count(&self) -> usize {
        self.union_find().component_count()
    }

    /// Whether the whole deployment forms one connected network (the
    /// paper's feasibility constraint). Empty and single-node graphs
    /// count as connected.
    pub fn is_connected(&self) -> bool {
        self.component_count() <= 1
    }

    /// Nodes grouped by connected component (component order is
    /// deterministic: by smallest contained node index).
    pub fn components(&self) -> Vec<Vec<usize>> {
        let labels = self.union_find().labels();
        let count = labels.iter().copied().max().map_or(0, |m| m + 1);
        let mut groups = vec![Vec::new(); count];
        for (node, &label) in labels.iter().enumerate() {
            groups[label].push(node);
        }
        groups
    }

    /// Breadth-first hop distances from `start` (`None` = unreachable).
    ///
    /// # Panics
    ///
    /// Panics if `start` is out of range.
    pub fn bfs_hops(&self, start: usize) -> Vec<Option<usize>> {
        let n = self.node_count();
        assert!(start < n, "start node out of range");
        let mut dist = vec![None; n];
        dist[start] = Some(0);
        let mut queue = std::collections::VecDeque::from([start]);
        while let Some(u) = queue.pop_front() {
            let du = dist[u].expect("queued nodes have distances");
            for &v in &self.adjacency[u] {
                if dist[v].is_none() {
                    dist[v] = Some(du + 1);
                    queue.push_back(v);
                }
            }
        }
        dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: usize, spacing: f64) -> Vec<Point2> {
        (0..n)
            .map(|i| Point2::new(i as f64 * spacing, 0.0))
            .collect()
    }

    #[test]
    fn construction_validates() {
        assert!(UnitDiskGraph::new(vec![], 0.0).is_err());
        assert!(UnitDiskGraph::new(vec![], -1.0).is_err());
        assert!(UnitDiskGraph::new(vec![], f64::INFINITY).is_err());
        assert!(UnitDiskGraph::new(vec![Point2::new(f64::NAN, 0.0)], 1.0).is_err());
        assert!(UnitDiskGraph::new(vec![], 1.0).is_ok());
    }

    #[test]
    fn edges_are_radius_inclusive() {
        let g = UnitDiskGraph::new(line(3, 5.0), 5.0).unwrap();
        // Spacing exactly equals the radius: consecutive nodes connect.
        assert_eq!(g.edge_count(), 2);
        assert!(g.is_connected());
        assert_eq!(g.degree(1), 2);
    }

    #[test]
    fn component_structure() {
        // Two clusters of 2, far apart.
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(50.0, 0.0),
            Point2::new(51.0, 0.0),
        ];
        let g = UnitDiskGraph::new(pts, 2.0).unwrap();
        assert_eq!(g.component_count(), 2);
        let comps = g.components();
        assert_eq!(comps, vec![vec![0, 1], vec![2, 3]]);
        assert!(!g.is_connected());
    }

    #[test]
    fn empty_and_singleton_graphs_are_connected() {
        assert!(UnitDiskGraph::new(vec![], 1.0).unwrap().is_connected());
        assert!(UnitDiskGraph::new(vec![Point2::ORIGIN], 1.0)
            .unwrap()
            .is_connected());
    }

    #[test]
    fn edges_iterator_is_canonical() {
        let g = UnitDiskGraph::new(line(4, 1.0), 1.5).unwrap();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn bfs_hop_counts() {
        let g = UnitDiskGraph::new(line(5, 1.0), 1.0).unwrap();
        let d = g.bfs_hops(0);
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3), Some(4)]);
        // Disconnected case.
        let g2 = UnitDiskGraph::new(vec![Point2::ORIGIN, Point2::new(100.0, 0.0)], 1.0).unwrap();
        assert_eq!(g2.bfs_hops(0)[1], None);
    }

    #[test]
    fn accessors() {
        let g = UnitDiskGraph::new(line(2, 1.0), 3.0).unwrap();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.radius(), 3.0);
        assert_eq!(g.position(1), Point2::new(1.0, 0.0));
        assert_eq!(g.positions().len(), 2);
        assert_eq!(g.neighbors(0), &[1]);
    }
}
