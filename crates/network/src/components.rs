//! Disjoint-set (union–find) structure for connected-component queries.

/// A union–find structure with path compression and union by rank.
///
/// # Example
///
/// ```
/// use cps_network::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// uf.union(0, 1);
/// uf.union(2, 3);
/// assert_eq!(uf.component_count(), 2);
/// assert!(uf.connected(0, 1));
/// assert!(!uf.connected(1, 2));
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` when the structure holds no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of `x`'s set.
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets containing `a` and `b`; returns `true` if they
    /// were previously disjoint.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo] = hi;
        if self.rank[hi] == self.rank[lo] {
            self.rank[hi] += 1;
        }
        self.components -= 1;
        true
    }

    /// Whether `a` and `b` share a set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets — the paper's `C(G)`.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Dense component labels in `0..component_count()`, by element.
    pub fn labels(&mut self) -> Vec<usize> {
        let n = self.len();
        let mut label_of_root = std::collections::HashMap::new();
        let mut labels = Vec::with_capacity(n);
        for x in 0..n {
            let r = self.find(x);
            let next = label_of_root.len();
            let l = *label_of_root.entry(r).or_insert(next);
            labels.push(l);
        }
        labels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_start_disjoint() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.len(), 5);
        assert!(!uf.is_empty());
        assert_eq!(uf.component_count(), 5);
        assert!(!uf.connected(0, 4));
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2)); // already merged
        assert_eq!(uf.component_count(), 3);
        assert!(uf.connected(0, 2));
    }

    #[test]
    fn labels_are_dense_and_consistent() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 3);
        uf.union(1, 4);
        uf.union(4, 5);
        let labels = uf.labels();
        assert_eq!(labels.len(), 6);
        assert_eq!(labels[0], labels[3]);
        assert_eq!(labels[1], labels[4]);
        assert_eq!(labels[4], labels[5]);
        assert_ne!(labels[0], labels[1]);
        assert_ne!(labels[0], labels[2]);
        let max = *labels.iter().max().unwrap();
        assert_eq!(max + 1, uf.component_count());
    }

    #[test]
    fn empty_structure() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.component_count(), 0);
    }
}
