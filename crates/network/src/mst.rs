//! Prim's minimum spanning tree.
//!
//! The paper's foresight step "is carried out by prim algorithm that
//! searching the minimum cost spanning tree" (Section 4.2); the MST here
//! runs over either raw points (complete Euclidean graph) or an explicit
//! weight matrix (the inter-component gap graph).

use cps_geometry::Point2;

/// Minimum spanning tree of the complete Euclidean graph over `points`,
/// as a list of `(i, j)` edges (`points.len() − 1` of them; empty for
/// fewer than two points).
///
/// # Example
///
/// ```
/// use cps_geometry::Point2;
/// use cps_network::prim_mst;
///
/// let pts = vec![
///     Point2::new(0.0, 0.0),
///     Point2::new(1.0, 0.0),
///     Point2::new(10.0, 0.0),
/// ];
/// let mst = prim_mst(&pts);
/// assert_eq!(mst.len(), 2);
/// // Total weight is 1 + 9, never 1 + 10.
/// let total: f64 = mst.iter().map(|&(a, b)| pts[a].distance(pts[b])).sum();
/// assert!((total - 10.0).abs() < 1e-12);
/// ```
pub fn prim_mst(points: &[Point2]) -> Vec<(usize, usize)> {
    let n = points.len();
    prim_mst_weighted(n, |i, j| points[i].distance(points[j]))
}

/// Prim's minimum spanning *forest* over `n` vertices with an arbitrary
/// symmetric weight function. O(n²), appropriate for the dense small
/// graphs of the foresight step.
///
/// Non-finite weights (NaN, ±∞) mean "no edge". When the finite-weight
/// graph is connected this returns the MST's `n − 1` edges (empty for
/// `n < 2`); when it is disconnected, each component gets its own
/// minimum spanning tree and the result has `n − components` edges —
/// never an edge whose weight is non-finite.
pub fn prim_mst_weighted<W: Fn(usize, usize) -> f64>(n: usize, weight: W) -> Vec<(usize, usize)> {
    if n < 2 {
        return Vec::new();
    }
    // Demote NaN (and +∞/−∞ alike) to +∞ on read: a NaN that leaks
    // into `best_cost` would poison both the fringe selection (every
    // comparison against it is unordered) and the relaxation below
    // (`w < NaN` is false, so a finite weight could never displace it).
    let sanitize = |w: f64| if w.is_finite() { w } else { f64::INFINITY };
    let mut in_tree = vec![false; n];
    let mut best_cost = vec![f64::INFINITY; n];
    let mut best_from = vec![0usize; n];
    let mut edges = Vec::with_capacity(n - 1);

    in_tree[0] = true;
    for v in 1..n {
        best_cost[v] = sanitize(weight(0, v));
        best_from[v] = 0;
    }
    for _ in 1..n {
        // Cheapest fringe vertex (costs are NaN-free, so total_cmp
        // agrees with the numeric order; among all-equal costs it picks
        // the lowest index, keeping the result deterministic).
        let u = (0..n)
            .filter(|&v| !in_tree[v])
            .min_by(|&a, &b| best_cost[a].total_cmp(&best_cost[b]))
            .expect("some vertex remains outside the tree");
        in_tree[u] = true;
        if best_cost[u] != f64::INFINITY {
            edges.push((best_from[u], u));
        }
        // An all-infinite fringe means no finite edge joins the grown
        // forest to the rest of the graph: `u` starts a new component
        // root (no edge is emitted above — the stale `best_from[u]`
        // default would fabricate a phantom ∞-weight bridge between
        // components). Relaxation below then seeds the new tree's
        // fringe exactly like the `in_tree[0] = true` bootstrap.
        for v in 0..n {
            if !in_tree[v] {
                let w = sanitize(weight(u, v));
                if w < best_cost[v] {
                    best_cost[v] = w;
                    best_from[v] = u;
                }
            }
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UnionFind;

    fn total_weight(pts: &[Point2], edges: &[(usize, usize)]) -> f64 {
        edges.iter().map(|&(a, b)| pts[a].distance(pts[b])).sum()
    }

    #[test]
    fn trivial_inputs() {
        assert!(prim_mst(&[]).is_empty());
        assert!(prim_mst(&[Point2::ORIGIN]).is_empty());
        let two = [Point2::ORIGIN, Point2::new(3.0, 4.0)];
        assert_eq!(prim_mst(&two), vec![(0, 1)]);
    }

    #[test]
    fn mst_spans_all_vertices() {
        let pts: Vec<Point2> = (0..12)
            .map(|i| {
                let a = i as f64;
                Point2::new((a * 1.3).sin() * 10.0, (a * 0.7).cos() * 10.0)
            })
            .collect();
        let edges = prim_mst(&pts);
        assert_eq!(edges.len(), pts.len() - 1);
        let mut uf = UnionFind::new(pts.len());
        for &(a, b) in &edges {
            uf.union(a, b);
        }
        assert_eq!(uf.component_count(), 1);
    }

    #[test]
    fn mst_weight_matches_brute_force_on_small_instance() {
        // 6 points: compare Prim against exhaustive spanning trees via
        // Kruskal-style enumeration (all edge subsets of size n−1).
        let pts = [
            Point2::new(0.0, 0.0),
            Point2::new(4.0, 1.0),
            Point2::new(2.0, 5.0),
            Point2::new(7.0, 3.0),
            Point2::new(1.0, 8.0),
            Point2::new(6.0, 7.0),
        ];
        let prim_total = total_weight(&pts, &prim_mst(&pts));

        // Brute force: all C(15, 5) edge subsets.
        let mut all_edges = Vec::new();
        for i in 0..pts.len() {
            for j in i + 1..pts.len() {
                all_edges.push((i, j));
            }
        }
        let mut best = f64::INFINITY;
        let m = all_edges.len();
        for mask in 0u32..(1 << m) {
            if mask.count_ones() as usize != pts.len() - 1 {
                continue;
            }
            let mut uf = UnionFind::new(pts.len());
            let mut w = 0.0;
            for (bit, &(a, b)) in all_edges.iter().enumerate() {
                if mask & (1 << bit) != 0 {
                    uf.union(a, b);
                    w += pts[a].distance(pts[b]);
                }
            }
            if uf.component_count() == 1 {
                best = best.min(w);
            }
        }
        assert!((prim_total - best).abs() < 1e-9);
    }

    #[test]
    fn nan_weights_lose_to_any_finite_weight() {
        // A NaN edge must behave exactly like "no edge": the tree built
        // through finite weights is chosen, and the NaN never wins a
        // fringe comparison nor wedges itself into best_cost.
        // Path graph 0–1–2–3 with weight 1 edges; everything else NaN.
        let edges = prim_mst_weighted(4, |i, j| if i.abs_diff(j) == 1 { 1.0 } else { f64::NAN });
        assert_eq!(edges.len(), 3);
        assert!(edges.iter().all(|&(a, b)| a.abs_diff(b) == 1), "{edges:?}");

        // Mixed: NaN on the cheap-looking shortcut, finite detour wins.
        let edges = prim_mst_weighted(3, |i, j| match (i.min(j), i.max(j)) {
            (0, 1) => 5.0,
            (1, 2) => 7.0,
            _ => f64::NAN, // the 0–2 edge
        });
        let mut sorted: Vec<(usize, usize)> =
            edges.iter().map(|&(a, b)| (a.min(b), a.max(b))).collect();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn disconnected_weight_graph_yields_a_forest_without_infinite_edges() {
        // Two components {0, 1} and {2, 3}; every cross edge is ∞.
        let weight = |i: usize, j: usize| match (i.min(j), i.max(j)) {
            (0, 1) => 2.0,
            (2, 3) => 5.0,
            _ => f64::INFINITY,
        };
        let edges = prim_mst_weighted(4, weight);
        let mut sorted: Vec<(usize, usize)> =
            edges.iter().map(|&(a, b)| (a.min(b), a.max(b))).collect();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![(0, 1), (2, 3)], "one tree per component");
        assert!(
            edges.iter().all(|&(a, b)| weight(a, b).is_finite()),
            "no phantom ∞-weight bridge may appear: {edges:?}"
        );
    }

    #[test]
    fn fully_isolated_vertices_yield_an_empty_forest() {
        // No finite edge at all (∞ and NaN both mean "no edge"): the old
        // code emitted n−1 phantom edges all rooted at the stale
        // `best_from` default 0.
        let edges = prim_mst_weighted(5, |_, _| f64::INFINITY);
        assert!(edges.is_empty(), "{edges:?}");
        let edges = prim_mst_weighted(5, |_, _| f64::NAN);
        assert!(edges.is_empty(), "{edges:?}");
    }

    #[test]
    fn relay_gap_graphs_remain_connected_inputs() {
        // Audit of the FRA foresight call site: `RelayPlan` feeds
        // `prim_mst_weighted` the closest-pair gap matrix *between
        // components*, which is complete and finite (every pair of
        // components has a closest pair of real points), so the forest
        // fallback never triggers there and the plan still receives a
        // spanning tree.  This pins that contract.
        let gap = [[0.0, 3.0, 7.0], [3.0, 0.0, 4.0], [7.0, 4.0, 0.0]];
        let edges = prim_mst_weighted(3, |i, j| gap[i][j]);
        assert_eq!(edges.len(), 2, "complete finite graph spans all vertices");
    }

    #[test]
    fn weighted_variant_uses_custom_weights() {
        // Star weights: vertex 0 cheap to everyone, others expensive.
        let edges = prim_mst_weighted(4, |i, j| if i == 0 || j == 0 { 1.0 } else { 100.0 });
        assert_eq!(edges.len(), 3);
        assert!(edges.iter().all(|&(a, b)| a == 0 || b == 0));
    }
}
