//! Articulation-point analysis: which single node failures disconnect
//! the network?
//!
//! The paper's connectivity constraint guarantees one component, but a
//! deployment can still hinge on critical nodes. Robustness reporting
//! for both FRA plans (relay chains are chains of articulation points)
//! and CMA swarms uses this module.

use crate::UnitDiskGraph;

/// Articulation points (cut vertices) of the graph, by Tarjan's
/// DFS low-link algorithm, ascending order. A node is an articulation
/// point iff removing it increases the number of connected components.
///
/// # Example
///
/// ```
/// use cps_geometry::Point2;
/// use cps_network::{articulation_points, UnitDiskGraph};
///
/// // A chain a—b—c: the middle node is critical.
/// let g = UnitDiskGraph::new(
///     vec![Point2::new(0.0, 0.0), Point2::new(1.0, 0.0), Point2::new(2.0, 0.0)],
///     1.0,
/// ).unwrap();
/// assert_eq!(articulation_points(&g), vec![1]);
/// ```
pub fn articulation_points(graph: &UnitDiskGraph) -> Vec<usize> {
    let n = graph.node_count();
    let mut disc = vec![usize::MAX; n]; // discovery times
    let mut low = vec![0usize; n];
    let mut is_cut = vec![false; n];
    let mut timer = 0usize;

    // Iterative DFS to avoid recursion-depth limits on long chains.
    for root in 0..n {
        if disc[root] != usize::MAX {
            continue;
        }
        // Stack frames: (node, parent, neighbor cursor).
        let mut stack: Vec<(usize, usize, usize)> = vec![(root, usize::MAX, 0)];
        let mut root_children = 0usize;
        disc[root] = timer;
        low[root] = timer;
        timer += 1;
        while let Some(&mut (u, parent, ref mut cursor)) = stack.last_mut() {
            if *cursor < graph.neighbors(u).len() {
                let v = graph.neighbors(u)[*cursor];
                *cursor += 1;
                if disc[v] == usize::MAX {
                    if u == root {
                        root_children += 1;
                    }
                    disc[v] = timer;
                    low[v] = timer;
                    timer += 1;
                    stack.push((v, u, 0));
                } else if v != parent {
                    low[u] = low[u].min(disc[v]);
                }
            } else {
                stack.pop();
                if let Some(&mut (p, _, _)) = stack.last_mut() {
                    low[p] = low[p].min(low[u]);
                    if p != root && low[u] >= disc[p] {
                        is_cut[p] = true;
                    }
                }
            }
        }
        if root_children > 1 {
            is_cut[root] = true;
        }
    }
    (0..n).filter(|&i| is_cut[i]).collect()
}

/// Fraction of nodes whose individual failure would disconnect the
/// network — a scalar robustness indicator (0 = fully redundant).
pub fn criticality(graph: &UnitDiskGraph) -> f64 {
    if graph.node_count() == 0 {
        return 0.0;
    }
    articulation_points(graph).len() as f64 / graph.node_count() as f64
}

impl UnitDiskGraph {
    /// The nodes whose individual failure would split this graph —
    /// [`articulation_points`] as a method, for survivability
    /// reporting. Killing any *other* node never increases the
    /// component count (property-tested).
    pub fn critical_nodes(&self) -> Vec<usize> {
        articulation_points(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_geometry::Point2;

    fn chain(n: usize) -> UnitDiskGraph {
        let pts = (0..n).map(|i| Point2::new(i as f64, 0.0)).collect();
        UnitDiskGraph::new(pts, 1.0).unwrap()
    }

    #[test]
    fn chain_interior_is_critical() {
        let g = chain(5);
        assert_eq!(articulation_points(&g), vec![1, 2, 3]);
        assert!((criticality(&g) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn cycle_has_no_articulation_points() {
        // A 6-ring: every node has two disjoint paths to every other.
        let pts: Vec<Point2> = (0..6)
            .map(|i| {
                let a = std::f64::consts::TAU * i as f64 / 6.0;
                Point2::new(a.cos(), a.sin())
            })
            .collect();
        let g = UnitDiskGraph::new(pts, 1.1).unwrap();
        assert!(g.is_connected());
        assert!(articulation_points(&g).is_empty());
        assert_eq!(criticality(&g), 0.0);
    }

    #[test]
    fn star_center_is_the_only_cut() {
        let mut pts = vec![Point2::new(0.0, 0.0)];
        for i in 0..4 {
            let a = std::f64::consts::TAU * i as f64 / 4.0;
            pts.push(Point2::new(a.cos(), a.sin()));
        }
        let g = UnitDiskGraph::new(pts, 1.0).unwrap();
        assert_eq!(articulation_points(&g), vec![0]);
    }

    #[test]
    fn disconnected_components_are_handled() {
        // Two separate chains of 3.
        let mut pts: Vec<Point2> = (0..3).map(|i| Point2::new(i as f64, 0.0)).collect();
        pts.extend((0..3).map(|i| Point2::new(i as f64, 100.0)));
        let g = UnitDiskGraph::new(pts, 1.0).unwrap();
        assert_eq!(articulation_points(&g), vec![1, 4]);
    }

    #[test]
    fn trivial_graphs() {
        assert!(articulation_points(&chain(1)).is_empty());
        assert!(articulation_points(&chain(2)).is_empty());
        assert_eq!(criticality(&UnitDiskGraph::new(vec![], 1.0).unwrap()), 0.0);
    }

    /// Ground-truth check: removing each reported articulation point
    /// must increase the component count, and removing any other node
    /// must not.
    #[test]
    fn matches_brute_force_on_random_graphs() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10 {
            let pts: Vec<Point2> = (0..14)
                .map(|_| Point2::new(rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)))
                .collect();
            let g = UnitDiskGraph::new(pts.clone(), 3.0).unwrap();
            let base = g.component_count();
            let cuts = articulation_points(&g);
            for i in 0..pts.len() {
                let rest: Vec<Point2> = pts
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, &p)| p)
                    .collect();
                let sub = UnitDiskGraph::new(rest, 3.0).unwrap();
                // Removing an isolated node reduces count by one; a cut
                // vertex increases the count net of its own removal.
                let isolated = g.degree(i) == 0;
                let expect_cut = if isolated {
                    false
                } else {
                    sub.component_count() > base
                };
                assert_eq!(
                    cuts.contains(&i),
                    expect_cut,
                    "node {i}: brute force disagrees"
                );
            }
        }
    }
}
