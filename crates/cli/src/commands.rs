//! The `cps` subcommands.

use std::error::Error;
use std::fs;
use std::path::Path;

use cps_core::osd::FraBuilder;
use cps_core::{analyze_deployment_with, EvalOptions, Kernel, SurvivabilityTracker};
use cps_field::{Field, Parallelism};
use cps_geometry::{GridSpec, Point2, Rect};
use cps_greenorbs::{Channel, Dataset, ForestConfig, LatentLightField};
use cps_network::UnitDiskGraph;
use cps_sim::{
    run_sweep, scenario, CheckpointDir, CheckpointPolicy, CmaBuilder, DeltaTimeline, EngineBuilder,
    FaultEvent, FaultPlan, OptimizerKind, RunRecorder, SweepSpec, TrajectoryRecorder,
};
use cps_viz::{ascii_heatmap, ascii_scatter, field_to_pgm, trajectories_svg, SvgStyle};

use crate::args::Args;

/// Usage text shown by `cps help` and on argument errors.
pub const USAGE: &str = "\
usage: cps <command> [--flag value]...

commands:
  generate  --out trace.json [--seed N] [--nodes 1000] [--hours 24] [--csv readings.csv]
            synthesize a GreenOrbs-style forest sensing trace
  surface   --trace trace.json [--hour 10] [--resolution 101] [--out surface.pgm]
            extract and render the referential light surface
  plan      --trace trace.json [--k 80] [--rc 10] [--hour 10] [--out plan.csv] [--threads N]
            [--metrics metrics.json] [--cache on] [--kernel walk|raster]
            plan a stationary deployment with FRA and report its quality
  simulate  [--k 100] [--minutes 45] [--seed N] [--svg swarm.svg] [--threads N]
            [--faults spec] [--report out.json] [--metrics metrics.json] [--cache on]
            [--kernel walk|raster] [--optimizer cma|fra|hybrid]
            [--checkpoint-dir DIR] [--checkpoint-every N]
            [--checkpoint-on-fault on] [--resume on]
            run the CMA mobile swarm on the latent light field; --faults
            injects a deterministic fault schedule (comma-separated
            key=value: seed=N, kill=NODE@SLOT, cull=FRAC@SLOT, death=P,
            battery=CAP:IDLE:MOVE, dropout=P, outlier=P:MAG,
            stuck=P:SLOTS, loss=P[:RETRIES], recovery=auto|on|off) and
            --report writes the survivability report JSON
  sweep     --spec sweep.json --out results.json [--workers N] [--resume on]
            [--manifest PATH] [--metrics metrics.json]
            run a deterministic batch sweep: the spec names axes (seeds,
            k, comm_radius, faults) and scenario knobs; jobs execute
            concurrently on the persistent pool and fold into per-cell
            aggregates that are bit-identical at any --workers value.
            A manifest (default: <out>.manifest) records completed jobs
            after each one; --resume on replays it instead of
            recomputing, with byte-identical output
  report    --trace trace.json --plan plan.csv [--rc 10] [--hour 10] [--threads N]
            full quality/robustness report for an existing deployment
  help      show this text

--threads selects the worker count for grid sweeps (0 = all cores, the
default); results are identical at any setting. --cache on turns on the
incremental tile cache for repeated delta evaluations (off by default);
cached and uncached runs agree to within 1e-9. --kernel selects the
delta quadrature kernel: `raster` (the default) sweeps each alive
triangle with an incremental scanline fill, `walk` is the legacy
per-cell point-location sweep; the two agree to within 1e-9 and a
resumed simulation keeps the kernel recorded in its snapshot.

--optimizer selects the deployment optimizer for `simulate`: `cma` (the
default) starts from the evenly spaced grid and runs the paper's OSTD
movement loop; `fra` places the fleet with the paper's OSD refinement
algorithm against the light surface frozen at the start hour and holds
position (the movement loop is skipped); `hybrid` uses the FRA
placement as the starting formation and then polishes it with the CMA
movement loop. The flag is ignored on --resume: a checkpoint already
fixes the formation it was taken from.

--metrics turns on the instrumentation layer (algorithm counters and
per-phase wall-clock timers, off by default) and writes the structured
RunMetrics JSON after the run; `simulate` embeds the survivability
report into it. Instrumentation never changes results, only records
them.

--checkpoint-dir enables crash-safe checkpointing of `simulate`:
--checkpoint-every N snapshots the full simulation state every N
minutes, --checkpoint-on-fault on also snapshots on any death,
partition, or reconnection. --resume on restarts from the newest valid
snapshot in the directory (corrupt or truncated snapshots are skipped
automatically) and finishes with results bit-identical to a run that
was never interrupted.

the region of interest is the paper's 100x100 m window at (20,20)-(120,120).";

type CmdResult = Result<(), Box<dyn Error>>;

/// Parses `--kernel walk|raster` (raster when absent).
fn kernel_flag(args: &Args) -> Result<Kernel, Box<dyn Error>> {
    Ok(args.string_or("kernel", "raster").parse::<Kernel>()?)
}

fn region() -> Rect {
    Rect::new(Point2::new(20.0, 20.0), Point2::new(120.0, 120.0)).expect("static region")
}

fn load_trace(path: &str) -> Result<Dataset, Box<dyn Error>> {
    let text = fs::read_to_string(path)?;
    Ok(Dataset::from_json(&text)?)
}

/// `cps generate` — synthesize and save a trace.
pub fn generate(args: &Args) -> CmdResult {
    let out = args.require("out")?;
    let config = ForestConfig {
        seed: args.u64_or("seed", ForestConfig::default().seed)?,
        node_count: args.usize_or("nodes", 1000)?,
        hours: args.u32_or("hours", 24)?,
        ..ForestConfig::default()
    };
    let csv_path = args.string_or("csv", "");
    args.finish()?;

    let dataset = Dataset::generate(&config);
    fs::write(&out, dataset.to_json()?)?;
    println!(
        "wrote {out}: {} nodes x {} hours ({} readings)",
        dataset.node_count(),
        dataset.hours(),
        dataset.readings().len()
    );
    if !csv_path.is_empty() {
        let mut buf = Vec::new();
        dataset.write_readings_csv(&mut buf)?;
        fs::write(&csv_path, buf)?;
        println!("wrote {csv_path} (readings CSV)");
    }
    Ok(())
}

/// `cps surface` — extract the referential surface.
pub fn surface(args: &Args) -> CmdResult {
    let trace = args.require("trace")?;
    let hour = args.u32_or("hour", 10)?;
    let resolution = args.usize_or("resolution", 101)?;
    let out = args.string_or("out", "");
    args.finish()?;

    let dataset = load_trace(&trace)?;
    let field = dataset.region_field(region(), Channel::Light, hour, resolution)?;
    let grid = GridSpec::new(region(), resolution, resolution)?;
    println!("light surface at hour {hour}:");
    println!("{}", ascii_heatmap(&field, &grid, 72, 28)?);
    let stats = field.summarize(&grid);
    println!(
        "KLux: min {:.2}  max {:.2}  mean {:.2}  std {:.2}",
        stats.min, stats.max, stats.mean, stats.std_dev
    );
    if !out.is_empty() {
        fs::write(&out, field_to_pgm(&field, &grid, 404, 404)?)?;
        println!("wrote {out}");
    }
    Ok(())
}

/// `cps plan` — run FRA and save the deployment.
pub fn plan(args: &Args) -> CmdResult {
    let trace = args.require("trace")?;
    let k = args.usize_or("k", 80)?;
    let rc = args.f64_or("rc", 10.0)?;
    let hour = args.u32_or("hour", 10)?;
    let out = args.string_or("out", "");
    let metrics_path = args.string_or("metrics", "");
    let par = Parallelism::from_threads(args.usize_or("threads", 0)?);
    let eval = EvalOptions::new()
        .parallelism(par)
        .cached(args.bool_or("cache", false)?)
        .kernel(kernel_flag(args)?);
    args.finish()?;

    if !metrics_path.is_empty() {
        cps_obs::reset();
        cps_obs::enable();
    }
    let dataset = load_trace(&trace)?;
    let reference = dataset.region_field(region(), Channel::Light, hour, 101)?;
    let grid = GridSpec::new(region(), 101, 101)?;
    let result = FraBuilder::new(k, rc)
        .grid(grid)
        .evaluator(eval)
        .run(&reference)?;
    println!(
        "FRA placed {k} nodes: {} refinement picks, {} connectivity relays",
        result.refined, result.relays
    );
    println!("{}", ascii_scatter(&result.positions, region(), 60, 24)?);

    let report = analyze_deployment_with(&reference, &result.positions, rc, &grid, par)?;
    print_report(&report);

    if !out.is_empty() {
        let mut csv = String::from("x,y\n");
        for p in &result.positions {
            csv.push_str(&format!("{},{}\n", p.x, p.y));
        }
        fs::write(&out, csv)?;
        println!("wrote {out}");
    }
    if !metrics_path.is_empty() {
        let metrics = cps_obs::snapshot();
        cps_obs::disable();
        fs::write(&metrics_path, metrics.to_json()?)?;
        println!("wrote {metrics_path} (run metrics)");
    }
    Ok(())
}

/// `cps simulate` — the CMA mobile swarm.
pub fn simulate(args: &Args) -> CmdResult {
    let k = args.usize_or("k", 100)?;
    let minutes = args.usize_or("minutes", 45)?;
    let seed_flag = args.u64_or("seed", ForestConfig::default().seed)?;
    let svg_path = args.string_or("svg", "");
    let faults_spec = args.string_or("faults", "");
    let report_path = args.string_or("report", "");
    let metrics_path = args.string_or("metrics", "");
    let checkpoint_dir = args.string_or("checkpoint-dir", "");
    let checkpoint_every = args.u64_or("checkpoint-every", 0)?;
    let checkpoint_on_fault = args.bool_or("checkpoint-on-fault", false)?;
    let resume = args.bool_or("resume", false)?;
    let optimizer: OptimizerKind = args.string_or("optimizer", "cma").parse()?;
    let par = Parallelism::from_threads(args.usize_or("threads", 0)?);
    let eval = EvalOptions::new()
        .parallelism(par)
        .cached(args.bool_or("cache", false)?)
        .kernel(kernel_flag(args)?);
    args.finish()?;

    let policy = CheckpointPolicy::every(checkpoint_every).on_fault_event(checkpoint_on_fault);
    if checkpoint_dir.is_empty() && (policy.is_enabled() || resume) {
        return Err(
            "--checkpoint-every, --checkpoint-on-fault, and --resume require --checkpoint-dir"
                .into(),
        );
    }
    let store = (!checkpoint_dir.is_empty()).then(|| CheckpointDir::new(&checkpoint_dir));

    if !metrics_path.is_empty() {
        cps_obs::reset();
        cps_obs::enable();
    }
    // Fall back through corrupt snapshots to the newest valid one; an
    // empty directory degrades to a fresh start.
    let resumed = match (&store, resume) {
        (Some(store), true) => store.latest_valid()?,
        _ => None,
    };
    // The snapshot's label pins the field: resuming against a different
    // forest would not be the interrupted run.
    let seed = match &resumed {
        Some((snapshot, _)) => snapshot
            .label
            .strip_prefix("forest,seed=")
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                format!(
                    "snapshot label {:?} does not identify a forest seed",
                    snapshot.label
                )
            })?,
        None => seed_flag,
    };
    let config = ForestConfig {
        seed,
        ..ForestConfig::default()
    };
    let field = LatentLightField::new(&config);
    let label = format!("forest,seed={seed}");
    let grid = GridSpec::new(region(), 101, 101)?;
    let was_resumed = resumed.is_some();
    let (mut sim, timeline, survivability, start_minute) = match resumed {
        Some((snapshot, path)) => {
            // Cache and kernel come from the snapshot, not the flags: a
            // resume must stay on the recorded arithmetic path. The
            // optimizer flag is likewise moot — the checkpoint already
            // fixes the formation it was taken from.
            if optimizer != OptimizerKind::Cma {
                println!("--optimizer is ignored on resume; continuing the checkpointed run");
            }
            let opts = EvalOptions::new()
                .parallelism(par)
                .cached(snapshot.eval_cached)
                .kernel(snapshot.eval_kernel);
            let timeline = snapshot
                .timeline(opts)
                .unwrap_or_else(|| DeltaTimeline::with_options(opts));
            let survivability = snapshot
                .survivability_tracker()
                .unwrap_or_else(|| SurvivabilityTracker::new(snapshot.node_count()));
            let sim = CmaBuilder::resume_from(snapshot)
                .parallelism(par)
                .run(&field)?;
            let start_minute = sim.slot() as usize;
            println!(
                "resumed from {} at t=10:{start_minute:02} ({} nodes alive)",
                path.display(),
                sim.alive_count()
            );
            (sim, timeline, survivability, start_minute)
        }
        None => {
            if resume {
                println!("no valid checkpoint in {checkpoint_dir}; starting fresh");
            }
            let start = match optimizer {
                OptimizerKind::Cma => scenario::grid_start_spaced(region(), k, 9.3)?,
                OptimizerKind::Fra | OptimizerKind::Hybrid => {
                    let (positions, refined, relays) = EngineBuilder::new(region(), k)
                        .optimizer(optimizer)
                        .evaluator(eval)
                        .start_time(600.0)
                        .placement(&field)?;
                    println!(
                        "fra placement: {} nodes ({refined} error-refined, {relays} relays)",
                        positions.len()
                    );
                    positions
                }
            };
            let fleet = start.len();
            let mut builder = CmaBuilder::new(region(), start)
                .evaluator(eval)
                .start_time(600.0);
            if !faults_spec.is_empty() {
                builder = builder.faults(FaultPlan::parse(&faults_spec)?);
            }
            let sim = builder.run(&field)?;
            let timeline = DeltaTimeline::for_simulation(&sim);
            let survivability = SurvivabilityTracker::new(fleet);
            (sim, timeline, survivability, 0)
        }
    };
    // OSD is a static deployment: with --optimizer fra the placement
    // *is* the answer and the movement loop never runs.
    let run_minutes = if optimizer == OptimizerKind::Fra && !was_resumed {
        if minutes > 0 {
            println!("optimizer fra: static deployment; skipping the movement loop");
        }
        start_minute
    } else {
        minutes
    };
    // The cross-cutting consumers — δ timeline, survivability ledger,
    // checkpoint policy — ride the step-observer bus instead of being
    // hand-wired into the loop body.
    let mut recorder = RunRecorder::new()
        .timeline(timeline, grid)
        .sample_every(5)
        .final_slot(run_minutes as u64)
        .survivability(survivability);
    if let Some(store) = store {
        recorder = recorder.checkpoints(policy, store, &label);
    }
    let mut recorder = recorder.sync_events(&sim);
    if !was_resumed {
        let e0 = recorder
            .prime(&sim)?
            .ok_or("recorder lost its timeline during priming")?;
        println!("t=10:00  delta {:.1}  connected {}", e0.delta, e0.connected);
    }
    let mut tracks = TrajectoryRecorder::new();
    tracks.record(&sim);
    for minute in (start_minute + 1)..=run_minutes {
        let r = sim.step_observed(&mut [&mut recorder])?;
        tracks.record(&sim);
        if let Some(e) = recorder.take_sample() {
            println!(
                "t=10:{minute:02}  delta {:.1}  connected {}  moved {}  lcm {}{}",
                e.delta,
                e.connected,
                r.moved,
                r.lcm_followers,
                if r.deaths > 0 {
                    format!("  deaths {}", r.deaths)
                } else {
                    String::new()
                },
            );
        }
        if let Some(path) = recorder.take_checkpoint() {
            println!("checkpoint: {}", path.display());
        }
    }
    let (_, survivability) = recorder.into_parts();
    let mut survivability = survivability.ok_or("recorder lost the survivability tracker")?;
    let survivability_report = if !faults_spec.is_empty() {
        let survivors = UnitDiskGraph::new(sim.positions(), sim.config().cps.comm_radius())?;
        survivability.set_critical_nodes(survivors.critical_nodes());
        let report = survivability.finish();
        println!(
            "survivability: {}/{} nodes alive  partitions {} (reconnected {})  \
             messages {} (retried {}, dropped {})",
            report.surviving_nodes,
            report.initial_nodes,
            report.partitions,
            report.reconnects,
            report.messages,
            report.retried,
            report.dropped,
        );
        for event in sim.fault_events() {
            match *event {
                FaultEvent::Death { slot, node, .. } => {
                    println!("  slot {slot:>3}: node {node} died");
                }
                FaultEvent::Partition {
                    slot,
                    components,
                    critical,
                    ..
                } => {
                    println!(
                        "  slot {slot:>3}: network split into {components} components \
                         ({critical} critical nodes remain)"
                    );
                }
                FaultEvent::Reconnected {
                    slot, after_slots, ..
                } => {
                    println!("  slot {slot:>3}: network reconnected after {after_slots} slots");
                }
            }
        }
        report
    } else {
        survivability.finish()
    };
    if !report_path.is_empty() {
        fs::write(&report_path, survivability_report.to_json())?;
        println!("wrote {report_path} (survivability report)");
    }
    if !metrics_path.is_empty() {
        let mut metrics = cps_obs::snapshot();
        cps_obs::disable();
        metrics.merge_survivability(serde_json::from_str(&survivability_report.to_json())?);
        fs::write(&metrics_path, metrics.to_json()?)?;
        println!("wrote {metrics_path} (run metrics)");
    }
    println!("final formation:");
    println!("{}", ascii_scatter(&sim.positions(), region(), 60, 24)?);
    if !svg_path.is_empty() {
        // The fleet size comes from the simulation, not the --k flag: a
        // resumed run inherits the checkpointed fleet.
        let polylines: Vec<Vec<Point2>> = (0..sim.nodes().len())
            .map(|id| tracks.track(id).iter().map(|&(_, p)| p).collect())
            .collect();
        fs::write(
            &svg_path,
            trajectories_svg(&polylines, region(), &SvgStyle::default()),
        )?;
        println!("wrote {svg_path}");
    }
    Ok(())
}

/// `cps sweep` — deterministic multi-scenario batch runs.
pub fn sweep(args: &Args) -> CmdResult {
    let spec_path = args.require("spec")?;
    let out = args.require("out")?;
    let workers = args.usize_or("workers", 0)?;
    let resume = args.bool_or("resume", false)?;
    let metrics_path = args.string_or("metrics", "");
    let manifest_default = format!("{out}.manifest");
    let manifest_path = args.string_or("manifest", &manifest_default);
    args.finish()?;

    if !metrics_path.is_empty() {
        cps_obs::reset();
        cps_obs::enable();
    }
    let spec = SweepSpec::from_json(&fs::read_to_string(&spec_path)?)?;
    let jobs = spec.jobs();
    println!(
        "sweep: {} jobs ({} cells x {} seeds), spec digest {:016x}",
        jobs.len(),
        jobs.len() / spec.seeds.len(),
        spec.seeds.len(),
        spec.digest()?
    );
    // Each job's field is rebuilt from its seed, so a resumed sweep
    // sees exactly the fields the interrupted one did.
    let results = run_sweep(
        &spec,
        workers,
        Some(Path::new(&manifest_path)),
        resume,
        |job| {
            LatentLightField::new(&ForestConfig {
                seed: job.seed,
                ..ForestConfig::default()
            })
        },
    )?;
    for cell in &results.cells {
        println!(
            "  k={:<4} rc={:<5} faults={:<24} delta {:.1} ± {:.1}  connected {:.0}%",
            cell.k,
            cell.comm_radius,
            if cell.fault_spec.is_empty() {
                "-"
            } else {
                &cell.fault_spec
            },
            cell.final_delta.mean,
            cell.final_delta.stddev,
            100.0 * cell.connected_fraction,
        );
    }
    fs::write(&out, results.to_json()?)?;
    println!(
        "wrote {out} ({} jobs, {} cells; manifest at {manifest_path})",
        results.jobs.len(),
        results.cells.len()
    );
    if !metrics_path.is_empty() {
        let metrics = cps_obs::snapshot();
        cps_obs::disable();
        fs::write(&metrics_path, metrics.to_json()?)?;
        println!("wrote {metrics_path} (run metrics)");
    }
    Ok(())
}

/// `cps report` — analyze a saved deployment.
pub fn report(args: &Args) -> CmdResult {
    let trace = args.require("trace")?;
    let plan_path = args.require("plan")?;
    let rc = args.f64_or("rc", 10.0)?;
    let hour = args.u32_or("hour", 10)?;
    let par = Parallelism::from_threads(args.usize_or("threads", 0)?);
    args.finish()?;

    let dataset = load_trace(&trace)?;
    let reference = dataset.region_field(region(), Channel::Light, hour, 101)?;
    let grid = GridSpec::new(region(), 101, 101)?;
    let positions = read_positions_csv(&plan_path)?;
    println!("{} nodes loaded from {plan_path}", positions.len());
    let report = analyze_deployment_with(&reference, &positions, rc, &grid, par)?;
    print_report(&report);
    Ok(())
}

fn print_report(report: &cps_core::DeploymentReport) {
    println!("--- deployment report ---");
    println!(
        "delta {:.1}   rms {:.2}   connected {}",
        report.evaluation.delta, report.evaluation.rms, report.evaluation.connected
    );
    println!(
        "articulation points {} ({:.0}% of nodes)   network diameter {}",
        report.articulation_points.len(),
        100.0 * report.criticality,
        report
            .network_diameter
            .map_or("n/a".to_string(), |d| format!("{d:.1} m")),
    );
    println!(
        "coverage per node: mean {:.1} m2, min {:.1}, max {:.1} (imbalance {:.1}x)",
        report.coverage.mean,
        report.coverage.min,
        report.coverage.max,
        report.coverage_imbalance()
    );
}

/// Reads an `x,y` CSV (with or without header) into positions.
///
/// # Errors
///
/// I/O failures and malformed rows.
pub fn read_positions_csv(path: &str) -> Result<Vec<Point2>, Box<dyn Error>> {
    let text = fs::read_to_string(path)?;
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if i == 0 && line.trim() == "x,y" {
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        let mut parts = line.split(',');
        let x: f64 = parts
            .next()
            .ok_or_else(|| format!("line {}: missing x", i + 1))?
            .trim()
            .parse()?;
        let y: f64 = parts
            .next()
            .ok_or_else(|| format!("line {}: missing y", i + 1))?
            .trim()
            .parse()?;
        out.push(Point2::new(x, y));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positions_csv_round_trip() {
        let dir = std::env::temp_dir().join("cps_cli_test_positions.csv");
        fs::write(&dir, "x,y\n1.5,2.5\n\n3.0,4.0\n").unwrap();
        let pts = read_positions_csv(dir.to_str().unwrap()).unwrap();
        assert_eq!(pts, vec![Point2::new(1.5, 2.5), Point2::new(3.0, 4.0)]);
        fs::remove_file(&dir).ok();
    }

    #[test]
    fn positions_csv_rejects_garbage() {
        let dir = std::env::temp_dir().join("cps_cli_test_garbage.csv");
        fs::write(&dir, "x,y\nnot,numbers\n").unwrap();
        assert!(read_positions_csv(dir.to_str().unwrap()).is_err());
        fs::remove_file(&dir).ok();
    }

    #[test]
    fn usage_mentions_every_subcommand() {
        for cmd in ["generate", "surface", "plan", "simulate", "sweep", "report"] {
            assert!(USAGE.contains(cmd), "usage must document {cmd}");
        }
    }

    #[test]
    fn usage_documents_the_kernel_flag() {
        assert!(USAGE.contains("--kernel"));
        assert!(USAGE.contains("walk|raster"));
    }

    #[test]
    fn usage_documents_checkpointing() {
        for flag in [
            "--checkpoint-dir",
            "--checkpoint-every",
            "--checkpoint-on-fault",
            "--resume",
        ] {
            assert!(USAGE.contains(flag), "usage must document {flag}");
        }
    }
}
