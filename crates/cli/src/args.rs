//! Minimal typed flag parser — `--key value` pairs after a subcommand,
//! with defaults and validation. Hand-rolled to keep the workspace
//! dependency-light.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed command line: the subcommand plus its `--key value` flags.
#[derive(Debug, Clone, Default)]
pub struct Args {
    command: String,
    flags: BTreeMap<String, String>,
    consumed: std::cell::RefCell<Vec<String>>,
}

/// Errors from command-line parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgsError {
    /// No subcommand was given.
    MissingCommand,
    /// A flag was given without a value, or a bare value appeared.
    Malformed(String),
    /// A required flag is absent.
    MissingFlag(String),
    /// A flag value failed to parse.
    BadValue {
        /// Flag name.
        flag: String,
        /// What was supplied.
        value: String,
        /// What was expected.
        expected: &'static str,
    },
    /// Flags were supplied that the subcommand does not understand.
    UnknownFlags(Vec<String>),
}

impl fmt::Display for ArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgsError::MissingCommand => write!(f, "missing subcommand (try `cps help`)"),
            ArgsError::Malformed(what) => write!(f, "malformed argument {what:?}"),
            ArgsError::MissingFlag(flag) => write!(f, "missing required flag --{flag}"),
            ArgsError::BadValue {
                flag,
                value,
                expected,
            } => write!(f, "--{flag} {value:?}: expected {expected}"),
            ArgsError::UnknownFlags(flags) => {
                write!(f, "unknown flags: {}", flags.join(", "))
            }
        }
    }
}

impl std::error::Error for ArgsError {}

impl Args {
    /// Parses `argv[1..]`: the first token is the subcommand, the rest
    /// must be `--key value` pairs.
    ///
    /// # Errors
    ///
    /// [`ArgsError::MissingCommand`] / [`ArgsError::Malformed`].
    pub fn parse<I, S>(argv: I) -> Result<Self, ArgsError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut it = argv.into_iter().map(Into::into);
        let command = it.next().ok_or(ArgsError::MissingCommand)?;
        let mut flags = BTreeMap::new();
        while let Some(token) = it.next() {
            let key = token
                .strip_prefix("--")
                .ok_or_else(|| ArgsError::Malformed(token.clone()))?
                .to_string();
            let value = it
                .next()
                .ok_or_else(|| ArgsError::Malformed(token.clone()))?;
            flags.insert(key, value);
        }
        Ok(Args {
            command,
            flags,
            consumed: std::cell::RefCell::new(Vec::new()),
        })
    }

    /// The subcommand name.
    pub fn command(&self) -> &str {
        &self.command
    }

    fn raw(&self, flag: &str) -> Option<&str> {
        let v = self.flags.get(flag).map(String::as_str);
        if v.is_some() {
            self.consumed.borrow_mut().push(flag.to_string());
        }
        v
    }

    /// A required string flag.
    ///
    /// # Errors
    ///
    /// [`ArgsError::MissingFlag`].
    pub fn require(&self, flag: &str) -> Result<String, ArgsError> {
        self.raw(flag)
            .map(str::to_string)
            .ok_or_else(|| ArgsError::MissingFlag(flag.to_string()))
    }

    /// An optional string flag with a default.
    pub fn string_or(&self, flag: &str, default: &str) -> String {
        self.raw(flag).unwrap_or(default).to_string()
    }

    /// An optional `f64` flag with a default.
    ///
    /// # Errors
    ///
    /// [`ArgsError::BadValue`].
    pub fn f64_or(&self, flag: &str, default: f64) -> Result<f64, ArgsError> {
        match self.raw(flag) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgsError::BadValue {
                flag: flag.to_string(),
                value: v.to_string(),
                expected: "a number",
            }),
        }
    }

    /// An optional `usize` flag with a default.
    ///
    /// # Errors
    ///
    /// [`ArgsError::BadValue`].
    pub fn usize_or(&self, flag: &str, default: usize) -> Result<usize, ArgsError> {
        match self.raw(flag) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgsError::BadValue {
                flag: flag.to_string(),
                value: v.to_string(),
                expected: "a non-negative integer",
            }),
        }
    }

    /// An optional `u64` flag with a default.
    ///
    /// # Errors
    ///
    /// [`ArgsError::BadValue`].
    pub fn u64_or(&self, flag: &str, default: u64) -> Result<u64, ArgsError> {
        match self.raw(flag) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgsError::BadValue {
                flag: flag.to_string(),
                value: v.to_string(),
                expected: "a non-negative integer",
            }),
        }
    }

    /// An optional boolean flag with a default; accepts
    /// `on`/`off`/`true`/`false`/`1`/`0`.
    ///
    /// # Errors
    ///
    /// [`ArgsError::BadValue`].
    pub fn bool_or(&self, flag: &str, default: bool) -> Result<bool, ArgsError> {
        match self.raw(flag) {
            None => Ok(default),
            Some("on") | Some("true") | Some("1") => Ok(true),
            Some("off") | Some("false") | Some("0") => Ok(false),
            Some(v) => Err(ArgsError::BadValue {
                flag: flag.to_string(),
                value: v.to_string(),
                expected: "on|off",
            }),
        }
    }

    /// An optional `u32` flag with a default.
    ///
    /// # Errors
    ///
    /// [`ArgsError::BadValue`].
    pub fn u32_or(&self, flag: &str, default: u32) -> Result<u32, ArgsError> {
        match self.raw(flag) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgsError::BadValue {
                flag: flag.to_string(),
                value: v.to_string(),
                expected: "a non-negative integer",
            }),
        }
    }

    /// Verifies every supplied flag was consumed by one of the typed
    /// getters — catches typos like `--ndoes`.
    ///
    /// # Errors
    ///
    /// [`ArgsError::UnknownFlags`].
    pub fn finish(&self) -> Result<(), ArgsError> {
        let consumed = self.consumed.borrow();
        let unknown: Vec<String> = self
            .flags
            .keys()
            .filter(|k| !consumed.contains(k))
            .map(|k| format!("--{k}"))
            .collect();
        if unknown.is_empty() {
            Ok(())
        } else {
            Err(ArgsError::UnknownFlags(unknown))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<Args, ArgsError> {
        Args::parse(tokens.iter().copied())
    }

    #[test]
    fn parses_command_and_flags() {
        let a = parse(&["plan", "--k", "80", "--rc", "10.5"]).unwrap();
        assert_eq!(a.command(), "plan");
        assert_eq!(a.usize_or("k", 0).unwrap(), 80);
        assert_eq!(a.f64_or("rc", 0.0).unwrap(), 10.5);
        a.finish().unwrap();
    }

    #[test]
    fn defaults_apply_when_flags_absent() {
        let a = parse(&["plan"]).unwrap();
        assert_eq!(a.usize_or("k", 42).unwrap(), 42);
        assert_eq!(a.f64_or("rc", 1.5).unwrap(), 1.5);
        assert_eq!(a.string_or("out", "x.csv"), "x.csv");
        assert_eq!(a.u32_or("hour", 10).unwrap(), 10);
        assert_eq!(a.u64_or("seed", 7).unwrap(), 7);
        assert!(!a.bool_or("cache", false).unwrap());
    }

    #[test]
    fn booleans_accept_switch_spellings() {
        let a = parse(&["simulate", "--cache", "on"]).unwrap();
        assert!(a.bool_or("cache", false).unwrap());
        let b = parse(&["simulate", "--cache", "0"]).unwrap();
        assert!(!b.bool_or("cache", true).unwrap());
        let c = parse(&["simulate", "--cache", "maybe"]).unwrap();
        assert!(matches!(
            c.bool_or("cache", false).unwrap_err(),
            ArgsError::BadValue { .. }
        ));
    }

    #[test]
    fn rejects_malformed_input() {
        assert_eq!(
            Args::parse(Vec::<String>::new()).unwrap_err(),
            ArgsError::MissingCommand
        );
        assert!(matches!(
            parse(&["plan", "k", "80"]).unwrap_err(),
            ArgsError::Malformed(_)
        ));
        assert!(matches!(
            parse(&["plan", "--k"]).unwrap_err(),
            ArgsError::Malformed(_)
        ));
    }

    #[test]
    fn typed_errors_and_requirements() {
        let a = parse(&["plan", "--k", "eighty"]).unwrap();
        assert!(matches!(
            a.usize_or("k", 0).unwrap_err(),
            ArgsError::BadValue { .. }
        ));
        let b = parse(&["plan"]).unwrap();
        assert_eq!(
            b.require("trace").unwrap_err(),
            ArgsError::MissingFlag("trace".to_string())
        );
    }

    #[test]
    fn unknown_flags_are_reported() {
        let a = parse(&["plan", "--ndoes", "5"]).unwrap();
        let _ = a.usize_or("nodes", 1);
        let err = a.finish().unwrap_err();
        assert!(matches!(err, ArgsError::UnknownFlags(ref f) if f == &vec!["--ndoes".to_string()]));
    }

    #[test]
    fn display_messages_are_actionable() {
        assert!(ArgsError::MissingFlag("k".into())
            .to_string()
            .contains("--k"));
        let e = ArgsError::BadValue {
            flag: "rc".into(),
            value: "x".into(),
            expected: "a number",
        };
        assert!(e.to_string().contains("expected a number"));
    }
}
