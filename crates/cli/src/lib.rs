//! Library surface of the `cps` command-line tool (separated from the
//! binary so the argument parser and command plumbing are testable).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod args;
pub mod commands;
