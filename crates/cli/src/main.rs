//! `cps` — command-line front end for the CPS distribution library.

use std::process::ExitCode;

use cps_cli::args::Args;
use cps_cli::commands;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match Args::parse(argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", commands::USAGE);
            return ExitCode::FAILURE;
        }
    };
    let result = match parsed.command() {
        "generate" => commands::generate(&parsed),
        "surface" => commands::surface(&parsed),
        "plan" => commands::plan(&parsed),
        "simulate" => commands::simulate(&parsed),
        "sweep" => commands::sweep(&parsed),
        "report" => commands::report(&parsed),
        "help" | "--help" | "-h" => {
            println!("{}", commands::USAGE);
            Ok(())
        }
        other => {
            eprintln!("error: unknown subcommand {other:?}");
            eprintln!("{}", commands::USAGE);
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
