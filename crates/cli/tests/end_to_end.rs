//! End-to-end tests of the `cps` binary: every subcommand runs against
//! real files in a scratch directory.

use std::path::PathBuf;
use std::process::Command;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cps_cli_e2e_{name}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn cps() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cps"))
}

#[test]
fn generate_plan_report_pipeline() {
    let dir = scratch("pipeline");
    let trace = dir.join("trace.json");
    let plan = dir.join("plan.csv");

    // generate a small trace
    let out = cps()
        .args([
            "generate",
            "--out",
            trace.to_str().unwrap(),
            "--nodes",
            "250",
            "--hours",
            "12",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(trace.exists());

    // plan a deployment
    let out = cps()
        .args([
            "plan",
            "--trace",
            trace.to_str().unwrap(),
            "--k",
            "40",
            "--out",
            plan.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("FRA placed 40 nodes"));
    assert!(stdout.contains("deployment report"));
    assert!(stdout.contains("connected true"));

    // report on the saved plan reproduces the numbers
    let out = cps()
        .args([
            "report",
            "--trace",
            trace.to_str().unwrap(),
            "--plan",
            plan.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let report_out = String::from_utf8_lossy(&out.stdout);
    assert!(report_out.contains("40 nodes loaded"));
    // The delta line printed by `plan` must reappear verbatim.
    let delta_line = stdout
        .lines()
        .find(|l| l.starts_with("delta "))
        .expect("plan printed a delta line");
    assert!(report_out.contains(delta_line));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn simulate_runs_and_writes_svg() {
    let dir = scratch("simulate");
    let svg = dir.join("swarm.svg");
    let out = cps()
        .args([
            "simulate",
            "--k",
            "25",
            "--minutes",
            "5",
            "--svg",
            svg.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&svg).unwrap();
    assert!(text.starts_with("<svg"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn helpful_failures() {
    // Unknown subcommand.
    let out = cps().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown subcommand"));

    // Missing required flag.
    let out = cps().args(["plan"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--trace"));

    // Typo'd flag is caught, not silently ignored.
    let out = cps().args(["simulate", "--minuets", "5"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--minuets"));

    // help succeeds
    let out = cps().args(["help"]).output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("usage: cps"));
}
