//! Scenario tests for the simulator: behaviours that only show up in
//! multi-step, multi-feature runs.

use cps_field::{DriftingField, GaussianBlob, GaussianMixtureField, Static, TimeVaryingField};
use cps_geometry::{GridSpec, Point2, Rect};
use cps_linalg::Vec2;
use cps_network::UnitDiskGraph;
use cps_sim::{
    scenario, CmaBuilder, ConvergenceDetector, DeltaTimeline, ExplorationTracker, PathSampleBank,
    SimConfig, TrajectoryRecorder,
};

fn hotspot_world() -> (Rect, Static<GaussianMixtureField>) {
    let region = Rect::square(100.0).unwrap();
    let field = Static::new(GaussianMixtureField::new(
        2.0,
        vec![
            GaussianBlob::isotropic(Point2::new(30.0, 65.0), 28.0, 6.0),
            GaussianBlob::isotropic(Point2::new(70.0, 30.0), 24.0, 6.5),
        ],
    ));
    (region, field)
}

#[test]
fn swarm_densifies_near_hotspots() {
    let (region, field) = hotspot_world();
    let start = scenario::grid_start_spaced(region, 64, 9.3).unwrap();
    let mut sim = CmaBuilder::new(region, start).run(field).unwrap();
    let near_hotspots = |positions: &[Point2]| -> usize {
        positions
            .iter()
            .filter(|p| {
                p.distance(Point2::new(30.0, 65.0)) < 15.0
                    || p.distance(Point2::new(70.0, 30.0)) < 15.0
            })
            .count()
    };
    let before = near_hotspots(&sim.positions());
    for _ in 0..40 {
        sim.step().unwrap();
    }
    let after = near_hotspots(&sim.positions());
    assert!(
        after > before,
        "density near hotspots should grow: {before} -> {after}"
    );
    assert!(UnitDiskGraph::new(sim.positions(), 10.0)
        .unwrap()
        .is_connected());
}

#[test]
fn all_instrumentation_composes_in_one_run() {
    // Timeline + trajectories + exploration + path samples on the same
    // simulation, over a drifting field.
    let region = Rect::square(80.0).unwrap();
    let base = GaussianMixtureField::new(
        2.0,
        vec![GaussianBlob::isotropic(Point2::new(40.0, 40.0), 25.0, 7.0)],
    );
    let field = DriftingField::new(base, Vec2::new(0.05, 0.0));
    let start = scenario::grid_start_spaced(region, 36, 9.3).unwrap();
    let mut sim = CmaBuilder::new(region, start).run(&field).unwrap();

    let grid = GridSpec::new(region, 33, 33).unwrap();
    let mut timeline = DeltaTimeline::new();
    let mut tracks = TrajectoryRecorder::new();
    let mut exploration = ExplorationTracker::new(grid);
    let mut bank = PathSampleBank::new(50_000);
    let mut detector = ConvergenceDetector::new(0.02, 5);

    tracks.record(&sim);
    exploration.record(&sim);
    bank.record(&sim);
    timeline.record(&sim, &grid).unwrap();

    for _ in 0..25 {
        let report = sim.step().unwrap();
        tracks.record(&sim);
        exploration.record(&sim);
        bank.record(&sim);
        detector.observe(report.time, report.max_displacement);
    }
    timeline.record(&sim, &grid).unwrap();

    // Everything recorded consistently.
    assert_eq!(timeline.len(), 2);
    assert_eq!(tracks.node_count(), 36);
    assert_eq!(tracks.track(0).len(), 26);
    assert!(exploration.coverage() > 0.3);
    assert_eq!(bank.len(), 26 * 36);
    // The drifting field means the reconstruction instant matters: the
    // timeline's two samples were taken against different field states,
    // both finite.
    for (t, eval) in timeline.samples() {
        assert!(eval.delta.is_finite(), "at t={t}");
    }
    // Cross-check: the field at the two instants differs.
    let p = Point2::new(40.0, 40.0);
    assert_ne!(field.value_at(p, 0.0), field.value_at(p, 25.0));
}

#[test]
fn larger_speed_budget_converges_no_slower() {
    // With a higher speed limit the swarm reaches its equilibrium in
    // fewer slots (or equal), never more δ at the shared horizon.
    let (region, field) = hotspot_world();
    let grid = GridSpec::new(region, 33, 33).unwrap();
    let mut deltas = Vec::new();
    for speed in [0.5, 2.0] {
        let cps = cps_core::CpsConfig::builder()
            .max_speed(speed)
            .build()
            .unwrap();
        let config = SimConfig {
            cps,
            ..SimConfig::default()
        };
        let start = scenario::grid_start_spaced(region, 36, 9.3).unwrap();
        let mut sim = CmaBuilder::new(region, start)
            .config(config)
            .run(field.clone())
            .unwrap();
        for _ in 0..20 {
            sim.step().unwrap();
        }
        let mut timeline = DeltaTimeline::new();
        deltas.push(timeline.record(&sim, &grid).unwrap().delta);
    }
    // Faster nodes get at least as close to the equilibrium layout.
    assert!(
        deltas[1] <= deltas[0] * 1.1,
        "fast {} vs slow {}",
        deltas[1],
        deltas[0]
    );
}
