//! Property tests for the fault-injection subsystem.
//!
//! The two contracts that keep fault injection honest:
//!
//! 1. an all-zero [`FaultPlan`] is *free* — positions, curvatures, and
//!    δ are bit-identical to a run with no plan at all, at every thread
//!    count;
//! 2. killing a non-articulation node never increases the component
//!    count of the communication graph.

use cps_field::{Parallelism, PeaksField, Static};
use cps_geometry::{GridSpec, Point2, Rect};
use cps_network::UnitDiskGraph;
use cps_sim::{scenario, CmaBuilder, DeltaTimeline, FaultPlan, MobileNode, RecoveryPolicy};
use proptest::prelude::*;

fn region() -> Rect {
    Rect::square(100.0).unwrap()
}

fn run_swarm(
    plan: Option<FaultPlan>,
    par: Parallelism,
    slots: usize,
) -> (Vec<MobileNode>, Vec<f64>) {
    let field = Static::new(PeaksField::new(region(), 8.0));
    let grid = GridSpec::new(region(), 41, 41).unwrap();
    let start = scenario::grid_start(region(), 36);
    let mut builder = CmaBuilder::new(region(), start).parallelism(par);
    if let Some(plan) = plan {
        builder = builder.faults(plan);
    }
    let mut sim = builder.run(field).unwrap();
    let mut timeline = DeltaTimeline::with_parallelism(par);
    timeline.record(&sim, &grid).unwrap();
    for _ in 0..slots {
        sim.step().unwrap();
        timeline.record(&sim, &grid).unwrap();
    }
    let deltas = timeline.delta_series().iter().map(|&(_, d)| d).collect();
    (sim.nodes().to_vec(), deltas)
}

fn assert_bit_identical(a: &(Vec<MobileNode>, Vec<f64>), b: &(Vec<MobileNode>, Vec<f64>)) {
    assert_eq!(a.0.len(), b.0.len());
    for (x, y) in a.0.iter().zip(&b.0) {
        assert_eq!(x.position.x.to_bits(), y.position.x.to_bits());
        assert_eq!(x.position.y.to_bits(), y.position.y.to_bits());
        assert_eq!(x.curvature.to_bits(), y.curvature.to_bits());
        assert_eq!(x.traveled.to_bits(), y.traveled.to_bits());
        assert_eq!(x.alive, y.alive);
    }
    assert_eq!(a.1.len(), b.1.len());
    for (x, y) in a.1.iter().zip(&b.1) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}

#[test]
fn zero_fault_plan_is_bit_identical_to_no_plan_at_every_thread_count() {
    let baseline = run_swarm(None, Parallelism::serial(), 6);
    // The seed must not matter when nothing is injected. (A zero plan
    // with RecoveryPolicy::On is deliberately NOT inert: it heals
    // disconnected deployments even without injected faults.)
    for plan in [
        FaultPlan::none(),
        FaultPlan::builder().seed(12345).build().unwrap(),
        FaultPlan::builder()
            .recovery(RecoveryPolicy::Off)
            .build()
            .unwrap(),
    ] {
        for par in [
            Parallelism::serial(),
            Parallelism::fixed(2),
            Parallelism::fixed(5),
            Parallelism::auto(),
        ] {
            let faulty = run_swarm(Some(plan.clone()), par, 6);
            assert_bit_identical(&baseline, &faulty);
        }
    }
}

#[test]
fn faulty_runs_are_bit_identical_across_thread_counts() {
    // The deeper determinism contract: even with every fault class
    // active, all draws happen serially, so thread count changes
    // nothing.
    let plan = FaultPlan::parse(
        "seed=11,kill=7@2,death=0.01,dropout=0.05,outlier=0.05:30,stuck=0.03:2,loss=0.15:2",
    )
    .unwrap();
    let serial = run_swarm(Some(plan.clone()), Parallelism::serial(), 6);
    assert!(
        serial.0.iter().any(|n| !n.alive),
        "the schedule should kill at least node 7"
    );
    for par in [
        Parallelism::fixed(2),
        Parallelism::fixed(5),
        Parallelism::auto(),
    ] {
        let threaded = run_swarm(Some(plan.clone()), par, 6);
        assert_bit_identical(&serial, &threaded);
    }
}

#[test]
fn timeline_syncs_fault_events() {
    let field = Static::new(PeaksField::new(region(), 8.0));
    let grid = GridSpec::new(region(), 41, 41).unwrap();
    let start = scenario::grid_start(region(), 16);
    let plan = FaultPlan::builder().kill(5, 1).build().unwrap();
    let mut sim = CmaBuilder::new(region(), start)
        .faults(plan)
        .run(field)
        .unwrap();
    let mut timeline = DeltaTimeline::new();
    timeline.record(&sim, &grid).unwrap();
    assert!(timeline.events().is_empty());
    for _ in 0..3 {
        sim.step().unwrap();
    }
    timeline.record(&sim, &grid).unwrap();
    assert_eq!(timeline.events(), sim.fault_events());
    assert!(!timeline.events().is_empty());
    // Re-recording without new events must not duplicate them.
    let count = timeline.events().len();
    timeline.record(&sim, &grid).unwrap();
    assert_eq!(timeline.events().len(), count);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn killing_a_non_articulation_node_never_splits_the_graph(
        pts in prop::collection::vec((0.0..100.0f64, 0.0..100.0f64), 4..40),
        pick in any::<prop::sample::Index>(),
    ) {
        let positions: Vec<Point2> = pts.iter().map(|&(x, y)| Point2::new(x, y)).collect();
        let graph = UnitDiskGraph::new(positions.clone(), 18.0).unwrap();
        let critical = graph.critical_nodes();
        let victim = pick.index(positions.len());
        prop_assume!(!critical.contains(&victim));
        let survivors: Vec<Point2> = positions
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != victim)
            .map(|(_, &p)| p)
            .collect();
        let after = UnitDiskGraph::new(survivors, 18.0).unwrap();
        prop_assert!(
            after.component_count() <= graph.component_count(),
            "killing non-critical node {} split {} -> {} components",
            victim,
            graph.component_count(),
            after.component_count()
        );
    }
}
