//! Trajectory recording: per-node movement histories for analysis and
//! rendering.

use cps_field::TimeVaryingField;
use cps_geometry::Point2;

use crate::Simulation;

/// Recorded movement histories, one polyline per node id.
#[derive(Debug, Clone, Default)]
pub struct TrajectoryRecorder {
    /// `tracks[id]` = the recorded `(time, position)` sequence.
    tracks: Vec<Vec<(f64, Point2)>>,
}

impl TrajectoryRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        TrajectoryRecorder::default()
    }

    /// Snapshots every node's current position (call once per step;
    /// failed nodes simply stop extending their track).
    pub fn record<F: TimeVaryingField>(&mut self, sim: &Simulation<F>) {
        if self.tracks.len() < sim.nodes().len() {
            self.tracks.resize(sim.nodes().len(), Vec::new());
        }
        let t = sim.time();
        for node in sim.nodes().iter().filter(|n| n.alive) {
            self.tracks[node.id].push((t, node.position));
        }
    }

    /// Number of tracked nodes.
    pub fn node_count(&self) -> usize {
        self.tracks.len()
    }

    /// The recorded track of one node (empty slice for unknown ids).
    pub fn track(&self, id: usize) -> &[(f64, Point2)] {
        self.tracks.get(id).map_or(&[], Vec::as_slice)
    }

    /// Polyline length of one node's recorded movement.
    pub fn path_length(&self, id: usize) -> f64 {
        let t = self.track(id);
        t.windows(2).map(|w| w[0].1.distance(w[1].1)).sum()
    }

    /// The node that traveled farthest, with its path length.
    pub fn longest_track(&self) -> Option<(usize, f64)> {
        (0..self.tracks.len())
            .map(|id| (id, self.path_length(id)))
            .max_by(|a, b| f64::total_cmp(&a.1, &b.1))
    }

    /// Linear interpolation of a node's position at time `t` (clamped
    /// to the recorded interval); `None` when the track is empty.
    pub fn position_at(&self, id: usize, t: f64) -> Option<Point2> {
        let track = self.track(id);
        let (first, last) = (track.first()?, track.last()?);
        if t <= first.0 {
            return Some(first.1);
        }
        if t >= last.0 {
            return Some(last.1);
        }
        let hi = track.partition_point(|&(tt, _)| tt <= t);
        let (t0, p0) = track[hi - 1];
        let (t1, p1) = track[hi];
        let w = if t1 > t0 { (t - t0) / (t1 - t0) } else { 0.0 };
        Some(p0.lerp(p1, w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{scenario, CmaBuilder};
    use cps_field::{GaussianBlob, Static};
    use cps_geometry::Rect;

    fn tracked_sim() -> TrajectoryRecorder {
        let region = Rect::square(50.0).unwrap();
        let field = Static::new(GaussianBlob::isotropic(
            cps_geometry::Point2::new(25.0, 25.0),
            30.0,
            6.0,
        ));
        let start = scenario::grid_start_spaced(region, 9, 9.3).unwrap();
        let mut sim = CmaBuilder::new(region, start).run(field).unwrap();
        let mut rec = TrajectoryRecorder::new();
        rec.record(&sim);
        for _ in 0..10 {
            sim.step().unwrap();
            rec.record(&sim);
        }
        rec
    }

    #[test]
    fn tracks_grow_and_lengths_are_bounded_by_speed() {
        let rec = tracked_sim();
        assert_eq!(rec.node_count(), 9);
        for id in 0..9 {
            assert_eq!(rec.track(id).len(), 11);
            // 10 steps at ≤ 1 m/min.
            assert!(rec.path_length(id) <= 10.0 + 1e-9);
        }
        let (_, longest) = rec.longest_track().unwrap();
        assert!(longest > 0.0, "somebody must have moved toward the blob");
    }

    #[test]
    fn position_interpolates_and_clamps() {
        let rec = tracked_sim();
        let track = rec.track(0);
        let (t0, p0) = track[0];
        let (t1, p1) = track[1];
        assert_eq!(rec.position_at(0, t0 - 10.0), Some(p0));
        let mid = rec.position_at(0, (t0 + t1) / 2.0).unwrap();
        assert!((mid.distance(p0.midpoint(p1))) < 1e-9);
        let last = *track.last().unwrap();
        assert_eq!(rec.position_at(0, last.0 + 99.0), Some(last.1));
        assert_eq!(rec.position_at(42, 0.0), None);
    }
}
