//! Discrete-time simulator for mobile CPS nodes running the coordinated
//! movement algorithm.
//!
//! The paper's OSTD experiments (Section 6, Figs. 8–10) drive 100
//! mobile nodes across a time-varying light field: one time slot per
//! minute, node speed `v = 1 m/min`, communication radius `Rc = 10 m`,
//! sensing radius `Rs = 5 m`, `β = 2`. This crate provides that loop:
//!
//! * [`Simulation`] — world state (field, region, nodes) and the
//!   per-slot step: sense → exchange → CMA force step → LCM
//!   connectivity adjustment → speed-clamped movement;
//! * [`SimConfig`] — the knobs above;
//! * [`DeltaTimeline`] / [`ConvergenceDetector`] — the δ(t) series of
//!   Fig. 10 and its convergence point;
//! * [`scenario`] — canonical initial deployments.
//!
//! # Example
//!
//! ```
//! use cps_field::{PeaksField, Static};
//! use cps_geometry::Rect;
//! use cps_sim::{scenario, CmaBuilder};
//!
//! let region = Rect::square(100.0).unwrap();
//! let field = Static::new(PeaksField::new(region, 8.0));
//! let start = scenario::grid_start(region, 16);
//! let mut sim = CmaBuilder::new(region, start).run(field).unwrap();
//! sim.step().unwrap();
//! assert_eq!(sim.positions().len(), 16);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod checkpoint;
mod engine;
mod exploration;
mod fault;
mod metrics;
mod observers;
mod optimizer;
mod sampling;
pub mod scenario;
pub mod stage;
pub mod sweep;
mod trajectory;

pub use checkpoint::{
    CheckpointDir, CheckpointPolicy, FaultState, SimSnapshot, TimelineState, SNAPSHOT_VERSION,
};
pub use engine::{CmaBuilder, MobileNode, SimConfig, Simulation, StepReport};
pub use exploration::ExplorationTracker;
pub use fault::{
    BatteryModel, DeathCause, FaultEvent, FaultPlan, FaultPlanBuilder, RecoveryPolicy,
};
pub use metrics::{ConvergenceDetector, DeltaTimeline};
pub use observers::RunRecorder;
pub use optimizer::{
    CmaOptimizer, EngineBuilder, FraOptimizer, HybridOptimizer, Optimizer, OptimizerKind,
    OptimizerRun,
};
pub use sampling::{path_sampling_gain, reconstruct_with_path_samples, PathSample, PathSampleBank};
pub use stage::{
    EventBus, ExchangeStage, FaultStage, ObsAdapter, OptimizeStage, RecordStage, RecoveryStage,
    SenseStage, Stage, StagePipeline, StepCtx, StepEvent, StepObserver,
};
pub use sweep::{
    run_sweep, Aggregate, CellAggregate, JobOutcome, SweepJob, SweepManifest, SweepResults,
    SweepSpec, SWEEP_MANIFEST_VERSION,
};
pub use trajectory::TrajectoryRecorder;
