//! Exploration coverage: how much of the region has the swarm *ever*
//! sensed?
//!
//! The δ timeline measures instantaneous reconstruction quality; an
//! exploration mission also cares about cumulative coverage — the
//! fraction of the region that has been within some node's sensing
//! range at some time. Mobile nodes trade instantaneous coverage for
//! cumulative coverage; this tracker quantifies that trade.

use cps_field::TimeVaryingField;
use cps_geometry::GridSpec;

use crate::Simulation;

/// A cumulative sensed-coverage bitmap over an evaluation grid.
#[derive(Debug, Clone)]
pub struct ExplorationTracker {
    grid: GridSpec,
    sensed: Vec<bool>,
    /// When each cell was first sensed (minutes), NaN if never.
    first_sensed: Vec<f64>,
}

impl ExplorationTracker {
    /// Creates a tracker over `grid` with nothing sensed yet.
    pub fn new(grid: GridSpec) -> Self {
        ExplorationTracker {
            grid,
            sensed: vec![false; grid.len()],
            first_sensed: vec![f64::NAN; grid.len()],
        }
    }

    /// Marks every grid cell within the sensing radius of an alive node
    /// as sensed (call once per step).
    pub fn record<F: TimeVaryingField>(&mut self, sim: &Simulation<F>) {
        let rs = sim.config().cps.sensing_radius();
        let r2 = rs * rs;
        let t = sim.time();
        // For each node, only visit grid cells in its bounding box.
        for node in sim.nodes().iter().filter(|n| n.alive) {
            let p = node.position;
            let (i0, j0) = self
                .grid
                .nearest_index(cps_geometry::Point2::new(p.x - rs, p.y - rs));
            let (i1, j1) = self
                .grid
                .nearest_index(cps_geometry::Point2::new(p.x + rs, p.y + rs));
            for j in j0..=j1 {
                for i in i0..=i1 {
                    let q = self.grid.point(i, j);
                    if p.distance_squared(q) <= r2 {
                        let idx = self.grid.flat_index(i, j);
                        if !self.sensed[idx] {
                            self.sensed[idx] = true;
                            self.first_sensed[idx] = t;
                        }
                    }
                }
            }
        }
    }

    /// Fraction of the region sensed at least once.
    pub fn coverage(&self) -> f64 {
        if self.sensed.is_empty() {
            return 0.0;
        }
        self.sensed.iter().filter(|&&s| s).count() as f64 / self.sensed.len() as f64
    }

    /// Mean time-to-first-sense over the cells sensed so far (`None`
    /// when nothing was sensed).
    pub fn mean_discovery_time(&self) -> Option<f64> {
        // One-pass fold: never-sensed cells carry NaN, so filtering on
        // finiteness while accumulating avoids materialising a Vec of
        // grid-sized length on every metrics poll.
        let (sum, count) = self
            .first_sensed
            .iter()
            .filter(|t| t.is_finite())
            .fold((0.0_f64, 0_usize), |(s, c), &t| (s + t, c + 1));
        (count > 0).then(|| sum / count as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{scenario, CmaBuilder};
    use cps_field::{GaussianBlob, Static};
    use cps_geometry::{Point2, Rect};

    #[test]
    fn coverage_accumulates_as_the_swarm_moves() {
        let region = Rect::square(60.0).unwrap();
        let field = Static::new(GaussianBlob::isotropic(Point2::new(30.0, 30.0), 40.0, 8.0));
        let start = scenario::grid_start_spaced(region, 9, 9.3).unwrap();
        let mut sim = CmaBuilder::new(region, start).run(field).unwrap();
        let grid = GridSpec::new(region, 31, 31).unwrap();
        let mut tracker = ExplorationTracker::new(grid);
        tracker.record(&sim);
        let initial = tracker.coverage();
        assert!(initial > 0.0 && initial < 1.0);
        for _ in 0..15 {
            sim.step().unwrap();
            tracker.record(&sim);
        }
        // Coverage is monotone and grew (nodes moved toward the blob).
        assert!(tracker.coverage() >= initial);
        assert!(tracker.mean_discovery_time().unwrap() >= 0.0);
    }

    #[test]
    fn empty_tracker_reports_zero() {
        let grid = GridSpec::new(Rect::square(10.0).unwrap(), 5, 5).unwrap();
        let t = ExplorationTracker::new(grid);
        assert_eq!(t.coverage(), 0.0);
        assert_eq!(t.mean_discovery_time(), None);
    }

    #[test]
    fn stationary_node_covers_exactly_its_disc() {
        let region = Rect::square(20.0).unwrap();
        let field = Static::new(cps_field::PlaneField::new(0.0, 0.0, 1.0));
        let start = vec![Point2::new(10.0, 10.0)];
        let sim = CmaBuilder::new(region, start).run(field).unwrap();
        let grid = GridSpec::new(region, 21, 21).unwrap();
        let mut tracker = ExplorationTracker::new(grid);
        tracker.record(&sim);
        // Disc of radius 5 on a 1 m grid: π·25 ≈ 78.5 of 441 cells.
        let expected = std::f64::consts::PI * 25.0 / 441.0;
        assert!((tracker.coverage() - expected).abs() < 0.03);
    }

    #[test]
    fn sensing_disk_past_the_region_boundary_keeps_all_in_region_cells() {
        // A node near the corner: its sensing disk (rs = 5) extends past
        // both region edges, so `nearest_index` clamps the bounding-box
        // corners. The clamped sweep must still visit every in-region
        // cell inside the disk — compare against a brute-force count
        // over the whole grid.
        let region = Rect::square(20.0).unwrap();
        let field = Static::new(cps_field::PlaneField::new(0.0, 0.0, 1.0));
        let p = Point2::new(1.0, 1.0);
        let sim = CmaBuilder::new(region, vec![p]).run(field).unwrap();
        let rs = sim.config().cps.sensing_radius();
        let grid = GridSpec::new(region, 21, 21).unwrap();
        let mut tracker = ExplorationTracker::new(grid);
        tracker.record(&sim);
        let sensed = (tracker.coverage() * grid.len() as f64).round() as usize;
        let brute: usize = (0..21)
            .flat_map(|j| (0..21).map(move |i| (i, j)))
            .filter(|&(i, j)| p.distance_squared(grid.point(i, j)) <= rs * rs)
            .count();
        assert!(brute > 0, "the disk must reach in-region cells");
        assert_eq!(sensed, brute, "clamped corners must not skip cells");
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(6))]
        #[test]
        fn coverage_is_monotone_non_decreasing_over_steps(seed in 0u64..512) {
            use rand::SeedableRng;
            let region = Rect::square(60.0).unwrap();
            let field = Static::new(GaussianBlob::isotropic(
                Point2::new(20.0 + (seed % 21) as f64, 30.0),
                40.0,
                8.0,
            ));
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let start = scenario::random_connected_start(region, 9, 10.0, 20, &mut rng);
            let mut sim = CmaBuilder::new(region, start).run(field).unwrap();
            let grid = GridSpec::new(region, 25, 25).unwrap();
            let mut tracker = ExplorationTracker::new(grid);
            tracker.record(&sim);
            let mut prev = tracker.coverage();
            for _ in 0..5 {
                sim.step().unwrap();
                tracker.record(&sim);
                let now = tracker.coverage();
                proptest::prop_assert!(now >= prev, "coverage regressed: {now} < {prev}");
                prev = now;
            }
        }
    }
}
