//! Checkpoint/restore: versioned, checksummed snapshots of a running
//! simulation with crash-safe persistence.
//!
//! A [`SimSnapshot`] captures everything
//! [`Simulation::step`](crate::Simulation::step) depends on — the slot
//! clock, the full [`MobileNode`] fleet (positions, curvatures, travel
//! odometers, alive flags), the CMA configuration in effect (including
//! mid-run overrides), the gossiped curvature scale, and the complete
//! fault-runtime state (plan, slot cursor, battery levels, stuck-sensor
//! freezes, accumulated events) — plus, optionally, the app-level
//! [`DeltaTimeline`] records and survivability tracker so a resumed run
//! finishes with the *same report* an uninterrupted one would produce.
//!
//! # Resume bit-identity
//!
//! Checkpoints land between slots, and every random draw of a slot
//! comes from a SplitMix64 stream derived from `(plan seed, slot
//! index)` alone — so restoring the slot cursor restores the entire
//! future of the fault schedule. Floats round-trip exactly: values are
//! serialized with Rust's shortest-representation formatting, which
//! reparses to the identical bit pattern. The δ tile cache is *not*
//! checkpointed; it re-primes lazily after a restore and the
//! probe-guarded priming reproduces the uninterrupted values (cached
//! and uncached resumes are both bit-identical — property-tested).
//!
//! # On-disk format
//!
//! One header line, then a JSON payload:
//!
//! ```text
//! CPSSNAP <version> <fnv1a64 of payload, 16 hex digits> <payload bytes>\n
//! {...}
//! ```
//!
//! The checksum lives in the header rather than the JSON so it covers
//! the payload bytes verbatim (and is itself a full-width `u64`, which
//! JSON numbers cannot carry exactly). Writes are atomic: the bytes go
//! to a temporary file in the same directory, are fsync'd, and only
//! then renamed over the final name — a crash at any instant leaves
//! either the previous snapshot or the new one, never a torn file.
//! Any corruption — a flipped bit anywhere, truncation, an empty file —
//! fails the checksum or the structural decode and surfaces as a typed
//! [`CoreError::SnapshotCorrupt`]; [`CheckpointDir::latest_valid`]
//! then falls back to the newest snapshot that still verifies.

use std::collections::BTreeMap;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use cps_core::ostd::CmaConfig;
use cps_core::{
    CoreError, DeploymentEvaluation, EvalOptions, Kernel, SurvivabilityState, SurvivabilityTracker,
};
use cps_geometry::{Point2, Rect};
use serde_json::Value;

use crate::fault::{DeathCause, FaultEvent, FaultPlan, RecoveryPolicy};
use crate::{DeltaTimeline, MobileNode};

/// Newest snapshot format version this build reads and writes.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Magic token opening every snapshot file.
const MAGIC: &str = "CPSSNAP";

/// File extension used by [`CheckpointDir`].
const EXTENSION: &str = "cpsnap";

/// Checkpointed fault-injection state: the plan plus everything the
/// runtime accumulated up to the snapshot slot.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultState {
    /// The installed schedule (restored through the validating builder).
    pub plan: FaultPlan,
    /// Slot cursor — the SplitMix64 stream of every future slot is
    /// derived from `(plan seed, slot)`, so this one integer carries
    /// the whole RNG state.
    pub slot: u64,
    /// Remaining per-node energy (empty without a battery model).
    pub energy: Vec<f64>,
    /// Per-node stuck-sensor state: `(frozen_time, expiry_slot)`.
    pub stuck: Vec<Option<(f64, u64)>>,
    /// Everything recorded so far (deaths, partitions, reconnects).
    pub events: Vec<FaultEvent>,
    /// Slot the currently-open partition started at, if any.
    pub partition_since: Option<u64>,
    /// Total deaths so far.
    pub deaths_total: usize,
    /// Total retried deliveries so far.
    pub retried_total: usize,
    /// Total dropped directed link-slots so far.
    pub dropped_total: usize,
}

/// Checkpointed [`DeltaTimeline`] records (samples + synced events).
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineState {
    /// The `(time, evaluation)` samples recorded so far.
    pub samples: Vec<(f64, DeploymentEvaluation)>,
    /// Fault events copied into the timeline so far.
    pub events: Vec<FaultEvent>,
    /// The event sync cursor.
    pub events_synced: usize,
}

/// A complete, serializable snapshot of a running simulation — built by
/// [`Simulation::checkpoint`](crate::Simulation::checkpoint), restored
/// by [`CmaBuilder::resume_from`](crate::CmaBuilder::resume_from).
///
/// The generic field is deliberately *not* part of the snapshot (a
/// field is arbitrary code); the caller re-supplies it on resume, and
/// bit-identity holds when it is the same field. The free-form
/// [`label`](SimSnapshot::label) exists so applications can record how
/// to rebuild theirs (the CLI stores the forest seed there).
#[derive(Debug, Clone, PartialEq)]
pub struct SimSnapshot {
    /// Free-form application tag (e.g. how to rebuild the field).
    pub label: String,
    /// Slots stepped since construction.
    pub slot: u64,
    /// Simulation clock, minutes.
    pub time: f64,
    /// [`SimConfig::time_step`](crate::SimConfig::time_step).
    pub time_step: f64,
    /// [`SimConfig::sense_spacing`](crate::SimConfig::sense_spacing).
    pub sense_spacing: f64,
    /// Node capability `Rc`.
    pub comm_radius: f64,
    /// Node capability `Rs`.
    pub sensing_radius: f64,
    /// Node capability `v`.
    pub max_speed: f64,
    /// Force-balance weight `β`.
    pub beta: f64,
    /// The CMA parameters in effect, including any mid-run overrides.
    pub cma: CmaConfig,
    /// Region of interest.
    pub region: Rect,
    /// The gossiped curvature normalization reference.
    pub curvature_scale: f64,
    /// Whether δ measurements of this run used the incremental tile
    /// cache (the cache itself re-primes lazily after restore).
    pub eval_cached: bool,
    /// Which quadrature kernel δ measurements of this run used.
    /// Snapshots written before the kernel existed decode as
    /// [`Kernel::Walk`], so old runs resume on the exact arithmetic
    /// path they were taken with.
    pub eval_kernel: Kernel,
    /// Stage names of the pipeline that produced this snapshot, in
    /// execution order. Snapshots written before the stage pipeline
    /// existed decode as the standard sequence; restore rejects
    /// anything else, because resuming a run under a different stage
    /// order could not be bit-identical to the uninterrupted one.
    pub pipeline: Vec<String>,
    /// The full fleet, dead nodes included.
    pub nodes: Vec<MobileNode>,
    /// Fault-runtime state (None for pristine runs).
    pub fault: Option<FaultState>,
    /// δ(t) records, when the app attached them.
    pub timeline: Option<TimelineState>,
    /// Survivability tracker state, when the app attached it.
    pub survivability: Option<SurvivabilityState>,
}

impl SimSnapshot {
    /// Attaches the timeline's records so a resumed run continues the
    /// same δ(t) series.
    pub fn attach_timeline(&mut self, timeline: &DeltaTimeline) {
        self.timeline = Some(TimelineState {
            samples: timeline.samples().to_vec(),
            events: timeline.events().to_vec(),
            events_synced: timeline.events_synced(),
        });
    }

    /// Rebuilds the attached timeline (None when none was attached),
    /// recording with `opts` from here on.
    pub fn timeline(&self, opts: EvalOptions) -> Option<DeltaTimeline> {
        self.timeline.as_ref().map(|t| {
            DeltaTimeline::from_state(opts, t.samples.clone(), t.events.clone(), t.events_synced)
        })
    }

    /// Attaches the survivability tracker's state.
    pub fn attach_survivability(&mut self, tracker: &SurvivabilityTracker) {
        self.survivability = Some(tracker.state());
    }

    /// Rebuilds the attached survivability tracker, if any.
    pub fn survivability_tracker(&self) -> Option<SurvivabilityTracker> {
        self.survivability
            .clone()
            .map(SurvivabilityTracker::from_state)
    }

    /// Fleet size (dead nodes included).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Serializes to the on-disk byte format (header + checksummed JSON
    /// payload).
    ///
    /// # Errors
    ///
    /// [`CoreError::SnapshotCorrupt`] when the state contains a
    /// non-finite float (JSON cannot carry it losslessly).
    pub fn to_bytes(&self) -> Result<Vec<u8>, CoreError> {
        let payload = serde_json::to_string(&self.encode()?).map_err(|e| corrupt(e.to_string()))?;
        let mut out = format!(
            "{MAGIC} {SNAPSHOT_VERSION} {:016x} {}\n",
            fnv1a64(payload.as_bytes()),
            payload.len()
        )
        .into_bytes();
        out.extend_from_slice(payload.as_bytes());
        Ok(out)
    }

    /// Parses and verifies the byte format.
    ///
    /// # Errors
    ///
    /// [`CoreError::SnapshotCorrupt`] on bad magic, length or checksum
    /// mismatch, or a malformed payload;
    /// [`CoreError::SnapshotVersion`] for an unsupported version.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CoreError> {
        let newline = bytes
            .iter()
            .position(|&b| b == b'\n')
            .ok_or_else(|| corrupt("missing header line".to_string()))?;
        let header = std::str::from_utf8(&bytes[..newline])
            .map_err(|_| corrupt("header is not UTF-8".to_string()))?;
        let mut parts = header.split_ascii_whitespace();
        if parts.next() != Some(MAGIC) {
            return Err(corrupt(format!("bad magic (expected {MAGIC})")));
        }
        let version: u32 = parts
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| corrupt("unreadable version".to_string()))?;
        if version != SNAPSHOT_VERSION {
            return Err(CoreError::SnapshotVersion {
                found: version,
                supported: SNAPSHOT_VERSION,
            });
        }
        let checksum = parts
            .next()
            // Canonical form only — 16 lowercase hex digits — so no two
            // distinct headers verify the same payload.
            .filter(|v| {
                v.len() == 16
                    && v.bytes()
                        .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
            })
            .and_then(|v| u64::from_str_radix(v, 16).ok())
            .ok_or_else(|| corrupt("unreadable checksum".to_string()))?;
        let length: usize = parts
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| corrupt("unreadable payload length".to_string()))?;
        let payload = &bytes[newline + 1..];
        if payload.len() != length {
            return Err(corrupt(format!(
                "truncated payload ({} of {length} bytes)",
                payload.len()
            )));
        }
        let actual = fnv1a64(payload);
        if actual != checksum {
            return Err(corrupt(format!(
                "checksum mismatch (header {checksum:016x}, payload {actual:016x})"
            )));
        }
        let text = std::str::from_utf8(payload)
            .map_err(|_| corrupt("payload is not UTF-8".to_string()))?;
        let value: Value =
            serde_json::from_str(text).map_err(|e| corrupt(format!("payload is not JSON: {e}")))?;
        Self::decode(&value)
    }

    /// Writes the snapshot to `path` atomically: temp file in the same
    /// directory, fsync, rename, directory fsync. Returns the bytes
    /// written.
    ///
    /// # Errors
    ///
    /// [`CoreError::SnapshotIo`] on filesystem failures and
    /// [`SimSnapshot::to_bytes`] errors.
    pub fn save(&self, path: &Path) -> Result<u64, CoreError> {
        let bytes = self.to_bytes()?;
        atomic_write(path, &bytes)?;
        Ok(bytes.len() as u64)
    }

    /// Reads and verifies a snapshot from `path`.
    ///
    /// # Errors
    ///
    /// [`CoreError::SnapshotIo`] on read failures; the
    /// [`SimSnapshot::from_bytes`] errors (with the path filled in) on
    /// verification failures.
    pub fn load(path: &Path) -> Result<Self, CoreError> {
        let bytes = fs::read(path).map_err(|e| snapshot_io(path, &e))?;
        Self::from_bytes(&bytes).map_err(|e| match e {
            CoreError::SnapshotCorrupt { reason, .. } => CoreError::SnapshotCorrupt {
                path: path.display().to_string(),
                reason,
            },
            other => other,
        })
    }

    // ---- encoding -------------------------------------------------

    fn encode(&self) -> Result<Value, CoreError> {
        let nodes = self
            .nodes
            .iter()
            .map(|n| {
                Ok(obj([
                    ("id", int(n.id as u64)?),
                    ("x", num("node x", n.position.x)?),
                    ("y", num("node y", n.position.y)?),
                    ("curvature", num("node curvature", n.curvature)?),
                    ("traveled", num("node traveled", n.traveled)?),
                    ("alive", Value::Bool(n.alive)),
                ]))
            })
            .collect::<Result<Vec<Value>, CoreError>>()?;
        let fault = match &self.fault {
            Some(f) => encode_fault(f)?,
            None => Value::Null,
        };
        let timeline = match &self.timeline {
            Some(t) => encode_timeline(t)?,
            None => Value::Null,
        };
        let survivability = match &self.survivability {
            Some(s) => encode_survivability(s)?,
            None => Value::Null,
        };
        Ok(obj([
            ("label", Value::String(self.label.clone())),
            ("slot", int(self.slot)?),
            ("time", num("time", self.time)?),
            ("time_step", num("time_step", self.time_step)?),
            ("sense_spacing", num("sense_spacing", self.sense_spacing)?),
            ("comm_radius", num("comm_radius", self.comm_radius)?),
            (
                "sensing_radius",
                num("sensing_radius", self.sensing_radius)?,
            ),
            ("max_speed", num("max_speed", self.max_speed)?),
            ("beta", num("beta", self.beta)?),
            ("cma", encode_cma(&self.cma)?),
            (
                "region",
                obj([
                    ("min_x", num("region min_x", self.region.min().x)?),
                    ("min_y", num("region min_y", self.region.min().y)?),
                    ("max_x", num("region max_x", self.region.max().x)?),
                    ("max_y", num("region max_y", self.region.max().y)?),
                ]),
            ),
            (
                "curvature_scale",
                num("curvature_scale", self.curvature_scale)?,
            ),
            ("eval_cached", Value::Bool(self.eval_cached)),
            (
                "eval_kernel",
                Value::String(self.eval_kernel.as_str().to_string()),
            ),
            (
                "pipeline",
                Value::Array(
                    self.pipeline
                        .iter()
                        .map(|s| Value::String(s.clone()))
                        .collect(),
                ),
            ),
            ("nodes", Value::Array(nodes)),
            ("fault", fault),
            ("timeline", timeline),
            ("survivability", survivability),
        ]))
    }

    // ---- decoding -------------------------------------------------

    fn decode(value: &Value) -> Result<Self, CoreError> {
        let region = {
            let r = get(value, "region")?;
            Rect::new(
                Point2::new(dec_f64(r, "min_x")?, dec_f64(r, "min_y")?),
                Point2::new(dec_f64(r, "max_x")?, dec_f64(r, "max_y")?),
            )
            .map_err(|e| corrupt(format!("region: {e}")))?
        };
        let nodes = get(value, "nodes")?
            .as_array()
            .ok_or_else(|| corrupt("nodes must be an array".to_string()))?
            .iter()
            .map(|n| {
                Ok(MobileNode {
                    id: dec_u64(n, "id")? as usize,
                    position: Point2::new(dec_f64(n, "x")?, dec_f64(n, "y")?),
                    curvature: dec_f64(n, "curvature")?,
                    traveled: dec_f64(n, "traveled")?,
                    alive: dec_bool(n, "alive")?,
                })
            })
            .collect::<Result<Vec<MobileNode>, CoreError>>()?;
        let fault = match get(value, "fault")? {
            Value::Null => None,
            f => Some(decode_fault(f)?),
        };
        let timeline = match get(value, "timeline")? {
            Value::Null => None,
            t => Some(decode_timeline(t)?),
        };
        let survivability = match get(value, "survivability")? {
            Value::Null => None,
            s => Some(decode_survivability(s)?),
        };
        // Lenient like `eval_kernel`: snapshots written before the
        // stage pipeline existed ran the standard sequence.
        let pipeline = match value.get("pipeline") {
            None | Some(Value::Null) => crate::stage::STANDARD_STAGES
                .iter()
                .map(|s| s.to_string())
                .collect(),
            Some(Value::Array(stages)) => stages
                .iter()
                .map(|s| {
                    s.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| corrupt("pipeline stage names must be strings".to_string()))
                })
                .collect::<Result<Vec<String>, CoreError>>()?,
            Some(_) => return Err(corrupt("pipeline must be an array".to_string())),
        };
        Ok(SimSnapshot {
            label: dec_str(value, "label")?,
            slot: dec_u64(value, "slot")?,
            time: dec_f64(value, "time")?,
            time_step: dec_f64(value, "time_step")?,
            sense_spacing: dec_f64(value, "sense_spacing")?,
            comm_radius: dec_f64(value, "comm_radius")?,
            sensing_radius: dec_f64(value, "sensing_radius")?,
            max_speed: dec_f64(value, "max_speed")?,
            beta: dec_f64(value, "beta")?,
            cma: decode_cma(get(value, "cma")?)?,
            region,
            curvature_scale: dec_f64(value, "curvature_scale")?,
            eval_cached: dec_bool(value, "eval_cached")?,
            eval_kernel: dec_kernel(value)?,
            pipeline,
            nodes,
            fault,
            timeline,
            survivability,
        })
    }
}

/// When a running simulation should be checkpointed. Combine the two
/// triggers freely; the default ([`CheckpointPolicy::disabled`]) never
/// fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CheckpointPolicy {
    every_slots: Option<u64>,
    on_fault_event: bool,
}

impl CheckpointPolicy {
    /// A policy that never checkpoints.
    pub fn disabled() -> Self {
        CheckpointPolicy::default()
    }

    /// Checkpoints every `n` completed slots (`0` disables the periodic
    /// trigger).
    pub fn every(n: u64) -> Self {
        CheckpointPolicy {
            every_slots: (n > 0).then_some(n),
            on_fault_event: false,
        }
    }

    /// Additionally checkpoints on any slot that recorded a fresh fault
    /// event (death, partition, reconnection).
    pub fn on_fault_event(mut self, yes: bool) -> Self {
        self.on_fault_event = yes;
        self
    }

    /// Whether any trigger is configured.
    pub fn is_enabled(&self) -> bool {
        self.every_slots.is_some() || self.on_fault_event
    }

    /// Whether the just-completed `slot` (1-based step count) should be
    /// checkpointed, given how many fault events it produced.
    pub fn due(&self, slot: u64, fresh_fault_events: usize) -> bool {
        let periodic = match self.every_slots {
            Some(n) => slot > 0 && slot.is_multiple_of(n),
            None => false,
        };
        periodic || (self.on_fault_event && fresh_fault_events > 0)
    }
}

/// A directory of rolling snapshots: `snap-<slot>.cpsnap` files with
/// bounded retention and newest-valid-first recovery.
#[derive(Debug, Clone)]
pub struct CheckpointDir {
    dir: PathBuf,
    keep: usize,
}

impl CheckpointDir {
    /// Uses `dir` (created on the first store), retaining the newest 4
    /// snapshots.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        CheckpointDir {
            dir: dir.into(),
            keep: 4,
        }
    }

    /// Sets how many snapshots to retain (at least 1 — keeping zero
    /// would defeat the fallback chain).
    pub fn keep(mut self, keep: usize) -> Self {
        self.keep = keep.max(1);
        self
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.dir
    }

    /// Persists `snapshot` as `snap-<slot>.cpsnap` (atomically), prunes
    /// snapshots beyond the retention bound, and returns the written
    /// path. Instrumented: counts `checkpoints_written` and
    /// `checkpoint_bytes`, timed under the `checkpoint_write` phase.
    ///
    /// # Errors
    ///
    /// [`CoreError::SnapshotIo`] on filesystem failures,
    /// [`CoreError::SnapshotCorrupt`] for non-finite state.
    pub fn store(&self, snapshot: &SimSnapshot) -> Result<PathBuf, CoreError> {
        let _t = cps_obs::time(cps_obs::Phase::CheckpointWrite, 1);
        fs::create_dir_all(&self.dir).map_err(|e| snapshot_io(&self.dir, &e))?;
        let path = self
            .dir
            .join(format!("snap-{:012}.{EXTENSION}", snapshot.slot));
        let bytes = snapshot.save(&path)?;
        cps_obs::count(cps_obs::Counter::CheckpointsWritten);
        cps_obs::count_by(cps_obs::Counter::CheckpointBytes, bytes);
        self.prune()?;
        Ok(path)
    }

    /// Snapshot paths in ascending slot order (missing directory =
    /// empty).
    ///
    /// # Errors
    ///
    /// [`CoreError::SnapshotIo`] when the directory cannot be listed.
    pub fn snapshots(&self) -> Result<Vec<PathBuf>, CoreError> {
        let entries = match fs::read_dir(&self.dir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(snapshot_io(&self.dir, &e)),
        };
        let mut paths: Vec<PathBuf> = entries
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| {
                p.extension().is_some_and(|x| x == EXTENSION)
                    && p.file_stem()
                        .and_then(|s| s.to_str())
                        .is_some_and(|s| s.starts_with("snap-"))
            })
            .collect();
        paths.sort();
        Ok(paths)
    }

    /// Loads the newest snapshot that passes verification, skipping (and
    /// counting as `checkpoints_rejected`) corrupt, truncated, or
    /// unsupported files. Returns the snapshot and its path, or `None`
    /// when no valid snapshot exists.
    ///
    /// # Errors
    ///
    /// [`CoreError::SnapshotIo`] when the directory cannot be listed
    /// (unreadable *files* are skipped, not fatal).
    pub fn latest_valid(&self) -> Result<Option<(SimSnapshot, PathBuf)>, CoreError> {
        for path in self.snapshots()?.into_iter().rev() {
            match SimSnapshot::load(&path) {
                Ok(snapshot) => {
                    cps_obs::count(cps_obs::Counter::CheckpointsLoaded);
                    return Ok(Some((snapshot, path)));
                }
                Err(_) => cps_obs::count(cps_obs::Counter::CheckpointsRejected),
            }
        }
        Ok(None)
    }

    /// Deletes the oldest snapshots beyond the retention bound.
    fn prune(&self) -> Result<(), CoreError> {
        let paths = self.snapshots()?;
        if paths.len() > self.keep {
            for path in &paths[..paths.len() - self.keep] {
                fs::remove_file(path).map_err(|e| snapshot_io(path, &e))?;
            }
        }
        Ok(())
    }
}

// ---- shared helpers ---------------------------------------------------
// (pub(crate): the sweep manifest reuses the same header format,
// checksum, atomic-write path, and JSON codec discipline.)

/// Writes `bytes` to `path` atomically: temp file in the same
/// directory, fsync, rename, best-effort directory fsync. A crash at
/// any instant leaves either the previous file or the new one, never a
/// torn write.
pub(crate) fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), CoreError> {
    let tmp = path.with_extension("tmp");
    let write = || -> std::io::Result<()> {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        drop(file);
        fs::rename(&tmp, path)?;
        #[cfg(unix)]
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            // Make the rename itself durable; best-effort (some
            // filesystems refuse directory fsync).
            if let Ok(d) = fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    };
    write().map_err(|e| {
        let _ = fs::remove_file(&tmp);
        snapshot_io(path, &e)
    })
}

/// FNV-1a, 64-bit: dependency-free integrity checksum. Not
/// cryptographic — it guards against torn writes and bit rot, not
/// adversaries.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

pub(crate) fn corrupt(reason: String) -> CoreError {
    CoreError::SnapshotCorrupt {
        path: String::new(),
        reason,
    }
}

pub(crate) fn snapshot_io(path: &Path, e: &std::io::Error) -> CoreError {
    CoreError::SnapshotIo {
        path: path.display().to_string(),
        message: e.to_string(),
    }
}

pub(crate) fn obj<const N: usize>(entries: [(&str, Value); N]) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect::<BTreeMap<String, Value>>(),
    )
}

/// Encodes a float, rejecting non-finite values (JSON would silently
/// turn them into `null`).
pub(crate) fn num(what: &str, x: f64) -> Result<Value, CoreError> {
    if x.is_finite() {
        Ok(Value::Number(x))
    } else {
        Err(corrupt(format!("{what} is not finite ({x})")))
    }
}

/// Encodes an unsigned integer; JSON numbers are `f64`, exact only up
/// to 2^53 (slot counts and ids are far below; the plan *seed* is a
/// full-width `u64` and travels as a string instead).
pub(crate) fn int(x: u64) -> Result<Value, CoreError> {
    const MAX_EXACT: u64 = 1 << 53;
    if x <= MAX_EXACT {
        Ok(Value::Number(x as f64))
    } else {
        Err(corrupt(format!("integer {x} exceeds JSON's exact range")))
    }
}

pub(crate) fn get<'a>(value: &'a Value, key: &str) -> Result<&'a Value, CoreError> {
    value
        .get(key)
        .ok_or_else(|| corrupt(format!("missing field {key}")))
}

pub(crate) fn dec_f64(value: &Value, key: &str) -> Result<f64, CoreError> {
    get(value, key)?
        .as_f64()
        .filter(|x| x.is_finite())
        .ok_or_else(|| corrupt(format!("field {key} must be a finite number")))
}

pub(crate) fn dec_u64(value: &Value, key: &str) -> Result<u64, CoreError> {
    get(value, key)?
        .as_u64()
        .ok_or_else(|| corrupt(format!("field {key} must be an unsigned integer")))
}

pub(crate) fn dec_bool(value: &Value, key: &str) -> Result<bool, CoreError> {
    get(value, key)?
        .as_bool()
        .ok_or_else(|| corrupt(format!("field {key} must be a boolean")))
}

/// Decodes the quadrature kernel; pre-kernel snapshots lack the field
/// and resume on the walk path they were recorded with.
fn dec_kernel(value: &Value) -> Result<Kernel, CoreError> {
    match value.get("eval_kernel") {
        None => Ok(Kernel::Walk),
        Some(v) => v
            .as_str()
            .ok_or_else(|| corrupt("field eval_kernel must be a string".to_string()))?
            .parse::<Kernel>()
            .map_err(corrupt),
    }
}

pub(crate) fn dec_str(value: &Value, key: &str) -> Result<String, CoreError> {
    Ok(get(value, key)?
        .as_str()
        .ok_or_else(|| corrupt(format!("field {key} must be a string")))?
        .to_string())
}

fn dec_opt_u64(value: &Value, key: &str) -> Result<Option<u64>, CoreError> {
    match get(value, key)? {
        Value::Null => Ok(None),
        v => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| corrupt(format!("field {key} must be null or an unsigned integer"))),
    }
}

fn dec_opt_f64(value: &Value, key: &str) -> Result<Option<f64>, CoreError> {
    match get(value, key)? {
        Value::Null => Ok(None),
        v => v
            .as_f64()
            .filter(|x| x.is_finite())
            .map(Some)
            .ok_or_else(|| corrupt(format!("field {key} must be null or a finite number"))),
    }
}

// ---- CMA config -------------------------------------------------------

fn encode_cma(cma: &CmaConfig) -> Result<Value, CoreError> {
    Ok(obj([
        ("comm_radius", num("cma comm_radius", cma.comm_radius)?),
        (
            "sensing_radius",
            num("cma sensing_radius", cma.sensing_radius)?,
        ),
        ("beta", num("cma beta", cma.beta)?),
        ("curvature_gain", num("curvature_gain", cma.curvature_gain)?),
        ("peak_gain", num("peak_gain", cma.peak_gain)?),
        (
            "curvature_scale",
            num("cma curvature_scale", cma.curvature_scale)?,
        ),
        (
            "weight_exponent",
            num("weight_exponent", cma.weight_exponent)?,
        ),
        ("weight_floor", num("weight_floor", cma.weight_floor)?),
        ("stop_threshold", num("stop_threshold", cma.stop_threshold)?),
    ]))
}

fn decode_cma(value: &Value) -> Result<CmaConfig, CoreError> {
    Ok(CmaConfig {
        comm_radius: dec_f64(value, "comm_radius")?,
        sensing_radius: dec_f64(value, "sensing_radius")?,
        beta: dec_f64(value, "beta")?,
        curvature_gain: dec_f64(value, "curvature_gain")?,
        peak_gain: dec_f64(value, "peak_gain")?,
        curvature_scale: dec_f64(value, "curvature_scale")?,
        weight_exponent: dec_f64(value, "weight_exponent")?,
        weight_floor: dec_f64(value, "weight_floor")?,
        stop_threshold: dec_f64(value, "stop_threshold")?,
    })
}

// ---- fault state ------------------------------------------------------

fn encode_fault(f: &FaultState) -> Result<Value, CoreError> {
    let plan = &f.plan;
    let kills = plan
        .kills
        .iter()
        .map(|&(slot, node)| Ok(Value::Array(vec![int(slot)?, int(node as u64)?])))
        .collect::<Result<Vec<Value>, CoreError>>()?;
    let culls = plan
        .culls
        .iter()
        .map(|&(slot, frac)| Ok(Value::Array(vec![int(slot)?, num("cull fraction", frac)?])))
        .collect::<Result<Vec<Value>, CoreError>>()?;
    let battery = match plan.battery {
        Some(b) => obj([
            ("capacity", num("battery capacity", b.capacity)?),
            ("idle_drain", num("battery idle_drain", b.idle_drain)?),
            ("move_drain", num("battery move_drain", b.move_drain)?),
        ]),
        None => Value::Null,
    };
    let recovery = match plan.recovery {
        RecoveryPolicy::Auto => "auto",
        RecoveryPolicy::On => "on",
        RecoveryPolicy::Off => "off",
    };
    let energy = f
        .energy
        .iter()
        .map(|&e| num("battery energy", e))
        .collect::<Result<Vec<Value>, CoreError>>()?;
    let stuck = f
        .stuck
        .iter()
        .map(|s| match s {
            Some((frozen_time, until)) => Ok(obj([
                ("frozen_time", num("stuck frozen_time", *frozen_time)?),
                ("until", int(*until)?),
            ])),
            None => Ok(Value::Null),
        })
        .collect::<Result<Vec<Value>, CoreError>>()?;
    let events = f
        .events
        .iter()
        .map(encode_event)
        .collect::<Result<Vec<Value>, CoreError>>()?;
    Ok(obj([
        (
            "plan",
            obj([
                // Full-width u64: JSON numbers are f64, so the seed
                // travels as a decimal string.
                ("seed", Value::String(plan.seed.to_string())),
                ("kills", Value::Array(kills)),
                ("culls", Value::Array(culls)),
                ("death_rate", num("death_rate", plan.death_rate)?),
                ("battery", battery),
                ("dropout_rate", num("dropout_rate", plan.dropout_rate)?),
                ("outlier_rate", num("outlier_rate", plan.outlier_rate)?),
                (
                    "outlier_magnitude",
                    num("outlier_magnitude", plan.outlier_magnitude)?,
                ),
                ("stuck_rate", num("stuck_rate", plan.stuck_rate)?),
                ("stuck_slots", int(plan.stuck_slots)?),
                ("link_loss", num("link_loss", plan.link_loss)?),
                ("link_retries", int(u64::from(plan.link_retries))?),
                ("recovery", Value::String(recovery.to_string())),
            ]),
        ),
        ("slot", int(f.slot)?),
        ("energy", Value::Array(energy)),
        ("stuck", Value::Array(stuck)),
        ("events", Value::Array(events)),
        (
            "partition_since",
            match f.partition_since {
                Some(s) => int(s)?,
                None => Value::Null,
            },
        ),
        ("deaths_total", int(f.deaths_total as u64)?),
        ("retried_total", int(f.retried_total as u64)?),
        ("dropped_total", int(f.dropped_total as u64)?),
    ]))
}

fn decode_fault(value: &Value) -> Result<FaultState, CoreError> {
    let p = get(value, "plan")?;
    let mut builder = FaultPlan::builder().seed(
        get(p, "seed")?
            .as_str()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| corrupt("plan seed must be a u64 string".to_string()))?,
    );
    for kill in get(p, "kills")?
        .as_array()
        .ok_or_else(|| corrupt("plan kills must be an array".to_string()))?
    {
        let pair = kill
            .as_array()
            .filter(|a| a.len() == 2)
            .ok_or_else(|| corrupt("plan kill must be [slot, node]".to_string()))?;
        let slot = pair[0]
            .as_u64()
            .ok_or_else(|| corrupt("kill slot must be an integer".to_string()))?;
        let node = pair[1]
            .as_u64()
            .ok_or_else(|| corrupt("kill node must be an integer".to_string()))?;
        builder = builder.kill(node as usize, slot);
    }
    for cull in get(p, "culls")?
        .as_array()
        .ok_or_else(|| corrupt("plan culls must be an array".to_string()))?
    {
        let pair = cull
            .as_array()
            .filter(|a| a.len() == 2)
            .ok_or_else(|| corrupt("plan cull must be [slot, fraction]".to_string()))?;
        let slot = pair[0]
            .as_u64()
            .ok_or_else(|| corrupt("cull slot must be an integer".to_string()))?;
        let frac = pair[1]
            .as_f64()
            .ok_or_else(|| corrupt("cull fraction must be a number".to_string()))?;
        builder = builder.cull(frac, slot);
    }
    builder = builder.death_rate(dec_f64(p, "death_rate")?);
    if let Some(b) = match get(p, "battery")? {
        Value::Null => None,
        b => Some(b),
    } {
        builder = builder.battery(
            dec_f64(b, "capacity")?,
            dec_f64(b, "idle_drain")?,
            dec_f64(b, "move_drain")?,
        );
    }
    builder = builder
        .sensor_dropout(dec_f64(p, "dropout_rate")?)
        .reading_outlier(
            dec_f64(p, "outlier_rate")?,
            dec_f64(p, "outlier_magnitude")?,
        )
        .stuck_at(dec_f64(p, "stuck_rate")?, dec_u64(p, "stuck_slots")?)
        .link_loss(dec_f64(p, "link_loss")?, dec_u64(p, "link_retries")? as u32)
        .recovery(match dec_str(p, "recovery")?.as_str() {
            "auto" => RecoveryPolicy::Auto,
            "on" => RecoveryPolicy::On,
            "off" => RecoveryPolicy::Off,
            other => return Err(corrupt(format!("unknown recovery policy {other:?}"))),
        });
    let plan = builder
        .build()
        .map_err(|e| corrupt(format!("plan fails validation: {e}")))?;
    let energy = get(value, "energy")?
        .as_array()
        .ok_or_else(|| corrupt("fault energy must be an array".to_string()))?
        .iter()
        .map(|e| {
            e.as_f64()
                .filter(|x| x.is_finite())
                .ok_or_else(|| corrupt("energy entries must be finite numbers".to_string()))
        })
        .collect::<Result<Vec<f64>, CoreError>>()?;
    let stuck = get(value, "stuck")?
        .as_array()
        .ok_or_else(|| corrupt("fault stuck must be an array".to_string()))?
        .iter()
        .map(|s| match s {
            Value::Null => Ok(None),
            s => Ok(Some((dec_f64(s, "frozen_time")?, dec_u64(s, "until")?))),
        })
        .collect::<Result<Vec<Option<(f64, u64)>>, CoreError>>()?;
    let events = decode_events(get(value, "events")?)?;
    Ok(FaultState {
        plan,
        slot: dec_u64(value, "slot")?,
        energy,
        stuck,
        events,
        partition_since: dec_opt_u64(value, "partition_since")?,
        deaths_total: dec_u64(value, "deaths_total")? as usize,
        retried_total: dec_u64(value, "retried_total")? as usize,
        dropped_total: dec_u64(value, "dropped_total")? as usize,
    })
}

// ---- fault events -----------------------------------------------------

fn encode_event(event: &FaultEvent) -> Result<Value, CoreError> {
    match *event {
        FaultEvent::Death {
            slot,
            time,
            node,
            cause,
        } => Ok(obj([
            ("kind", Value::String("death".to_string())),
            ("slot", int(slot)?),
            ("time", num("event time", time)?),
            ("node", int(node as u64)?),
            (
                "cause",
                Value::String(
                    match cause {
                        DeathCause::Scheduled => "scheduled",
                        DeathCause::Battery => "battery",
                        DeathCause::Random => "random",
                    }
                    .to_string(),
                ),
            ),
        ])),
        FaultEvent::Partition {
            slot,
            time,
            components,
            critical,
        } => Ok(obj([
            ("kind", Value::String("partition".to_string())),
            ("slot", int(slot)?),
            ("time", num("event time", time)?),
            ("components", int(components as u64)?),
            ("critical", int(critical as u64)?),
        ])),
        FaultEvent::Reconnected {
            slot,
            time,
            after_slots,
        } => Ok(obj([
            ("kind", Value::String("reconnected".to_string())),
            ("slot", int(slot)?),
            ("time", num("event time", time)?),
            ("after_slots", int(after_slots)?),
        ])),
    }
}

fn decode_events(value: &Value) -> Result<Vec<FaultEvent>, CoreError> {
    value
        .as_array()
        .ok_or_else(|| corrupt("events must be an array".to_string()))?
        .iter()
        .map(|e| {
            let slot = dec_u64(e, "slot")?;
            let time = dec_f64(e, "time")?;
            match dec_str(e, "kind")?.as_str() {
                "death" => Ok(FaultEvent::Death {
                    slot,
                    time,
                    node: dec_u64(e, "node")? as usize,
                    cause: match dec_str(e, "cause")?.as_str() {
                        "scheduled" => DeathCause::Scheduled,
                        "battery" => DeathCause::Battery,
                        "random" => DeathCause::Random,
                        other => return Err(corrupt(format!("unknown death cause {other:?}"))),
                    },
                }),
                "partition" => Ok(FaultEvent::Partition {
                    slot,
                    time,
                    components: dec_u64(e, "components")? as usize,
                    critical: dec_u64(e, "critical")? as usize,
                }),
                "reconnected" => Ok(FaultEvent::Reconnected {
                    slot,
                    time,
                    after_slots: dec_u64(e, "after_slots")?,
                }),
                other => Err(corrupt(format!("unknown event kind {other:?}"))),
            }
        })
        .collect()
}

// ---- timeline ---------------------------------------------------------

fn encode_timeline(t: &TimelineState) -> Result<Value, CoreError> {
    let samples = t
        .samples
        .iter()
        .map(|&(time, e)| {
            Ok(obj([
                ("time", num("sample time", time)?),
                ("delta", num("sample delta", e.delta)?),
                ("rms", num("sample rms", e.rms)?),
                ("connected", Value::Bool(e.connected)),
                ("node_count", int(e.node_count as u64)?),
            ]))
        })
        .collect::<Result<Vec<Value>, CoreError>>()?;
    let events = t
        .events
        .iter()
        .map(encode_event)
        .collect::<Result<Vec<Value>, CoreError>>()?;
    Ok(obj([
        ("samples", Value::Array(samples)),
        ("events", Value::Array(events)),
        ("events_synced", int(t.events_synced as u64)?),
    ]))
}

fn decode_timeline(value: &Value) -> Result<TimelineState, CoreError> {
    let samples = get(value, "samples")?
        .as_array()
        .ok_or_else(|| corrupt("timeline samples must be an array".to_string()))?
        .iter()
        .map(|s| {
            Ok((
                dec_f64(s, "time")?,
                DeploymentEvaluation {
                    delta: dec_f64(s, "delta")?,
                    rms: dec_f64(s, "rms")?,
                    connected: dec_bool(s, "connected")?,
                    node_count: dec_u64(s, "node_count")? as usize,
                },
            ))
        })
        .collect::<Result<Vec<(f64, DeploymentEvaluation)>, CoreError>>()?;
    Ok(TimelineState {
        samples,
        events: decode_events(get(value, "events")?)?,
        events_synced: dec_u64(value, "events_synced")? as usize,
    })
}

// ---- survivability ----------------------------------------------------

fn encode_survivability(s: &SurvivabilityState) -> Result<Value, CoreError> {
    let degradation = s
        .degradation
        .iter()
        .map(|&(dead, delta)| {
            Ok(Value::Array(vec![
                num("degradation fraction", dead)?,
                num("degradation delta", delta)?,
            ]))
        })
        .collect::<Result<Vec<Value>, CoreError>>()?;
    let reconnect_times = s
        .reconnect_times
        .iter()
        .map(|&t| num("reconnect time", t))
        .collect::<Result<Vec<Value>, CoreError>>()?;
    let critical = s
        .critical_nodes
        .iter()
        .map(|&n| int(n as u64))
        .collect::<Result<Vec<Value>, CoreError>>()?;
    Ok(obj([
        ("initial_nodes", int(s.initial_nodes as u64)?),
        ("last_alive", int(s.last_alive as u64)?),
        (
            "baseline_delta",
            match s.baseline_delta {
                Some(d) => num("baseline_delta", d)?,
                None => Value::Null,
            },
        ),
        (
            "final_delta",
            match s.final_delta {
                Some(d) => num("final_delta", d)?,
                None => Value::Null,
            },
        ),
        ("degradation", Value::Array(degradation)),
        ("partitions", int(s.partitions as u64)?),
        ("reconnects", int(s.reconnects as u64)?),
        ("reconnect_times", Value::Array(reconnect_times)),
        (
            "partition_open_since",
            match s.partition_open_since {
                Some(t) => num("partition_open_since", t)?,
                None => Value::Null,
            },
        ),
        ("messages", int(s.messages as u64)?),
        ("retried", int(s.retried as u64)?),
        ("dropped", int(s.dropped as u64)?),
        ("critical_nodes", Value::Array(critical)),
    ]))
}

fn decode_survivability(value: &Value) -> Result<SurvivabilityState, CoreError> {
    let degradation = get(value, "degradation")?
        .as_array()
        .ok_or_else(|| corrupt("degradation must be an array".to_string()))?
        .iter()
        .map(|pair| {
            let pair = pair
                .as_array()
                .filter(|a| a.len() == 2)
                .ok_or_else(|| corrupt("degradation entries must be [dead, delta]".to_string()))?;
            let dead = pair[0]
                .as_f64()
                .ok_or_else(|| corrupt("degradation fraction must be a number".to_string()))?;
            let delta = pair[1]
                .as_f64()
                .ok_or_else(|| corrupt("degradation delta must be a number".to_string()))?;
            Ok((dead, delta))
        })
        .collect::<Result<Vec<(f64, f64)>, CoreError>>()?;
    let reconnect_times = get(value, "reconnect_times")?
        .as_array()
        .ok_or_else(|| corrupt("reconnect_times must be an array".to_string()))?
        .iter()
        .map(|t| {
            t.as_f64()
                .ok_or_else(|| corrupt("reconnect times must be numbers".to_string()))
        })
        .collect::<Result<Vec<f64>, CoreError>>()?;
    let critical_nodes = get(value, "critical_nodes")?
        .as_array()
        .ok_or_else(|| corrupt("critical_nodes must be an array".to_string()))?
        .iter()
        .map(|n| {
            n.as_u64()
                .map(|n| n as usize)
                .ok_or_else(|| corrupt("critical nodes must be integers".to_string()))
        })
        .collect::<Result<Vec<usize>, CoreError>>()?;
    Ok(SurvivabilityState {
        initial_nodes: dec_u64(value, "initial_nodes")? as usize,
        last_alive: dec_u64(value, "last_alive")? as usize,
        baseline_delta: dec_opt_f64(value, "baseline_delta")?,
        final_delta: dec_opt_f64(value, "final_delta")?,
        degradation,
        partitions: dec_u64(value, "partitions")? as usize,
        reconnects: dec_u64(value, "reconnects")? as usize,
        reconnect_times,
        partition_open_since: dec_opt_f64(value, "partition_open_since")?,
        messages: dec_u64(value, "messages")? as usize,
        retried: dec_u64(value, "retried")? as usize,
        dropped: dec_u64(value, "dropped")? as usize,
        critical_nodes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> SimSnapshot {
        let plan = FaultPlan::builder()
            .seed(u64::MAX - 12345) // beyond 2^53: must survive the trip
            .kill(3, 7)
            .cull(0.25, 11)
            .death_rate(0.01)
            .battery(120.0, 0.5, 2.0)
            .sensor_dropout(0.02)
            .reading_outlier(0.03, 40.0)
            .stuck_at(0.04, 6)
            .link_loss(0.2, 3)
            .recovery(RecoveryPolicy::On)
            .build()
            .unwrap();
        SimSnapshot {
            label: "test,seed=9".to_string(),
            slot: 17,
            time: 617.0,
            time_step: 1.0,
            sense_spacing: 1.0,
            comm_radius: 10.0,
            sensing_radius: 5.0,
            max_speed: 1.0,
            beta: 2.0,
            cma: CmaConfig::default(),
            region: Rect::new(Point2::new(20.0, 20.0), Point2::new(120.0, 120.0)).unwrap(),
            curvature_scale: 0.012_345_678_901_234_5,
            eval_cached: true,
            eval_kernel: Kernel::Raster,
            pipeline: crate::stage::STANDARD_STAGES
                .iter()
                .map(|s| s.to_string())
                .collect(),
            nodes: vec![
                MobileNode {
                    id: 0,
                    position: Point2::new(33.333_333_333_333_336, 77.1),
                    curvature: -4.2e-3,
                    traveled: 12.75,
                    alive: true,
                },
                MobileNode {
                    id: 1,
                    position: Point2::new(50.0, 50.0),
                    curvature: 0.1,
                    traveled: 3.5,
                    alive: false,
                },
            ],
            fault: Some(FaultState {
                plan,
                slot: 17,
                energy: vec![85.25, 0.0],
                stuck: vec![None, Some((610.0, 19))],
                events: vec![
                    FaultEvent::Death {
                        slot: 5,
                        time: 605.0,
                        node: 1,
                        cause: DeathCause::Battery,
                    },
                    FaultEvent::Partition {
                        slot: 6,
                        time: 606.0,
                        components: 2,
                        critical: 3,
                    },
                    FaultEvent::Reconnected {
                        slot: 9,
                        time: 609.0,
                        after_slots: 3,
                    },
                ],
                partition_since: Some(14),
                deaths_total: 1,
                retried_total: 22,
                dropped_total: 4,
            }),
            timeline: Some(TimelineState {
                samples: vec![(
                    600.0,
                    DeploymentEvaluation {
                        delta: 123.456_789_012_345_67,
                        rms: 1.5,
                        connected: true,
                        node_count: 2,
                    },
                )],
                events: vec![FaultEvent::Death {
                    slot: 5,
                    time: 605.0,
                    node: 1,
                    cause: DeathCause::Battery,
                }],
                events_synced: 1,
            }),
            survivability: Some(SurvivabilityState {
                initial_nodes: 2,
                last_alive: 1,
                baseline_delta: Some(123.456_789_012_345_67),
                final_delta: Some(150.0),
                degradation: vec![(0.0, 123.456_789_012_345_67), (0.5, 150.0)],
                partitions: 1,
                reconnects: 1,
                reconnect_times: vec![3.0],
                partition_open_since: Some(614.0),
                messages: 420,
                retried: 22,
                dropped: 4,
                critical_nodes: vec![0],
            }),
        }
    }

    #[test]
    fn byte_round_trip_is_exact() {
        let snap = sample_snapshot();
        let bytes = snap.to_bytes().unwrap();
        let back = SimSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(snap, back);
        // Float bits, not just PartialEq.
        assert_eq!(
            snap.curvature_scale.to_bits(),
            back.curvature_scale.to_bits()
        );
        assert_eq!(
            snap.nodes[0].position.x.to_bits(),
            back.nodes[0].position.x.to_bits()
        );
        // The full-width seed survived the string detour.
        assert_eq!(back.fault.as_ref().unwrap().plan.seed(), u64::MAX - 12345);
    }

    #[test]
    fn minimal_snapshot_round_trips() {
        let mut snap = sample_snapshot();
        snap.fault = None;
        snap.timeline = None;
        snap.survivability = None;
        let back = SimSnapshot::from_bytes(&snap.to_bytes().unwrap()).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn pre_kernel_snapshots_decode_to_the_walk_path() {
        // Snapshots written before the quadrature kernel existed carry
        // no eval_kernel field; they must resume on the walk arithmetic
        // they were recorded with, not the new raster default.
        let snap = sample_snapshot();
        let payload = serde_json::to_string(&snap.encode().unwrap()).unwrap();
        assert!(payload.contains("eval_kernel"));
        let stripped = payload.replace("\"eval_kernel\":\"raster\",", "");
        assert_ne!(payload, stripped);
        let value: Value = serde_json::from_str(&stripped).unwrap();
        let back = SimSnapshot::decode(&value).unwrap();
        assert_eq!(back.eval_kernel, Kernel::Walk);

        // An unrecognized kernel name is corruption, not a default.
        let garbled = payload.replace("\"eval_kernel\":\"raster\"", "\"eval_kernel\":\"simpson\"");
        let value: Value = serde_json::from_str(&garbled).unwrap();
        assert!(matches!(
            SimSnapshot::decode(&value),
            Err(CoreError::SnapshotCorrupt { .. })
        ));
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let snap = sample_snapshot();
        let bytes = snap.to_bytes().unwrap();
        // Flip one byte at a time across the whole file (header and
        // payload); every mutation must fail verification — never parse
        // into a silently different state.
        for i in 0..bytes.len() {
            let mut evil = bytes.clone();
            evil[i] ^= 0x20; // case/segment flip keeps most bytes printable
            match SimSnapshot::from_bytes(&evil) {
                Err(_) => {}
                Ok(parsed) => panic!(
                    "flipping byte {i} ({:?}) parsed successfully: {parsed:?}",
                    bytes[i] as char
                ),
            }
        }
    }

    #[test]
    fn truncated_and_empty_files_are_corrupt() {
        let snap = sample_snapshot();
        let bytes = snap.to_bytes().unwrap();
        assert!(matches!(
            SimSnapshot::from_bytes(&[]),
            Err(CoreError::SnapshotCorrupt { .. })
        ));
        for cut in [1, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                SimSnapshot::from_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }

    #[test]
    fn version_mismatch_is_typed() {
        let snap = sample_snapshot();
        let bytes = snap.to_bytes().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let bumped = text.replacen("CPSSNAP 1 ", "CPSSNAP 2 ", 1);
        assert!(matches!(
            SimSnapshot::from_bytes(bumped.as_bytes()),
            Err(CoreError::SnapshotVersion {
                found: 2,
                supported: SNAPSHOT_VERSION
            })
        ));
    }

    #[test]
    fn non_finite_state_is_rejected_at_encode_time() {
        let mut snap = sample_snapshot();
        snap.curvature_scale = f64::NAN;
        assert!(matches!(
            snap.to_bytes(),
            Err(CoreError::SnapshotCorrupt { .. })
        ));
    }

    #[test]
    fn checkpoint_dir_retention_and_fallback() {
        let dir = std::env::temp_dir().join(format!(
            "cps_ckpt_test_{}_{}",
            std::process::id(),
            "retention"
        ));
        let _ = fs::remove_dir_all(&dir);
        let store = CheckpointDir::new(&dir).keep(2);
        let mut snap = sample_snapshot();
        for slot in [10u64, 20, 30] {
            snap.slot = slot;
            store.store(&snap).unwrap();
        }
        let kept = store.snapshots().unwrap();
        assert_eq!(kept.len(), 2, "retention must prune to 2");
        assert!(kept[0].to_string_lossy().contains("snap-000000000020"));

        // Corrupt the newest: fallback must pick slot 20.
        let newest = kept.last().unwrap().clone();
        let mut bytes = fs::read(&newest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&newest, &bytes).unwrap();
        let (recovered, path) = store.latest_valid().unwrap().expect("older snapshot valid");
        assert_eq!(recovered.slot, 20);
        assert!(path.to_string_lossy().contains("snap-000000000020"));

        // Truncate that one to zero bytes too: nothing valid remains.
        fs::write(&path, b"").unwrap();
        assert!(store.latest_valid().unwrap().is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_directory_is_empty_not_fatal() {
        let store = CheckpointDir::new("/nonexistent/cps/ckpt/dir");
        assert!(store.snapshots().unwrap().is_empty());
        assert!(store.latest_valid().unwrap().is_none());
    }

    #[test]
    fn policy_triggers() {
        let off = CheckpointPolicy::disabled();
        assert!(!off.is_enabled());
        assert!(!off.due(10, 3));
        let every = CheckpointPolicy::every(5);
        assert!(every.is_enabled());
        assert!(every.due(5, 0) && every.due(10, 0));
        assert!(!every.due(7, 0) && !every.due(0, 0));
        let eventful = CheckpointPolicy::every(0).on_fault_event(true);
        assert!(eventful.is_enabled());
        assert!(eventful.due(3, 1));
        assert!(!eventful.due(3, 0));
        let both = CheckpointPolicy::every(4).on_fault_event(true);
        assert!(both.due(4, 0) && both.due(3, 2));
        assert!(!both.due(3, 0));
    }

    #[test]
    fn fnv_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
