//! Deterministic multi-scenario batch sweeps over the persistent pool.
//!
//! The paper's entire evaluation is a parameter sweep — δ and
//! connectivity versus node count `k`, radii, faults, and time
//! (Figs. 8–13) — and this module is the batch engine that runs such
//! studies in one process: a [`SweepSpec`] names the axes (seeds × `k`
//! × `Rc` × fault specs), [`SweepSpec::jobs`] expands the cartesian
//! grid into a **fixed-order** job list, and [`run_sweep`] executes the
//! jobs concurrently on the `cps-pool` persistent workers.
//!
//! # Determinism
//!
//! Results are bit-identical regardless of worker count and job
//! completion order, by the same discipline the rest of the workspace
//! uses:
//!
//! * every job runs its simulation with [`Parallelism::serial`]
//!   internally — the outer jobs own the pool workers, so the inner
//!   `map_rows` calls stay off the shared queue (a job blocked in
//!   `run_with` while occupying every worker would deadlock the batch;
//!   serial inner evaluation also composes with the adaptive serial
//!   cutoff, which would pick the serial path for these small grids
//!   anyway). Simulation results are bit-identical at any thread
//!   count, so this costs nothing but wall-clock shape;
//! * completed jobs land in a slot vector keyed by job index, and the
//!   per-cell aggregates (mean/stddev/min/max) fold those slots in
//!   index order — never in completion order;
//! * [`SweepResults::to_json`] emits keys through `BTreeMap`-backed
//!   objects and floats through shortest-representation formatting, so
//!   equal results serialize to equal bytes.
//!
//! # Resume
//!
//! A [`SweepManifest`] — versioned, checksummed, written through the
//! same atomic temp-file+fsync+rename path as the checkpoint subsystem
//! — records each completed job's digest and outcome after every job.
//! An interrupted sweep restarted with the same spec replays the
//! recorded outcomes instead of recomputing them (counted as
//! `sweep_resumed`; executed jobs count as `sweep_jobs` and are timed
//! under the `sweep_job` phase), and finishes with aggregate JSON
//! byte-identical to an uninterrupted run.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use cps_core::{CoreError, CpsConfig, EvalOptions, Kernel};
use cps_field::{Parallelism, TimeVaryingField};
use cps_geometry::{GridSpec, Point2, Rect};
use serde_json::Value;

use crate::checkpoint::{
    atomic_write, corrupt, dec_bool, dec_f64, dec_str, dec_u64, fnv1a64, get, int, num, obj,
    snapshot_io,
};
use crate::fault::FaultPlan;
use crate::{scenario, CmaBuilder, DeltaTimeline, FaultEvent, RunRecorder, SimConfig};

/// Newest sweep-manifest format version this build reads and writes.
pub const SWEEP_MANIFEST_VERSION: u32 = 1;

/// Magic token opening every sweep manifest file.
const SWEEP_MAGIC: &str = "CPSSWEEP";

// ---- spec ---------------------------------------------------------------

/// The cartesian grid a sweep covers, plus the per-job scenario knobs.
///
/// Jobs expand in fixed order — `k` (outer) × `comm_radius` × `faults`
/// × `seeds` (inner) — so a `(k, Rc, fault)` cell's jobs are the
/// consecutive run over its seeds, and job index `i` means the same
/// scenario in every process that loads the same spec.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Region of interest (default: the paper's 100×100 m window at
    /// (20,20)–(120,120)).
    pub region: Rect,
    /// Field/replication seeds — the axis aggregated over per cell.
    pub seeds: Vec<u64>,
    /// Node-count axis.
    pub k: Vec<usize>,
    /// Communication-radius axis (`Rs` stays at the paper default).
    pub comm_radius: Vec<f64>,
    /// Fault-spec axis, in [`FaultPlan::parse`] syntax (`""` = none).
    pub faults: Vec<String>,
    /// Slots to simulate per job.
    pub minutes: u64,
    /// δ sampling stride in slots (the final slot is always sampled).
    pub sample_every: u64,
    /// Evaluation grid resolution (cells per side).
    pub resolution: usize,
    /// Start-lattice spacing as a fraction of `Rc` (the canonical
    /// mobile scenarios use 0.93 so every lattice edge starts slack).
    pub spacing_factor: f64,
    /// Whether δ evaluation uses the incremental tile cache.
    pub cached: bool,
    /// Which δ quadrature kernel to run.
    pub kernel: Kernel,
    /// Simulation clock at deployment (minutes).
    pub start_time: f64,
}

impl Default for SweepSpec {
    fn default() -> Self {
        SweepSpec {
            region: Rect::new(Point2::new(20.0, 20.0), Point2::new(120.0, 120.0))
                .expect("static region"),
            seeds: vec![1],
            k: vec![16],
            comm_radius: vec![10.0],
            faults: vec![String::new()],
            minutes: 10,
            sample_every: 5,
            resolution: 61,
            spacing_factor: 0.93,
            cached: false,
            kernel: Kernel::Raster,
            start_time: 600.0,
        }
    }
}

impl SweepSpec {
    /// A spec with the paper defaults and single-point axes.
    pub fn new() -> Self {
        SweepSpec::default()
    }

    /// Checks the axes and scenario knobs.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] naming the first offending
    /// field.
    pub fn validate(&self) -> Result<(), CoreError> {
        fn bad(name: &'static str, requirement: &'static str) -> CoreError {
            CoreError::InvalidParameter { name, requirement }
        }
        if self.seeds.is_empty() {
            return Err(bad("seeds", "at least one seed is required"));
        }
        if self.k.is_empty() || self.k.contains(&0) {
            return Err(bad("k", "at least one node count, all positive"));
        }
        if self.comm_radius.is_empty()
            || self
                .comm_radius
                .iter()
                .any(|r| !(r.is_finite() && *r > 0.0))
        {
            return Err(bad(
                "comm_radius",
                "at least one radius, all positive and finite",
            ));
        }
        if self.faults.is_empty() {
            return Err(bad("faults", "at least one fault spec (\"\" = none)"));
        }
        if self.minutes == 0 {
            return Err(bad("minutes", "must simulate at least one slot"));
        }
        if self.sample_every == 0 {
            return Err(bad("sample_every", "sampling stride must be positive"));
        }
        if self.resolution < 2 {
            return Err(bad(
                "resolution",
                "evaluation grid needs at least 2 cells per side",
            ));
        }
        if !self.spacing_factor.is_finite() || self.spacing_factor <= 0.0 {
            return Err(bad("spacing_factor", "must be positive and finite"));
        }
        if !self.start_time.is_finite() {
            return Err(bad("start_time", "must be finite"));
        }
        Ok(())
    }

    /// Expands the cartesian grid into the fixed-order job list: `k`
    /// (outer) × `comm_radius` × `faults` × `seeds` (inner).
    pub fn jobs(&self) -> Vec<SweepJob> {
        let mut out = Vec::with_capacity(
            self.k.len() * self.comm_radius.len() * self.faults.len() * self.seeds.len(),
        );
        for &k in &self.k {
            for &rc in &self.comm_radius {
                for fault in &self.faults {
                    for &seed in &self.seeds {
                        out.push(SweepJob {
                            index: out.len() as u64,
                            seed,
                            k,
                            comm_radius: rc,
                            fault_spec: fault.clone(),
                        });
                    }
                }
            }
        }
        out
    }

    /// FNV-1a digest of the canonical spec encoding; manifests record
    /// it so a resume against a different spec is rejected instead of
    /// mixing incompatible outcomes.
    ///
    /// # Errors
    ///
    /// [`CoreError::SnapshotCorrupt`] when a knob holds a non-finite
    /// float (the spec cannot be canonically encoded).
    pub fn digest(&self) -> Result<u64, CoreError> {
        let payload = self.to_json()?;
        Ok(fnv1a64(payload.as_bytes()))
    }

    /// Serializes to the canonical JSON text.
    ///
    /// # Errors
    ///
    /// [`CoreError::SnapshotCorrupt`] when a knob holds a non-finite
    /// float.
    pub fn to_json(&self) -> Result<String, CoreError> {
        serde_json::to_string(&self.encode()?).map_err(|e| corrupt(e.to_string()))
    }

    /// Parses a spec from JSON text; absent fields keep their
    /// [`Default`] values, so a minimal spec can name only the axes it
    /// sweeps.
    ///
    /// # Errors
    ///
    /// [`CoreError::SnapshotCorrupt`] on malformed JSON or fields of
    /// the wrong shape; [`CoreError::InvalidParameter`] when the parsed
    /// spec fails [`SweepSpec::validate`].
    pub fn from_json(text: &str) -> Result<Self, CoreError> {
        let value: Value =
            serde_json::from_str(text).map_err(|e| corrupt(format!("spec is not JSON: {e}")))?;
        let spec = Self::decode(&value)?;
        spec.validate()?;
        Ok(spec)
    }

    fn encode(&self) -> Result<Value, CoreError> {
        let seeds = self
            .seeds
            .iter()
            .map(|&s| encode_u64_wide(s))
            .collect::<Result<Vec<Value>, CoreError>>()?;
        let k = self
            .k
            .iter()
            .map(|&k| int(k as u64))
            .collect::<Result<Vec<Value>, CoreError>>()?;
        let comm_radius = self
            .comm_radius
            .iter()
            .map(|&r| num("comm_radius", r))
            .collect::<Result<Vec<Value>, CoreError>>()?;
        let faults = self
            .faults
            .iter()
            .map(|f| Value::String(f.clone()))
            .collect::<Vec<Value>>();
        Ok(obj([
            (
                "region",
                obj([
                    ("min_x", num("region min_x", self.region.min().x)?),
                    ("min_y", num("region min_y", self.region.min().y)?),
                    ("max_x", num("region max_x", self.region.max().x)?),
                    ("max_y", num("region max_y", self.region.max().y)?),
                ]),
            ),
            ("seeds", Value::Array(seeds)),
            ("k", Value::Array(k)),
            ("comm_radius", Value::Array(comm_radius)),
            ("faults", Value::Array(faults)),
            ("minutes", int(self.minutes)?),
            ("sample_every", int(self.sample_every)?),
            ("resolution", int(self.resolution as u64)?),
            (
                "spacing_factor",
                num("spacing_factor", self.spacing_factor)?,
            ),
            ("cached", Value::Bool(self.cached)),
            ("kernel", Value::String(self.kernel.as_str().to_string())),
            ("start_time", num("start_time", self.start_time)?),
        ]))
    }

    fn decode(value: &Value) -> Result<Self, CoreError> {
        let mut spec = SweepSpec::default();
        if let Some(r) = value.get("region") {
            spec.region = Rect::new(
                Point2::new(dec_f64(r, "min_x")?, dec_f64(r, "min_y")?),
                Point2::new(dec_f64(r, "max_x")?, dec_f64(r, "max_y")?),
            )
            .map_err(|e| corrupt(format!("region: {e}")))?;
        }
        if let Some(seeds) = value.get("seeds") {
            spec.seeds = seeds
                .as_array()
                .ok_or_else(|| corrupt("seeds must be an array".to_string()))?
                .iter()
                .map(decode_u64_wide)
                .collect::<Result<Vec<u64>, CoreError>>()?;
        }
        if let Some(k) = value.get("k") {
            spec.k = k
                .as_array()
                .ok_or_else(|| corrupt("k must be an array".to_string()))?
                .iter()
                .map(|v| {
                    v.as_u64()
                        .map(|k| k as usize)
                        .ok_or_else(|| corrupt("k entries must be unsigned integers".to_string()))
                })
                .collect::<Result<Vec<usize>, CoreError>>()?;
        }
        if let Some(rc) = value.get("comm_radius") {
            spec.comm_radius = rc
                .as_array()
                .ok_or_else(|| corrupt("comm_radius must be an array".to_string()))?
                .iter()
                .map(|v| {
                    v.as_f64()
                        .filter(|x| x.is_finite())
                        .ok_or_else(|| corrupt("comm_radius entries must be finite".to_string()))
                })
                .collect::<Result<Vec<f64>, CoreError>>()?;
        }
        if let Some(faults) = value.get("faults") {
            spec.faults = faults
                .as_array()
                .ok_or_else(|| corrupt("faults must be an array".to_string()))?
                .iter()
                .map(|v| {
                    v.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| corrupt("fault entries must be strings".to_string()))
                })
                .collect::<Result<Vec<String>, CoreError>>()?;
        }
        if value.get("minutes").is_some() {
            spec.minutes = dec_u64(value, "minutes")?;
        }
        if value.get("sample_every").is_some() {
            spec.sample_every = dec_u64(value, "sample_every")?;
        }
        if value.get("resolution").is_some() {
            spec.resolution = dec_u64(value, "resolution")? as usize;
        }
        if value.get("spacing_factor").is_some() {
            spec.spacing_factor = dec_f64(value, "spacing_factor")?;
        }
        if value.get("cached").is_some() {
            spec.cached = dec_bool(value, "cached")?;
        }
        if value.get("kernel").is_some() {
            spec.kernel = dec_str(value, "kernel")?
                .parse::<Kernel>()
                .map_err(corrupt)?;
        }
        if value.get("start_time").is_some() {
            spec.start_time = dec_f64(value, "start_time")?;
        }
        Ok(spec)
    }
}

/// One expanded grid point: the scenario a single simulation runs.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepJob {
    /// Position in the fixed expansion order (the determinism key).
    pub index: u64,
    /// Field/replication seed.
    pub seed: u64,
    /// Node count.
    pub k: usize,
    /// Communication radius `Rc`.
    pub comm_radius: f64,
    /// Fault spec in [`FaultPlan::parse`] syntax (`""` = none).
    pub fault_spec: String,
}

impl SweepJob {
    /// FNV-1a digest binding this job to its spec: the manifest stores
    /// it so a stale manifest (same path, different spec or expansion)
    /// cannot smuggle outcomes into the wrong scenario.
    pub fn digest(&self, spec_digest: u64) -> u64 {
        let key = format!(
            "{spec_digest:016x}|{}|{}|{}|{:016x}|{}",
            self.index,
            self.seed,
            self.k,
            self.comm_radius.to_bits(),
            self.fault_spec
        );
        fnv1a64(key.as_bytes())
    }
}

// ---- outcomes -----------------------------------------------------------

/// What one sweep job produced (per-process instrumentation like
/// `RunMetrics` is global and cannot be attributed per-job under
/// concurrency, so jobs extract their own numbers).
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// δ at the final slot.
    pub final_delta: f64,
    /// Smallest δ recorded on the timeline.
    pub best_delta: Option<f64>,
    /// Whether the network was connected at the final sample.
    pub final_connected: bool,
    /// Nodes alive at the end.
    pub alive: usize,
    /// Fault deaths over the run.
    pub deaths: usize,
    /// Messages exchanged over the run.
    pub messages: u64,
    /// The sampled δ(t) series.
    pub series: Vec<(f64, f64)>,
}

fn encode_outcome(o: &JobOutcome) -> Result<Value, CoreError> {
    let series = o
        .series
        .iter()
        .map(|&(t, d)| {
            Ok(Value::Array(vec![
                num("series time", t)?,
                num("series delta", d)?,
            ]))
        })
        .collect::<Result<Vec<Value>, CoreError>>()?;
    Ok(obj([
        ("final_delta", num("final_delta", o.final_delta)?),
        (
            "best_delta",
            match o.best_delta {
                Some(d) => num("best_delta", d)?,
                None => Value::Null,
            },
        ),
        ("final_connected", Value::Bool(o.final_connected)),
        ("alive", int(o.alive as u64)?),
        ("deaths", int(o.deaths as u64)?),
        ("messages", int(o.messages)?),
        ("series", Value::Array(series)),
    ]))
}

fn decode_outcome(value: &Value) -> Result<JobOutcome, CoreError> {
    let series = get(value, "series")?
        .as_array()
        .ok_or_else(|| corrupt("outcome series must be an array".to_string()))?
        .iter()
        .map(|pair| {
            let pair = pair
                .as_array()
                .filter(|a| a.len() == 2)
                .ok_or_else(|| corrupt("series entries must be [time, delta]".to_string()))?;
            let t = pair[0]
                .as_f64()
                .filter(|x| x.is_finite())
                .ok_or_else(|| corrupt("series time must be finite".to_string()))?;
            let d = pair[1]
                .as_f64()
                .filter(|x| x.is_finite())
                .ok_or_else(|| corrupt("series delta must be finite".to_string()))?;
            Ok((t, d))
        })
        .collect::<Result<Vec<(f64, f64)>, CoreError>>()?;
    let best_delta = match get(value, "best_delta")? {
        Value::Null => None,
        v => Some(
            v.as_f64()
                .filter(|x| x.is_finite())
                .ok_or_else(|| corrupt("best_delta must be null or finite".to_string()))?,
        ),
    };
    Ok(JobOutcome {
        final_delta: dec_f64(value, "final_delta")?,
        best_delta,
        final_connected: dec_bool(value, "final_connected")?,
        alive: dec_u64(value, "alive")? as usize,
        deaths: dec_u64(value, "deaths")? as usize,
        messages: dec_u64(value, "messages")?,
        series,
    })
}

// ---- aggregates ---------------------------------------------------------

/// Fixed-order summary statistics over one cell's per-seed values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aggregate {
    /// Arithmetic mean, folded in job-index order.
    pub mean: f64,
    /// Population standard deviation (two-pass, index order).
    pub stddev: f64,
    /// Smallest value.
    pub min: f64,
    /// Largest value.
    pub max: f64,
}

impl Aggregate {
    /// Folds `values` in the order given; `None` when empty. The fold
    /// order is the job expansion order, so the result is independent
    /// of completion order and worker count.
    pub fn from_values(values: &[f64]) -> Option<Aggregate> {
        if values.is_empty() {
            return None;
        }
        let n = values.len() as f64;
        let mean = values.iter().fold(0.0, |s, &v| s + v) / n;
        let var = values.iter().fold(0.0, |s, &v| s + (v - mean) * (v - mean)) / n;
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Some(Aggregate {
            mean,
            stddev: var.sqrt(),
            min,
            max,
        })
    }

    fn encode(&self, what: &str) -> Result<Value, CoreError> {
        Ok(obj([
            ("mean", num(what, self.mean)?),
            ("stddev", num(what, self.stddev)?),
            ("min", num(what, self.min)?),
            ("max", num(what, self.max)?),
        ]))
    }
}

/// Aggregates for one `(k, Rc, fault)` grid cell, over its seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct CellAggregate {
    /// Node count of the cell.
    pub k: usize,
    /// Communication radius of the cell.
    pub comm_radius: f64,
    /// Fault spec of the cell (`""` = none).
    pub fault_spec: String,
    /// Jobs (seeds) aggregated.
    pub jobs: usize,
    /// Final-δ statistics.
    pub final_delta: Aggregate,
    /// Best-δ statistics (over jobs that recorded any sample).
    pub best_delta: Option<Aggregate>,
    /// Fraction of jobs whose final sample was connected.
    pub connected_fraction: f64,
    /// Mean surviving-node count.
    pub mean_alive: f64,
    /// Mean fault deaths.
    pub mean_deaths: f64,
}

impl CellAggregate {
    fn encode(&self) -> Result<Value, CoreError> {
        Ok(obj([
            ("k", int(self.k as u64)?),
            ("comm_radius", num("cell comm_radius", self.comm_radius)?),
            ("faults", Value::String(self.fault_spec.clone())),
            ("jobs", int(self.jobs as u64)?),
            ("final_delta", self.final_delta.encode("cell final_delta")?),
            (
                "best_delta",
                match &self.best_delta {
                    Some(a) => a.encode("cell best_delta")?,
                    None => Value::Null,
                },
            ),
            (
                "connected_fraction",
                num("connected_fraction", self.connected_fraction)?,
            ),
            ("mean_alive", num("mean_alive", self.mean_alive)?),
            ("mean_deaths", num("mean_deaths", self.mean_deaths)?),
        ]))
    }
}

/// Everything a sweep produced: the spec digest, per-job outcomes in
/// expansion order, and per-cell aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResults {
    /// Digest of the spec that produced this (hex, 16 digits).
    pub spec_digest: String,
    /// The expanded jobs, in order.
    pub jobs: Vec<SweepJob>,
    /// One outcome per job, same order.
    pub outcomes: Vec<JobOutcome>,
    /// One aggregate per `(k, Rc, fault)` cell, in expansion order.
    pub cells: Vec<CellAggregate>,
}

impl SweepResults {
    fn build(
        spec: &SweepSpec,
        jobs: Vec<SweepJob>,
        outcomes: Vec<JobOutcome>,
    ) -> Result<Self, CoreError> {
        let per_cell = spec.seeds.len();
        let mut cells = Vec::new();
        // Cells iterate in the same nested order as the expansion, so
        // each cell's jobs are the consecutive slice over its seeds.
        let mut base = 0usize;
        for &k in &spec.k {
            for &rc in &spec.comm_radius {
                for fault in &spec.faults {
                    let cell = &outcomes[base..base + per_cell];
                    let finals: Vec<f64> = cell.iter().map(|o| o.final_delta).collect();
                    let bests: Vec<f64> = cell.iter().filter_map(|o| o.best_delta).collect();
                    let connected =
                        cell.iter().filter(|o| o.final_connected).count() as f64 / per_cell as f64;
                    let mean_alive =
                        cell.iter().fold(0.0, |s, o| s + o.alive as f64) / per_cell as f64;
                    let mean_deaths =
                        cell.iter().fold(0.0, |s, o| s + o.deaths as f64) / per_cell as f64;
                    cells.push(CellAggregate {
                        k,
                        comm_radius: rc,
                        fault_spec: fault.clone(),
                        jobs: per_cell,
                        final_delta: Aggregate::from_values(&finals).ok_or(
                            CoreError::InvalidParameter {
                                name: "sweep",
                                requirement: "each cell must cover at least one seed",
                            },
                        )?,
                        best_delta: Aggregate::from_values(&bests),
                        connected_fraction: connected,
                        mean_alive,
                        mean_deaths,
                    });
                    base += per_cell;
                }
            }
        }
        Ok(SweepResults {
            spec_digest: format!("{:016x}", spec.digest()?),
            jobs,
            outcomes,
            cells,
        })
    }

    /// Serializes to deterministic JSON: object keys are sorted
    /// (`BTreeMap`-backed), floats use shortest-representation
    /// formatting, and nothing process-dependent (timestamps, worker
    /// counts, completion order) is included — equal sweeps produce
    /// byte-equal output.
    ///
    /// # Errors
    ///
    /// [`CoreError::SnapshotCorrupt`] when an outcome holds a
    /// non-finite float.
    pub fn to_json(&self) -> Result<String, CoreError> {
        let jobs = self
            .jobs
            .iter()
            .zip(&self.outcomes)
            .map(|(job, outcome)| {
                Ok(obj([
                    ("index", int(job.index)?),
                    ("seed", encode_u64_wide(job.seed)?),
                    ("k", int(job.k as u64)?),
                    ("comm_radius", num("job comm_radius", job.comm_radius)?),
                    ("faults", Value::String(job.fault_spec.clone())),
                    ("outcome", encode_outcome(outcome)?),
                ]))
            })
            .collect::<Result<Vec<Value>, CoreError>>()?;
        let cells = self
            .cells
            .iter()
            .map(CellAggregate::encode)
            .collect::<Result<Vec<Value>, CoreError>>()?;
        let doc = obj([
            ("spec_digest", Value::String(self.spec_digest.clone())),
            ("jobs", Value::Array(jobs)),
            ("cells", Value::Array(cells)),
        ]);
        serde_json::to_string(&doc).map_err(|e| corrupt(e.to_string()))
    }
}

// ---- manifest -----------------------------------------------------------

/// Crash-safe record of a sweep's completed jobs.
///
/// Same on-disk discipline as the checkpoint subsystem: one header
/// line (`CPSSWEEP <version> <fnv1a64> <len>`), a JSON payload, and
/// atomic temp-file+fsync+rename persistence after every completed
/// job. A resume loads it, verifies the checksum, the spec digest, and
/// every per-job digest, and replays the recorded outcomes.
#[derive(Debug)]
pub struct SweepManifest {
    path: PathBuf,
    spec_digest: u64,
    /// `index -> (job digest, outcome)`.
    completed: BTreeMap<u64, (u64, JobOutcome)>,
}

impl SweepManifest {
    /// A fresh manifest for the spec with `spec_digest`, persisted
    /// (empty) immediately so an interrupt before the first completed
    /// job still leaves a resumable file.
    ///
    /// # Errors
    ///
    /// [`CoreError::SnapshotIo`] when the initial write fails.
    pub fn create(path: impl Into<PathBuf>, spec_digest: u64) -> Result<Self, CoreError> {
        let manifest = SweepManifest {
            path: path.into(),
            spec_digest,
            completed: BTreeMap::new(),
        };
        manifest.persist()?;
        Ok(manifest)
    }

    /// Loads and verifies a manifest, rejecting checksum failures,
    /// version drift, and a spec digest other than `spec_digest`.
    ///
    /// # Errors
    ///
    /// [`CoreError::SnapshotIo`] on read failures,
    /// [`CoreError::SnapshotCorrupt`] on any verification failure,
    /// [`CoreError::SnapshotVersion`] for unsupported versions.
    pub fn load(path: impl Into<PathBuf>, spec_digest: u64) -> Result<Self, CoreError> {
        let path = path.into();
        let bytes = fs::read(&path).map_err(|e| snapshot_io(&path, &e))?;
        let mut manifest = Self::from_bytes(&bytes).map_err(|e| match e {
            CoreError::SnapshotCorrupt { reason, .. } => CoreError::SnapshotCorrupt {
                path: path.display().to_string(),
                reason,
            },
            other => other,
        })?;
        if manifest.spec_digest != spec_digest {
            return Err(CoreError::SnapshotCorrupt {
                path: path.display().to_string(),
                reason: format!(
                    "manifest belongs to spec {:016x}, not {spec_digest:016x}",
                    manifest.spec_digest
                ),
            });
        }
        manifest.path = path;
        Ok(manifest)
    }

    /// The completed jobs: `index -> (job digest, outcome)`.
    pub fn completed(&self) -> &BTreeMap<u64, (u64, JobOutcome)> {
        &self.completed
    }

    /// Records a completed job and persists the manifest atomically.
    ///
    /// # Errors
    ///
    /// [`CoreError::SnapshotIo`] / [`CoreError::SnapshotCorrupt`] from
    /// the write path.
    pub fn record(
        &mut self,
        index: u64,
        digest: u64,
        outcome: JobOutcome,
    ) -> Result<(), CoreError> {
        self.completed.insert(index, (digest, outcome));
        self.persist()
    }

    fn persist(&self) -> Result<(), CoreError> {
        atomic_write(&self.path, &self.to_bytes()?)
    }

    fn to_bytes(&self) -> Result<Vec<u8>, CoreError> {
        let jobs = self
            .completed
            .iter()
            .map(|(&index, (digest, outcome))| {
                Ok(obj([
                    ("index", int(index)?),
                    ("digest", Value::String(format!("{digest:016x}"))),
                    ("outcome", encode_outcome(outcome)?),
                ]))
            })
            .collect::<Result<Vec<Value>, CoreError>>()?;
        let doc = obj([
            (
                "spec_digest",
                Value::String(format!("{:016x}", self.spec_digest)),
            ),
            ("jobs", Value::Array(jobs)),
        ]);
        let payload = serde_json::to_string(&doc).map_err(|e| corrupt(e.to_string()))?;
        let mut out = format!(
            "{SWEEP_MAGIC} {SWEEP_MANIFEST_VERSION} {:016x} {}\n",
            fnv1a64(payload.as_bytes()),
            payload.len()
        )
        .into_bytes();
        out.extend_from_slice(payload.as_bytes());
        Ok(out)
    }

    fn from_bytes(bytes: &[u8]) -> Result<Self, CoreError> {
        let newline = bytes
            .iter()
            .position(|&b| b == b'\n')
            .ok_or_else(|| corrupt("missing header line".to_string()))?;
        let header = std::str::from_utf8(&bytes[..newline])
            .map_err(|_| corrupt("header is not UTF-8".to_string()))?;
        let mut parts = header.split_ascii_whitespace();
        if parts.next() != Some(SWEEP_MAGIC) {
            return Err(corrupt(format!("bad magic (expected {SWEEP_MAGIC})")));
        }
        let version: u32 = parts
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| corrupt("unreadable version".to_string()))?;
        if version != SWEEP_MANIFEST_VERSION {
            return Err(CoreError::SnapshotVersion {
                found: version,
                supported: SWEEP_MANIFEST_VERSION,
            });
        }
        let checksum = parts
            .next()
            .filter(|v| {
                v.len() == 16
                    && v.bytes()
                        .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
            })
            .and_then(|v| u64::from_str_radix(v, 16).ok())
            .ok_or_else(|| corrupt("unreadable checksum".to_string()))?;
        let length: usize = parts
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| corrupt("unreadable payload length".to_string()))?;
        let payload = &bytes[newline + 1..];
        if payload.len() != length {
            return Err(corrupt(format!(
                "truncated payload ({} of {length} bytes)",
                payload.len()
            )));
        }
        let actual = fnv1a64(payload);
        if actual != checksum {
            return Err(corrupt(format!(
                "checksum mismatch (header {checksum:016x}, payload {actual:016x})"
            )));
        }
        let text = std::str::from_utf8(payload)
            .map_err(|_| corrupt("payload is not UTF-8".to_string()))?;
        let value: Value =
            serde_json::from_str(text).map_err(|e| corrupt(format!("payload is not JSON: {e}")))?;
        let spec_digest = dec_hex64(&value, "spec_digest")?;
        let mut completed = BTreeMap::new();
        for entry in get(&value, "jobs")?
            .as_array()
            .ok_or_else(|| corrupt("jobs must be an array".to_string()))?
        {
            let index = dec_u64(entry, "index")?;
            let digest = dec_hex64(entry, "digest")?;
            let outcome = decode_outcome(get(entry, "outcome")?)?;
            completed.insert(index, (digest, outcome));
        }
        Ok(SweepManifest {
            path: PathBuf::new(),
            spec_digest,
            completed,
        })
    }
}

fn dec_hex64(value: &Value, key: &str) -> Result<u64, CoreError> {
    get(value, key)?
        .as_str()
        .filter(|v| v.len() == 16)
        .and_then(|v| u64::from_str_radix(v, 16).ok())
        .ok_or_else(|| corrupt(format!("field {key} must be 16 hex digits")))
}

/// Encodes a possibly full-width `u64`: a plain JSON number while it
/// is exactly representable, a decimal string beyond 2^53 (the same
/// convention the checkpoint format uses for plan seeds).
fn encode_u64_wide(x: u64) -> Result<Value, CoreError> {
    if x <= (1 << 53) {
        int(x)
    } else {
        Ok(Value::String(x.to_string()))
    }
}

fn decode_u64_wide(value: &Value) -> Result<u64, CoreError> {
    if let Some(x) = value.as_u64() {
        return Ok(x);
    }
    value
        .as_str()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| corrupt("seeds must be unsigned integers or decimal strings".to_string()))
}

// ---- execution ----------------------------------------------------------

/// Runs one job's simulation start to finish (serial inner
/// parallelism; see the module docs) and extracts its outcome.
fn run_job<F: TimeVaryingField + Sync>(
    spec: &SweepSpec,
    job: &SweepJob,
    field: F,
) -> Result<JobOutcome, CoreError> {
    let _t = cps_obs::time(cps_obs::Phase::SweepJob, 1);
    let mut cps = CpsConfig::builder();
    cps.comm_radius(job.comm_radius);
    let config = SimConfig {
        cps: cps.build()?,
        ..SimConfig::default()
    };
    let start =
        scenario::grid_start_spaced(spec.region, job.k, spec.spacing_factor * job.comm_radius)?;
    let eval = EvalOptions::new()
        .parallelism(Parallelism::serial())
        .cached(spec.cached)
        .kernel(spec.kernel);
    // `.config` before `.evaluator`: the evaluator call also installs
    // its (serial) parallelism into the sim config.
    let mut builder = CmaBuilder::new(spec.region, start)
        .config(config)
        .evaluator(eval)
        .start_time(spec.start_time);
    if !job.fault_spec.is_empty() {
        builder = builder.faults(FaultPlan::parse(&job.fault_spec)?);
    }
    let mut sim = builder.run(field)?;
    let grid = GridSpec::new(spec.region, spec.resolution, spec.resolution)?;
    // The δ timeline rides the step-observer bus; the job loop only
    // steps the engine and folds the message count.
    let mut recorder = RunRecorder::new()
        .timeline(DeltaTimeline::for_simulation(&sim), grid)
        .sample_every(spec.sample_every)
        .final_slot(spec.minutes);
    let mut last = recorder.prime(&sim)?.ok_or(CoreError::InvalidParameter {
        name: "sweep",
        requirement: "job recorder must carry a delta timeline",
    })?;
    let mut messages = 0u64;
    for _ in 1..=spec.minutes {
        let report = sim.step_observed(&mut [&mut recorder])?;
        messages += report.messages as u64;
        if let Some(sample) = recorder.take_sample() {
            last = sample;
        }
    }
    let (timeline, _) = recorder.into_parts();
    let timeline = timeline.ok_or(CoreError::InvalidParameter {
        name: "sweep",
        requirement: "job recorder must return its delta timeline",
    })?;
    let deaths = sim
        .fault_events()
        .iter()
        .filter(|e| matches!(e, FaultEvent::Death { .. }))
        .count();
    Ok(JobOutcome {
        final_delta: last.delta,
        best_delta: timeline.best_delta(),
        final_connected: last.connected,
        alive: sim.alive_count(),
        deaths,
        messages,
        series: timeline.delta_series(),
    })
}

/// Executes every job of `spec` and folds the fixed-order aggregates.
///
/// `workers` is the total concurrency (0 = all cores): the calling
/// thread plus `workers − 1` persistent-pool workers all pull pending
/// job indices from a shared cursor. `manifest_path` enables the
/// crash-safe completion record; with `resume` set, a valid existing
/// manifest's outcomes are replayed instead of recomputed (`resume`
/// with no manifest file starts fresh). `make_field` builds each job's
/// field from its seed — it must be deterministic for resume
/// bit-identity to hold.
///
/// Locks `mutex`, recovering the data from a poisoned lock: a poisoned
/// sweep mutex means a worker panicked mid-job, and that job's empty
/// slot already surfaces as a typed error at fold time — compounding
/// the panic across the surviving workers would only mask it.
fn lock_or_recover<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The result is **bit-identical** for any `workers` value and any job
/// completion order, and across interrupt + resume.
///
/// # Errors
///
/// Spec validation errors up front; otherwise the error of the
/// lowest-indexed failing job, or manifest IO/verification errors.
pub fn run_sweep<F, M>(
    spec: &SweepSpec,
    workers: usize,
    manifest_path: Option<&Path>,
    resume: bool,
    make_field: M,
) -> Result<SweepResults, CoreError>
where
    F: TimeVaryingField + Sync,
    M: Fn(&SweepJob) -> F + Sync,
{
    spec.validate()?;
    let jobs = spec.jobs();
    let spec_digest = spec.digest()?;
    let n = jobs.len();
    let mut slots: Vec<Option<Result<JobOutcome, CoreError>>> = (0..n).map(|_| None).collect();

    let manifest = match manifest_path {
        Some(path) => {
            if resume && path.exists() {
                let manifest = SweepManifest::load(path, spec_digest)?;
                for (&index, (digest, outcome)) in manifest.completed() {
                    let job = jobs.get(index as usize).ok_or_else(|| {
                        corrupt(format!("manifest records job {index} beyond the sweep"))
                    })?;
                    if *digest != job.digest(spec_digest) {
                        return Err(corrupt(format!("manifest digest mismatch for job {index}")));
                    }
                    cps_obs::count(cps_obs::Counter::SweepResumed);
                    slots[index as usize] = Some(Ok(outcome.clone()));
                }
                Some(manifest)
            } else {
                Some(SweepManifest::create(path, spec_digest)?)
            }
        }
        None => None,
    };

    let workers = if workers == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        workers
    };
    let workers = workers.min(n.max(1));

    let slots = Mutex::new(slots);
    let manifest = Mutex::new(manifest);
    let next = AtomicUsize::new(0);
    // The chunk-counter pattern from cps-pool: every participant —
    // pool workers and the calling thread alike — pulls pending job
    // indices until the cursor runs dry. Completion order is free;
    // results are keyed by index.
    let work = || loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            break;
        }
        if lock_or_recover(&slots)[i].is_some() {
            continue; // replayed from the manifest
        }
        let job = &jobs[i];
        let mut result = run_job(spec, job, make_field(job));
        cps_obs::count(cps_obs::Counter::SweepJobs);
        if let Ok(outcome) = &result {
            let mut guard = lock_or_recover(&manifest);
            if let Some(m) = guard.as_mut() {
                if let Err(e) = m.record(i as u64, job.digest(spec_digest), outcome.clone()) {
                    result = Err(e);
                }
            }
        }
        lock_or_recover(&slots)[i] = Some(result);
    };
    if workers <= 1 {
        work();
    } else {
        let pool_jobs: Vec<cps_pool::Job<'_>> = (0..workers - 1)
            .map(|_| Box::new(work) as cps_pool::Job<'_>)
            .collect();
        cps_pool::run_with(pool_jobs, work);
    }

    let slots = slots
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut outcomes = Vec::with_capacity(n);
    for (i, slot) in slots.into_iter().enumerate() {
        match slot {
            Some(Ok(outcome)) => outcomes.push(outcome),
            Some(Err(e)) => return Err(e),
            None => return Err(corrupt(format!("job {i} was never executed"))),
        }
    }
    SweepResults::build(spec, jobs, outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_field::{GaussianBlob, Static};

    fn tiny_spec() -> SweepSpec {
        SweepSpec {
            seeds: vec![1, 2],
            k: vec![9],
            comm_radius: vec![10.0, 12.0],
            minutes: 2,
            sample_every: 1,
            resolution: 21,
            ..SweepSpec::default()
        }
    }

    fn field_for(job: &SweepJob) -> Static<GaussianBlob> {
        // Seed shifts the blob so replications genuinely differ.
        Static::new(GaussianBlob::isotropic(
            Point2::new(50.0 + job.seed as f64 * 7.0, 60.0),
            40.0,
            15.0,
        ))
    }

    #[test]
    fn jobs_expand_in_fixed_order_with_seed_innermost() {
        let spec = tiny_spec();
        let jobs = spec.jobs();
        assert_eq!(jobs.len(), 4);
        let key: Vec<(usize, u64, u64)> = jobs
            .iter()
            .map(|j| (j.k, j.comm_radius.to_bits(), j.seed))
            .collect();
        assert_eq!(
            key,
            vec![
                (9, 10.0f64.to_bits(), 1),
                (9, 10.0f64.to_bits(), 2),
                (9, 12.0f64.to_bits(), 1),
                (9, 12.0f64.to_bits(), 2),
            ]
        );
        assert_eq!(jobs[3].index, 3);
    }

    #[test]
    fn spec_round_trips_and_digest_is_stable() {
        let spec = tiny_spec();
        let text = spec.to_json().unwrap();
        let back = SweepSpec::from_json(&text).unwrap();
        assert_eq!(spec, back);
        assert_eq!(spec.digest().unwrap(), back.digest().unwrap());

        // A minimal spec keeps defaults for everything unnamed.
        let minimal = SweepSpec::from_json(r#"{"k": [4, 9]}"#).unwrap();
        assert_eq!(minimal.k, vec![4, 9]);
        assert_eq!(minimal.seeds, SweepSpec::default().seeds);
        assert_ne!(minimal.digest().unwrap(), spec.digest().unwrap());
    }

    #[test]
    fn spec_validation_rejects_empty_axes_and_bad_knobs() {
        for mutate in [
            (|s: &mut SweepSpec| s.seeds.clear()) as fn(&mut SweepSpec),
            |s| s.k.clear(),
            |s| s.k.push(0),
            |s| s.comm_radius.push(f64::NAN),
            |s| s.faults.clear(),
            |s| s.minutes = 0,
            |s| s.sample_every = 0,
            |s| s.resolution = 1,
            |s| s.spacing_factor = 0.0,
        ] {
            let mut spec = tiny_spec();
            mutate(&mut spec);
            assert!(matches!(
                spec.validate(),
                Err(CoreError::InvalidParameter { .. })
            ));
        }
    }

    #[test]
    fn aggregates_are_bit_identical_across_worker_counts() {
        let spec = tiny_spec();
        let serial = run_sweep(&spec, 1, None, false, field_for).unwrap();
        let two = run_sweep(&spec, 2, None, false, field_for).unwrap();
        let four = run_sweep(&spec, 4, None, false, field_for).unwrap();
        let reference = serial.to_json().unwrap();
        assert_eq!(reference, two.to_json().unwrap());
        assert_eq!(reference, four.to_json().unwrap());
        assert_eq!(serial.cells.len(), 2);
        assert_eq!(serial.cells[0].jobs, 2);
        assert!(serial.cells[0].final_delta.min <= serial.cells[0].final_delta.max);
    }

    #[test]
    fn partial_manifest_resume_is_bit_identical() {
        let dir = std::env::temp_dir().join(format!("cps_sweep_test_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let manifest_path = dir.join("sweep.manifest");

        let spec = tiny_spec();
        let reference = run_sweep(&spec, 2, Some(&manifest_path), false, field_for).unwrap();
        let reference_json = reference.to_json().unwrap();

        // Simulate an interrupt: a manifest holding only half the jobs.
        let digest = spec.digest().unwrap();
        let jobs = spec.jobs();
        let mut partial = SweepManifest::create(&manifest_path, digest).unwrap();
        for i in [0usize, 2] {
            partial
                .record(
                    i as u64,
                    jobs[i].digest(digest),
                    reference.outcomes[i].clone(),
                )
                .unwrap();
        }
        let resumed = run_sweep(&spec, 2, Some(&manifest_path), true, field_for).unwrap();
        assert_eq!(reference_json, resumed.to_json().unwrap());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_rejects_corruption_and_foreign_specs() {
        let dir = std::env::temp_dir().join(format!("cps_sweep_mtest_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.manifest");

        let mut manifest = SweepManifest::create(&path, 0xabcd).unwrap();
        manifest
            .record(
                0,
                7,
                JobOutcome {
                    final_delta: 1.5,
                    best_delta: Some(1.25),
                    final_connected: true,
                    alive: 9,
                    deaths: 0,
                    messages: 42,
                    series: vec![(600.0, 1.5)],
                },
            )
            .unwrap();

        let back = SweepManifest::load(&path, 0xabcd).unwrap();
        assert_eq!(back.completed().len(), 1);
        assert_eq!(back.completed()[&0].1.alive, 9);

        // Wrong spec digest: typed rejection, not silent reuse.
        assert!(matches!(
            SweepManifest::load(&path, 0xdead),
            Err(CoreError::SnapshotCorrupt { .. })
        ));

        // Any byte flip in the payload fails the checksum.
        let bytes = fs::read(&path).unwrap();
        let mut evil = bytes.clone();
        let last = evil.len() - 1;
        evil[last] ^= 0x01;
        fs::write(&path, &evil).unwrap();
        assert!(SweepManifest::load(&path, 0xabcd).is_err());

        // Truncation too.
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(SweepManifest::load(&path, 0xabcd).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn aggregate_statistics_are_exact_on_a_known_set() {
        let agg = Aggregate::from_values(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(agg.mean, 2.5);
        assert_eq!(agg.min, 1.0);
        assert_eq!(agg.max, 4.0);
        assert!((agg.stddev - 1.25f64.sqrt()).abs() < 1e-15);
        assert!(Aggregate::from_values(&[]).is_none());
    }

    #[test]
    fn failing_job_surfaces_its_error() {
        // Oversized k at this spacing: grid_start_spaced's typed error
        // must come back through the sweep, not a panic.
        let spec = SweepSpec {
            seeds: vec![1],
            k: vec![100_000],
            minutes: 1,
            ..SweepSpec::default()
        };
        assert!(matches!(
            run_sweep(&spec, 2, None, false, field_for),
            Err(CoreError::InvalidParameter { .. })
        ));
    }
}
