//! Canonical initial deployments for OSTD experiments.

use cps_core::osd::baselines;
use cps_core::CoreError;
use cps_geometry::{Point2, Rect};
use rand::Rng;

/// The paper's initial state for the OSTD experiments: `k` nodes on a
/// uniform grid (Fig. 8(a) uses `k = 100`, a 10×10 grid whose 10 m
/// spacing equals `Rc`, so the network starts connected).
///
/// # Panics
///
/// Panics if `k` is zero — the contract is owned (and pinned by a
/// `should_panic` test) in [`baselines::uniform_grid_deployment`]; this
/// delegation is the scenario module's only remaining panic path.
pub fn grid_start(region: Rect, k: usize) -> Vec<Point2> {
    baselines::uniform_grid_deployment(region, k)
}

/// A centred `⌈√k⌉ × ⌈√k⌉` grid with an explicit lattice `spacing`.
///
/// Starting the mobile network with spacing strictly inside `Rc`
/// (e.g. `0.93·Rc`) leaves every lattice edge slack: a one-slot move
/// no longer strands all four neighbors at once, so LCM repairs stay
/// local instead of chain-dragging the whole lattice.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] if `k` is zero, if `spacing`
/// is not a finite positive number, or if the grid at this spacing does
/// not fit inside the region.
pub fn grid_start_spaced(region: Rect, k: usize, spacing: f64) -> Result<Vec<Point2>, CoreError> {
    if k == 0 {
        return Err(CoreError::InvalidParameter {
            name: "k",
            requirement: "a deployment needs at least one node",
        });
    }
    if !spacing.is_finite() || spacing <= 0.0 {
        return Err(CoreError::InvalidParameter {
            name: "spacing",
            requirement: "lattice spacing must be a finite positive number",
        });
    }
    let n = (k as f64).sqrt().ceil() as usize;
    let span = spacing * (n - 1) as f64;
    if span > region.width() || span > region.height() {
        return Err(CoreError::InvalidParameter {
            name: "spacing",
            requirement: "grid span at this spacing must fit inside the region",
        });
    }
    let x0 = region.center().x - span / 2.0;
    let y0 = region.center().y - span / 2.0;
    let mut out = Vec::with_capacity(k);
    'outer: for j in 0..n {
        for i in 0..n {
            if out.len() == k {
                break 'outer;
            }
            out.push(Point2::new(
                x0 + spacing * i as f64,
                y0 + spacing * j as f64,
            ));
        }
    }
    Ok(out)
}

/// A random connected-ish start: random positions re-drawn (up to
/// `attempts` times) until the deployment is connected at `comm_radius`;
/// falls back to the grid start when randomness cannot produce one.
///
/// # Panics
///
/// Panics if `k` is zero, via the [`grid_start`] fallback.
pub fn random_connected_start<R: Rng + ?Sized>(
    region: Rect,
    k: usize,
    comm_radius: f64,
    attempts: usize,
    rng: &mut R,
) -> Vec<Point2> {
    for _ in 0..attempts {
        let pts = baselines::random_deployment(region, k, rng);
        if let Ok(g) = cps_network::UnitDiskGraph::new(pts.clone(), comm_radius) {
            if g.is_connected() {
                return pts;
            }
        }
    }
    grid_start(region, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_network::UnitDiskGraph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn grid_start_of_100_is_connected_at_rc10() {
        let region = Rect::square(100.0).unwrap();
        let pts = grid_start(region, 100);
        assert_eq!(pts.len(), 100);
        let g = UnitDiskGraph::new(pts, 10.0).unwrap();
        assert!(g.is_connected());
    }

    #[test]
    fn random_connected_start_is_connected_or_grid() {
        let region = Rect::square(50.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let pts = random_connected_start(region, 30, 20.0, 50, &mut rng);
        let g = UnitDiskGraph::new(pts, 20.0).unwrap();
        assert!(g.is_connected());
    }

    #[test]
    fn grid_start_spaced_rejects_bad_parameters_with_typed_errors() {
        let region = Rect::square(100.0).unwrap();
        // Valid construction still works and centres inside the region.
        let pts = grid_start_spaced(region, 9, 10.0).unwrap();
        assert_eq!(pts.len(), 9);
        assert!(pts.iter().all(|p| region.contains(*p)));

        // k == 0, non-finite / non-positive spacing, oversized span: all
        // must surface as typed errors, never a panic.
        for (k, spacing) in [
            (0usize, 10.0),
            (9, f64::NAN),
            (9, f64::INFINITY),
            (9, 0.0),
            (9, -3.0),
            (9, 60.0), // span 120 > width 100
        ] {
            let err = grid_start_spaced(region, k, spacing).unwrap_err();
            assert!(
                matches!(err, CoreError::InvalidParameter { .. }),
                "({k}, {spacing}) => {err:?}"
            );
        }
    }

    #[test]
    fn impossible_random_falls_back_to_grid() {
        // Tiny radius: random will never connect; must fall back.
        let region = Rect::square(100.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let pts = random_connected_start(region, 9, 0.001, 3, &mut rng);
        assert_eq!(pts, grid_start(region, 9));
    }
}
