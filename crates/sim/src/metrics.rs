//! Simulation metrics: the δ(t) timeline of Fig. 10 and convergence
//! detection.

use cps_core::{CoreError, DeltaEvaluator, DeploymentEvaluation, EvalOptions};
use cps_field::{DeltaCache, Parallelism, TimeVaryingField};
use cps_geometry::GridSpec;

use crate::{FaultEvent, Simulation};

/// A recorded series of `(time, δ)` samples — the paper's Fig. 10.
///
/// The per-sample δ quadrature runs through
/// [`cps_core::DeltaEvaluator`] with survivors enabled: a fleet culled
/// below three nodes degrades to a constant-surface δ instead of
/// erroring. Options come from [`EvalOptions`]
/// ([`DeltaTimeline::with_options`]): recorded values are bit-identical
/// at any thread count, and with the tile cache on, each recording of a
/// slowly moving swarm re-integrates only the tiles whose
/// reconstruction triangles changed since the last one (agreement with
/// the uncached path within 1e-9; the reference must be effectively
/// static for the cache to pay off — a drifting field re-primes it
/// every sample).
///
/// When the simulation carries a fault plan, each
/// [`record`](DeltaTimeline::record) call also copies the fault events
/// that occurred since the previous recording, so deaths, partitions,
/// and reconnections line up with the δ(t) series (see
/// [`DeltaTimeline::events`]).
#[derive(Debug, Clone, Default)]
pub struct DeltaTimeline {
    samples: Vec<(f64, DeploymentEvaluation)>,
    events: Vec<FaultEvent>,
    /// How many of the simulation's fault events have been copied into
    /// `events` so far.
    events_synced: usize,
    opts: EvalOptions,
    /// Tile cache carried across recordings (only with `opts.cached`);
    /// excluded from equality — it is an accelerator, not a result.
    cache: Option<DeltaCache>,
}

impl PartialEq for DeltaTimeline {
    fn eq(&self, other: &Self) -> bool {
        self.samples == other.samples
            && self.events == other.events
            && self.events_synced == other.events_synced
            && self.opts == other.opts
    }
}

impl DeltaTimeline {
    /// An empty timeline.
    pub fn new() -> Self {
        DeltaTimeline::default()
    }

    /// An empty timeline recording with the given evaluation options.
    pub fn with_options(opts: EvalOptions) -> Self {
        DeltaTimeline {
            opts,
            ..DeltaTimeline::default()
        }
    }

    /// An empty timeline whose recordings use the given thread policy.
    pub fn with_parallelism(par: Parallelism) -> Self {
        DeltaTimeline::with_options(EvalOptions::new().parallelism(par))
    }

    /// An empty timeline adopting the simulation's declared evaluation
    /// options ([`crate::CmaBuilder::evaluator`]).
    pub fn for_simulation<F: TimeVaryingField + Sync>(sim: &Simulation<F>) -> Self {
        DeltaTimeline::with_options(sim.eval_options())
    }

    /// Evaluates the simulation *now* — reconstructing the surface from
    /// the current node positions against the field frozen at the
    /// current time — and appends the sample.
    ///
    /// # Errors
    ///
    /// Propagates [`cps_core::DeltaEvaluator::evaluate`] errors (a
    /// position outside the grid, an invalid radius — not mere
    /// attrition).
    pub fn record<F: TimeVaryingField + Sync>(
        &mut self,
        sim: &Simulation<F>,
        grid: &GridSpec,
    ) -> Result<DeploymentEvaluation, CoreError> {
        let frozen = sim.field().at_time(sim.time());
        // The frozen field borrows the simulation, so the evaluator is
        // rebuilt per recording; the tile cache is what persists.
        let mut evaluator = DeltaEvaluator::new(&frozen, grid, sim.config().cps.comm_radius())
            .options(self.opts)
            .survivors(true);
        if let Some(cache) = self.cache.take() {
            evaluator = evaluator.with_cache(cache);
        }
        let eval = evaluator.evaluate(&sim.positions())?;
        if self.opts.cached {
            self.cache = evaluator.take_cache();
        }
        let pending = sim.fault_events();
        if pending.len() > self.events_synced {
            self.events
                .extend_from_slice(&pending[self.events_synced..]);
            self.events_synced = pending.len();
        }
        self.samples.push((sim.time(), eval));
        Ok(eval)
    }

    /// Fault events copied from the simulation, in occurrence order
    /// (empty without a fault plan).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// How many of the simulation's fault events have been copied into
    /// this timeline so far (the checkpointed sync cursor).
    pub fn events_synced(&self) -> usize {
        self.events_synced
    }

    /// Rebuilds a timeline from checkpointed parts. The tile cache is
    /// deliberately *not* part of the state: it re-primes lazily on the
    /// first [`record`](DeltaTimeline::record) after a restore, and the
    /// probe-guarded priming reproduces the uninterrupted run's values
    /// bit for bit (cache contents are an accelerator, not a result).
    pub fn from_state(
        opts: EvalOptions,
        samples: Vec<(f64, DeploymentEvaluation)>,
        events: Vec<FaultEvent>,
        events_synced: usize,
    ) -> Self {
        DeltaTimeline {
            samples,
            events,
            events_synced,
            opts,
            cache: None,
        }
    }

    /// The evaluation options recordings run with.
    pub fn options(&self) -> EvalOptions {
        self.opts
    }

    /// The recorded `(time, evaluation)` samples, in record order.
    pub fn samples(&self) -> &[(f64, DeploymentEvaluation)] {
        &self.samples
    }

    /// Just the `(time, δ)` pairs.
    pub fn delta_series(&self) -> Vec<(f64, f64)> {
        self.samples.iter().map(|&(t, e)| (t, e.delta)).collect()
    }

    /// The smallest recorded δ, if any samples exist.
    pub fn best_delta(&self) -> Option<f64> {
        self.samples
            .iter()
            .map(|&(_, e)| e.delta)
            .min_by(f64::total_cmp)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were recorded yet.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

/// Declares convergence when the maximum per-slot displacement stays
/// below a tolerance for a whole window of consecutive slots — the
/// "nodes barely move" state of the paper's Fig. 9.
#[derive(Debug, Clone)]
pub struct ConvergenceDetector {
    tolerance: f64,
    window: usize,
    quiet_slots: usize,
    converged_at: Option<f64>,
}

impl ConvergenceDetector {
    /// Creates a detector: convergence = `window` consecutive slots
    /// with max displacement below `tolerance`.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero or `tolerance` is negative.
    pub fn new(tolerance: f64, window: usize) -> Self {
        assert!(window > 0, "window must be at least one slot");
        assert!(tolerance >= 0.0, "tolerance must be non-negative");
        ConvergenceDetector {
            tolerance,
            window,
            quiet_slots: 0,
            converged_at: None,
        }
    }

    /// Feeds one step's maximum displacement at time `t`; returns
    /// `true` once converged (latching).
    pub fn observe(&mut self, t: f64, max_displacement: f64) -> bool {
        if self.converged_at.is_some() {
            return true;
        }
        if max_displacement <= self.tolerance {
            self.quiet_slots += 1;
            if self.quiet_slots >= self.window {
                self.converged_at = Some(t);
            }
        } else {
            self.quiet_slots = 0;
        }
        self.converged_at.is_some()
    }

    /// The time convergence latched, if it did.
    pub fn converged_at(&self) -> Option<f64> {
        self.converged_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{scenario, CmaBuilder};
    use cps_field::{PeaksField, Static};
    use cps_geometry::Rect;

    #[test]
    fn timeline_records_decreasing_delta_on_static_field() {
        let region = Rect::square(100.0).unwrap();
        let field = Static::new(PeaksField::new(region, 8.0));
        let start = scenario::grid_start(region, 100);
        let mut sim = CmaBuilder::new(region, start).run(field).unwrap();
        let grid = GridSpec::new(region, 41, 41).unwrap();
        let mut timeline = DeltaTimeline::new();
        timeline.record(&sim, &grid).unwrap();
        for _ in 0..10 {
            sim.step().unwrap();
        }
        timeline.record(&sim, &grid).unwrap();
        assert_eq!(timeline.len(), 2);
        assert!(!timeline.is_empty());
        let series = timeline.delta_series();
        assert_eq!(series[0].0, 0.0);
        assert_eq!(series[1].0, 10.0);
        assert_eq!(timeline.best_delta().unwrap(), series[0].1.min(series[1].1));
    }

    #[test]
    fn timeline_is_bit_identical_across_thread_counts() {
        let region = Rect::square(100.0).unwrap();
        let field = Static::new(PeaksField::new(region, 8.0));
        let start = scenario::grid_start(region, 36);
        let sim = CmaBuilder::new(region, start).run(field).unwrap();
        let grid = GridSpec::new(region, 41, 41).unwrap();
        let mut serial = DeltaTimeline::with_parallelism(Parallelism::serial());
        let s = serial.record(&sim, &grid).unwrap();
        for par in [Parallelism::fixed(3), Parallelism::auto()] {
            let mut timeline = DeltaTimeline::with_parallelism(par);
            let e = timeline.record(&sim, &grid).unwrap();
            assert_eq!(s.delta.to_bits(), e.delta.to_bits(), "{par:?}");
            assert_eq!(s.rms.to_bits(), e.rms.to_bits(), "{par:?}");
        }
    }

    #[test]
    fn cached_timeline_agrees_with_uncached() {
        let region = Rect::square(100.0).unwrap();
        let field = Static::new(PeaksField::new(region, 8.0));
        let start = scenario::grid_start(region, 36);
        let opts = EvalOptions::new().cached(true);
        let mut sim = CmaBuilder::new(region, start.clone())
            .evaluator(opts)
            .run(field)
            .unwrap();
        let grid = GridSpec::new(region, 41, 41).unwrap();
        let mut cached = DeltaTimeline::for_simulation(&sim);
        let mut plain = DeltaTimeline::new();
        for _ in 0..4 {
            cached.record(&sim, &grid).unwrap();
            plain.record(&sim, &grid).unwrap();
            for _ in 0..3 {
                sim.step().unwrap();
            }
        }
        for ((t1, a), (t2, b)) in cached.samples().iter().zip(plain.samples()) {
            assert_eq!(t1, t2);
            assert!(
                (a.delta - b.delta).abs() <= 1e-9 * b.delta.abs().max(1.0),
                "cached {} vs uncached {}",
                a.delta,
                b.delta
            );
            assert!((a.rms - b.rms).abs() <= 1e-9 * b.rms.abs().max(1.0));
            assert_eq!(a.connected, b.connected);
            assert_eq!(a.node_count, b.node_count);
        }
    }

    #[test]
    fn convergence_latches_after_quiet_window() {
        let mut det = ConvergenceDetector::new(0.1, 3);
        assert!(!det.observe(1.0, 0.5)); // loud
        assert!(!det.observe(2.0, 0.05));
        assert!(!det.observe(3.0, 0.05));
        assert!(det.observe(4.0, 0.05)); // third quiet slot
        assert_eq!(det.converged_at(), Some(4.0));
        // Latching: later loud slots don't un-converge.
        assert!(det.observe(5.0, 10.0));
    }

    #[test]
    fn convergence_resets_on_movement() {
        let mut det = ConvergenceDetector::new(0.1, 2);
        assert!(!det.observe(1.0, 0.0));
        assert!(!det.observe(2.0, 1.0)); // reset
        assert!(!det.observe(3.0, 0.0));
        assert!(det.observe(4.0, 0.0));
        assert_eq!(det.converged_at(), Some(4.0));
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_panics() {
        ConvergenceDetector::new(0.1, 0);
    }
}
