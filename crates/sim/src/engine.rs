//! The simulation world and stepping engine.

use cps_core::ostd::CmaConfig;
use cps_core::{CoreError, CpsConfig, EvalOptions};
use cps_field::par::map_rows;
use cps_field::{Parallelism, TimeVaryingField};
use cps_geometry::{Point2, Rect};

use crate::checkpoint::{FaultState, SimSnapshot};
use crate::fault::{FaultEvent, FaultPlan, FaultRuntime};
use crate::stage::{EventBus, StagePipeline, StepCtx, StepEvent, StepObserver};

/// Simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Node capabilities (`Rc`, `Rs`, `v`, `β`).
    pub cps: CpsConfig,
    /// Minutes per time slot (the paper steps once per minute).
    pub time_step: f64,
    /// Spacing of the sensing sample lattice within `Rs`; the paper's
    /// `m = ⌊πRs²⌋` corresponds to a 1 m lattice.
    pub sense_spacing: f64,
    /// Thread policy for the per-node sense/curvature phase. Step
    /// results are bit-identical at any thread count — this only
    /// changes wall-clock time.
    pub parallelism: Parallelism,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            cps: CpsConfig::default(),
            time_step: 1.0,
            sense_spacing: 1.0,
            parallelism: Parallelism::auto(),
        }
    }
}

/// State of one mobile node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MobileNode {
    /// Stable node index.
    pub id: usize,
    /// Current position.
    pub position: Point2,
    /// Most recent self-estimated Gaussian curvature (shared with
    /// neighbors in the periodic exchange).
    pub curvature: f64,
    /// Cumulative distance traveled.
    pub traveled: f64,
    /// Whether the node is still operational. Failed nodes stop
    /// sensing, moving and relaying (see [`Simulation::fail_node`]).
    pub alive: bool,
}

/// What one simulation step did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepReport {
    /// Simulation time *after* the step, minutes.
    pub time: f64,
    /// Nodes that moved this slot (CMA or LCM).
    pub moved: usize,
    /// Nodes relocated by the local connectivity mechanism.
    pub lcm_followers: usize,
    /// Largest displacement this slot.
    pub max_displacement: f64,
    /// Single-hop messages exchanged this slot: every alive edge
    /// carries the `(x, y, G)` report in both directions (Table 2 lines
    /// 4–5), and every mover broadcasts one `tell(nd, N)` (line 17).
    /// With a lossy fault plan installed this counts *attempts*,
    /// including retries of lost deliveries.
    pub messages: usize,
    /// Nodes that died at the start of this slot (0 without a fault
    /// plan).
    pub deaths: usize,
    /// Message delivery attempts that were retried this slot (0 without
    /// link loss).
    pub retried: usize,
    /// Directed links whose every delivery attempt failed this slot (0
    /// without link loss).
    pub dropped: usize,
    /// Connected components of the surviving network at slot start.
    pub components: usize,
}

/// A running OSTD simulation over a time-varying field.
#[derive(Debug, Clone)]
pub struct Simulation<F> {
    pub(crate) field: F,
    pub(crate) region: Rect,
    pub(crate) config: SimConfig,
    pub(crate) cma: CmaConfig,
    pub(crate) nodes: Vec<MobileNode>,
    pub(crate) time: f64,
    /// Slots stepped since construction (the checkpointable clock: the
    /// fault schedule and every per-slot RNG stream are indexed by it).
    pub(crate) slot: u64,
    /// Decaying running maximum of observed node curvatures — the
    /// gossiped normalization reference fed to every CMA step.
    pub(crate) curvature_scale: f64,
    /// Fault-injection state; `None` runs the pristine fast path.
    pub(crate) fault: Option<FaultRuntime>,
    /// The δ-evaluation options declared at build time
    /// ([`CmaBuilder::evaluator`]) for consumers measuring this run
    /// (e.g. `DeltaTimeline`).
    pub(crate) eval: EvalOptions,
}

impl<F: TimeVaryingField + Sync> Simulation<F> {
    /// The shared constructor behind [`CmaBuilder::run`].
    fn construct(
        field: F,
        region: Rect,
        config: SimConfig,
        initial_positions: Vec<Point2>,
        start_time: f64,
        faults: Option<FaultPlan>,
        eval: EvalOptions,
    ) -> Result<Self, CoreError> {
        if initial_positions.is_empty() {
            return Err(CoreError::InvalidParameter {
                name: "initial_positions",
                requirement: "must contain at least one node",
            });
        }
        if initial_positions.iter().any(|p| !region.contains(*p)) {
            return Err(CoreError::InvalidParameter {
                name: "initial_positions",
                requirement: "must lie inside the region",
            });
        }
        if !config.time_step.is_finite() || config.time_step <= 0.0 {
            return Err(CoreError::InvalidParameter {
                name: "time_step",
                requirement: "must be positive and finite",
            });
        }
        if !config.sense_spacing.is_finite()
            || config.sense_spacing <= 0.0
            || config.sense_spacing > config.cps.sensing_radius()
        {
            return Err(CoreError::InvalidParameter {
                name: "sense_spacing",
                requirement: "must be positive and no larger than the sensing radius",
            });
        }
        let nodes: Vec<MobileNode> = initial_positions
            .into_iter()
            .enumerate()
            .map(|(id, position)| MobileNode {
                id,
                position,
                curvature: 0.0,
                traveled: 0.0,
                alive: true,
            })
            .collect();
        let node_count = nodes.len();
        let mut sim = Simulation {
            field,
            region,
            cma: CmaConfig::from_cps(&config.cps),
            config,
            nodes,
            time: start_time,
            slot: 0,
            curvature_scale: 0.0,
            // The initial sensing pass below is deliberately fault-free:
            // deployment happens before the mission clock starts, so
            // slot 0 of the fault schedule applies to the first step().
            fault: faults.map(|plan| FaultRuntime::new(plan, node_count)),
            eval,
        };
        // Pre-movement sensing pass: every node estimates its initial
        // curvature so the first exchange (and the gossiped
        // normalization scale) start from real data instead of zeros.
        // Per-node fits are independent, so the pass runs on the
        // row-sharded engine; results are identical at any thread count.
        let fits = {
            let sim = &sim;
            map_rows(sim.nodes.len(), sim.config.parallelism, |i| {
                let p = sim.nodes[i].position;
                debug_assert!(sim.nodes[i].alive);
                let sensed = sim.sense(p);
                let value = sim.field.value_at(p, sim.time);
                Ok::<f64, CoreError>(
                    cps_core::ostd::fit_quadric(p, value, &sensed)?.gaussian_curvature(),
                )
            })
        };
        for (i, g) in fits.into_iter().enumerate() {
            sim.nodes[i].curvature = g?;
        }
        sim.curvature_scale = sim
            .nodes
            .iter()
            .map(|n| n.curvature.abs())
            .fold(0.0, f64::max);
        Ok(sim)
    }

    /// The shared restore path behind [`CmaBuilder::resume_from`]:
    /// rebuilds a simulation from a checkpoint *without* the initial
    /// sensing pass — the snapshot already carries the sensed
    /// curvatures and the gossiped normalization scale, so re-sensing
    /// would diverge from the uninterrupted run.
    fn restore(
        field: F,
        snapshot: SimSnapshot,
        parallelism: Parallelism,
        eval: EvalOptions,
    ) -> Result<Self, CoreError> {
        fn bad(reason: String) -> CoreError {
            CoreError::SnapshotCorrupt {
                path: String::new(),
                reason,
            }
        }
        let cps = CpsConfig::builder()
            .comm_radius(snapshot.comm_radius)
            .sensing_radius(snapshot.sensing_radius)
            .max_speed(snapshot.max_speed)
            .beta(snapshot.beta)
            .build()?;
        let config = SimConfig {
            cps,
            time_step: snapshot.time_step,
            sense_spacing: snapshot.sense_spacing,
            parallelism,
        };
        if !config.time_step.is_finite() || config.time_step <= 0.0 {
            return Err(bad("time_step must be positive and finite".to_string()));
        }
        if !config.sense_spacing.is_finite()
            || config.sense_spacing <= 0.0
            || config.sense_spacing > cps.sensing_radius()
        {
            return Err(bad(
                "sense_spacing must be positive and within the sensing radius".to_string(),
            ));
        }
        if snapshot.nodes.is_empty() {
            return Err(bad("snapshot carries no nodes".to_string()));
        }
        // A snapshot taken under a different stage order cannot resume
        // bit-identically under the standard pipeline.
        if snapshot.pipeline != crate::stage::STANDARD_STAGES {
            return Err(bad(format!(
                "snapshot pipeline {:?} is not the standard stage sequence {:?}",
                snapshot.pipeline,
                crate::stage::STANDARD_STAGES
            )));
        }
        // The engine indexes `nodes` by stable id.
        if snapshot.nodes.iter().enumerate().any(|(i, n)| n.id != i) {
            return Err(bad("node ids must be dense and in order".to_string()));
        }
        if snapshot
            .nodes
            .iter()
            .any(|n| n.alive && !snapshot.region.contains(n.position))
        {
            return Err(bad("an alive node lies outside the region".to_string()));
        }
        if let Some(f) = &snapshot.fault {
            if f.stuck.len() != snapshot.nodes.len() {
                return Err(bad(format!(
                    "stuck-sensor table covers {} nodes, fleet has {}",
                    f.stuck.len(),
                    snapshot.nodes.len()
                )));
            }
            let expect_energy = if f.plan.battery.is_some() {
                snapshot.nodes.len()
            } else {
                0
            };
            if f.energy.len() != expect_energy {
                return Err(bad(format!(
                    "energy table covers {} nodes, expected {expect_energy}",
                    f.energy.len()
                )));
            }
        }
        Ok(Simulation {
            field,
            region: snapshot.region,
            cma: snapshot.cma,
            config,
            nodes: snapshot.nodes,
            time: snapshot.time,
            slot: snapshot.slot,
            curvature_scale: snapshot.curvature_scale,
            fault: snapshot.fault.map(|f| {
                FaultRuntime::restore(
                    f.plan,
                    f.slot,
                    f.energy,
                    f.stuck,
                    f.events,
                    f.partition_since,
                    f.deaths_total,
                    f.retried_total,
                    f.dropped_total,
                )
            }),
            eval,
        })
    }
}

impl<F: TimeVaryingField> Simulation<F> {
    /// Current simulation time, minutes.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Slots stepped since construction. A checkpoint taken *now*
    /// resumes with this slot as the next one to run.
    pub fn slot(&self) -> u64 {
        self.slot
    }

    /// Captures the complete engine state as a [`SimSnapshot`]:
    /// restoring it (with the same field) and stepping on is
    /// bit-identical to never having stopped, at any thread count,
    /// cache on or off. The field itself is not captured — attach how
    /// to rebuild it via [`SimSnapshot::label`] — and neither are
    /// app-level recorders; see [`SimSnapshot::attach_timeline`] and
    /// [`SimSnapshot::attach_survivability`].
    pub fn checkpoint(&self) -> SimSnapshot {
        SimSnapshot {
            label: String::new(),
            slot: self.slot,
            time: self.time,
            time_step: self.config.time_step,
            sense_spacing: self.config.sense_spacing,
            comm_radius: self.config.cps.comm_radius(),
            sensing_radius: self.config.cps.sensing_radius(),
            max_speed: self.config.cps.max_speed(),
            beta: self.config.cps.beta(),
            cma: self.cma,
            region: self.region,
            curvature_scale: self.curvature_scale,
            eval_cached: self.eval.cached,
            eval_kernel: self.eval.kernel,
            pipeline: crate::stage::STANDARD_STAGES
                .iter()
                .map(|s| s.to_string())
                .collect(),
            nodes: self.nodes.clone(),
            fault: self.fault.as_ref().map(|rt| FaultState {
                plan: rt.plan.clone(),
                slot: rt.slot,
                energy: rt.energy().to_vec(),
                stuck: rt.stuck().to_vec(),
                events: rt.events.clone(),
                partition_since: rt.partition_since(),
                deaths_total: rt.deaths_total,
                retried_total: rt.retried_total,
                dropped_total: rt.dropped_total,
            }),
            timeline: None,
            survivability: None,
        }
    }

    /// The region of interest.
    pub fn region(&self) -> Rect {
        self.region
    }

    /// The simulation parameters.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The δ-evaluation options declared on the builder
    /// ([`CmaBuilder::evaluator`]).
    pub fn eval_options(&self) -> EvalOptions {
        self.eval
    }

    /// Node states.
    pub fn nodes(&self) -> &[MobileNode] {
        &self.nodes
    }

    /// Positions of the *alive* nodes (the operating network).
    pub fn positions(&self) -> Vec<Point2> {
        self.nodes
            .iter()
            .filter(|n| n.alive)
            .map(|n| n.position)
            .collect()
    }

    /// Number of operational nodes.
    pub fn alive_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.alive).count()
    }

    /// Fails node `id`: it stops sensing, moving, and relaying from the
    /// next step on (failure injection for robustness experiments).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for an unknown id or a
    /// node that already failed.
    pub fn fail_node(&mut self, id: usize) -> Result<(), CoreError> {
        match self.nodes.get_mut(id) {
            Some(node) if node.alive => {
                node.alive = false;
                Ok(())
            }
            Some(_) => Err(CoreError::InvalidParameter {
                name: "id",
                requirement: "node already failed",
            }),
            None => Err(CoreError::InvalidParameter {
                name: "id",
                requirement: "must identify an existing node",
            }),
        }
    }

    /// The time-varying field being explored.
    pub fn field(&self) -> &F {
        &self.field
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref().map(|rt| &rt.plan)
    }

    /// Everything the fault subsystem recorded so far: deaths,
    /// partitions, reconnections. Empty without a fault plan.
    pub fn fault_events(&self) -> &[FaultEvent] {
        self.fault
            .as_ref()
            .map(|rt| rt.events.as_slice())
            .unwrap_or(&[])
    }

    /// Installs (or replaces) a fault plan mid-run; its slot 0 is the
    /// next step. Prefer [`CmaBuilder::faults`] for whole-run plans.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault = Some(FaultRuntime::new(plan, self.nodes.len()));
    }

    /// Whether the surviving network was split into multiple components
    /// at the last fault-plan topology observation.
    pub fn is_partitioned(&self) -> bool {
        self.fault.as_ref().is_some_and(|rt| rt.partitioned())
    }

    /// Overrides the CMA curvature gain (see
    /// [`CmaConfig::curvature_gain`]) for subsequent steps.
    pub fn set_curvature_gain(&mut self, gain: f64) {
        self.cma.curvature_gain = gain;
    }

    /// Overrides the CMA peak-attraction gain (see
    /// [`CmaConfig::peak_gain`]) for subsequent steps.
    pub fn set_peak_gain(&mut self, gain: f64) {
        self.cma.peak_gain = gain;
    }

    /// Overrides the CMA stop threshold for subsequent steps.
    pub fn set_stop_threshold(&mut self, threshold: f64) {
        self.cma.stop_threshold = threshold;
    }

    /// Overrides the CMA curvature-weight significance floor (see
    /// [`CmaConfig::weight_floor`]) for subsequent steps.
    pub fn set_weight_floor(&mut self, floor: f64) {
        self.cma.weight_floor = floor;
    }

    /// Overrides the CMA weight exponent (see
    /// [`CmaConfig::weight_exponent`]) for subsequent steps.
    pub fn set_weight_exponent(&mut self, exponent: f64) {
        self.cma.weight_exponent = exponent;
    }

    /// The CMA parameters in effect.
    pub fn cma_config(&self) -> &CmaConfig {
        &self.cma
    }

    /// Everything a node senses within `Rs`: `(position, value)` on the
    /// configured lattice.
    ///
    /// Sensing deliberately reaches *outside* the region of interest: a
    /// physical sensor near the border still measures its full
    /// surroundings. Clipping the disc at the border would hand border
    /// nodes one-sided sample sets whose quadric fits alias the local
    /// gradient into phantom curvature, sending them chasing artefacts.
    pub(crate) fn sense(&self, center: Point2) -> Vec<(Point2, f64)> {
        self.sense_at(center, self.time)
    }

    /// [`Simulation::sense`] at an explicit time — a stuck sensor keeps
    /// sampling the field as of the instant it froze.
    pub(crate) fn sense_at(&self, center: Point2, time: f64) -> Vec<(Point2, f64)> {
        let rs = self.config.cps.sensing_radius();
        let s = self.config.sense_spacing;
        let steps = (rs / s).floor() as i32;
        let mut out = Vec::with_capacity(((2 * steps + 1) * (2 * steps + 1)) as usize);
        for dx in -steps..=steps {
            for dy in -steps..=steps {
                let p = Point2::new(center.x + dx as f64 * s, center.y + dy as f64 * s);
                if center.distance(p) <= rs {
                    out.push((p, self.field.value_at(p, time)));
                }
            }
        }
        out
    }
}

impl<F: TimeVaryingField + Sync> Simulation<F> {
    /// Advances the simulation by one time slot through the standard
    /// [`StagePipeline`]: fault deaths, world snapshot, exchange-level
    /// fault draws, recovery overrides, the CMA/LCM movement plan,
    /// then end-of-slot records (see [`crate::stage`] for the stage
    /// taxonomy and the determinism argument).
    ///
    /// # Errors
    ///
    /// Propagates stage failures (e.g. CMA fit errors on insufficient
    /// sensing samples — cannot happen with a valid configuration).
    pub fn step(&mut self) -> Result<StepReport, CoreError> {
        self.step_observed(&mut [])
    }

    /// [`step`](Simulation::step) with [`StepObserver`]s riding the
    /// event bus: each receives the slot brackets, the stage brackets,
    /// and read access to the stepped world (see
    /// [`StepEvent`](crate::StepEvent)).
    ///
    /// Observers cannot perturb the arithmetic — a run with observers
    /// is bit-identical to one without.
    ///
    /// # Errors
    ///
    /// Propagates stage failures and observer failures (e.g. a failed
    /// checkpoint write), whichever happens first.
    pub fn step_observed(
        &mut self,
        observers: &mut [&mut dyn StepObserver<F>],
    ) -> Result<StepReport, CoreError> {
        self.step_with(&mut StagePipeline::standard(), observers)
    }

    /// The full-control entry point: one slot through an explicit
    /// pipeline, with observers. [`step`](Simulation::step) is this
    /// with the standard pipeline and no observers.
    ///
    /// # Errors
    ///
    /// Propagates stage and observer failures.
    pub fn step_with(
        &mut self,
        pipeline: &mut StagePipeline<F>,
        observers: &mut [&mut dyn StepObserver<F>],
    ) -> Result<StepReport, CoreError> {
        let mut bus = EventBus::new(observers);
        bus.emit(StepEvent::SlotStart {
            slot: self.slot,
            time: self.time,
        })?;
        let report = {
            let mut ctx = StepCtx::new(self);
            pipeline.run(&mut ctx, &mut bus)?;
            ctx.into_report()?
        };
        bus.emit(StepEvent::SlotEnd {
            sim: self,
            report: &report,
        })?;
        Ok(report)
    }

    /// Steps until the clock reaches `t_end` (minutes), returning the
    /// last report (or `None` when no step was taken).
    ///
    /// The step count is computed up front from the remaining span with
    /// a *relative* tolerance, rather than re-testing the accumulating
    /// clock against an absolute epsilon each slot: at large absolute
    /// times (long missions, epoch-based clocks) the float error of
    /// repeated `time += Δt` exceeds any fixed epsilon and the old test
    /// would skip the boundary step.
    ///
    /// # Errors
    ///
    /// Propagates [`Simulation::step`] errors.
    pub fn run_until(&mut self, t_end: f64) -> Result<Option<StepReport>, CoreError> {
        let span = t_end - self.time;
        let ratio = span / self.config.time_step;
        if !ratio.is_finite() {
            return Ok(None);
        }
        let steps = (ratio * (1.0 + 1e-12) + 1e-9).floor() as u64;
        let mut last = None;
        for _ in 0..steps {
            last = Some(self.step()?);
        }
        Ok(last)
    }
}

/// Builder for an OSTD simulation running the coordinated movement
/// algorithm — the counterpart of `FraBuilder` on the OSD side.
///
/// # Example
///
/// ```
/// use cps_field::{PeaksField, Static};
/// use cps_geometry::Rect;
/// use cps_sim::{scenario, CmaBuilder, SimConfig};
///
/// let region = Rect::square(100.0).unwrap();
/// let field = Static::new(PeaksField::new(region, 8.0));
/// let start = scenario::grid_start(region, 16);
/// let mut sim = CmaBuilder::new(region, start)
///     .config(SimConfig::default())
///     .run(field)
///     .unwrap();
/// sim.step().unwrap();
/// assert_eq!(sim.positions().len(), 16);
/// ```
#[derive(Debug, Clone)]
pub struct CmaBuilder {
    region: Rect,
    initial_positions: Vec<Point2>,
    config: SimConfig,
    start_time: f64,
    faults: Option<FaultPlan>,
    eval: EvalOptions,
    /// A checkpoint to resume instead of constructing fresh (boxed:
    /// snapshots dwarf the rest of the builder).
    resume: Option<Box<SimSnapshot>>,
}

impl CmaBuilder {
    /// Creates a builder for nodes starting at `initial_positions`
    /// inside `region`, with default [`SimConfig`] and the clock at 0.
    pub fn new(region: Rect, initial_positions: Vec<Point2>) -> Self {
        CmaBuilder {
            region,
            initial_positions,
            config: SimConfig::default(),
            start_time: 0.0,
            faults: None,
            eval: EvalOptions::default(),
            resume: None,
        }
    }

    /// Creates a builder that resumes `snapshot` instead of deploying
    /// fresh: [`run`](CmaBuilder::run) rebuilds the engine exactly as
    /// checkpointed (clock, slot cursor, fleet, CMA overrides, fault
    /// state) and skips the initial sensing pass. Stepping on is
    /// bit-identical to the uninterrupted run when given the same
    /// field.
    ///
    /// The thread policy defaults to [`Parallelism::auto`] and may be
    /// overridden with [`parallelism`](CmaBuilder::parallelism) or
    /// [`evaluator`](CmaBuilder::evaluator) — results do not depend on
    /// it. Whether δ evaluation uses the tile cache, and which
    /// quadrature kernel it runs on, are restored from the snapshot
    /// (both overridable). Deployment-time settings
    /// ([`config`](CmaBuilder::config),
    /// [`start_time`](CmaBuilder::start_time),
    /// [`faults`](CmaBuilder::faults)) are ignored on resume: the
    /// snapshot is authoritative.
    pub fn resume_from(snapshot: SimSnapshot) -> Self {
        let mut builder = CmaBuilder::new(snapshot.region, Vec::new());
        builder.eval.cached = snapshot.eval_cached;
        builder.eval.kernel = snapshot.eval_kernel;
        builder.resume = Some(Box::new(snapshot));
        builder
    }

    /// Sets the evaluation options shared with
    /// [`cps_core::DeltaEvaluator`] and the FRA builder: the thread
    /// policy (also applied to the per-node sensing phase) and whether
    /// δ measurements of this run should use the incremental tile
    /// cache. Consumers read them back via
    /// [`Simulation::eval_options`] — `DeltaTimeline` does so when
    /// built with `DeltaTimeline::for_simulation`.
    pub fn evaluator(mut self, opts: EvalOptions) -> Self {
        self.config.parallelism = opts.parallelism;
        self.eval = opts;
        self
    }

    /// Sets the simulation parameters (node capabilities, time step,
    /// sensing lattice, thread policy).
    pub fn config(mut self, config: SimConfig) -> Self {
        self.config = config;
        self
    }

    /// Starts the clock at `t` minutes (e.g. 600 for the paper's 10:00
    /// diurnal experiments).
    pub fn start_time(mut self, t: f64) -> Self {
        self.start_time = t;
        self
    }

    /// Sets the thread policy without replacing the rest of the config.
    /// Step results are bit-identical at any thread count. Shorthand
    /// for [`evaluator`](CmaBuilder::evaluator) with only the
    /// parallelism changed.
    pub fn parallelism(mut self, par: Parallelism) -> Self {
        self.config.parallelism = par;
        self.eval.parallelism = par;
        self
    }

    /// Installs a deterministic fault schedule (see
    /// [`FaultPlan`](crate::FaultPlan)); slot 0 of the schedule is the
    /// first [`Simulation::step`]. An all-zero plan leaves every result
    /// bit-identical to running without one.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Builds the simulation over `field`, running the initial sensing
    /// pass.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] when a position lies
    /// outside the region, positions are empty, the time step is not
    /// positive, or the sensing lattice is invalid. On a
    /// [`resume_from`](CmaBuilder::resume_from) builder, returns
    /// [`CoreError::SnapshotCorrupt`] when the snapshot is internally
    /// inconsistent (e.g. fault tables not matching the fleet size).
    pub fn run<F: TimeVaryingField + Sync>(self, field: F) -> Result<Simulation<F>, CoreError> {
        if let Some(snapshot) = self.resume {
            return Simulation::restore(field, *snapshot, self.config.parallelism, self.eval);
        }
        Simulation::construct(
            field,
            self.region,
            self.config,
            self.initial_positions,
            self.start_time,
            self.faults,
            self.eval,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_field::{GaussianBlob, PeaksField, PlaneField, Static};
    use cps_network::UnitDiskGraph;

    fn region() -> Rect {
        Rect::square(100.0).unwrap()
    }

    fn grid16() -> Vec<Point2> {
        crate::scenario::grid_start(region(), 16)
    }

    #[test]
    fn construction_validates() {
        let f = Static::new(PlaneField::default());
        assert!(CmaBuilder::new(region(), vec![]).run(f).is_err());
        let f = Static::new(PlaneField::default());
        let outside = vec![Point2::new(200.0, 0.0)];
        assert!(CmaBuilder::new(region(), outside).run(f).is_err());
        let f = Static::new(PlaneField::default());
        let bad_dt = SimConfig {
            time_step: 0.0,
            ..SimConfig::default()
        };
        assert!(CmaBuilder::new(region(), grid16())
            .config(bad_dt)
            .run(f)
            .is_err());
        let f = Static::new(PlaneField::default());
        let bad_spacing = SimConfig {
            sense_spacing: 100.0,
            ..SimConfig::default()
        };
        assert!(CmaBuilder::new(region(), grid16())
            .config(bad_spacing)
            .run(f)
            .is_err());
    }

    #[test]
    fn builder_carries_eval_options() {
        let f = Static::new(GaussianBlob::isotropic(Point2::new(50.0, 50.0), 50.0, 8.0));
        let opts = EvalOptions::new()
            .parallelism(Parallelism::fixed(2))
            .cached(true);
        let sim = CmaBuilder::new(region(), grid16())
            .evaluator(opts)
            .run(f)
            .unwrap();
        assert_eq!(sim.eval_options(), opts);
        assert_eq!(sim.config().parallelism, Parallelism::fixed(2));
    }

    #[test]
    fn step_is_bit_identical_across_thread_counts() {
        let f = Static::new(PeaksField::new(region(), 8.0));
        let start = crate::scenario::grid_start(region(), 36);
        let run = |par: Parallelism| {
            let mut sim = CmaBuilder::new(region(), start.clone())
                .parallelism(par)
                .run(f)
                .unwrap();
            for _ in 0..5 {
                sim.step().unwrap();
            }
            sim.nodes().to_vec()
        };
        let serial = run(Parallelism::serial());
        for par in [
            Parallelism::fixed(2),
            Parallelism::fixed(5),
            Parallelism::auto(),
        ] {
            let nodes = run(par);
            assert_eq!(serial.len(), nodes.len());
            for (a, b) in serial.iter().zip(&nodes) {
                assert_eq!(a.position.x.to_bits(), b.position.x.to_bits(), "{par:?}");
                assert_eq!(a.position.y.to_bits(), b.position.y.to_bits(), "{par:?}");
                assert_eq!(a.curvature.to_bits(), b.curvature.to_bits(), "{par:?}");
                assert_eq!(a.traveled.to_bits(), b.traveled.to_bits(), "{par:?}");
            }
        }
    }

    #[test]
    fn flat_world_stays_put() {
        let f = Static::new(PlaneField::new(0.0, 0.0, 3.0));
        // Spacing 25 > Rc 10: no neighbors, no repulsion, no curvature.
        let mut sim = CmaBuilder::new(region(), grid16()).run(f).unwrap();
        let before = sim.positions();
        let report = sim.step().unwrap();
        assert_eq!(report.moved, 0);
        assert_eq!(report.max_displacement, 0.0);
        assert_eq!(sim.positions(), before);
        assert_eq!(sim.time(), 1.0);
    }

    #[test]
    fn speed_limit_is_respected() {
        // Strong curvature gradient: nodes want to move Rs = 5 m but may
        // cover at most v·Δt = 1 m per slot.
        let f = Static::new(GaussianBlob::isotropic(Point2::new(50.0, 50.0), 50.0, 8.0));
        let start = vec![Point2::new(40.0, 50.0), Point2::new(60.0, 50.0)];
        let mut sim = CmaBuilder::new(region(), start).run(f).unwrap();
        let report = sim.step().unwrap();
        assert!(report.max_displacement <= 1.0 + 1e-9);
        assert!(report.moved >= 1);
    }

    #[test]
    fn travel_accumulates_and_time_advances() {
        let f = Static::new(GaussianBlob::isotropic(Point2::new(50.0, 50.0), 50.0, 8.0));
        let start = vec![Point2::new(42.0, 50.0), Point2::new(58.0, 50.0)];
        let mut sim = CmaBuilder::new(region(), start)
            .start_time(600.0)
            .run(f)
            .unwrap();
        sim.run_until(605.0).unwrap();
        assert_eq!(sim.time(), 605.0);
        assert!(sim.nodes().iter().any(|n| n.traveled > 0.0));
        assert!(sim.nodes().iter().all(|n| n.traveled <= 5.0 + 1e-9));
    }

    #[test]
    fn run_until_takes_the_boundary_step_at_large_times() {
        // Regression: the old loop tested the accumulating clock
        // against an absolute 1e-9 epsilon; at clock magnitudes where
        // one ulp exceeds that epsilon, drift from repeated
        // `time += 0.1` skipped the final step. One year in minutes
        // with dt = 0.1 (not representable in binary) reproduces it.
        let f = Static::new(PlaneField::new(0.0, 0.0, 3.0));
        let t0 = 525_600.0 * 1024.0;
        let dt = SimConfig {
            time_step: 0.1,
            ..SimConfig::default()
        };
        let mut sim = CmaBuilder::new(region(), vec![Point2::new(50.0, 50.0)])
            .config(dt)
            .start_time(t0)
            .run(f)
            .unwrap();
        sim.run_until(t0 + 5.0).unwrap();
        assert_eq!(sim.slot(), 50, "all 50 slots must run, drift or not");
        // And the small-time semantics are unchanged.
        let f = Static::new(PlaneField::new(0.0, 0.0, 3.0));
        let mut sim = CmaBuilder::new(region(), vec![Point2::new(50.0, 50.0)])
            .start_time(600.0)
            .run(f)
            .unwrap();
        sim.run_until(605.0).unwrap();
        assert_eq!((sim.slot(), sim.time()), (5, 605.0));
        assert!(sim.run_until(605.0).unwrap().is_none(), "already there");
        assert!(sim.run_until(0.0).unwrap().is_none(), "past target");
        assert!(sim.run_until(f64::NAN).unwrap().is_none());
    }

    #[test]
    fn checkpoint_resume_is_bit_identical_mid_fault_plan() {
        let f = Static::new(PeaksField::new(region(), 8.0));
        let start = crate::scenario::grid_start(region(), 36);
        let plan =
            FaultPlan::parse("seed=11,kill=5@9,death=0.004,loss=0.15:2,stuck=0.02:4").unwrap();
        let mut reference = CmaBuilder::new(region(), start.clone())
            .start_time(600.0)
            .faults(plan.clone())
            .run(f)
            .unwrap();
        let f = Static::new(PeaksField::new(region(), 8.0));
        let mut interrupted = CmaBuilder::new(region(), start)
            .start_time(600.0)
            .faults(plan)
            .run(f)
            .unwrap();
        // Checkpoint mid-run — inside the fault schedule, before the
        // slot-9 scheduled kill — then "crash" and resume via bytes.
        for _ in 0..7 {
            reference.step().unwrap();
            interrupted.step().unwrap();
        }
        let bytes = interrupted.checkpoint().to_bytes().unwrap();
        drop(interrupted);
        let snapshot = SimSnapshot::from_bytes(&bytes).unwrap();
        let f = Static::new(PeaksField::new(region(), 8.0));
        let mut resumed = CmaBuilder::resume_from(snapshot)
            .parallelism(Parallelism::fixed(2))
            .run(f)
            .unwrap();
        assert_eq!(resumed.slot(), 7);
        for _ in 0..8 {
            let a = reference.step().unwrap();
            let b = resumed.step().unwrap();
            assert_eq!(a, b, "step reports must match");
        }
        assert_eq!(reference.nodes(), resumed.nodes());
        assert_eq!(reference.fault_events(), resumed.fault_events());
        for (a, b) in reference.nodes().iter().zip(resumed.nodes()) {
            assert_eq!(a.position.x.to_bits(), b.position.x.to_bits());
            assert_eq!(a.position.y.to_bits(), b.position.y.to_bits());
            assert_eq!(a.curvature.to_bits(), b.curvature.to_bits());
        }
    }

    #[test]
    fn restore_rejects_inconsistent_snapshots() {
        let f = Static::new(PlaneField::default());
        let sim = CmaBuilder::new(region(), grid16()).run(f).unwrap();
        let snap = sim.checkpoint();

        let mut no_nodes = snap.clone();
        no_nodes.nodes.clear();
        let f = Static::new(PlaneField::default());
        assert!(matches!(
            CmaBuilder::resume_from(no_nodes).run(f),
            Err(CoreError::SnapshotCorrupt { .. })
        ));

        let mut shuffled = snap.clone();
        shuffled.nodes[0].id = 7;
        let f = Static::new(PlaneField::default());
        assert!(CmaBuilder::resume_from(shuffled).run(f).is_err());

        let mut bad_cfg = snap;
        bad_cfg.comm_radius = -1.0;
        let f = Static::new(PlaneField::default());
        assert!(CmaBuilder::resume_from(bad_cfg).run(f).is_err());
    }

    #[test]
    fn message_accounting_matches_topology() {
        // 3 isolated nodes: zero edges, so messages = movers only.
        let f = Static::new(PlaneField::new(0.0, 0.0, 1.0));
        let iso = vec![
            Point2::new(10.0, 10.0),
            Point2::new(50.0, 50.0),
            Point2::new(90.0, 90.0),
        ];
        let mut sim = CmaBuilder::new(region(), iso).run(f).unwrap();
        let report = sim.step().unwrap();
        assert_eq!(report.messages, 0, "flat + isolated = silent network");

        // A connected pair on a flat field: one edge, both directions.
        let f = Static::new(PlaneField::new(0.0, 0.0, 1.0));
        let pair = vec![Point2::new(50.0, 50.0), Point2::new(58.0, 50.0)];
        let mut sim = CmaBuilder::new(region(), pair).run(f).unwrap();
        let report = sim.step().unwrap();
        // The pair exchanges reports; repulsion (spacing 8 < 9.5) makes
        // both move, adding two tell() broadcasts.
        assert_eq!(report.messages, 2 + report.moved);
    }

    #[test]
    fn failed_nodes_leave_the_protocol() {
        let f = Static::new(GaussianBlob::isotropic(Point2::new(50.0, 50.0), 50.0, 8.0));
        let start = vec![
            Point2::new(45.0, 50.0),
            Point2::new(52.0, 50.0),
            Point2::new(59.0, 50.0),
        ];
        let mut sim = CmaBuilder::new(region(), start).run(f).unwrap();
        let busy = sim.step().unwrap();
        sim.fail_node(1).unwrap();
        let after = sim.step().unwrap();
        // With the middle node dead the remaining pair is out of range:
        // no edges, strictly fewer messages.
        assert!(after.messages < busy.messages);
        assert_eq!(sim.alive_count(), 2);
    }

    #[test]
    fn nodes_never_leave_the_region() {
        // Blob just outside pulls nodes toward the border.
        let f = Static::new(GaussianBlob::isotropic(Point2::new(99.0, 99.0), 50.0, 5.0));
        let start = vec![Point2::new(97.0, 97.0), Point2::new(94.0, 97.0)];
        let mut sim = CmaBuilder::new(region(), start).run(f).unwrap();
        for _ in 0..20 {
            sim.step().unwrap();
        }
        assert!(sim.positions().iter().all(|p| region().contains(*p)));
    }

    #[test]
    fn connected_start_stays_connected_under_cma() {
        // 100 nodes on a 10×10 grid (spacing 10 = Rc): the paper's
        // Fig. 8(a) initial state. After 30 slots of CMA + LCM the
        // network must still be connected.
        let f = Static::new(PeaksField::new(region(), 8.0));
        let start = crate::scenario::grid_start(region(), 100);
        let g0 = UnitDiskGraph::new(start.clone(), 10.0).unwrap();
        assert!(g0.is_connected());
        let mut sim = CmaBuilder::new(region(), start).run(f).unwrap();
        for _ in 0..30 {
            sim.step().unwrap();
        }
        let g = UnitDiskGraph::new(sim.positions(), 10.0).unwrap();
        assert!(
            g.is_connected(),
            "CMA+LCM broke connectivity: {} components",
            g.component_count()
        );
    }
}
