//! Built-in [`StepObserver`] consumers: the [`RunRecorder`] bundle
//! that used to be hand-wired into every simulation loop.
//!
//! Before the stage pipeline, each driver (CLI `simulate`, the sweep
//! job runner, bench bins) reached into [`Simulation`] after every
//! step to record the δ timeline, feed the survivability ledger, and
//! decide whether a checkpoint was due. [`RunRecorder`] packages those
//! three consumers behind one [`StepObserver`]: hand it to
//! [`Simulation::step_observed`] and read the results back when the
//! run ends. Recording through the observer is bit-identical to the
//! old inline wiring — same sample schedule, same observation order
//! (messages before the slot observation, checkpoint after both).

use std::path::PathBuf;

use cps_core::{CoreError, DeploymentEvaluation, SurvivabilityTracker};
use cps_field::TimeVaryingField;
use cps_geometry::GridSpec;

use crate::checkpoint::{CheckpointDir, CheckpointPolicy};
use crate::engine::Simulation;
use crate::metrics::DeltaTimeline;
use crate::stage::{StepEvent, StepObserver};

/// Where and when [`RunRecorder`] persists checkpoints.
#[derive(Debug)]
struct CheckpointSink {
    policy: CheckpointPolicy,
    dir: CheckpointDir,
    label: String,
    /// Fault events already seen, so `on_fault_event` policies trigger
    /// only on fresh ones.
    events_seen: usize,
}

/// The standard cross-cutting consumer bundle: δ timeline sampling,
/// survivability ledger, and checkpoint policy, fed from the
/// [`StepObserver`] bus instead of reaching into the loop body.
///
/// Configure the pieces you need (each is optional), then pass
/// `&mut recorder` to [`Simulation::step_observed`]. The sample
/// schedule matches the drivers' historical wiring: a slot is sampled
/// when `slot % sample_every == 0` or when it is the declared final
/// slot, and the baseline (pre-loop) sample is taken by
/// [`prime`](RunRecorder::prime).
///
/// # Example
///
/// ```
/// use cps_field::{PeaksField, Static};
/// use cps_geometry::{GridSpec, Rect};
/// use cps_sim::{scenario, CmaBuilder, DeltaTimeline, RunRecorder};
///
/// let region = Rect::square(100.0).unwrap();
/// let field = Static::new(PeaksField::new(region, 8.0));
/// let start = scenario::grid_start(region, 16);
/// let mut sim = CmaBuilder::new(region, start).run(field).unwrap();
/// let grid = GridSpec::new(region, 41, 41).unwrap();
/// let mut rec = RunRecorder::new()
///     .timeline(DeltaTimeline::for_simulation(&sim), grid)
///     .sample_every(5)
///     .final_slot(10);
/// rec.prime(&sim).unwrap();
/// for _ in 0..10 {
///     sim.step_observed(&mut [&mut rec]).unwrap();
/// }
/// assert_eq!(rec.timeline_ref().unwrap().len(), 3); // slots 0, 5, 10
/// ```
#[derive(Debug, Default)]
pub struct RunRecorder {
    timeline: Option<(DeltaTimeline, GridSpec)>,
    sample_every: u64,
    final_slot: Option<u64>,
    survivability: Option<SurvivabilityTracker>,
    checkpoint: Option<CheckpointSink>,
    last_sample: Option<DeploymentEvaluation>,
    last_checkpoint: Option<PathBuf>,
}

impl RunRecorder {
    /// An empty recorder; configure with the builder methods.
    pub fn new() -> Self {
        RunRecorder {
            timeline: None,
            sample_every: 1,
            final_slot: None,
            survivability: None,
            checkpoint: None,
            last_sample: None,
            last_checkpoint: None,
        }
    }

    /// Records the δ timeline over `grid` on the sample schedule.
    pub fn timeline(mut self, timeline: DeltaTimeline, grid: GridSpec) -> Self {
        self.timeline = Some((timeline, grid));
        self
    }

    /// Samples every `every` slots (default 1; 0 is treated as 1).
    pub fn sample_every(mut self, every: u64) -> Self {
        self.sample_every = every.max(1);
        self
    }

    /// Declares the run's final slot, which is always sampled even if
    /// off-schedule (the drivers' historical behavior).
    pub fn final_slot(mut self, slot: u64) -> Self {
        self.final_slot = Some(slot);
        self
    }

    /// Feeds the survivability ledger every slot (messages, alive
    /// count, components, sampled δ).
    pub fn survivability(mut self, tracker: SurvivabilityTracker) -> Self {
        self.survivability = Some(tracker);
        self
    }

    /// Persists checkpoints to `dir` whenever `policy` says a slot is
    /// due, labeling snapshots with `label` and attaching the
    /// recorder's timeline and survivability state. Call
    /// [`sync_events`](RunRecorder::sync_events) after building when
    /// resuming, so pre-existing fault events don't count as fresh.
    pub fn checkpoints(
        mut self,
        policy: CheckpointPolicy,
        dir: CheckpointDir,
        label: &str,
    ) -> Self {
        self.checkpoint = Some(CheckpointSink {
            policy,
            dir,
            label: label.to_string(),
            events_seen: 0,
        });
        self
    }

    /// Aligns the fresh-fault-event cursor with `sim`'s current event
    /// log (for resumed runs).
    pub fn sync_events<F: TimeVaryingField>(mut self, sim: &Simulation<F>) -> Self {
        if let Some(sink) = self.checkpoint.as_mut() {
            sink.events_seen = sim.fault_events().len();
        }
        self
    }

    /// Takes the baseline sample (slot-start state, before the first
    /// step) and feeds the survivability ledger its first observation.
    ///
    /// # Errors
    ///
    /// Propagates δ-evaluation failures.
    pub fn prime<F: TimeVaryingField + Sync>(
        &mut self,
        sim: &Simulation<F>,
    ) -> Result<Option<DeploymentEvaluation>, CoreError> {
        let sample = match self.timeline.as_mut() {
            Some((timeline, grid)) => Some(timeline.record(sim, grid)?),
            None => None,
        };
        if let Some(tracker) = self.survivability.as_mut() {
            tracker.observe_slot(sim.time(), sim.alive_count(), 1, sample.map(|e| e.delta));
        }
        self.last_sample = sample;
        Ok(sample)
    }

    /// The recorded timeline, if one was configured.
    pub fn timeline_ref(&self) -> Option<&DeltaTimeline> {
        self.timeline.as_ref().map(|(t, _)| t)
    }

    /// Alias for [`timeline_ref`](RunRecorder::timeline_ref) used when
    /// the builder-style name would shadow it.
    pub fn timeline_recorded(&self) -> Option<&DeltaTimeline> {
        self.timeline_ref()
    }

    /// The survivability tracker, if one was configured.
    pub fn survivability_ref(&self) -> Option<&SurvivabilityTracker> {
        self.survivability.as_ref()
    }

    /// Consumes the recorder, returning the timeline and tracker for
    /// report finishing.
    pub fn into_parts(self) -> (Option<DeltaTimeline>, Option<SurvivabilityTracker>) {
        (self.timeline.map(|(t, _)| t), self.survivability)
    }

    /// The δ sample taken at the most recent slot, if that slot was on
    /// the schedule. Cleared by the next unsampled slot.
    pub fn take_sample(&mut self) -> Option<DeploymentEvaluation> {
        self.last_sample.take()
    }

    /// The checkpoint written at the most recent slot, if any.
    pub fn take_checkpoint(&mut self) -> Option<PathBuf> {
        self.last_checkpoint.take()
    }
}

impl<F: TimeVaryingField + Sync> StepObserver<F> for RunRecorder {
    fn on_event(&mut self, event: StepEvent<'_, F>) -> Result<(), CoreError> {
        let StepEvent::SlotEnd { sim, report } = event else {
            return Ok(());
        };
        // Historical observation order: messages first, then the
        // (possibly sampled) slot observation, then the checkpoint so
        // a resume continues the report series without gaps.
        if let Some(tracker) = self.survivability.as_mut() {
            tracker.observe_messages(report.messages, report.retried, report.dropped);
        }
        let slot = sim.slot();
        let due = slot % self.sample_every == 0 || self.final_slot == Some(slot);
        let sample = match (due, self.timeline.as_mut()) {
            (true, Some((timeline, grid))) => Some(timeline.record(sim, grid)?),
            _ => None,
        };
        self.last_sample = sample;
        if let Some(tracker) = self.survivability.as_mut() {
            tracker.observe_slot(
                sim.time(),
                sim.alive_count(),
                report.components,
                sample.map(|e| e.delta),
            );
        }
        if let Some(sink) = self.checkpoint.as_mut() {
            let fresh = sim.fault_events().len() - sink.events_seen;
            sink.events_seen = sim.fault_events().len();
            if sink.policy.due(slot, fresh) {
                let mut snapshot = sim.checkpoint();
                snapshot.label = sink.label.clone();
                if let Some((timeline, _)) = self.timeline.as_ref() {
                    snapshot.attach_timeline(timeline);
                }
                if let Some(tracker) = self.survivability.as_ref() {
                    snapshot.attach_survivability(tracker);
                }
                self.last_checkpoint = Some(sink.dir.store(&snapshot)?);
            }
        }
        Ok(())
    }
}
