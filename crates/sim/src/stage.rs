//! The typed stage pipeline behind [`Simulation::step`] and the
//! [`StepObserver`] event bus.
//!
//! One time slot of the paper's control loop (sense → exchange →
//! optimize → move) runs as a fixed sequence of [`Stage`]s over a
//! shared [`StepCtx`] scratchpad:
//!
//! 1. [`FaultStage`] — slot-start deaths, drawn **serially** from the
//!    slot's dedicated SplitMix64 stream;
//! 2. [`SenseStage`] — the slot-start world snapshot: alive set,
//!    positions, unit-disk graph, component count, and partition
//!    bookkeeping;
//! 3. [`ExchangeStage`] — message-level fault draws (sensor faults per
//!    survivor, then directed link outages per edge) and message
//!    attempt accounting, still serial;
//! 4. [`RecoveryStage`] — relay re-planning overrides for a
//!    partitioned network;
//! 5. [`OptimizeStage`] — the parallel per-node sense/fit/CMA sweep,
//!    speed clamp, LCM cooperative repair, and position application;
//! 6. [`RecordStage`] — clock/slot advance, gossiped curvature scale,
//!    battery drain, and the [`StepReport`].
//!
//! # Determinism
//!
//! The pipeline preserves the engine's headline invariant: results are
//! bit-identical at any thread count, cache on or off, on either
//! quadrature kernel, with or without a fault plan. The argument is
//! the stage ordering itself — every random draw happens in a serial
//! stage (1–3) in a fixed order before any parallel work, and the only
//! parallel stage (5) fans out pure per-node computations whose
//! results are folded back in node order. Observers ride on the
//! [`StepObserver`] bus *outside* the stages and therefore cannot
//! perturb the arithmetic; the built-in [`ObsAdapter`] only feeds
//! `cps-obs`, whose hooks are verified not to touch float state or
//! iteration order.

use std::collections::HashSet;

use cps_core::ostd::{cma_step, lcm, CmaAction, NeighborInfo};
use cps_core::CoreError;
use cps_field::par::map_rows;
use cps_field::TimeVaryingField;
use cps_geometry::Point2;
use cps_network::{articulation_points, UnitDiskGraph};

use crate::engine::{Simulation, StepReport};
use crate::fault::{recovery_overrides, FaultRng, SensorFault};

/// Iterations of the LCM cooperative-repair fixed point per slot.
const LCM_ROUNDS: usize = 16;

/// Shared per-slot scratchpad the stages read and write.
///
/// A context borrows the [`Simulation`] for the duration of one slot;
/// stages populate the slot-start snapshot (alive set, graph), the
/// fault draws, the movement plan, and finally the [`StepReport`].
/// All per-node arrays are indexed by *alive index*; `alive_ids` maps
/// back to stable node ids.
pub struct StepCtx<'s, F> {
    pub(crate) sim: &'s mut Simulation<F>,
    // Slot-start constants.
    pub(crate) rc: f64,
    pub(crate) max_move: f64,
    pub(crate) obs_threads: usize,
    // FaultStage.
    pub(crate) slot_rng: Option<FaultRng>,
    pub(crate) deaths: usize,
    // SenseStage.
    pub(crate) alive_ids: Vec<usize>,
    pub(crate) positions: Vec<Point2>,
    pub(crate) graph: Option<UnitDiskGraph>,
    pub(crate) components: usize,
    // ExchangeStage.
    pub(crate) sensor_faults: Vec<SensorFault>,
    pub(crate) link_down: HashSet<(usize, usize)>,
    pub(crate) retried: usize,
    pub(crate) dropped: usize,
    pub(crate) messages: usize,
    // RecoveryStage.
    pub(crate) recovery: Vec<Option<Point2>>,
    // OptimizeStage.
    pub(crate) adjusted: Vec<Point2>,
    pub(crate) lcm_followers: usize,
    pub(crate) moved: usize,
    pub(crate) max_displacement: f64,
    // RecordStage.
    pub(crate) report: Option<StepReport>,
}

impl<'s, F: TimeVaryingField> StepCtx<'s, F> {
    /// Opens a slot context over `sim`, capturing the slot-start
    /// constants (comm radius, speed budget, thread count).
    pub fn new(sim: &'s mut Simulation<F>) -> Self {
        let rc = sim.config.cps.comm_radius();
        let max_move = sim.config.cps.max_speed() * sim.config.time_step;
        let obs_threads = sim.config.parallelism.threads();
        StepCtx {
            sim,
            rc,
            max_move,
            obs_threads,
            slot_rng: None,
            deaths: 0,
            alive_ids: Vec::new(),
            positions: Vec::new(),
            graph: None,
            components: 0,
            sensor_faults: Vec::new(),
            link_down: HashSet::new(),
            retried: 0,
            dropped: 0,
            messages: 0,
            recovery: Vec::new(),
            adjusted: Vec::new(),
            lcm_followers: 0,
            moved: 0,
            max_displacement: 0.0,
            report: None,
        }
    }

    /// The simulation this slot is running over.
    pub fn simulation(&self) -> &Simulation<F> {
        self.sim
    }

    /// Slot-start positions of the alive nodes (populated by
    /// [`SenseStage`]).
    pub fn positions(&self) -> &[Point2] {
        &self.positions
    }

    /// Stable node ids of the alive nodes, parallel to
    /// [`positions`](StepCtx::positions).
    pub fn alive_ids(&self) -> &[usize] {
        &self.alive_ids
    }

    /// Connected components of the surviving network at slot start
    /// (populated by [`SenseStage`]).
    pub fn components(&self) -> usize {
        self.components
    }

    /// Consumes the context, yielding the report [`RecordStage`] built.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] when the pipeline never ran a
    /// `RecordStage` (a custom pipeline must end with one).
    pub fn into_report(self) -> Result<StepReport, CoreError> {
        self.report.ok_or(CoreError::InvalidParameter {
            name: "pipeline",
            requirement: "must end with RecordStage to produce a StepReport",
        })
    }
}

/// One typed phase of the per-slot control loop.
///
/// Stages are stateless by convention — all per-slot state lives in
/// the [`StepCtx`], all cross-slot state in the [`Simulation`] — so a
/// [`StagePipeline`] can be rebuilt or reordered without touching
/// engine state. Implementations must uphold the determinism contract
/// of the module docs: random draws only in serial stages, in a fixed
/// order.
pub trait Stage<F: TimeVaryingField + Sync> {
    /// Stable lowercase stage name, used in [`StepEvent`]s and
    /// checkpoint snapshots.
    fn name(&self) -> &'static str;

    /// Runs the stage over the slot context.
    ///
    /// # Errors
    ///
    /// Stage-specific; the pipeline aborts the slot on the first
    /// failing stage.
    fn apply(&mut self, ctx: &mut StepCtx<'_, F>) -> Result<(), CoreError>;
}

/// Stage 1: slot-start deaths (scheduled kills, culls, random deaths,
/// battery exhaustion), drawn serially from this slot's dedicated
/// stream so results stay bit-identical at any thread count.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultStage;

impl<F: TimeVaryingField + Sync> Stage<F> for FaultStage {
    fn name(&self) -> &'static str {
        "fault"
    }

    fn apply(&mut self, ctx: &mut StepCtx<'_, F>) -> Result<(), CoreError> {
        ctx.slot_rng = ctx.sim.fault.as_ref().map(|rt| rt.slot_rng());
        if let (Some(rt), Some(rng)) = (ctx.sim.fault.as_mut(), ctx.slot_rng.as_mut()) {
            let mut alive: Vec<bool> = ctx.sim.nodes.iter().map(|n| n.alive).collect();
            let time = ctx.sim.time;
            ctx.deaths = rt.apply_deaths(rng, &mut alive, time);
            if ctx.deaths > 0 {
                for (node, &a) in ctx.sim.nodes.iter_mut().zip(&alive) {
                    node.alive = a;
                }
            }
        }
        Ok(())
    }
}

/// Stage 2: the slot-start world snapshot — alive set, positions,
/// unit-disk graph, component count — plus partition bookkeeping
/// (`Partition`/`Reconnected` events) when a fault plan is installed.
#[derive(Debug, Clone, Copy, Default)]
pub struct SenseStage;

impl<F: TimeVaryingField + Sync> Stage<F> for SenseStage {
    fn name(&self) -> &'static str {
        "sense"
    }

    fn apply(&mut self, ctx: &mut StepCtx<'_, F>) -> Result<(), CoreError> {
        ctx.alive_ids = ctx
            .sim
            .nodes
            .iter()
            .filter(|n| n.alive)
            .map(|n| n.id)
            .collect();
        ctx.positions = ctx.sim.positions();
        let graph = UnitDiskGraph::new(ctx.positions.clone(), ctx.rc)?;
        ctx.components = graph.component_count();
        if ctx.sim.fault.is_some() {
            let critical = if ctx.components >= 2 {
                articulation_points(&graph).len()
            } else {
                0
            };
            let (components, time) = (ctx.components, ctx.sim.time);
            if let Some(rt) = ctx.sim.fault.as_mut() {
                rt.observe_topology(components, critical, time);
            }
        }
        ctx.graph = Some(graph);
        Ok(())
    }
}

/// Stage 3: the remaining fault draws for the slot (still serial, in
/// the documented order: sensor faults per survivor, then directed
/// link outages per edge) and the slot's message-attempt accounting.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExchangeStage;

impl<F: TimeVaryingField + Sync> Stage<F> for ExchangeStage {
    fn name(&self) -> &'static str {
        "exchange"
    }

    fn apply(&mut self, ctx: &mut StepCtx<'_, F>) -> Result<(), CoreError> {
        let graph = ctx.graph.as_ref().ok_or(CoreError::InvalidParameter {
            name: "pipeline",
            requirement: "SenseStage must run before ExchangeStage",
        })?;
        let mut attempt_messages = None;
        if ctx.sim.fault.is_some() {
            let time = ctx.sim.time;
            let rt = ctx.sim.fault.as_mut().ok_or(CoreError::InvalidParameter {
                name: "pipeline",
                requirement: "fault runtime vanished mid-slot",
            })?;
            let rng = ctx.slot_rng.as_mut().ok_or(CoreError::InvalidParameter {
                name: "pipeline",
                requirement: "FaultStage must run before ExchangeStage",
            })?;
            ctx.sensor_faults = rt.draw_sensor_faults(rng, &ctx.alive_ids, time);
            let (down, re, dr, attempts) = rt.draw_link_outages(rng, graph);
            ctx.link_down = down;
            ctx.retried = re;
            ctx.dropped = dr;
            attempt_messages = Some(attempts);
        }
        // Every alive edge carries the (x, y, G) report both ways; a
        // lossy plan counts attempts (including retries) instead.
        ctx.messages = attempt_messages.unwrap_or_else(|| 2 * graph.edge_count());
        Ok(())
    }
}

/// Stage 4: graceful degradation — when the surviving network is
/// partitioned and the plan's recovery policy is active, relay
/// re-planning picks bridgehead nodes and marches them toward the
/// opposite shore of the partition gap.
#[derive(Debug, Clone, Copy, Default)]
pub struct RecoveryStage;

impl<F: TimeVaryingField + Sync> Stage<F> for RecoveryStage {
    fn name(&self) -> &'static str {
        "recovery"
    }

    fn apply(&mut self, ctx: &mut StepCtx<'_, F>) -> Result<(), CoreError> {
        let graph = ctx.graph.as_ref().ok_or(CoreError::InvalidParameter {
            name: "pipeline",
            requirement: "SenseStage must run before RecoveryStage",
        })?;
        if let Some(rt) = ctx.sim.fault.as_ref() {
            if ctx.components >= 2 && rt.plan.recovery_active() {
                cps_obs::count(cps_obs::Counter::RelayReplans);
                ctx.recovery = recovery_overrides(graph);
            }
        }
        Ok(())
    }
}

/// Stage 5: the movement plan — the parallel per-node
/// sense/fit/CMA-decision sweep, recovery overrides, speed clamp, LCM
/// cooperative repair, and position application.
///
/// Each node's decision depends only on slot-start state, so the sweep
/// fans out across the row-sharded engine; every per-node result is
/// bit-identical at any thread count. The LCM fixed point and the
/// apply pass run serially in node order.
#[derive(Debug, Clone, Copy, Default)]
pub struct OptimizeStage;

impl<F: TimeVaryingField + Sync> Stage<F> for OptimizeStage {
    fn name(&self) -> &'static str {
        "optimize"
    }

    fn apply(&mut self, ctx: &mut StepCtx<'_, F>) -> Result<(), CoreError> {
        let mut cfg = ctx.sim.cma;
        cfg.curvature_scale = ctx.sim.curvature_scale;
        let decisions = {
            let _t = cps_obs::time(cps_obs::Phase::CmaCurvature, ctx.obs_threads);
            let this = &*ctx.sim;
            let positions = &ctx.positions;
            let alive_ids = &ctx.alive_ids;
            let graph = ctx.graph.as_ref().ok_or(CoreError::InvalidParameter {
                name: "pipeline",
                requirement: "SenseStage must run before OptimizeStage",
            })?;
            let cfg = &cfg;
            let sensor_faults = &ctx.sensor_faults;
            let link_down = &ctx.link_down;
            map_rows(alive_ids.len(), this.config.parallelism, move |i| {
                let p = positions[i];
                let fault = sensor_faults.get(i).copied().unwrap_or(SensorFault::None);
                if fault == SensorFault::Dropout {
                    // No reading this slot: keep the previous curvature
                    // estimate, hold position, stay reachable for LCM.
                    return Ok::<_, CoreError>((this.nodes[alive_ids[i]].curvature, None));
                }
                // A stuck sensor keeps reporting the field as of the
                // instant it froze.
                let sense_time = match fault {
                    SensorFault::Stuck { frozen_time } => frozen_time,
                    _ => this.time,
                };
                let sensed = this.sense_at(p, sense_time);
                let neighbors: Vec<NeighborInfo> = graph
                    .neighbors(i)
                    .iter()
                    .filter(|&&j| !link_down.contains(&(j, i)))
                    .map(|&j| NeighborInfo {
                        position: positions[j],
                        curvature: this.nodes[alive_ids[j]].curvature,
                    })
                    .collect();
                let mut value = this.field.value_at(p, sense_time);
                if let SensorFault::Outlier(delta) = fault {
                    // Corrupt only the node's own point reading: the
                    // lattice is intact, so the quadric fit sees a
                    // phantom spike at the center rather than a uniform
                    // (curvature-invisible) offset.
                    value += delta;
                }
                let out = cma_step(p, value, &sensed, &neighbors, cfg)?;
                let dest = match out.action {
                    CmaAction::MoveTo(dest) => Some(dest),
                    _ => None,
                };
                Ok::<_, CoreError>((out.curvature, dest))
            })
        };
        let n = ctx.alive_ids.len();
        let mut desired: Vec<Option<Point2>> = vec![None; n];
        let mut new_curvature = vec![0.0; n];
        for (i, decision) in decisions.into_iter().enumerate() {
            let (curvature, dest) = decision?;
            new_curvature[i] = curvature;
            // A recovery bridgehead overrides its own CMA decision and
            // marches toward the opposite shore of the partition gap.
            let dest = ctx.recovery.get(i).copied().flatten().or(dest);
            if dest.is_some() {
                ctx.messages += 1; // the mover's tell(nd, N) broadcast
            }
            desired[i] = dest;
        }

        // Speed clamp.
        let mut next: Vec<Point2> = ctx.positions.clone();
        {
            let _t = cps_obs::time(cps_obs::Phase::CmaMove, 1);
            for i in 0..n {
                if let Some(dest) = desired[i] {
                    let step = (dest - ctx.positions[i]).clamp_norm(ctx.max_move);
                    next[i] = ctx.sim.region.clamp(ctx.positions[i] + step);
                }
            }
        }

        // LCM — cooperative connectivity maintenance (Table 2 lines
        // 19–21 plus the paper's "move cooperatively" reading). For
        // every mover and each of its slot-start neighbors, the edge
        // must survive the slot unless a bridge neighbor covers it
        // (Fig. 4's rule). Repairs are two-sided: the stranded
        // neighbor closes toward the mover's destination, and if it
        // cannot keep up within its speed budget the mover backs off
        // its own move — a follower chasing a runaway at equal speed
        // would otherwise never re-connect. Iterated to a fixed point
        // because repairs can invalidate other edges.
        let mut adjusted = next.clone();
        let graph = ctx.graph.as_ref().ok_or(CoreError::InvalidParameter {
            name: "pipeline",
            requirement: "SenseStage must run before OptimizeStage",
        })?;
        let (positions, rc, max_move) = (&ctx.positions, ctx.rc, ctx.max_move);
        let mut lcm_followers = 0usize;
        let _lcm_timer = cps_obs::time(cps_obs::Phase::CmaForce, 1);
        for _ in 0..LCM_ROUNDS {
            let mut changed = false;
            for i in 0..n {
                // Every displaced node broadcasts tell(): CMA movers and
                // nodes displaced by earlier LCM repairs alike — a
                // dragged node endangers its own star too.
                if adjusted[i].distance(positions[i]) <= 1e-12 {
                    continue;
                }
                let nbrs = graph.neighbors(i);
                for &j in nbrs {
                    if ctx.link_down.contains(&(i, j)) {
                        // The mover's tell() never reached this
                        // neighbor: no cooperative repair on this edge
                        // this slot.
                        continue;
                    }
                    if adjusted[j].distance(adjusted[i]) <= rc {
                        continue;
                    }
                    // Bridged through another of i's former neighbors,
                    // at planned positions?
                    let bridged = nbrs.iter().any(|&k| {
                        k != j
                            && adjusted[j].distance(adjusted[k]) <= rc
                            && adjusted[k].distance(adjusted[i]) <= rc
                    });
                    if bridged {
                        continue;
                    }
                    // The neighbor closes toward the mover's planned
                    // position, within its speed budget.
                    let target = lcm::follow_position(adjusted[j], adjusted[i], 0.98 * rc);
                    let step = (target - positions[j]).clamp_norm(max_move);
                    adjusted[j] = ctx.sim.region.clamp(positions[j] + step);
                    lcm_followers += 1;
                    changed = true;
                    if adjusted[j].distance(adjusted[i]) > rc {
                        // Still out of reach: the mover gives up part of
                        // its own progress until the edge holds.
                        let mut t: f64 = 1.0;
                        while t > 0.0 {
                            t -= 0.25;
                            let candidate = positions[i].lerp(adjusted[i], t.max(0.0));
                            if candidate.distance(adjusted[j]) <= 0.98 * rc {
                                adjusted[i] = candidate;
                                break;
                            }
                        }
                        if adjusted[i].distance(adjusted[j]) > rc {
                            adjusted[i] = positions[i];
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        drop(_lcm_timer);
        ctx.lcm_followers = lcm_followers;

        // Apply.
        let _apply_timer = cps_obs::time(cps_obs::Phase::CmaMove, 1);
        for (i, &id) in ctx.alive_ids.iter().enumerate() {
            let node = &mut ctx.sim.nodes[id];
            let d = node.position.distance(adjusted[i]);
            if d > 1e-12 {
                ctx.moved += 1;
            }
            ctx.max_displacement = ctx.max_displacement.max(d);
            node.traveled += d;
            node.position = adjusted[i];
            node.curvature = new_curvature[i];
        }
        ctx.adjusted = adjusted;
        Ok(())
    }
}

/// Stage 6: end-of-slot bookkeeping — clock and slot advance, the
/// decaying gossiped curvature-scale update, battery drain per
/// survivor, the fault stream's slot cursor, and the [`StepReport`].
#[derive(Debug, Clone, Copy, Default)]
pub struct RecordStage;

impl<F: TimeVaryingField + Sync> Stage<F> for RecordStage {
    fn name(&self) -> &'static str {
        "record"
    }

    fn apply(&mut self, ctx: &mut StepCtx<'_, F>) -> Result<(), CoreError> {
        ctx.sim.time += ctx.sim.config.time_step;
        ctx.sim.slot += 1;
        // Update the gossiped curvature reference: running maximum with
        // a slow decay so the scale tracks the evolving field.
        let observed = ctx
            .sim
            .nodes
            .iter()
            .filter(|n| n.alive)
            .map(|n| n.curvature.abs())
            .fold(0.0f64, f64::max);
        ctx.sim.curvature_scale = observed.max(0.98 * ctx.sim.curvature_scale);

        // End-of-slot fault accounting: battery drain per survivor and
        // the slot counter for the next stream.
        if let Some(rt) = ctx.sim.fault.as_mut() {
            for (i, &id) in ctx.alive_ids.iter().enumerate() {
                rt.drain_battery(id, ctx.positions[i].distance(ctx.adjusted[i]));
            }
            rt.slot += 1;
        }

        ctx.report = Some(StepReport {
            time: ctx.sim.time,
            moved: ctx.moved,
            lcm_followers: ctx.lcm_followers,
            max_displacement: ctx.max_displacement,
            messages: ctx.messages,
            deaths: ctx.deaths,
            retried: ctx.retried,
            dropped: ctx.dropped,
            components: ctx.components,
        });
        Ok(())
    }
}

/// The standard pipeline's stage names, in execution order — the
/// sequence [`StagePipeline::standard`] runs and the one checkpoint
/// snapshots record and validate on restore.
pub const STANDARD_STAGES: [&str; 6] = [
    "fault", "sense", "exchange", "recovery", "optimize", "record",
];

/// An ordered sequence of [`Stage`]s driving one slot.
pub struct StagePipeline<F> {
    stages: Vec<Box<dyn Stage<F>>>,
}

impl<F: TimeVaryingField + Sync> StagePipeline<F> {
    /// The engine's standard six-stage pipeline, in the fixed order
    /// the determinism argument relies on (see the module docs).
    pub fn standard() -> Self {
        StagePipeline {
            stages: vec![
                Box::new(FaultStage),
                Box::new(SenseStage),
                Box::new(ExchangeStage),
                Box::new(RecoveryStage),
                Box::new(OptimizeStage),
                Box::new(RecordStage),
            ],
        }
    }

    /// A custom stage sequence. The last stage must populate the
    /// [`StepReport`] (end with a [`RecordStage`] unless a custom
    /// stage takes over that duty).
    pub fn custom(stages: Vec<Box<dyn Stage<F>>>) -> Self {
        StagePipeline { stages }
    }

    /// Stage names, in execution order.
    pub fn stage_names(&self) -> Vec<&'static str> {
        self.stages.iter().map(|s| s.name()).collect()
    }

    /// The standard pipeline's stage names (what
    /// [`standard`](StagePipeline::standard) runs), without building
    /// the pipeline — used by checkpoint snapshots.
    pub fn standard_names() -> &'static [&'static str] {
        &STANDARD_STAGES
    }

    /// Runs every stage in order over `ctx`, emitting
    /// [`StepEvent::StageStart`]/[`StepEvent::StageEnd`] around each
    /// on the bus.
    ///
    /// # Errors
    ///
    /// The first failing stage (or observer) aborts the slot.
    pub fn run(
        &mut self,
        ctx: &mut StepCtx<'_, F>,
        bus: &mut EventBus<'_, '_, F>,
    ) -> Result<(), CoreError> {
        for stage in &mut self.stages {
            let name = stage.name();
            bus.emit(StepEvent::StageStart { stage: name })?;
            stage.apply(ctx)?;
            bus.emit(StepEvent::StageEnd { stage: name })?;
        }
        Ok(())
    }
}

impl<F> std::fmt::Debug for StagePipeline<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StagePipeline")
            .field("stages", &self.stages.len())
            .finish()
    }
}

/// One event on the [`StepObserver`] bus.
///
/// The taxonomy is deliberately small: slot brackets carrying the
/// engine clock, and stage brackets carrying the stage name. Everything
/// an observer could want to *measure* is reachable from the
/// [`SlotEnd`](StepEvent::SlotEnd) borrow of the stepped simulation —
/// the bus hands out read access instead of copying state it cannot
/// predict a consumer needs.
pub enum StepEvent<'a, F> {
    /// A slot is about to run; `slot`/`time` are its start values.
    SlotStart {
        /// The slot index about to execute.
        slot: u64,
        /// Simulation clock at slot start, minutes.
        time: f64,
    },
    /// A stage is about to run.
    StageStart {
        /// [`Stage::name`] of the stage.
        stage: &'static str,
    },
    /// A stage finished successfully.
    StageEnd {
        /// [`Stage::name`] of the stage.
        stage: &'static str,
    },
    /// The slot completed; the simulation has advanced.
    SlotEnd {
        /// The stepped simulation (read access for δ measurements,
        /// survivability observation, checkpointing).
        sim: &'a Simulation<F>,
        /// What the slot did.
        report: &'a StepReport,
    },
}

impl<F> Clone for StepEvent<'_, F> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<F> Copy for StepEvent<'_, F> {}

impl<F> std::fmt::Debug for StepEvent<'_, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StepEvent::SlotStart { slot, time } => f
                .debug_struct("SlotStart")
                .field("slot", slot)
                .field("time", time)
                .finish(),
            StepEvent::StageStart { stage } => {
                f.debug_struct("StageStart").field("stage", stage).finish()
            }
            StepEvent::StageEnd { stage } => {
                f.debug_struct("StageEnd").field("stage", stage).finish()
            }
            StepEvent::SlotEnd { report, .. } => {
                f.debug_struct("SlotEnd").field("report", report).finish()
            }
        }
    }
}

/// A cross-cutting consumer of per-slot [`StepEvent`]s.
///
/// Observers run *between* stages, never inside them, so they see a
/// consistent world and cannot perturb the engine's arithmetic. An
/// observer error aborts the slot (e.g. a checkpoint write failure).
pub trait StepObserver<F> {
    /// Handles one bus event.
    ///
    /// # Errors
    ///
    /// Observer-specific; a failure aborts the slot.
    fn on_event(&mut self, event: StepEvent<'_, F>) -> Result<(), CoreError>;
}

/// The bus [`Simulation::step_with`] feeds: the built-in
/// [`ObsAdapter`] plus the caller's observers, in order.
pub struct EventBus<'a, 'o, F> {
    adapter: ObsAdapter,
    external: &'a mut [&'o mut dyn StepObserver<F>],
}

impl<'a, 'o, F> EventBus<'a, 'o, F> {
    /// Builds a bus over the caller's observers.
    pub fn new(external: &'a mut [&'o mut dyn StepObserver<F>]) -> Self {
        EventBus {
            adapter: ObsAdapter::default(),
            external,
        }
    }

    /// Feeds `event` to the adapter, then to every external observer
    /// in slice order.
    ///
    /// # Errors
    ///
    /// The first failing observer.
    pub fn emit(&mut self, event: StepEvent<'_, F>) -> Result<(), CoreError> {
        self.adapter.observe(event);
        for obs in self.external.iter_mut() {
            obs.on_event(event)?;
        }
        Ok(())
    }
}

/// The built-in `cps-obs` adapter: translates stage brackets into
/// per-stage [`cps_obs::Phase`] timers and counts stepped slots.
/// Installed on every bus — its hooks are no-ops while the collector
/// is disabled, and never perturb results while enabled.
#[derive(Debug, Default)]
pub struct ObsAdapter {
    timer: Option<cps_obs::PhaseTimer>,
}

impl ObsAdapter {
    fn observe<F>(&mut self, event: StepEvent<'_, F>) {
        match event {
            StepEvent::StageStart { stage } => {
                self.timer = Self::phase_for(stage).map(|p| cps_obs::time(p, 1));
            }
            StepEvent::StageEnd { .. } => {
                self.timer = None;
            }
            StepEvent::SlotEnd { .. } => {
                cps_obs::count(cps_obs::Counter::SimSteps);
            }
            StepEvent::SlotStart { .. } => {}
        }
    }

    /// The standard stages' phase keys; custom stages go untimed.
    fn phase_for(stage: &str) -> Option<cps_obs::Phase> {
        Some(match stage {
            "fault" => cps_obs::Phase::StageFault,
            "sense" => cps_obs::Phase::StageSense,
            "exchange" => cps_obs::Phase::StageExchange,
            "recovery" => cps_obs::Phase::StageRecovery,
            "optimize" => cps_obs::Phase::StageOptimize,
            "record" => cps_obs::Phase::StageRecord,
            _ => return None,
        })
    }
}
