//! Trace sampling — the paper's future-work item 2.
//!
//! "This work focuses on point sampling. In order to save more CPS
//! nodes and abstract accurately, trace sampling of mobile nodes is
//! worth to further study." (Section 7.)
//!
//! Mobile nodes measure continuously while they travel; every position
//! along a node's path is a free extra sample. [`PathSampleBank`]
//! accumulates timestamped path samples and serves the *fresh* subset
//! (stale samples of a time-varying field mislead the reconstruction),
//! and [`reconstruct_with_path_samples`] folds them into the Delaunay
//! surface alongside the nodes' current positions.

use cps_core::CoreError;
use cps_field::{ReconstructedSurface, TimeVaryingField};
use cps_geometry::{Point2, Rect};

use crate::Simulation;

/// One timestamped measurement taken along a node's path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathSample {
    /// When the sample was taken (simulation minutes).
    pub time: f64,
    /// Where it was taken.
    pub position: Point2,
    /// The measured value.
    pub value: f64,
}

/// A bounded store of path samples with recency queries.
///
/// # Example
///
/// ```
/// use cps_sim::{PathSample, PathSampleBank};
/// use cps_geometry::Point2;
///
/// let mut bank = PathSampleBank::new(100);
/// bank.push(PathSample { time: 0.0, position: Point2::new(1.0, 1.0), value: 5.0 });
/// bank.push(PathSample { time: 9.0, position: Point2::new(2.0, 1.0), value: 6.0 });
/// // Only the sample from the last 5 minutes is "fresh" at t = 10.
/// assert_eq!(bank.fresh(10.0, 5.0).count(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PathSampleBank {
    samples: Vec<PathSample>,
    capacity: usize,
}

impl PathSampleBank {
    /// Creates a bank holding at most `capacity` samples (oldest are
    /// evicted first).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "bank capacity must be positive");
        PathSampleBank {
            samples: Vec::new(),
            capacity,
        }
    }

    /// Number of stored samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the bank holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Adds a sample, evicting the oldest when full.
    pub fn push(&mut self, sample: PathSample) {
        if self.samples.len() == self.capacity {
            // Samples arrive in time order in practice; evict index 0.
            self.samples.remove(0);
        }
        self.samples.push(sample);
    }

    /// Records the current position and measurement of every alive node
    /// in `sim` — call once per simulation step to sample along paths.
    pub fn record<F: TimeVaryingField>(&mut self, sim: &Simulation<F>) {
        let t = sim.time();
        for node in sim.nodes().iter().filter(|n| n.alive) {
            let value = sim.field().value_at(node.position, t);
            self.push(PathSample {
                time: t,
                position: node.position,
                value,
            });
        }
    }

    /// Iterates over samples no older than `max_age` at time `now`.
    pub fn fresh(&self, now: f64, max_age: f64) -> impl Iterator<Item = &PathSample> {
        self.samples
            .iter()
            .filter(move |s| now - s.time <= max_age + 1e-12)
    }
}

/// Builds the reconstruction surface from the nodes' *current* samples
/// plus every fresh path sample in the bank — the trace-sampling
/// upgrade over point sampling. Near-duplicate positions are merged by
/// the triangulation (first sample wins, i.e. the current node sample,
/// which is the most recent).
///
/// # Errors
///
/// Propagates reconstruction errors (fewer than 3 distinct positions).
pub fn reconstruct_with_path_samples<F: TimeVaryingField>(
    sim: &Simulation<F>,
    bank: &PathSampleBank,
    max_age: f64,
) -> Result<ReconstructedSurface, CoreError> {
    let region: Rect = sim.region();
    let now = sim.time();
    let mut positions = sim.positions();
    let mut values: Vec<f64> = positions
        .iter()
        .map(|&p| sim.field().value_at(p, now))
        .collect();
    for s in bank.fresh(now, max_age) {
        positions.push(s.position);
        values.push(s.value);
    }
    ReconstructedSurface::from_samples(region, &positions, &values).map_err(CoreError::from)
}

/// Measures how much trace sampling helps right now: δ of the
/// point-sample reconstruction minus δ of the path-enriched one
/// (positive = path samples help), both against the field frozen at
/// the current time.
///
/// # Errors
///
/// Propagates reconstruction errors.
pub fn path_sampling_gain<F: TimeVaryingField + Sync>(
    sim: &Simulation<F>,
    bank: &PathSampleBank,
    max_age: f64,
    grid: &cps_geometry::GridSpec,
) -> Result<(f64, f64), CoreError> {
    let frozen = sim.field().at_time(sim.time());
    let point_eval = cps_core::DeltaEvaluator::new(&frozen, grid, sim.config().cps.comm_radius())
        .parallelism(cps_field::Parallelism::serial())
        .evaluate(&sim.positions())?;
    let enriched = reconstruct_with_path_samples(sim, bank, max_age)?;
    let enriched_delta = cps_field::delta::volume_difference(&frozen, &enriched, grid);
    Ok((point_eval.delta, enriched_delta))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{scenario, CmaBuilder};
    use cps_field::{GaussianBlob, GaussianMixtureField, Static};
    use cps_geometry::GridSpec;

    fn sample(t: f64, x: f64) -> PathSample {
        PathSample {
            time: t,
            position: Point2::new(x, 0.0),
            value: x,
        }
    }

    #[test]
    fn bank_evicts_oldest_and_filters_by_age() {
        let mut bank = PathSampleBank::new(3);
        for i in 0..5 {
            bank.push(sample(i as f64, i as f64));
        }
        assert_eq!(bank.len(), 3);
        // Oldest two evicted: times 2, 3, 4 remain.
        assert_eq!(bank.fresh(4.0, 1.0).count(), 2); // t = 3, 4
        assert_eq!(bank.fresh(4.0, 100.0).count(), 3);
        assert!(!bank.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        PathSampleBank::new(0);
    }

    #[test]
    fn path_samples_improve_the_reconstruction_of_a_moving_swarm() {
        // A bumpy field and a small swarm: after some walking, the
        // path-enriched reconstruction must beat point sampling.
        let region = Rect::square(60.0).unwrap();
        let field = Static::new(GaussianMixtureField::new(
            1.0,
            vec![
                GaussianBlob::isotropic(Point2::new(20.0, 40.0), 20.0, 5.0),
                GaussianBlob::isotropic(Point2::new(42.0, 20.0), 15.0, 6.0),
            ],
        ));
        let start = scenario::grid_start_spaced(region, 16, 9.3).unwrap();
        let mut sim = CmaBuilder::new(region, start).run(field).unwrap();
        let mut bank = PathSampleBank::new(10_000);
        bank.record(&sim);
        for _ in 0..20 {
            sim.step().unwrap();
            bank.record(&sim);
        }
        let grid = GridSpec::new(region, 31, 31).unwrap();
        let (point_delta, path_delta) =
            path_sampling_gain(&sim, &bank, f64::INFINITY, &grid).unwrap();
        assert!(
            path_delta < point_delta,
            "path samples should help: {path_delta} vs {point_delta}"
        );
    }

    #[test]
    fn record_skips_failed_nodes() {
        let region = Rect::square(60.0).unwrap();
        let field = Static::new(GaussianMixtureField::new(1.0, vec![]));
        let start = scenario::grid_start_spaced(region, 9, 9.3).unwrap();
        let mut sim = CmaBuilder::new(region, start).run(field).unwrap();
        sim.fail_node(0).unwrap();
        let mut bank = PathSampleBank::new(100);
        bank.record(&sim);
        assert_eq!(bank.len(), 8);
    }
}
