//! The unified [`Optimizer`] trait over the paper's two algorithms —
//! CMA (the mobile OSTD swarm) and FRA (the static OSD refinement) —
//! plus the [`HybridOptimizer`] composing them, all configured through
//! one [`EngineBuilder`].
//!
//! The paper treats its two problems separately: OSD places `k` static
//! nodes against a frozen reference surface (FRA), OSTD steers `k`
//! mobile nodes across the evolving field (CMA). The trait unifies
//! their contract — *produce a deployed [`Simulation`] and how it got
//! there* — so drivers can select an algorithm at runtime
//! (`cps simulate --optimizer cma|fra|hybrid`) and the hybrid can run
//! FRA refinement for the initial placement and CMA polish for the
//! mission, the two algorithms finally composable in one run.
//!
//! Composability is exact at the endpoints, and property-tested:
//! a hybrid with zero polish minutes is bit-identical to pure FRA, and
//! a hybrid with FRA refinement disabled is bit-identical to pure CMA.

use cps_core::osd::FraBuilder;
use cps_core::{CoreError, EvalOptions};
use cps_field::TimeVaryingField;
use cps_geometry::{GridSpec, Point2, Rect};

use crate::engine::{CmaBuilder, SimConfig, Simulation};
use crate::fault::FaultPlan;
use crate::scenario;

/// Which deployment optimizer an [`EngineBuilder`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OptimizerKind {
    /// The paper's OSTD loop: evenly spaced grid start, CMA movement
    /// for the configured mission length.
    #[default]
    Cma,
    /// The paper's OSD algorithm: FRA refinement against the field
    /// frozen at start time; the deployment then holds position.
    Fra,
    /// FRA refinement for the initial placement, then CMA polish for
    /// the mission.
    Hybrid,
}

impl std::str::FromStr for OptimizerKind {
    type Err = CoreError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "cma" => Ok(OptimizerKind::Cma),
            "fra" => Ok(OptimizerKind::Fra),
            "hybrid" => Ok(OptimizerKind::Hybrid),
            _ => Err(CoreError::InvalidParameter {
                name: "optimizer",
                requirement: "must be cma, fra, or hybrid",
            }),
        }
    }
}

/// What an [`Optimizer`] produced: the deployed (and possibly
/// polished) simulation plus placement provenance.
#[derive(Debug)]
pub struct OptimizerRun<F> {
    /// The simulation after deployment and any polish steps; step it
    /// further, checkpoint it, or evaluate it like any other.
    pub sim: Simulation<F>,
    /// Positions chosen by FRA error refinement (0 for pure CMA).
    pub refined: usize,
    /// Positions spent by FRA on connectivity relays (0 for pure CMA).
    pub relays: usize,
    /// CMA polish slots stepped by the optimizer itself.
    pub steps: u64,
    /// [`Optimizer::name`] of the algorithm that ran.
    pub optimizer: &'static str,
}

/// A deployment optimizer: given a field, produce a deployed
/// [`Simulation`].
///
/// Implemented by [`CmaOptimizer`], [`FraOptimizer`], and
/// [`HybridOptimizer`]; [`EngineBuilder::run`] dispatches between
/// them.
pub trait Optimizer<F: TimeVaryingField + Sync> {
    /// Stable lowercase algorithm name (the CLI `--optimizer` value).
    fn name(&self) -> &'static str;

    /// Runs the optimizer over `field`.
    ///
    /// # Errors
    ///
    /// Placement errors (budget, invalid geometry) and stepping errors.
    fn run(&self, field: F) -> Result<OptimizerRun<F>, CoreError>;
}

/// Shared configuration for every optimizer: region, fleet size, node
/// capabilities, evaluation options, clock, mission length, and the
/// algorithm selection. The previously separate [`CmaBuilder`] and
/// [`FraBuilder`] surfaces converge here — the builder constructs
/// whichever the [`OptimizerKind`] needs.
#[derive(Debug, Clone)]
pub struct EngineBuilder {
    region: Rect,
    k: usize,
    config: SimConfig,
    eval: EvalOptions,
    start_time: f64,
    minutes: u64,
    faults: Option<FaultPlan>,
    grid_resolution: usize,
    grid_spacing: Option<f64>,
    kind: OptimizerKind,
    fra_refinement: bool,
}

impl EngineBuilder {
    /// A builder for `k` nodes inside `region`, defaulting to the CMA
    /// optimizer, default [`SimConfig`], clock at 0, no mission steps.
    pub fn new(region: Rect, k: usize) -> Self {
        EngineBuilder {
            region,
            k,
            config: SimConfig::default(),
            eval: EvalOptions::default(),
            start_time: 0.0,
            minutes: 0,
            faults: None,
            grid_resolution: 101,
            grid_spacing: None,
            kind: OptimizerKind::Cma,
            fra_refinement: true,
        }
    }

    /// Selects the algorithm (default [`OptimizerKind::Cma`]).
    pub fn optimizer(mut self, kind: OptimizerKind) -> Self {
        self.kind = kind;
        self
    }

    /// Sets the simulation parameters (node capabilities, time step,
    /// sensing lattice, thread policy) — the [`CmaBuilder::config`]
    /// counterpart.
    pub fn config(mut self, config: SimConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the shared evaluation options (thread policy, tile cache,
    /// quadrature kernel) — the counterpart of both
    /// [`CmaBuilder::evaluator`] and [`FraBuilder::evaluator`].
    pub fn evaluator(mut self, opts: EvalOptions) -> Self {
        self.config.parallelism = opts.parallelism;
        self.eval = opts;
        self
    }

    /// Starts the clock at `t` minutes; FRA's reference surface is the
    /// field frozen at this instant.
    pub fn start_time(mut self, t: f64) -> Self {
        self.start_time = t;
        self
    }

    /// Mission length in slots for the optimizers that move (CMA
    /// movement, hybrid polish). Pure FRA ignores it.
    pub fn minutes(mut self, minutes: u64) -> Self {
        self.minutes = minutes;
        self
    }

    /// Installs a deterministic fault schedule for the mission — the
    /// [`CmaBuilder::faults`] counterpart.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Grid resolution of FRA's local-error grid (default 101).
    pub fn grid_resolution(mut self, resolution: usize) -> Self {
        self.grid_resolution = resolution;
        self
    }

    /// Spacing of the CMA grid start (default `0.93 × Rc`, the paper's
    /// evenly-spread deployment).
    pub fn grid_spacing(mut self, spacing: f64) -> Self {
        self.grid_spacing = Some(spacing);
        self
    }

    /// Enables or disables the hybrid's FRA refinement placement
    /// (default on). With refinement off the hybrid starts from the
    /// CMA grid start — bit-identical to pure CMA.
    pub fn fra_refinement(mut self, refine: bool) -> Self {
        self.fra_refinement = refine;
        self
    }

    /// Whether this configuration places via FRA (as opposed to the
    /// CMA grid start).
    fn places_with_fra(&self) -> bool {
        match self.kind {
            OptimizerKind::Cma => false,
            OptimizerKind::Fra => true,
            OptimizerKind::Hybrid => self.fra_refinement,
        }
    }

    /// Computes the initial placement without deploying: FRA positions
    /// (with provenance) for the FRA-placing kinds, the evenly spaced
    /// grid start otherwise.
    ///
    /// # Errors
    ///
    /// FRA budget/geometry errors, or an invalid grid spacing.
    pub fn placement<F: TimeVaryingField + Sync>(
        &self,
        field: &F,
    ) -> Result<(Vec<Point2>, usize, usize), CoreError> {
        if self.places_with_fra() {
            let grid = GridSpec::new(self.region, self.grid_resolution, self.grid_resolution)?;
            let frozen = field.at_time(self.start_time);
            let result = FraBuilder::new(self.k, self.config.cps.comm_radius())
                .grid(grid)
                .evaluator(self.eval)
                .run(&frozen)?;
            Ok((result.positions, result.refined, result.relays))
        } else {
            let spacing = self
                .grid_spacing
                .unwrap_or(0.93 * self.config.cps.comm_radius());
            Ok((
                scenario::grid_start_spaced(self.region, self.k, spacing)?,
                0,
                0,
            ))
        }
    }

    /// The number of polish slots this configuration steps.
    fn polish_slots(&self) -> u64 {
        match self.kind {
            OptimizerKind::Fra => 0,
            OptimizerKind::Cma | OptimizerKind::Hybrid => self.minutes,
        }
    }

    /// Runs the selected optimizer over `field`: placement, deploy,
    /// polish.
    ///
    /// # Errors
    ///
    /// Placement, deployment-validation, and stepping errors.
    pub fn run<F: TimeVaryingField + Sync>(&self, field: F) -> Result<OptimizerRun<F>, CoreError> {
        let (positions, refined, relays) = self.placement(&field)?;
        let mut builder = CmaBuilder::new(self.region, positions)
            .config(self.config)
            .evaluator(self.eval)
            .start_time(self.start_time);
        if let Some(plan) = &self.faults {
            builder = builder.faults(plan.clone());
        }
        let mut sim = builder.run(field)?;
        let steps = self.polish_slots();
        for _ in 0..steps {
            sim.step()?;
        }
        Ok(OptimizerRun {
            sim,
            refined,
            relays,
            steps,
            optimizer: match self.kind {
                OptimizerKind::Cma => "cma",
                OptimizerKind::Fra => "fra",
                OptimizerKind::Hybrid => "hybrid",
            },
        })
    }
}

/// The paper's OSTD algorithm behind the [`Optimizer`] trait: evenly
/// spaced grid start, CMA movement for the mission length.
#[derive(Debug, Clone)]
pub struct CmaOptimizer {
    builder: EngineBuilder,
}

impl CmaOptimizer {
    /// Wraps `builder` with the CMA algorithm pinned.
    pub fn new(builder: EngineBuilder) -> Self {
        CmaOptimizer {
            builder: builder.optimizer(OptimizerKind::Cma),
        }
    }
}

impl<F: TimeVaryingField + Sync> Optimizer<F> for CmaOptimizer {
    fn name(&self) -> &'static str {
        "cma"
    }

    fn run(&self, field: F) -> Result<OptimizerRun<F>, CoreError> {
        self.builder.run(field)
    }
}

/// The paper's OSD algorithm behind the [`Optimizer`] trait: FRA
/// refinement against the frozen reference, then hold position.
#[derive(Debug, Clone)]
pub struct FraOptimizer {
    builder: EngineBuilder,
}

impl FraOptimizer {
    /// Wraps `builder` with the FRA algorithm pinned.
    pub fn new(builder: EngineBuilder) -> Self {
        FraOptimizer {
            builder: builder.optimizer(OptimizerKind::Fra),
        }
    }
}

impl<F: TimeVaryingField + Sync> Optimizer<F> for FraOptimizer {
    fn name(&self) -> &'static str {
        "fra"
    }

    fn run(&self, field: F) -> Result<OptimizerRun<F>, CoreError> {
        self.builder.run(field)
    }
}

/// FRA refinement for placement, CMA polish for the mission.
#[derive(Debug, Clone)]
pub struct HybridOptimizer {
    builder: EngineBuilder,
}

impl HybridOptimizer {
    /// Wraps `builder` with the hybrid algorithm pinned.
    pub fn new(builder: EngineBuilder) -> Self {
        HybridOptimizer {
            builder: builder.optimizer(OptimizerKind::Hybrid),
        }
    }
}

impl<F: TimeVaryingField + Sync> Optimizer<F> for HybridOptimizer {
    fn name(&self) -> &'static str {
        "hybrid"
    }

    fn run(&self, field: F) -> Result<OptimizerRun<F>, CoreError> {
        self.builder.run(field)
    }
}
