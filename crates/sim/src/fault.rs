//! Deterministic fault injection for the simulation loop.
//!
//! A [`FaultPlan`] is a seedable schedule of everything that can go
//! wrong in a deployed swarm: node death (scheduled, random, mass cull,
//! or battery depletion), transient sensor dropouts, corrupted
//! readings (outliers and stuck-at sensors), and lossy single-hop
//! links with bounded retry. The plan is pure data — the engine
//! ([`Simulation::step`](crate::Simulation::step)) threads it through
//! each slot's sense → exchange → CMA → LCM phases.
//!
//! # Determinism
//!
//! Every random draw comes from a dedicated SplitMix64 stream seeded
//! from `(plan seed, slot index)`, independent of any other randomness
//! in the workspace. Within a slot the draw order is fixed:
//!
//! 1. deaths, in ascending node-id order (scheduled kills and battery
//!    depletion consume no draws; culls and per-slot random deaths do);
//! 2. sensor faults per surviving node in ascending node-id order
//!    (dropout, then stuck-at, then outlier);
//! 3. link outages per undirected edge in ascending `(i, j)` order,
//!    low→high direction first, one draw per delivery attempt.
//!
//! Two runs with the same plan, start state, and field are therefore
//! bit-identical at any thread count: all draws happen serially before
//! the parallel sense phase. A plan with every rate at zero and no
//! scheduled events ([`FaultPlan::is_zero`]) never alters a single
//! float operation, so the zero-fault path is bit-identical to running
//! without a plan at all (property-tested).

use std::collections::HashSet;

use cps_core::CoreError;
use cps_geometry::Point2;
use cps_network::{RelayPlan, UnitDiskGraph};

/// When the engine re-plans relays to heal a partitioned swarm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryPolicy {
    /// Heal partitions iff the plan injects any fault (the default):
    /// a zero-fault plan stays bit-identical to a fault-free run.
    #[default]
    Auto,
    /// Always steer bridgehead nodes across partition gaps.
    On,
    /// Never re-plan; partitions persist until the CMA drifts nodes
    /// back into range on its own.
    Off,
}

/// Battery model: every node starts with the same budget and spends it
/// per slot and per metre moved; an exhausted node dies at the start of
/// the next slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatteryModel {
    /// Initial energy budget per node (abstract units).
    pub capacity: f64,
    /// Energy spent per slot just by being on.
    pub idle_drain: f64,
    /// Energy spent per metre of movement.
    pub move_drain: f64,
}

/// Why a node died.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeathCause {
    /// A [`FaultPlanBuilder::kill`] or [`FaultPlanBuilder::cull`] entry.
    Scheduled,
    /// The battery model ran the node's budget out.
    Battery,
    /// The per-slot random death rate.
    Random,
}

/// Something the fault subsystem did or observed, for the event log
/// recorded alongside δ(t).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultEvent {
    /// A node died at the start of the slot.
    Death {
        /// Slot index (steps since construction).
        slot: u64,
        /// Simulation time at the start of the slot, minutes.
        time: f64,
        /// Stable node id.
        node: usize,
        /// Why it died.
        cause: DeathCause,
    },
    /// The surviving graph split into more than one component.
    Partition {
        /// Slot index.
        slot: u64,
        /// Simulation time, minutes.
        time: f64,
        /// Component count observed.
        components: usize,
        /// Articulation points of the surviving graph — the nodes whose
        /// further loss would fragment it again.
        critical: usize,
    },
    /// The surviving graph is one component again.
    Reconnected {
        /// Slot index.
        slot: u64,
        /// Simulation time, minutes.
        time: f64,
        /// Slots spent partitioned.
        after_slots: u64,
    },
}

/// A deterministic, seedable fault schedule. Build one with
/// [`FaultPlan::builder`] or parse the CLI spec syntax with
/// [`FaultPlan::parse`], then install it via
/// [`CmaBuilder::faults`](crate::CmaBuilder::faults).
///
/// # Example
///
/// ```
/// use cps_sim::FaultPlan;
///
/// let plan = FaultPlan::builder()
///     .seed(42)
///     .kill(7, 30)
///     .link_loss(0.2, 2)
///     .build()
///     .unwrap();
/// assert!(!plan.is_zero());
/// let parsed = FaultPlan::parse("seed=42,kill=7@30,loss=0.2:2").unwrap();
/// assert_eq!(plan, parsed);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    // Fields are crate-visible for the checkpoint encoder
    // (`crate::checkpoint`); the decoder rebuilds plans through
    // `FaultPlanBuilder`, so restored plans re-pass validation.
    pub(crate) seed: u64,
    pub(crate) kills: Vec<(u64, usize)>,
    pub(crate) culls: Vec<(u64, f64)>,
    pub(crate) death_rate: f64,
    pub(crate) battery: Option<BatteryModel>,
    pub(crate) dropout_rate: f64,
    pub(crate) outlier_rate: f64,
    pub(crate) outlier_magnitude: f64,
    pub(crate) stuck_rate: f64,
    pub(crate) stuck_slots: u64,
    pub(crate) link_loss: f64,
    pub(crate) link_retries: u32,
    pub(crate) recovery: RecoveryPolicy,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            kills: Vec::new(),
            culls: Vec::new(),
            death_rate: 0.0,
            battery: None,
            dropout_rate: 0.0,
            outlier_rate: 0.0,
            outlier_magnitude: 0.0,
            stuck_rate: 0.0,
            stuck_slots: 0,
            link_loss: 0.0,
            link_retries: 2,
            recovery: RecoveryPolicy::Auto,
        }
    }
}

impl FaultPlan {
    /// A builder with no faults configured.
    pub fn builder() -> FaultPlanBuilder {
        FaultPlanBuilder::default()
    }

    /// The all-zero plan: installing it must leave every simulation
    /// result bit-identical to running without a plan.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan injects no fault at all (rates zero, nothing
    /// scheduled, no battery model).
    pub fn is_zero(&self) -> bool {
        self.kills.is_empty()
            && self.culls.is_empty()
            && self.death_rate == 0.0
            && self.battery.is_none()
            && self.dropout_rate == 0.0
            && self.outlier_rate == 0.0
            && self.stuck_rate == 0.0
            && self.link_loss == 0.0
    }

    /// Whether partition healing is in effect (see [`RecoveryPolicy`]).
    pub fn recovery_active(&self) -> bool {
        match self.recovery {
            RecoveryPolicy::Auto => !self.is_zero(),
            RecoveryPolicy::On => true,
            RecoveryPolicy::Off => false,
        }
    }

    /// The RNG seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Parses the CLI fault spec: comma-separated `key=value` entries.
    ///
    /// | key | value | meaning |
    /// |-----|-------|---------|
    /// | `seed` | `N` | RNG seed |
    /// | `kill` | `NODE@SLOT` | kill one node at a slot (repeatable) |
    /// | `cull` | `FRAC@SLOT` | kill a random fraction of survivors at a slot |
    /// | `death` | `P` | per-node per-slot death probability |
    /// | `battery` | `CAP:IDLE:MOVE` | battery capacity and drain rates |
    /// | `dropout` | `P` | per-node per-slot sensor dropout probability |
    /// | `outlier` | `P:MAG` | per-node per-slot outlier probability and size |
    /// | `stuck` | `P:SLOTS` | stuck-at probability and duration |
    /// | `loss` | `P[:RETRIES]` | per-attempt link loss and retry budget |
    /// | `recovery` | `auto`\|`on`\|`off` | partition-healing policy |
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] on unknown keys, malformed
    /// numbers, or out-of-range probabilities.
    pub fn parse(spec: &str) -> Result<FaultPlan, CoreError> {
        fn bad(name: &'static str, requirement: &'static str) -> CoreError {
            CoreError::InvalidParameter { name, requirement }
        }
        let mut b = FaultPlan::builder();
        for entry in spec.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (key, value) = entry
                .split_once('=')
                .ok_or_else(|| bad("faults", "entries must look like key=value"))?;
            match key.trim() {
                "seed" => {
                    b = b.seed(
                        value
                            .trim()
                            .parse()
                            .map_err(|_| bad("seed", "must be an unsigned integer"))?,
                    );
                }
                "kill" => {
                    let (node, slot) = value
                        .split_once('@')
                        .ok_or_else(|| bad("kill", "must look like NODE@SLOT"))?;
                    b = b.kill(
                        node.trim()
                            .parse()
                            .map_err(|_| bad("kill", "node must be an unsigned integer"))?,
                        slot.trim()
                            .parse()
                            .map_err(|_| bad("kill", "slot must be an unsigned integer"))?,
                    );
                }
                "cull" => {
                    let (frac, slot) = value
                        .split_once('@')
                        .ok_or_else(|| bad("cull", "must look like FRAC@SLOT"))?;
                    b = b.cull(
                        frac.trim()
                            .parse()
                            .map_err(|_| bad("cull", "fraction must be a number"))?,
                        slot.trim()
                            .parse()
                            .map_err(|_| bad("cull", "slot must be an unsigned integer"))?,
                    );
                }
                "death" => {
                    b = b.death_rate(
                        value
                            .trim()
                            .parse()
                            .map_err(|_| bad("death", "must be a probability"))?,
                    );
                }
                "battery" => {
                    let mut parts = value.split(':');
                    let mut next = || -> Result<f64, CoreError> {
                        parts
                            .next()
                            .ok_or_else(|| bad("battery", "must look like CAP:IDLE:MOVE"))?
                            .trim()
                            .parse()
                            .map_err(|_| bad("battery", "fields must be numbers"))
                            .and_then(|v: f64| {
                                if v.is_finite() {
                                    Ok(v)
                                } else {
                                    Err(bad("battery", "fields must be finite"))
                                }
                            })
                    };
                    let capacity = next()?;
                    let idle = next()?;
                    let movement = next()?;
                    b = b.battery(capacity, idle, movement);
                }
                "dropout" => {
                    b = b.sensor_dropout(
                        value
                            .trim()
                            .parse()
                            .map_err(|_| bad("dropout", "must be a probability"))?,
                    );
                }
                "outlier" => {
                    let (p, mag) = value
                        .split_once(':')
                        .ok_or_else(|| bad("outlier", "must look like P:MAG"))?;
                    b = b.reading_outlier(
                        p.trim()
                            .parse()
                            .map_err(|_| bad("outlier", "probability must be a number"))?,
                        mag.trim()
                            .parse()
                            .map_err(|_| bad("outlier", "magnitude must be a number"))?,
                    );
                }
                "stuck" => {
                    let (p, slots) = value
                        .split_once(':')
                        .ok_or_else(|| bad("stuck", "must look like P:SLOTS"))?;
                    b = b.stuck_at(
                        p.trim()
                            .parse()
                            .map_err(|_| bad("stuck", "probability must be a number"))?,
                        slots
                            .trim()
                            .parse()
                            .map_err(|_| bad("stuck", "duration must be an unsigned integer"))?,
                    );
                }
                "loss" => {
                    let (p, retries) = match value.split_once(':') {
                        Some((p, r)) => (
                            p,
                            r.trim()
                                .parse()
                                .map_err(|_| bad("loss", "retries must be an unsigned integer"))?,
                        ),
                        None => (value, 2),
                    };
                    b = b.link_loss(
                        p.trim()
                            .parse()
                            .map_err(|_| bad("loss", "probability must be a number"))?,
                        retries,
                    );
                }
                "recovery" => {
                    b = b.recovery(match value.trim() {
                        "auto" => RecoveryPolicy::Auto,
                        "on" => RecoveryPolicy::On,
                        "off" => RecoveryPolicy::Off,
                        _ => return Err(bad("recovery", "must be auto, on, or off")),
                    });
                }
                _ => {
                    return Err(bad(
                        "faults",
                        "unknown key (expected seed, kill, cull, death, battery, \
                         dropout, outlier, stuck, loss, or recovery)",
                    ))
                }
            }
        }
        b.build()
    }
}

/// Builder for a [`FaultPlan`]; every fault class is off until its
/// method is called.
#[derive(Debug, Clone, Default)]
pub struct FaultPlanBuilder {
    plan: FaultPlan,
}

impl FaultPlanBuilder {
    /// Seeds the fault RNG (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.plan.seed = seed;
        self
    }

    /// Kills node `node` at the start of slot `slot`.
    pub fn kill(mut self, node: usize, slot: u64) -> Self {
        self.plan.kills.push((slot, node));
        self
    }

    /// Kills a random `fraction` of the surviving fleet at the start of
    /// slot `slot` (victims drawn from the fault RNG).
    pub fn cull(mut self, fraction: f64, slot: u64) -> Self {
        self.plan.culls.push((slot, fraction));
        self
    }

    /// Per-node per-slot probability of spontaneous death.
    pub fn death_rate(mut self, rate: f64) -> Self {
        self.plan.death_rate = rate;
        self
    }

    /// Installs the battery model (see [`BatteryModel`]).
    pub fn battery(mut self, capacity: f64, idle_drain: f64, move_drain: f64) -> Self {
        self.plan.battery = Some(BatteryModel {
            capacity,
            idle_drain,
            move_drain,
        });
        self
    }

    /// Per-node per-slot probability of a transient sensor dropout: the
    /// node senses nothing that slot, keeps its previous curvature, and
    /// holds position.
    pub fn sensor_dropout(mut self, rate: f64) -> Self {
        self.plan.dropout_rate = rate;
        self
    }

    /// Per-node per-slot probability of an outlier reading: the node's
    /// own measurement is off by ±`magnitude` for one slot.
    pub fn reading_outlier(mut self, rate: f64, magnitude: f64) -> Self {
        self.plan.outlier_rate = rate;
        self.plan.outlier_magnitude = magnitude;
        self
    }

    /// Per-node per-slot probability of the sensor freezing: for the
    /// next `slots` slots the node keeps sensing the field as it was
    /// when the fault struck.
    pub fn stuck_at(mut self, rate: f64, slots: u64) -> Self {
        self.plan.stuck_rate = rate;
        self.plan.stuck_slots = slots;
        self
    }

    /// Per-attempt probability that a single-hop message is lost, with
    /// up to `retries` re-sends; a direction whose every attempt fails
    /// is down for the slot (the receiver misses that neighbor's
    /// curvature report, and LCM `tell()` broadcasts don't reach it).
    pub fn link_loss(mut self, loss: f64, retries: u32) -> Self {
        self.plan.link_loss = loss;
        self.plan.link_retries = retries;
        self
    }

    /// Sets the partition-healing policy (default [`RecoveryPolicy::Auto`]).
    pub fn recovery(mut self, policy: RecoveryPolicy) -> Self {
        self.plan.recovery = policy;
        self
    }

    /// Validates and returns the plan.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] when a probability is outside
    /// `[0, 1]`, a magnitude/fraction is not finite, or the battery
    /// model has a non-positive capacity or negative drain.
    pub fn build(mut self) -> Result<FaultPlan, CoreError> {
        fn probability(value: f64, name: &'static str) -> Result<(), CoreError> {
            if (0.0..=1.0).contains(&value) {
                Ok(())
            } else {
                Err(CoreError::InvalidParameter {
                    name,
                    requirement: "must be a probability in [0, 1]",
                })
            }
        }
        probability(self.plan.death_rate, "death_rate")?;
        probability(self.plan.dropout_rate, "dropout_rate")?;
        probability(self.plan.outlier_rate, "outlier_rate")?;
        probability(self.plan.stuck_rate, "stuck_rate")?;
        probability(self.plan.link_loss, "link_loss")?;
        for &(_, fraction) in &self.plan.culls {
            probability(fraction, "cull fraction")?;
        }
        if !self.plan.outlier_magnitude.is_finite() {
            return Err(CoreError::InvalidParameter {
                name: "outlier_magnitude",
                requirement: "must be finite",
            });
        }
        if let Some(b) = self.plan.battery {
            if !(b.capacity > 0.0 && b.capacity.is_finite()) {
                return Err(CoreError::InvalidParameter {
                    name: "battery capacity",
                    requirement: "must be positive and finite",
                });
            }
            if !(b.idle_drain >= 0.0
                && b.move_drain >= 0.0
                && b.idle_drain.is_finite()
                && b.move_drain.is_finite())
            {
                return Err(CoreError::InvalidParameter {
                    name: "battery drain",
                    requirement: "must be non-negative and finite",
                });
            }
        }
        self.plan.kills.sort_unstable();
        self.plan.kills.dedup();
        self.plan
            .culls
            .sort_unstable_by_key(|&(slot, frac)| (slot, frac.to_bits()));
        Ok(self.plan)
    }
}

/// SplitMix64: the dedicated fault stream. Deliberately not the `rand`
/// crate — fault schedules stay stable no matter what the rest of the
/// workspace does with its RNGs.
#[derive(Debug, Clone)]
pub(crate) struct FaultRng {
    state: u64,
}

impl FaultRng {
    /// Stream for `slot` of a plan seeded with `seed`.
    pub(crate) fn for_slot(seed: u64, slot: u64) -> Self {
        // One scramble round separates neighboring (seed, slot) pairs.
        let mut rng = FaultRng {
            state: seed ^ slot.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        };
        rng.next_u64();
        rng
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64) * (1.0 / ((1u64 << 53) as f64))
    }

    /// Bernoulli draw; `p <= 0` is always false without consuming the
    /// stream, so switched-off fault classes cost nothing.
    fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else {
            self.unit() < p
        }
    }

    /// Uniform index in `[0, n)`.
    fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }
}

/// The sensor fault a node suffers this slot, drawn serially before the
/// parallel sense phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum SensorFault {
    /// Sensor healthy.
    None,
    /// No data this slot: keep the last curvature, hold position.
    Dropout,
    /// The node's own reading is off by this much.
    Outlier(f64),
    /// The sensor is frozen: it keeps reporting the field as of this
    /// time.
    Stuck {
        /// Simulation time the sensor froze at, minutes.
        frozen_time: f64,
    },
}

/// Per-simulation mutable fault state (the plan plus what has happened
/// so far).
#[derive(Debug, Clone)]
pub(crate) struct FaultRuntime {
    pub(crate) plan: FaultPlan,
    /// Steps taken since construction.
    pub(crate) slot: u64,
    /// Remaining energy by node id (empty without a battery model).
    energy: Vec<f64>,
    /// Stuck-sensor state by node id: `(frozen_time, expiry_slot)`.
    stuck: Vec<Option<(f64, u64)>>,
    pub(crate) events: Vec<FaultEvent>,
    partition_since: Option<u64>,
    pub(crate) deaths_total: usize,
    pub(crate) retried_total: usize,
    pub(crate) dropped_total: usize,
}

impl FaultRuntime {
    pub(crate) fn new(plan: FaultPlan, node_count: usize) -> Self {
        let energy = match plan.battery {
            Some(b) => vec![b.capacity; node_count],
            None => Vec::new(),
        };
        FaultRuntime {
            plan,
            slot: 0,
            energy,
            stuck: vec![None; node_count],
            events: Vec::new(),
            partition_since: None,
            deaths_total: 0,
            retried_total: 0,
            dropped_total: 0,
        }
    }

    /// The RNG for the slot about to run.
    pub(crate) fn slot_rng(&self) -> FaultRng {
        FaultRng::for_slot(self.plan.seed, self.slot)
    }

    /// Applies slot-start deaths to `alive` (indexed by node id),
    /// returning how many nodes died. Draw order: per node id —
    /// scheduled kill, battery depletion, then the random death draw;
    /// culls draw victims afterwards.
    pub(crate) fn apply_deaths(
        &mut self,
        rng: &mut FaultRng,
        alive: &mut [bool],
        now: f64,
    ) -> usize {
        let mut deaths = 0usize;
        let slot = self.slot;
        for (id, live) in alive.iter_mut().enumerate() {
            if !*live {
                continue;
            }
            let cause = if self.plan.kills.binary_search(&(slot, id)).is_ok() {
                Some(DeathCause::Scheduled)
            } else if !self.energy.is_empty() && self.energy[id] <= 0.0 {
                Some(DeathCause::Battery)
            } else if rng.chance(self.plan.death_rate) {
                Some(DeathCause::Random)
            } else {
                None
            };
            if let Some(cause) = cause {
                *live = false;
                deaths += 1;
                self.events.push(FaultEvent::Death {
                    slot,
                    time: now,
                    node: id,
                    cause,
                });
            }
        }
        for &(cull_slot, fraction) in &self.plan.culls {
            if cull_slot != slot {
                continue;
            }
            let survivors: Vec<usize> = (0..alive.len()).filter(|&id| alive[id]).collect();
            let victims = ((survivors.len() as f64) * fraction).ceil() as usize;
            let mut pool = survivors;
            for _ in 0..victims.min(pool.len()) {
                let pick = rng.below(pool.len());
                let id = pool.swap_remove(pick);
                alive[id] = false;
                deaths += 1;
                self.events.push(FaultEvent::Death {
                    slot,
                    time: now,
                    node: id,
                    cause: DeathCause::Scheduled,
                });
            }
        }
        self.deaths_total += deaths;
        deaths
    }

    /// Draws this slot's sensor fault per surviving node (indexed like
    /// `alive_ids`). Precedence: dropout masks a stuck sensor for the
    /// slot; a stuck sensor masks outliers.
    pub(crate) fn draw_sensor_faults(
        &mut self,
        rng: &mut FaultRng,
        alive_ids: &[usize],
        now: f64,
    ) -> Vec<SensorFault> {
        let slot = self.slot;
        let plan = &self.plan;
        let mut out = Vec::with_capacity(alive_ids.len());
        for &id in alive_ids {
            if let Some((_, until)) = self.stuck[id] {
                if slot >= until {
                    self.stuck[id] = None;
                }
            }
            let fault = if rng.chance(plan.dropout_rate) {
                SensorFault::Dropout
            } else if let Some((frozen_time, _)) = self.stuck[id] {
                SensorFault::Stuck { frozen_time }
            } else if rng.chance(plan.stuck_rate) {
                self.stuck[id] = Some((now, slot + plan.stuck_slots.max(1)));
                SensorFault::Stuck { frozen_time: now }
            } else if rng.chance(plan.outlier_rate) {
                let sign = if rng.chance(0.5) { -1.0 } else { 1.0 };
                SensorFault::Outlier(sign * plan.outlier_magnitude)
            } else {
                SensorFault::None
            };
            out.push(fault);
        }
        out
    }

    /// Draws this slot's directed link outages over `graph` (alive
    /// indices). Returns `(down directions, retries, drops, message
    /// attempts)`; without link loss the attempt count is the fault-free
    /// `2 · |E|`.
    pub(crate) fn draw_link_outages(
        &mut self,
        rng: &mut FaultRng,
        graph: &UnitDiskGraph,
    ) -> (HashSet<(usize, usize)>, usize, usize, usize) {
        let p = self.plan.link_loss;
        if p <= 0.0 {
            return (HashSet::new(), 0, 0, 2 * graph.edge_count());
        }
        let budget = 1 + self.plan.link_retries as usize;
        let mut down = HashSet::new();
        let mut retried = 0usize;
        let mut dropped = 0usize;
        let mut attempts_total = 0usize;
        for (i, j) in graph.edges() {
            for (from, to) in [(i, j), (j, i)] {
                let mut attempts = 0usize;
                let mut delivered = false;
                while attempts < budget {
                    attempts += 1;
                    if !rng.chance(p) {
                        delivered = true;
                        break;
                    }
                }
                attempts_total += attempts;
                retried += attempts - 1;
                if !delivered {
                    down.insert((from, to));
                    dropped += 1;
                }
            }
        }
        self.retried_total += retried;
        self.dropped_total += dropped;
        cps_obs::count_by(cps_obs::Counter::FaultRetries, retried as u64);
        (down, retried, dropped, attempts_total)
    }

    /// Records partition/reconnection transitions of the surviving
    /// graph (`critical` = articulation-point count when a partition
    /// opens).
    pub(crate) fn observe_topology(&mut self, components: usize, critical: usize, now: f64) {
        if components >= 2 {
            if self.partition_since.is_none() {
                self.partition_since = Some(self.slot);
                self.events.push(FaultEvent::Partition {
                    slot: self.slot,
                    time: now,
                    components,
                    critical,
                });
            }
        } else if components == 1 {
            if let Some(since) = self.partition_since.take() {
                self.events.push(FaultEvent::Reconnected {
                    slot: self.slot,
                    time: now,
                    after_slots: self.slot - since,
                });
            }
        }
    }

    /// End-of-slot battery accounting: `moved` metres for node `id`.
    pub(crate) fn drain_battery(&mut self, id: usize, moved: f64) {
        if let Some(b) = self.plan.battery {
            if let Some(e) = self.energy.get_mut(id) {
                *e -= b.idle_drain + b.move_drain * moved;
            }
        }
    }

    /// Whether the swarm is currently partitioned.
    pub(crate) fn partitioned(&self) -> bool {
        self.partition_since.is_some()
    }

    /// Remaining per-node energy (empty without a battery model) — for
    /// checkpointing.
    pub(crate) fn energy(&self) -> &[f64] {
        &self.energy
    }

    /// Per-node stuck-sensor state `(frozen_time, expiry_slot)` — for
    /// checkpointing.
    pub(crate) fn stuck(&self) -> &[Option<(f64, u64)>] {
        &self.stuck
    }

    /// The slot the currently-open partition started at, if any — for
    /// checkpointing.
    pub(crate) fn partition_since(&self) -> Option<u64> {
        self.partition_since
    }

    /// Rebuilds the runtime from checkpointed state. The per-slot
    /// SplitMix64 streams are derived from `(plan seed, slot)` alone,
    /// so restoring the slot cursor restores the randomness exactly:
    /// every future draw matches the uninterrupted run bit for bit.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn restore(
        plan: FaultPlan,
        slot: u64,
        energy: Vec<f64>,
        stuck: Vec<Option<(f64, u64)>>,
        events: Vec<FaultEvent>,
        partition_since: Option<u64>,
        deaths_total: usize,
        retried_total: usize,
        dropped_total: usize,
    ) -> Self {
        FaultRuntime {
            plan,
            slot,
            energy,
            stuck,
            events,
            partition_since,
            deaths_total,
            retried_total,
            dropped_total,
        }
    }
}

/// Relay re-planning for a partitioned swarm: plans relays over the
/// surviving graph and steers the closest-pair bridgehead of every MST
/// gap toward its opposite number. Returns per-alive-index destination
/// overrides (None = follow the CMA).
pub(crate) fn recovery_overrides(graph: &UnitDiskGraph) -> Vec<Option<Point2>> {
    let mut overrides = vec![None; graph.node_count()];
    if graph.component_count() <= 1 {
        return overrides;
    }
    let plan = RelayPlan::for_graph(graph);
    for &(a, b) in plan.bridged_gaps() {
        for (i, dest) in overrides.iter_mut().enumerate() {
            if graph.position(i) == a {
                *dest = Some(b);
            } else if graph.position(i) == b {
                *dest = Some(a);
            }
        }
    }
    overrides
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_plan_is_zero() {
        assert!(FaultPlan::none().is_zero());
        assert!(FaultPlan::builder().seed(99).build().unwrap().is_zero());
        assert!(!FaultPlan::none().recovery_active());
        let on = FaultPlan::builder()
            .recovery(RecoveryPolicy::On)
            .build()
            .unwrap();
        assert!(on.recovery_active());
    }

    #[test]
    fn builder_validates_probabilities() {
        assert!(FaultPlan::builder().death_rate(1.5).build().is_err());
        assert!(FaultPlan::builder().sensor_dropout(-0.1).build().is_err());
        assert!(FaultPlan::builder().link_loss(2.0, 1).build().is_err());
        assert!(FaultPlan::builder().cull(1.2, 5).build().is_err());
        assert!(FaultPlan::builder().battery(0.0, 0.1, 0.1).build().is_err());
        assert!(FaultPlan::builder()
            .battery(5.0, -1.0, 0.1)
            .build()
            .is_err());
        assert!(FaultPlan::builder()
            .reading_outlier(0.1, f64::NAN)
            .build()
            .is_err());
        assert!(FaultPlan::builder()
            .death_rate(0.25)
            .link_loss(0.3, 4)
            .build()
            .is_ok());
    }

    #[test]
    fn spec_round_trip_and_errors() {
        let plan = FaultPlan::parse(
            "seed=9, kill=3@12, cull=0.1@20, death=0.01, battery=100:0.5:2, \
                              dropout=0.02, outlier=0.03:40, stuck=0.04:6, loss=0.2:3, \
                              recovery=on",
        )
        .unwrap();
        assert_eq!(plan.seed(), 9);
        assert!(!plan.is_zero());
        assert!(plan.recovery_active());
        assert_eq!(plan.kills, vec![(12, 3)]);
        assert_eq!(plan.culls, vec![(20, 0.1)]);
        assert_eq!(plan.link_retries, 3);
        assert!(FaultPlan::parse("").unwrap().is_zero());
        assert!(FaultPlan::parse("nonsense=1").is_err());
        assert!(FaultPlan::parse("death").is_err());
        assert!(FaultPlan::parse("kill=3").is_err());
        assert!(FaultPlan::parse("loss=1.5").is_err());
    }

    #[test]
    fn slot_streams_are_deterministic_and_distinct() {
        let mut a = FaultRng::for_slot(7, 3);
        let mut b = FaultRng::for_slot(7, 3);
        let mut c = FaultRng::for_slot(7, 4);
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(x, y);
        assert_ne!(x, z);
        // Zero-rate draws consume nothing.
        let before = a.state;
        assert!(!a.chance(0.0));
        assert_eq!(a.state, before);
    }

    #[test]
    fn scheduled_kill_and_cull_apply() {
        let plan = FaultPlan::builder()
            .kill(1, 0)
            .cull(0.5, 1)
            .build()
            .unwrap();
        let mut rt = FaultRuntime::new(plan, 4);
        let mut alive = vec![true; 4];
        let mut rng = rt.slot_rng();
        assert_eq!(rt.apply_deaths(&mut rng, &mut alive, 0.0), 1);
        assert!(!alive[1]);
        rt.slot = 1;
        let mut rng = rt.slot_rng();
        // 3 survivors, 50% cull → ceil(1.5) = 2 victims.
        assert_eq!(rt.apply_deaths(&mut rng, &mut alive, 1.0), 2);
        assert_eq!(alive.iter().filter(|&&a| a).count(), 1);
        assert_eq!(rt.deaths_total, 3);
        assert_eq!(rt.events.len(), 3);
    }

    #[test]
    fn battery_depletion_kills_at_slot_start() {
        let plan = FaultPlan::builder().battery(1.0, 0.6, 0.0).build().unwrap();
        let mut rt = FaultRuntime::new(plan, 1);
        let mut alive = vec![true];
        for slot in 0..3 {
            rt.slot = slot;
            let mut rng = rt.slot_rng();
            rt.apply_deaths(&mut rng, &mut alive, slot as f64);
            rt.drain_battery(0, 0.0);
        }
        // Energy: 1.0 → 0.4 → −0.2; the node dies at the start of the
        // slot after depletion.
        assert!(!alive[0]);
        assert!(matches!(
            rt.events[0],
            FaultEvent::Death {
                cause: DeathCause::Battery,
                ..
            }
        ));
    }

    #[test]
    fn link_outages_respect_retry_budget() {
        use cps_geometry::Point2;
        let g =
            UnitDiskGraph::new(vec![Point2::new(0.0, 0.0), Point2::new(1.0, 0.0)], 2.0).unwrap();
        // Certain loss: every direction exhausts its budget and drops.
        let plan = FaultPlan::builder().link_loss(1.0, 3).build().unwrap();
        let mut rt = FaultRuntime::new(plan, 2);
        let mut rng = rt.slot_rng();
        let (down, retried, dropped, attempts) = rt.draw_link_outages(&mut rng, &g);
        assert_eq!(down.len(), 2);
        assert_eq!(dropped, 2);
        assert_eq!(attempts, 8); // (1 + 3 retries) × 2 directions
        assert_eq!(retried, 6);
        // Zero loss: clean channel, no draws.
        let plan = FaultPlan::builder().build().unwrap();
        let mut rt = FaultRuntime::new(plan, 2);
        let mut rng = rt.slot_rng();
        let (down, retried, dropped, attempts) = rt.draw_link_outages(&mut rng, &g);
        assert!(down.is_empty());
        assert_eq!((retried, dropped), (0, 0));
        assert_eq!(attempts, 2);
    }

    #[test]
    fn partition_bookkeeping_records_recovery_slot() {
        let mut rt = FaultRuntime::new(FaultPlan::none(), 3);
        rt.slot = 5;
        rt.observe_topology(2, 1, 5.0);
        assert!(rt.partitioned());
        rt.slot = 6;
        rt.observe_topology(2, 1, 6.0); // still split: no duplicate event
        rt.slot = 9;
        rt.observe_topology(1, 0, 9.0);
        assert!(!rt.partitioned());
        assert_eq!(rt.events.len(), 2);
        assert!(matches!(
            rt.events[1],
            FaultEvent::Reconnected {
                slot: 9,
                after_slots: 4,
                ..
            }
        ));
    }

    #[test]
    fn recovery_overrides_point_bridgeheads_at_each_other() {
        use cps_geometry::Point2;
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(8.0, 0.0),
            Point2::new(30.0, 0.0),
            Point2::new(38.0, 0.0),
        ];
        let g = UnitDiskGraph::new(pts, 10.0).unwrap();
        assert_eq!(g.component_count(), 2);
        let overrides = recovery_overrides(&g);
        assert_eq!(overrides[0], None);
        assert_eq!(overrides[3], None);
        assert_eq!(overrides[1], Some(Point2::new(30.0, 0.0)));
        assert_eq!(overrides[2], Some(Point2::new(8.0, 0.0)));
        // Connected graph: no overrides at all.
        let g =
            UnitDiskGraph::new(vec![Point2::new(0.0, 0.0), Point2::new(5.0, 0.0)], 10.0).unwrap();
        assert!(recovery_overrides(&g).iter().all(Option::is_none));
    }

    #[test]
    fn stuck_sensor_freezes_then_recovers() {
        let plan = FaultPlan::builder().stuck_at(1.0, 2).build().unwrap();
        let mut rt = FaultRuntime::new(plan, 1);
        let mut rng = rt.slot_rng();
        let f0 = rt.draw_sensor_faults(&mut rng, &[0], 10.0);
        assert_eq!(f0, vec![SensorFault::Stuck { frozen_time: 10.0 }]);
        rt.slot = 1;
        let mut rng = rt.slot_rng();
        let f1 = rt.draw_sensor_faults(&mut rng, &[0], 11.0);
        // Still frozen at the original time.
        assert_eq!(f1, vec![SensorFault::Stuck { frozen_time: 10.0 }]);
        rt.slot = 2;
        let mut rng = rt.slot_rng();
        let f2 = rt.draw_sensor_faults(&mut rng, &[0], 12.0);
        // Expired — but rate 1.0 immediately re-freezes at the new time.
        assert_eq!(f2, vec![SensorFault::Stuck { frozen_time: 12.0 }]);
    }
}
