//! The instrumentation layer must observe, never perturb: running FRA
//! with metrics collection enabled has to reproduce the uninstrumented
//! result bit for bit, at any thread count, while actually recording
//! nonzero counters and phase timings.

use cps_core::osd::FraBuilder;
use cps_field::{Parallelism, PeaksField};
use cps_geometry::{GridSpec, Rect};

#[test]
fn metrics_collection_does_not_perturb_fra() {
    let region = Rect::square(100.0).unwrap();
    let grid = GridSpec::new(region, 41, 41).unwrap();
    let f = PeaksField::new(region, 8.0);
    let run = |par| {
        FraBuilder::new(18, 10.0)
            .grid(grid)
            .parallelism(par)
            .run(&f)
            .unwrap()
    };

    cps_obs::disable();
    cps_obs::reset();
    let baseline = run(Parallelism::serial());

    cps_obs::reset();
    cps_obs::enable();
    let observed = run(Parallelism::serial());
    let observed_par = run(Parallelism::fixed(3));
    let metrics = cps_obs::snapshot();
    cps_obs::disable();

    // Bit-identical positions (FraResult compares f64s exactly).
    assert_eq!(baseline, observed);
    assert_eq!(baseline, observed_par);

    // ... and the observed runs really were observed.
    assert!(metrics.counter(cps_obs::Counter::DelaunayInserts) > 0);
    assert!(metrics.phase_total_ns(cps_obs::Phase::FraForesight) > 0);
    assert!(metrics.phase_total_ns(cps_obs::Phase::FraRefine) > 0);
    assert!(metrics.phase_total_ns(cps_obs::Phase::FraRetriangulate) > 0);

    // The snapshot survives a JSON round trip losslessly.
    let json = metrics.to_json().unwrap();
    let back = cps_obs::RunMetrics::from_json(&json).unwrap();
    assert_eq!(
        metrics.counter(cps_obs::Counter::DelaunayInserts),
        back.counter(cps_obs::Counter::DelaunayInserts)
    );
    assert_eq!(
        metrics.phase_total_ns(cps_obs::Phase::FraRefine),
        back.phase_total_ns(cps_obs::Phase::FraRefine)
    );
}
