//! Property tests on the CMA iteration (Table 2).

use cps_core::ostd::{cma_step, CmaAction, CmaConfig, NeighborInfo};
use cps_field::{Field, GaussianBlob, GaussianMixtureField};
use cps_geometry::Point2;
use proptest::prelude::*;

fn sense<F: Field>(field: &F, center: Point2, rs: f64) -> Vec<(Point2, f64)> {
    let r = rs.ceil() as i32;
    let mut out = Vec::new();
    for dx in -r..=r {
        for dy in -r..=r {
            let p = Point2::new(center.x + dx as f64, center.y + dy as f64);
            if center.distance(p) <= rs {
                out.push((p, field.value(p)));
            }
        }
    }
    out
}

fn field_strategy() -> impl Strategy<Value = GaussianMixtureField> {
    prop::collection::vec(
        (10.0f64..90.0, 10.0f64..90.0, -20.0f64..40.0, 2.0f64..8.0),
        0..4,
    )
    .prop_map(|blobs| {
        GaussianMixtureField::new(
            5.0,
            blobs
                .into_iter()
                .map(|(x, y, a, s)| GaussianBlob::isotropic(Point2::new(x, y), a, s))
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The step's outputs are always finite, and any movement decision
    /// stays within the sensing radius.
    #[test]
    fn cma_outputs_are_finite_and_bounded(
        field in field_strategy(),
        cx in 20.0f64..80.0,
        cy in 20.0f64..80.0,
        neighbors_seed in 0.0f64..std::f64::consts::TAU,
        scale in 0.01f64..10.0,
    ) {
        let center = Point2::new(cx, cy);
        let neighbors = vec![NeighborInfo {
            position: Point2::new(cx + 5.0 * neighbors_seed.cos(), cy + 5.0 * neighbors_seed.sin()),
            curvature: 0.3,
        }];
        let cfg = CmaConfig {
            curvature_scale: scale,
            ..CmaConfig::default()
        };
        let sensed = sense(&field, center, cfg.sensing_radius);
        let out = cma_step(center, field.value(center), &sensed, &neighbors, &cfg).unwrap();
        prop_assert!(out.force.is_finite());
        prop_assert!(out.curvature.is_finite());
        prop_assert!(out.peak.1.is_finite() && out.peak.1 >= 0.0);
        if let CmaAction::MoveTo(dest) = out.action {
            prop_assert!(dest.distance(center) <= cfg.sensing_radius + 1e-9);
            prop_assert!(dest.is_finite());
        }
    }

    /// Rotational symmetry: rotating the whole scene (samples and
    /// neighbors) rotates the force.
    #[test]
    fn cma_is_rotation_equivariant(angle in 0.0f64..std::f64::consts::TAU) {
        let center = Point2::new(0.0, 0.0);
        // An asymmetric quadratic bump east of the node.
        let field = GaussianMixtureField::new(
            1.0,
            vec![GaussianBlob::isotropic(Point2::new(4.0, 0.0), 10.0, 2.0)],
        );
        let cfg = CmaConfig {
            curvature_scale: 1.0,
            ..CmaConfig::default()
        };
        let sensed = sense(&field, center, cfg.sensing_radius);
        let base = cma_step(center, field.value(center), &sensed, &[], &cfg).unwrap();

        // Rotate every sample position by `angle` around the node.
        let rotated: Vec<(Point2, f64)> = sensed
            .iter()
            .map(|&(p, z)| {
                let v = (p - center).rotated(angle);
                (center + v, z)
            })
            .collect();
        let turned = cma_step(center, field.value(center), &rotated, &[], &cfg).unwrap();

        let expected = base.force.rotated(angle);
        prop_assert!(
            (turned.force - expected).norm() <= 1e-6 * (1.0 + expected.norm()),
            "force {:?} vs expected {:?}", turned.force, expected
        );
    }

    /// With no curvature anywhere and symmetric neighbors, the node
    /// stays put whatever the normalization scale.
    #[test]
    fn flat_symmetric_configurations_are_fixed_points(scale in 0.001f64..100.0) {
        let center = Point2::new(50.0, 50.0);
        let flat = GaussianMixtureField::new(7.0, vec![]);
        let cfg = CmaConfig {
            curvature_scale: scale,
            ..CmaConfig::default()
        };
        let sensed = sense(&flat, center, cfg.sensing_radius);
        let neighbors: Vec<NeighborInfo> = (0..4)
            .map(|i| {
                let a = std::f64::consts::FRAC_PI_2 * i as f64;
                NeighborInfo {
                    position: Point2::new(center.x + 9.0 * a.cos(), center.y + 9.0 * a.sin()),
                    curvature: 0.0,
                }
            })
            .collect();
        let out = cma_step(center, 7.0, &sensed, &neighbors, &cfg).unwrap();
        prop_assert_eq!(out.action, CmaAction::Stay);
    }
}
