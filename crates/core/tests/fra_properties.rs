//! Property tests on the foresighted refinement algorithm.

use cps_core::osd::FraBuilder;
use cps_core::DeltaEvaluator;
use cps_field::{GaussianBlob, GaussianMixtureField};
use cps_geometry::{GridSpec, Point2, Rect};
use cps_network::UnitDiskGraph;
use proptest::prelude::*;

const SIDE: f64 = 60.0;

/// Random multi-bump fields: 1–4 Gaussians of varying sharpness.
fn field_strategy() -> impl Strategy<Value = GaussianMixtureField> {
    prop::collection::vec(
        (
            5.0f64..55.0,   // cx
            5.0f64..55.0,   // cy
            -10.0f64..25.0, // amplitude (dips allowed)
            2.0f64..10.0,   // sigma
        ),
        1..5,
    )
    .prop_map(|blobs| {
        GaussianMixtureField::new(
            3.0,
            blobs
                .into_iter()
                .map(|(cx, cy, a, s)| GaussianBlob::isotropic(Point2::new(cx, cy), a, s))
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever the field, FRA returns exactly k in-region positions
    /// forming a connected network, with no duplicates.
    #[test]
    fn fra_output_invariants(
        field in field_strategy(),
        k in 3usize..40,
        rc in 8.0f64..30.0,
    ) {
        let region = Rect::square(SIDE).unwrap();
        let grid = GridSpec::new(region, 31, 31).unwrap();
        let result = FraBuilder::new(k, rc).grid(grid).run(&field).unwrap();
        prop_assert_eq!(result.positions.len(), k);
        prop_assert_eq!(result.refined + result.relays, k);
        prop_assert!(result.positions.iter().all(|p| region.contains(*p)));
        for i in 0..k {
            for j in i + 1..k {
                prop_assert!(
                    result.positions[i].distance(result.positions[j]) > 1e-9,
                    "duplicate positions at {} and {}", i, j
                );
            }
        }
        let graph = UnitDiskGraph::new(result.positions.clone(), rc).unwrap();
        prop_assert!(graph.is_connected(), "{} components", graph.component_count());
    }

    /// FRA is deterministic: same inputs, same plan.
    #[test]
    fn fra_is_deterministic(field in field_strategy()) {
        let region = Rect::square(SIDE).unwrap();
        let grid = GridSpec::new(region, 31, 31).unwrap();
        let a = FraBuilder::new(15, 12.0).grid(grid).run(&field).unwrap();
        let b = FraBuilder::new(15, 12.0).grid(grid).run(&field).unwrap();
        prop_assert_eq!(a.positions, b.positions);
    }

    /// With a generous radius (no relay tax), greedy refinement is
    /// never catastrophically worse than the value-blind uniform grid
    /// — a bounded-regression guard (greedy is a heuristic; it loses
    /// to uniform on some adversarial draws, but only by a bounded
    /// factor).
    #[test]
    fn fra_with_loose_radius_is_competitive_with_uniform(field in field_strategy()) {
        let region = Rect::square(SIDE).unwrap();
        let grid = GridSpec::new(region, 31, 31).unwrap();
        let k = 25;
        let fra = FraBuilder::new(k, 100.0).grid(grid).run(&field).unwrap();
        let mut evaluator = DeltaEvaluator::new(&field, &grid, 100.0);
        let fe = evaluator.evaluate(&fra.positions).unwrap();
        let uniform = cps_core::osd::baselines::uniform_grid_deployment(region, k);
        let ue = evaluator.evaluate(&uniform).unwrap();
        prop_assert!(
            fe.delta <= 2.0 * ue.delta + 1e-6,
            "fra {} vs uniform {}", fe.delta, ue.delta
        );
    }
}
