//! Baseline deployments the paper compares against.
//!
//! * [`random_deployment`] — the widely used random scattering of WSN
//!   studies (the "random" curve of Fig. 7);
//! * [`uniform_grid_deployment`] — the regular grid of Fig. 3(b) and
//!   the initial state of the OSTD experiments (Fig. 8(a)).

use cps_geometry::{Point2, Rect};
use rand::Rng;

/// `k` positions drawn uniformly at random from `region`.
///
/// Determinism is the caller's choice of `rng` (tests and benches use a
/// seeded `StdRng`).
///
/// # Example
///
/// ```
/// use cps_core::osd::baselines::random_deployment;
/// use cps_geometry::Rect;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let region = Rect::square(100.0).unwrap();
/// let mut rng = StdRng::seed_from_u64(7);
/// let nodes = random_deployment(region, 50, &mut rng);
/// assert_eq!(nodes.len(), 50);
/// assert!(nodes.iter().all(|p| region.contains(*p)));
/// ```
pub fn random_deployment<R: Rng + ?Sized>(region: Rect, k: usize, rng: &mut R) -> Vec<Point2> {
    (0..k)
        .map(|_| {
            Point2::new(
                rng.gen_range(region.min().x..=region.max().x),
                rng.gen_range(region.min().y..=region.max().y),
            )
        })
        .collect()
}

/// `k` positions on a centred uniform grid: the smallest `n×n` grid
/// with `n² ≥ k`, positions at cell centres, the first `k` in row-major
/// order.
///
/// For square numbers (the common case — the paper uses 16 and 100)
/// this is the exact `√k × √k` grid.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn uniform_grid_deployment(region: Rect, k: usize) -> Vec<Point2> {
    assert!(k > 0, "a deployment needs at least one node");
    let n = (k as f64).sqrt().ceil() as usize;
    let dx = region.width() / n as f64;
    let dy = region.height() / n as f64;
    let mut out = Vec::with_capacity(k);
    'outer: for j in 0..n {
        for i in 0..n {
            if out.len() == k {
                break 'outer;
            }
            out.push(Point2::new(
                region.min().x + dx * (i as f64 + 0.5),
                region.min().y + dy * (j as f64 + 0.5),
            ));
        }
    }
    out
}

/// `k` random positions re-drawn until the deployment is connected at
/// `comm_radius` (up to `attempts` draws) — the fair-comparison variant
/// of [`random_deployment`] when connectivity is required of every
/// method. Returns `None` when no connected draw was found.
pub fn random_connected_deployment<R: Rng + ?Sized>(
    region: Rect,
    k: usize,
    comm_radius: f64,
    attempts: usize,
    rng: &mut R,
) -> Option<Vec<Point2>> {
    for _ in 0..attempts {
        let pts = random_deployment(region, k, rng);
        if let Ok(g) = cps_network::UnitDiskGraph::new(pts.clone(), comm_radius) {
            if g.is_connected() {
                return Some(pts);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn region() -> Rect {
        Rect::square(100.0).unwrap()
    }

    #[test]
    fn random_is_seeded_and_in_region() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let da = random_deployment(region(), 20, &mut a);
        let db = random_deployment(region(), 20, &mut b);
        assert_eq!(da, db);
        assert!(da.iter().all(|p| region().contains(*p)));
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(da, random_deployment(region(), 20, &mut c));
    }

    #[test]
    fn uniform_grid_square_counts() {
        let d16 = uniform_grid_deployment(region(), 16);
        assert_eq!(d16.len(), 16);
        // 4×4 grid: first node at cell centre (12.5, 12.5).
        assert_eq!(d16[0], Point2::new(12.5, 12.5));
        assert_eq!(d16[15], Point2::new(87.5, 87.5));
        let d100 = uniform_grid_deployment(region(), 100);
        assert_eq!(d100.len(), 100);
        assert_eq!(d100[0], Point2::new(5.0, 5.0));
    }

    #[test]
    fn uniform_grid_non_square_truncates() {
        let d = uniform_grid_deployment(region(), 10);
        assert_eq!(d.len(), 10);
        // 4×4 host grid, first 10 cells.
        assert_eq!(d[9], Point2::new(37.5, 62.5));
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_panics() {
        uniform_grid_deployment(region(), 0);
    }

    #[test]
    fn connected_random_is_connected_or_none() {
        let mut rng = StdRng::seed_from_u64(1);
        // Generous radius: the first few draws succeed.
        let pts = random_connected_deployment(region(), 20, 60.0, 50, &mut rng).unwrap();
        let g = cps_network::UnitDiskGraph::new(pts, 60.0).unwrap();
        assert!(g.is_connected());
        // Impossible radius: gives up cleanly.
        let mut rng = StdRng::seed_from_u64(1);
        assert!(random_connected_deployment(region(), 20, 0.01, 5, &mut rng).is_none());
    }
}
