//! The foresighted refinement algorithm (FRA, Table 1 of the paper).
//!
//! FRA is a coarse-to-fine process: starting from the region split into
//! two triangles along the diagonal (the four corner positions serve as
//! historical-data scaffolding), it repeatedly
//!
//! 1. **foresees** connectivity: counts the connected subgraphs of the
//!    nodes chosen so far and the least number `L(G, Rc)` of relay
//!    nodes that would stitch them together; when the remaining budget
//!    hits that number, it spends the rest of the budget on the relay
//!    positions `P(G, k−i)` and stops (Table 1 lines 5–8);
//! 2. **refines**: selects the unused position with the maximum local
//!    error (line 9);
//! 3. **retriangulates** by Delaunay rules and updates local errors
//!    where new triangles appeared (lines 10–11).
//!
//! Unlike the paper's pseudocode, no phantom corner anchors are kept in
//! the internal surface: the refinement error is measured against the
//! *same* reconstruction the deployment will be judged by (Delaunay
//! interpolation inside the sample hull, nearest-sample extrapolation
//! outside). Anchoring corners whose values no deployed node actually
//! samples makes the greedy systematically blind to border error; see
//! DESIGN.md for the measurement that motivated the change.

use cps_field::{Field, Parallelism};
use cps_geometry::{GridSpec, Point2, Triangulation};
use cps_network::{RelayPlan, UnitDiskGraph};

use super::local_error::LocalErrorGrid;
use crate::CoreError;

/// Output of a FRA run.
#[derive(Debug, Clone, PartialEq)]
pub struct FraResult {
    /// The `k` node positions, refinement picks first, relays last.
    pub positions: Vec<Point2>,
    /// How many positions were chosen by error refinement.
    pub refined: usize,
    /// How many positions were spent on connectivity relays.
    pub relays: usize,
}

/// Builder for a FRA run.
///
/// # Example
///
/// ```
/// use cps_core::osd::FraBuilder;
/// use cps_field::PeaksField;
/// use cps_geometry::{GridSpec, Rect};
///
/// let region = Rect::square(100.0).unwrap();
/// let reference = PeaksField::new(region, 8.0);
/// let result = FraBuilder::new(20, 10.0)
///     .grid(GridSpec::new(region, 51, 51).unwrap())
///     .run(&reference)
///     .unwrap();
/// assert_eq!(result.positions.len(), 20);
/// assert_eq!(result.refined + result.relays, 20);
/// ```
#[derive(Debug, Clone)]
pub struct FraBuilder {
    k: usize,
    comm_radius: f64,
    grid: Option<GridSpec>,
    parallelism: Parallelism,
}

impl FraBuilder {
    /// Creates a builder for `k` nodes with communication radius
    /// `comm_radius`.
    pub fn new(k: usize, comm_radius: f64) -> Self {
        FraBuilder {
            k,
            comm_radius,
            grid: None,
            parallelism: Parallelism::auto(),
        }
    }

    /// Sets the candidate grid (the paper's `√A × √A` positions; also
    /// defines the region of interest). Required.
    pub fn grid(mut self, grid: GridSpec) -> Self {
        self.grid = Some(grid);
        self
    }

    /// Sets the thread policy for the local-error sweeps (defaults to
    /// [`Parallelism::auto`]). The refinement result is bit-identical at
    /// any thread count — this only changes wall-clock time.
    pub fn parallelism(mut self, par: Parallelism) -> Self {
        self.parallelism = par;
        self
    }

    /// Runs FRA against the historical reference surface.
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidParameter`] — no grid was supplied, or the
    ///   communication radius is not positive/finite.
    /// * [`CoreError::BudgetTooSmall`] — `k == 0`.
    /// * Propagated geometry/network errors (not expected for valid
    ///   inputs).
    pub fn run<F: Field + Sync>(&self, reference: &F) -> Result<FraResult, CoreError> {
        let grid = self.grid.ok_or(CoreError::InvalidParameter {
            name: "grid",
            requirement: "a candidate grid must be supplied via FraBuilder::grid",
        })?;
        if !self.comm_radius.is_finite() || self.comm_radius <= 0.0 {
            return Err(CoreError::InvalidParameter {
                name: "comm_radius",
                requirement: "must be positive and finite",
            });
        }
        if self.k == 0 {
            return Err(CoreError::BudgetTooSmall { k: 0, minimum: 1 });
        }
        let rect = grid.rect();

        // The evolving reconstruction surface (empty at first: the
        // initial "approximation" is the nearest-sample extrapolation
        // of whatever has been chosen so far).
        let mut dt = Triangulation::new(rect);
        let mut zs: Vec<f64> = Vec::new();

        // Lines 2–3: the full local-error array, swept on the parallel
        // evaluation engine (bit-identical at any thread count).
        let mut errors = LocalErrorGrid::new_with(grid, reference, &dt, &zs, self.parallelism);

        let mut chosen: Vec<Point2> = Vec::with_capacity(self.k);
        let mut refined = 0usize;
        let mut relays = 0usize;

        loop {
            let remaining = self.k - chosen.len();
            if remaining == 0 {
                break;
            }

            // Foresight (lines 5–8): how many relays would connecting
            // the current deployment cost?
            let plan = if chosen.len() >= 2 {
                let graph = UnitDiskGraph::new(chosen.clone(), self.comm_radius)?;
                RelayPlan::for_graph(&graph)
            } else {
                RelayPlan::default()
            };
            debug_assert!(
                plan.relay_count() <= remaining,
                "foresight invariant violated: need {} relays with {} remaining",
                plan.relay_count(),
                remaining
            );
            if plan.relay_count() == remaining && remaining > 0 {
                // Spend the rest of the budget on the relay positions
                // P(G, k−i).
                for &r in plan.relays() {
                    if chosen.iter().all(|c| c.distance(r) > 1e-9) {
                        chosen.push(r);
                        relays += 1;
                    }
                }
                // Defensive: if deduplication dropped relays, fill with
                // best remaining error positions so the budget is met.
                while chosen.len() < self.k {
                    let Some((p, _)) = errors.argmax(&[]) else {
                        // Every grid position is spent: the budget
                        // exceeds what the grid can host.
                        return Err(CoreError::InvalidParameter {
                            name: "k",
                            requirement: "must not exceed the number of grid positions",
                        });
                    };
                    errors.mark_used(p);
                    if chosen.iter().all(|c| c.distance(p) > 1e-9) {
                        chosen.push(p);
                        refined += 1;
                    }
                }
                break;
            }

            // Refinement (line 9): the max-local-error position that
            // keeps the foresight invariant satisfiable.
            let budget_after = remaining - 1;
            let mut rejected: Vec<usize> = Vec::new();
            let picked = loop {
                let Some((candidate, _err)) = errors.argmax(&rejected) else {
                    break None;
                };
                if chosen.iter().any(|c| c.distance(candidate) <= 1e-9) {
                    errors.mark_used(candidate);
                    rejected.push(errors.flat_index_of(candidate));
                    continue;
                }
                // Would accepting this candidate still leave enough
                // budget to connect everything?
                let mut with_candidate = chosen.clone();
                with_candidate.push(candidate);
                let need = if with_candidate.len() >= 2 {
                    let g = UnitDiskGraph::new(with_candidate, self.comm_radius)?;
                    RelayPlan::for_graph(&g).relay_count()
                } else {
                    0
                };
                if need <= budget_after {
                    break Some(candidate);
                }
                rejected.push(errors.flat_index_of(candidate));
            };

            match picked {
                Some(p) => {
                    // Lines 9–11: select, retriangulate, update errors.
                    errors.mark_used(p);
                    chosen.push(p);
                    refined += 1;
                    // A vertex that grows the sample hull (or an early
                    // vertex, while extrapolation still dominates)
                    // changes the surface far beyond the Delaunay
                    // cavity, so the whole error grid is refreshed;
                    // interior vertices only dirty the cavity plus a
                    // margin where the nearest-sample may have changed.
                    let hull_grows = dt.vertex_count() < 3 || dt.locate(p).is_none();
                    let margin = dt
                        .nearest_vertex(p)
                        .map(|id| 2.0 * dt.vertex(id).distance(p))
                        .unwrap_or(0.0);
                    dt.insert(p)?;
                    zs.push(reference.value(p));
                    if hull_grows {
                        errors.recompute_region_with(
                            rect.min(),
                            rect.max(),
                            reference,
                            &dt,
                            &zs,
                            self.parallelism,
                        );
                    } else if let Some((lo, hi)) = dt.last_insert_bbox() {
                        errors.recompute_region_with(
                            Point2::new(lo.x - margin, lo.y - margin),
                            Point2::new(hi.x + margin, hi.y + margin),
                            reference,
                            &dt,
                            &zs,
                            self.parallelism,
                        );
                    }
                }
                None => {
                    // No candidate fits the budget: connect what exists
                    // now (need < remaining is guaranteed), then keep
                    // refining with the connected network.
                    for &r in plan.relays() {
                        if chosen.len() < self.k && chosen.iter().all(|c| c.distance(r) > 1e-9) {
                            chosen.push(r);
                            relays += 1;
                        }
                    }
                    if plan.relay_count() == 0 {
                        // Nothing to connect and nothing selectable:
                        // the grid is exhausted (k larger than the
                        // grid). Give up gracefully.
                        return Err(CoreError::BudgetTooSmall {
                            k: self.k,
                            minimum: chosen.len(),
                        });
                    }
                }
            }
        }

        Ok(FraResult {
            positions: chosen,
            refined,
            relays,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate_deployment;
    use cps_field::{GaussianBlob, GaussianMixtureField, PeaksField};
    use cps_geometry::Rect;

    fn region() -> Rect {
        Rect::square(100.0).unwrap()
    }

    fn grid() -> GridSpec {
        GridSpec::new(region(), 51, 51).unwrap()
    }

    fn peaks() -> PeaksField {
        PeaksField::new(region(), 8.0)
    }

    #[test]
    fn builder_validates() {
        assert!(matches!(
            FraBuilder::new(10, 10.0).run(&peaks()),
            Err(CoreError::InvalidParameter { name: "grid", .. })
        ));
        assert!(matches!(
            FraBuilder::new(10, 0.0).grid(grid()).run(&peaks()),
            Err(CoreError::InvalidParameter {
                name: "comm_radius",
                ..
            })
        ));
        assert!(matches!(
            FraBuilder::new(0, 10.0).grid(grid()).run(&peaks()),
            Err(CoreError::BudgetTooSmall { .. })
        ));
    }

    #[test]
    fn produces_exactly_k_connected_nodes() {
        for k in [1, 2, 5, 12, 30] {
            let r = FraBuilder::new(k, 10.0).grid(grid()).run(&peaks()).unwrap();
            assert_eq!(r.positions.len(), k, "k = {k}");
            assert_eq!(r.refined + r.relays, k);
            let g = UnitDiskGraph::new(r.positions.clone(), 10.0).unwrap();
            assert!(g.is_connected(), "k = {k} produced a disconnected network");
            // All positions in the region.
            assert!(r.positions.iter().all(|p| region().contains(*p)));
        }
    }

    #[test]
    fn parallelism_does_not_change_the_result() {
        // The whole refinement sequence — argmax choices included — must
        // be invariant under the thread policy.
        let f = peaks();
        let serial = FraBuilder::new(20, 10.0)
            .grid(grid())
            .parallelism(Parallelism::serial())
            .run(&f)
            .unwrap();
        for par in [
            Parallelism::fixed(2),
            Parallelism::fixed(3),
            Parallelism::auto(),
        ] {
            let other = FraBuilder::new(20, 10.0)
                .grid(grid())
                .parallelism(par)
                .run(&f)
                .unwrap();
            assert_eq!(serial, other, "with {par:?}");
        }
    }

    #[test]
    fn no_duplicate_positions() {
        let r = FraBuilder::new(25, 10.0)
            .grid(grid())
            .run(&peaks())
            .unwrap();
        for i in 0..r.positions.len() {
            for j in i + 1..r.positions.len() {
                assert!(
                    r.positions[i].distance(r.positions[j]) > 1e-9,
                    "duplicate at {i},{j}"
                );
            }
        }
    }

    #[test]
    fn first_pick_is_the_hottest_error() {
        // One sharp blob: the first refinement position must be at it.
        let f = GaussianMixtureField::new(
            0.0,
            vec![GaussianBlob::isotropic(Point2::new(60.0, 40.0), 20.0, 3.0)],
        );
        let r = FraBuilder::new(5, 200.0).grid(grid()).run(&f).unwrap();
        // Generous radius → no relays, pure refinement.
        assert_eq!(r.relays, 0);
        assert!(r.positions[0].distance(Point2::new(60.0, 40.0)) <= 2.0 * 2f64.sqrt());
    }

    #[test]
    fn large_radius_spends_everything_on_refinement() {
        let r = FraBuilder::new(20, 1000.0)
            .grid(grid())
            .run(&peaks())
            .unwrap();
        assert_eq!(r.refined, 20);
        assert_eq!(r.relays, 0);
    }

    #[test]
    fn tight_radius_spends_more_on_relays() {
        let loose = FraBuilder::new(30, 25.0)
            .grid(grid())
            .run(&peaks())
            .unwrap();
        let tight = FraBuilder::new(30, 8.0).grid(grid()).run(&peaks()).unwrap();
        assert!(
            tight.relays >= loose.relays,
            "tight {} vs loose {}",
            tight.relays,
            loose.relays
        );
    }

    #[test]
    fn fra_beats_random_when_connectivity_is_loose() {
        // At Rc = 30 no budget is lost to relays: pure refinement must
        // beat a random scattering decisively (the Fig. 7 claim).
        use rand::{rngs::StdRng, SeedableRng};
        let f = peaks();
        let g = grid();
        let fra = FraBuilder::new(40, 30.0).grid(g).run(&f).unwrap();
        let fra_eval = evaluate_deployment(&f, &fra.positions, 30.0, &g).unwrap();
        assert!(fra_eval.connected);
        let mut rng = StdRng::seed_from_u64(11);
        let rand_eval = {
            let pts = crate::osd::baselines::random_deployment(region(), 40, &mut rng);
            evaluate_deployment(&f, &pts, 30.0, &g).unwrap()
        };
        assert!(
            fra_eval.delta < 0.7 * rand_eval.delta,
            "fra {} vs random {}",
            fra_eval.delta,
            rand_eval.delta
        );
    }

    #[test]
    fn fra_beats_worst_case_even_under_tight_connectivity() {
        // At Rc = 10 much of the budget goes to relays on this
        // sharp-featured surface, but FRA must still beat the trivial
        // 4-corner deployment.
        let f = peaks();
        let g = grid();
        let fra = FraBuilder::new(40, 10.0).grid(g).run(&f).unwrap();
        let fra_eval = evaluate_deployment(&f, &fra.positions, 10.0, &g).unwrap();
        let corners_eval = evaluate_deployment(&f, &region().corners(), 1000.0, &g).unwrap();
        assert!(fra_eval.connected);
        assert!(
            fra_eval.delta < corners_eval.delta,
            "fra {} vs corners {}",
            fra_eval.delta,
            corners_eval.delta
        );
    }
}
