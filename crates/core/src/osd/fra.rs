//! The foresighted refinement algorithm (FRA, Table 1 of the paper).
//!
//! FRA is a coarse-to-fine process: starting from the region split into
//! two triangles along the diagonal (the four corner positions serve as
//! historical-data scaffolding), it repeatedly
//!
//! 1. **foresees** connectivity: counts the connected subgraphs of the
//!    nodes chosen so far and the least number `L(G, Rc)` of relay
//!    nodes that would stitch them together; when the remaining budget
//!    hits that number, it spends the rest of the budget on the relay
//!    positions `P(G, k−i)` and stops (Table 1 lines 5–8);
//! 2. **refines**: selects the unused position with the maximum local
//!    error (line 9);
//! 3. **retriangulates** by Delaunay rules and updates local errors
//!    where new triangles appeared (lines 10–11).
//!
//! Unlike the paper's pseudocode, no phantom corner anchors are kept in
//! the internal surface: the refinement error is measured against the
//! *same* reconstruction the deployment will be judged by (Delaunay
//! interpolation inside the sample hull, nearest-sample extrapolation
//! outside). Anchoring corners whose values no deployed node actually
//! samples makes the greedy systematically blind to border error; see
//! DESIGN.md for the measurement that motivated the change.

use cps_field::{delta, DeltaCache, Field, Parallelism, ReconstructedSurface};
use cps_geometry::{GridSpec, Point2, Triangulation};
use cps_network::{RelayPlan, UnitDiskGraph};

use super::local_error::LocalErrorGrid;
use crate::evaluate::constant_fallback;
use crate::{CoreError, EvalOptions};

/// Pushes every relay position that does not collide with an
/// already-chosen position (within the dedup tolerance), stopping once
/// the budget `k` is met. Bumps `relays` per placement and returns how
/// many were placed, so callers can tell whether foresight must be
/// re-run for the still-unspent budget.
fn spend_relays(
    chosen: &mut Vec<Point2>,
    relay_positions: &[Point2],
    k: usize,
    relays: &mut usize,
) -> usize {
    let before = chosen.len();
    for &r in relay_positions {
        if chosen.len() < k && chosen.iter().all(|c| c.distance(r) > 1e-9) {
            chosen.push(r);
            *relays += 1;
        }
    }
    chosen.len() - before
}

/// Output of a FRA run.
#[derive(Debug, Clone, PartialEq)]
pub struct FraResult {
    /// The `k` node positions, refinement picks first, relays last.
    pub positions: Vec<Point2>,
    /// How many positions were chosen by error refinement.
    pub refined: usize,
    /// How many positions were spent on connectivity relays.
    pub relays: usize,
    /// δ of the evolving reconstruction after each refinement pick
    /// (one entry per refined node; relays do not change the surface).
    /// `None` unless [`FraBuilder::track_delta`] was requested. Measured
    /// through the incremental tile cache when the builder's
    /// [`EvalOptions::cached`] is on — identical to the full quadrature
    /// within 1e-9.
    pub delta_trajectory: Option<Vec<f64>>,
}

/// Builder for a FRA run.
///
/// # Example
///
/// ```
/// use cps_core::osd::FraBuilder;
/// use cps_field::PeaksField;
/// use cps_geometry::{GridSpec, Rect};
///
/// let region = Rect::square(100.0).unwrap();
/// let reference = PeaksField::new(region, 8.0);
/// let result = FraBuilder::new(20, 10.0)
///     .grid(GridSpec::new(region, 51, 51).unwrap())
///     .run(&reference)
///     .unwrap();
/// assert_eq!(result.positions.len(), 20);
/// assert_eq!(result.refined + result.relays, 20);
/// ```
#[derive(Debug, Clone)]
pub struct FraBuilder {
    k: usize,
    comm_radius: f64,
    grid: Option<GridSpec>,
    opts: EvalOptions,
    track_delta: bool,
}

impl FraBuilder {
    /// Creates a builder for `k` nodes with communication radius
    /// `comm_radius`.
    pub fn new(k: usize, comm_radius: f64) -> Self {
        FraBuilder {
            k,
            comm_radius,
            grid: None,
            opts: EvalOptions::default(),
            track_delta: false,
        }
    }

    /// Sets the candidate grid (the paper's `√A × √A` positions; also
    /// defines the region of interest). Required.
    pub fn grid(mut self, grid: GridSpec) -> Self {
        self.grid = Some(grid);
        self
    }

    /// Sets the evaluation options shared with [`crate::DeltaEvaluator`]
    /// and the CMA simulation builder: the thread policy for the
    /// local-error sweeps, and whether δ tracking goes through the
    /// incremental tile cache.
    pub fn evaluator(mut self, opts: EvalOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Sets the thread policy for the local-error sweeps (defaults to
    /// [`Parallelism::auto`]). The refinement result is bit-identical at
    /// any thread count — this only changes wall-clock time. Shorthand
    /// for [`evaluator`](FraBuilder::evaluator) with only the
    /// parallelism changed.
    pub fn parallelism(mut self, par: Parallelism) -> Self {
        self.opts.parallelism = par;
        self
    }

    /// Records δ of the evolving reconstruction after every refinement
    /// pick into [`FraResult::delta_trajectory`]. With
    /// [`EvalOptions::cached`] on, each step re-integrates only the
    /// tiles dirtied by the insertion's Delaunay cavity instead of the
    /// whole grid.
    pub fn track_delta(mut self, track: bool) -> Self {
        self.track_delta = track;
        self
    }

    /// Runs FRA against the historical reference surface.
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidParameter`] — no grid was supplied, or the
    ///   communication radius is not positive/finite.
    /// * [`CoreError::BudgetTooSmall`] — `k == 0`.
    /// * Propagated geometry/network errors (not expected for valid
    ///   inputs).
    pub fn run<F: Field + Sync>(&self, reference: &F) -> Result<FraResult, CoreError> {
        let grid = self.grid.ok_or(CoreError::InvalidParameter {
            name: "grid",
            requirement: "a candidate grid must be supplied via FraBuilder::grid",
        })?;
        if !self.comm_radius.is_finite() || self.comm_radius <= 0.0 {
            return Err(CoreError::InvalidParameter {
                name: "comm_radius",
                requirement: "must be positive and finite",
            });
        }
        if self.k == 0 {
            return Err(CoreError::BudgetTooSmall { k: 0, minimum: 1 });
        }
        let rect = grid.rect();

        // The evolving reconstruction surface (empty at first: the
        // initial "approximation" is the nearest-sample extrapolation
        // of whatever has been chosen so far).
        let mut dt = Triangulation::new(rect);
        let mut zs: Vec<f64> = Vec::new();

        let par = self.opts.parallelism;
        let kernel = self.opts.kernel;
        // Lines 2–3: the full local-error array, swept on the parallel
        // evaluation engine (bit-identical at any thread count).
        let mut errors = LocalErrorGrid::new_kernel_with(grid, reference, &dt, &zs, par, kernel);

        let mut chosen: Vec<Point2> = Vec::with_capacity(self.k);
        let mut refined = 0usize;
        let mut relays = 0usize;
        let obs_threads = par.threads();
        let mut trajectory: Option<Vec<f64>> = self.track_delta.then(Vec::new);
        let mut cache: Option<DeltaCache> = None;

        loop {
            let remaining = self.k - chosen.len();
            if remaining == 0 {
                break;
            }

            // Foresight (lines 5–8): how many relays would connecting
            // the current deployment cost?
            let plan = {
                let _t = cps_obs::time(cps_obs::Phase::FraForesight, obs_threads);
                if chosen.len() >= 2 {
                    let graph = UnitDiskGraph::new(chosen.clone(), self.comm_radius)?;
                    RelayPlan::for_graph(&graph)
                } else {
                    RelayPlan::default()
                }
            };
            debug_assert!(
                plan.relay_count() <= remaining,
                "foresight invariant violated: need {} relays with {} remaining",
                plan.relay_count(),
                remaining
            );
            if plan.relay_count() == remaining && remaining > 0 {
                // Spend the rest of the budget on the relay positions
                // P(G, k−i).
                let placed = spend_relays(&mut chosen, plan.relays(), self.k, &mut relays);
                if chosen.len() == self.k {
                    break;
                }
                // Deduplication dropped relays, so part of the budget is
                // still unspent. Re-enter the loop: foresight runs again
                // against the grown deployment, so the remaining picks
                // keep the connectivity invariant. (The old code filled
                // the gap straight from the error grid without another
                // foresight pass, which could strand those fill
                // positions with no relay budget left to reach them.)
                if placed == 0 {
                    // Every relay position collided with a chosen node:
                    // re-running foresight would reproduce the same
                    // degenerate plan forever.
                    return Err(CoreError::InvalidParameter {
                        name: "relay_plan",
                        requirement: "foresight must yield at least one relay position \
                                      distinct from the chosen nodes",
                    });
                }
                cps_obs::count(cps_obs::Counter::RelayReplans);
                continue;
            }

            // Refinement (line 9): the max-local-error position that
            // keeps the foresight invariant satisfiable.
            let budget_after = remaining - 1;
            let mut rejected: Vec<usize> = Vec::new();
            let picked = {
                let _t = cps_obs::time(cps_obs::Phase::FraRefine, obs_threads);
                loop {
                    let Some((candidate, _err)) = errors.argmax(&rejected) else {
                        break None;
                    };
                    if chosen.iter().any(|c| c.distance(candidate) <= 1e-9) {
                        errors.mark_used(candidate);
                        rejected.push(errors.flat_index_of(candidate));
                        cps_obs::count(cps_obs::Counter::ArgmaxRejections);
                        continue;
                    }
                    // Would accepting this candidate still leave enough
                    // budget to connect everything?
                    let mut with_candidate = chosen.clone();
                    with_candidate.push(candidate);
                    let need = if with_candidate.len() >= 2 {
                        let g = UnitDiskGraph::new(with_candidate, self.comm_radius)?;
                        RelayPlan::for_graph(&g).relay_count()
                    } else {
                        0
                    };
                    if need <= budget_after {
                        break Some(candidate);
                    }
                    rejected.push(errors.flat_index_of(candidate));
                    cps_obs::count(cps_obs::Counter::ArgmaxRejections);
                }
            };

            match picked {
                Some(p) => {
                    // Lines 9–11: select, retriangulate, update errors.
                    let _t = cps_obs::time(cps_obs::Phase::FraRetriangulate, obs_threads);
                    errors.mark_used(p);
                    chosen.push(p);
                    refined += 1;
                    // A vertex that grows the sample hull (or an early
                    // vertex, while extrapolation still dominates)
                    // changes the surface far beyond the Delaunay
                    // cavity, so the whole error grid is refreshed;
                    // interior vertices only dirty the cavity plus a
                    // margin where the nearest-sample may have changed.
                    let hull_grows = dt.vertex_count() < 3 || dt.locate(p).is_none();
                    let margin = dt
                        .nearest_vertex(p)
                        .map(|id| 2.0 * dt.vertex(id).distance(p))
                        .unwrap_or(0.0);
                    dt.insert(p)?;
                    zs.push(reference.value(p));
                    if hull_grows {
                        cps_obs::count(cps_obs::Counter::FullGridRecomputes);
                        errors.recompute_region_kernel(
                            rect.min(),
                            rect.max(),
                            reference,
                            &dt,
                            &zs,
                            par,
                            kernel,
                        );
                    } else if let Some((lo, hi)) = dt.last_insert_bbox() {
                        cps_obs::count(cps_obs::Counter::CavityRecomputes);
                        errors.recompute_region_kernel(
                            Point2::new(lo.x - margin, lo.y - margin),
                            Point2::new(hi.x + margin, hi.y + margin),
                            reference,
                            &dt,
                            &zs,
                            par,
                            kernel,
                        );
                    }
                    if let Some(traj) = trajectory.as_mut() {
                        traj.push(self.refinement_delta(reference, &grid, &dt, &zs, &mut cache)?);
                    }
                }
                None => {
                    // No candidate fits the budget: connect what exists
                    // now (need < remaining is guaranteed), then keep
                    // refining with the connected network.
                    let placed = spend_relays(&mut chosen, plan.relays(), self.k, &mut relays);
                    if plan.relay_count() == 0 {
                        // Nothing to connect and nothing selectable:
                        // the grid is exhausted (k larger than the
                        // grid). Give up gracefully.
                        return Err(CoreError::BudgetTooSmall {
                            k: self.k,
                            minimum: chosen.len(),
                        });
                    }
                    if placed == 0 {
                        // Relays exist but all collide with chosen
                        // nodes: iterating again would recompute the
                        // identical plan forever.
                        return Err(CoreError::InvalidParameter {
                            name: "relay_plan",
                            requirement: "foresight must yield at least one relay position \
                                          distinct from the chosen nodes",
                        });
                    }
                    cps_obs::count(cps_obs::Counter::RelayReplans);
                }
            }
        }

        Ok(FraResult {
            positions: chosen,
            refined,
            relays,
            delta_trajectory: trajectory,
        })
    }

    /// δ of the refinement surface against the reference: the constant
    /// fallback while fewer than three picks exist, the Delaunay
    /// reconstruction after. With [`EvalOptions::cached`] on, the tile
    /// cache re-integrates only the tiles dirtied since the last pick.
    fn refinement_delta<F: Field + Sync>(
        &self,
        reference: &F,
        grid: &GridSpec,
        dt: &Triangulation,
        zs: &[f64],
        cache: &mut Option<DeltaCache>,
    ) -> Result<f64, CoreError> {
        let par = self.opts.parallelism;
        if dt.vertex_count() < 3 {
            let plane = constant_fallback(zs);
            return Ok(delta::volume_difference_with(reference, &plane, grid, par));
        }
        let surface = ReconstructedSurface::from_triangulation(dt.clone(), zs.to_vec())?;
        if self.opts.cached {
            let c = cache.get_or_insert_with(|| DeltaCache::new(reference, grid, par));
            Ok(c.refresh_with_kernel(&surface, par, self.opts.kernel).delta)
        } else {
            Ok(match self.opts.kernel {
                // The walk path wants δ alone — skip the rms sweep.
                cps_field::Kernel::Walk => {
                    delta::volume_difference_with(reference, &surface, grid, par)
                }
                cps_field::Kernel::Raster => {
                    cps_field::raster::delta_rms_raster(reference, &surface, grid, par).delta
                }
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeltaEvaluator;
    use cps_field::{GaussianBlob, GaussianMixtureField, PeaksField};
    use cps_geometry::Rect;

    fn region() -> Rect {
        Rect::square(100.0).unwrap()
    }

    fn grid() -> GridSpec {
        GridSpec::new(region(), 51, 51).unwrap()
    }

    fn peaks() -> PeaksField {
        PeaksField::new(region(), 8.0)
    }

    #[test]
    fn builder_validates() {
        assert!(matches!(
            FraBuilder::new(10, 10.0).run(&peaks()),
            Err(CoreError::InvalidParameter { name: "grid", .. })
        ));
        assert!(matches!(
            FraBuilder::new(10, 0.0).grid(grid()).run(&peaks()),
            Err(CoreError::InvalidParameter {
                name: "comm_radius",
                ..
            })
        ));
        assert!(matches!(
            FraBuilder::new(0, 10.0).grid(grid()).run(&peaks()),
            Err(CoreError::BudgetTooSmall { .. })
        ));
    }

    #[test]
    fn produces_exactly_k_connected_nodes() {
        for k in [1, 2, 5, 12, 30] {
            let r = FraBuilder::new(k, 10.0).grid(grid()).run(&peaks()).unwrap();
            assert_eq!(r.positions.len(), k, "k = {k}");
            assert_eq!(r.refined + r.relays, k);
            let g = UnitDiskGraph::new(r.positions.clone(), 10.0).unwrap();
            assert!(g.is_connected(), "k = {k} produced a disconnected network");
            // All positions in the region.
            assert!(r.positions.iter().all(|p| region().contains(*p)));
        }
    }

    #[test]
    fn parallelism_does_not_change_the_result() {
        // The whole refinement sequence — argmax choices included — must
        // be invariant under the thread policy.
        let f = peaks();
        let serial = FraBuilder::new(20, 10.0)
            .grid(grid())
            .parallelism(Parallelism::serial())
            .run(&f)
            .unwrap();
        for par in [
            Parallelism::fixed(2),
            Parallelism::fixed(3),
            Parallelism::auto(),
        ] {
            let other = FraBuilder::new(20, 10.0)
                .grid(grid())
                .parallelism(par)
                .run(&f)
                .unwrap();
            assert_eq!(serial, other, "with {par:?}");
        }
    }

    #[test]
    fn spend_relays_skips_positions_colliding_with_chosen() {
        // Regression for the defensive-fill path: a relay that lands on
        // an already-chosen node (within the dedup tolerance) must be
        // skipped and reported as not placed, so the caller re-runs
        // foresight instead of blindly topping up from the error grid.
        let mut chosen = vec![Point2::new(10.0, 10.0), Point2::new(30.0, 10.0)];
        let mut relays = 0usize;
        let plan = [
            Point2::new(10.0, 10.0 + 1e-12), // collides with chosen[0]
            Point2::new(20.0, 10.0),
            Point2::new(20.0, 10.0), // collides with the one just placed
        ];
        let placed = spend_relays(&mut chosen, &plan, 4, &mut relays);
        assert_eq!(placed, 1);
        assert_eq!(relays, 1);
        assert_eq!(chosen.len(), 3);
        assert_eq!(chosen[2], Point2::new(20.0, 10.0));

        // Budget cap: with k already met nothing more is placed.
        let placed = spend_relays(&mut chosen, &[Point2::new(50.0, 50.0)], 3, &mut relays);
        assert_eq!(placed, 0);
        assert_eq!(chosen.len(), 3);
    }

    #[test]
    fn budget_met_and_connected_across_radii() {
        // Broadened coverage for the relay-spend path: every radius in
        // this sweep must end with exactly k nodes and a connected
        // network, including tight radii where foresight fires often.
        let f = peaks();
        for rc in [6.0, 8.0, 12.0, 18.0, 40.0] {
            for k in [3, 9, 21] {
                let r = FraBuilder::new(k, rc).grid(grid()).run(&f).unwrap();
                assert_eq!(r.positions.len(), k, "rc = {rc}, k = {k}");
                assert_eq!(r.refined + r.relays, k, "rc = {rc}, k = {k}");
                let g = UnitDiskGraph::new(r.positions.clone(), rc).unwrap();
                assert!(g.is_connected(), "rc = {rc}, k = {k} disconnected");
            }
        }
    }

    #[test]
    fn no_duplicate_positions() {
        let r = FraBuilder::new(25, 10.0)
            .grid(grid())
            .run(&peaks())
            .unwrap();
        for i in 0..r.positions.len() {
            for j in i + 1..r.positions.len() {
                assert!(
                    r.positions[i].distance(r.positions[j]) > 1e-9,
                    "duplicate at {i},{j}"
                );
            }
        }
    }

    #[test]
    fn first_pick_is_the_hottest_error() {
        // One sharp blob: the first refinement position must be at it.
        let f = GaussianMixtureField::new(
            0.0,
            vec![GaussianBlob::isotropic(Point2::new(60.0, 40.0), 20.0, 3.0)],
        );
        let r = FraBuilder::new(5, 200.0).grid(grid()).run(&f).unwrap();
        // Generous radius → no relays, pure refinement.
        assert_eq!(r.relays, 0);
        assert!(r.positions[0].distance(Point2::new(60.0, 40.0)) <= 2.0 * 2f64.sqrt());
    }

    #[test]
    fn large_radius_spends_everything_on_refinement() {
        let r = FraBuilder::new(20, 1000.0)
            .grid(grid())
            .run(&peaks())
            .unwrap();
        assert_eq!(r.refined, 20);
        assert_eq!(r.relays, 0);
    }

    #[test]
    fn tight_radius_spends_more_on_relays() {
        let loose = FraBuilder::new(30, 25.0)
            .grid(grid())
            .run(&peaks())
            .unwrap();
        let tight = FraBuilder::new(30, 8.0).grid(grid()).run(&peaks()).unwrap();
        assert!(
            tight.relays >= loose.relays,
            "tight {} vs loose {}",
            tight.relays,
            loose.relays
        );
    }

    #[test]
    fn fra_beats_random_when_connectivity_is_loose() {
        // At Rc = 30 no budget is lost to relays: pure refinement must
        // beat a random scattering decisively (the Fig. 7 claim).
        use rand::{rngs::StdRng, SeedableRng};
        let f = peaks();
        let g = grid();
        let fra = FraBuilder::new(40, 30.0).grid(g).run(&f).unwrap();
        let mut ev = DeltaEvaluator::new(&f, &g, 30.0);
        let fra_eval = ev.evaluate(&fra.positions).unwrap();
        assert!(fra_eval.connected);
        let mut rng = StdRng::seed_from_u64(11);
        let rand_eval = {
            let pts = crate::osd::baselines::random_deployment(region(), 40, &mut rng);
            ev.evaluate(&pts).unwrap()
        };
        assert!(
            fra_eval.delta < 0.7 * rand_eval.delta,
            "fra {} vs random {}",
            fra_eval.delta,
            rand_eval.delta
        );
    }

    #[test]
    fn fra_beats_worst_case_even_under_tight_connectivity() {
        // At Rc = 10 much of the budget goes to relays on this
        // sharp-featured surface, but FRA must still beat the trivial
        // 4-corner deployment.
        let f = peaks();
        let g = grid();
        let fra = FraBuilder::new(40, 10.0).grid(g).run(&f).unwrap();
        let fra_eval = DeltaEvaluator::new(&f, &g, 10.0)
            .evaluate(&fra.positions)
            .unwrap();
        let corners_eval = DeltaEvaluator::new(&f, &g, 1000.0)
            .evaluate(&region().corners())
            .unwrap();
        assert!(fra_eval.connected);
        assert!(
            fra_eval.delta < corners_eval.delta,
            "fra {} vs corners {}",
            fra_eval.delta,
            corners_eval.delta
        );
    }

    #[test]
    fn tracked_trajectory_matches_cached_tracking_and_trends_down() {
        let f = peaks();
        let full = FraBuilder::new(25, 30.0)
            .grid(grid())
            .track_delta(true)
            .run(&f)
            .unwrap();
        let cached = FraBuilder::new(25, 30.0)
            .grid(grid())
            .evaluator(EvalOptions::new().cached(true))
            .track_delta(true)
            .run(&f)
            .unwrap();
        assert_eq!(full.positions, cached.positions);
        let a = full.delta_trajectory.as_deref().unwrap();
        let b = cached.delta_trajectory.as_deref().unwrap();
        assert_eq!(a.len(), full.refined);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!(
                (x - y).abs() <= 1e-9 * y.abs().max(1.0),
                "full {x} vs cached {y}"
            );
        }
        // Greedy refinement is not strictly monotone, but the end must
        // beat the start decisively.
        assert!(a.last().unwrap() < &(0.5 * a[0]), "trajectory {a:?}");
        // Untracked runs carry no trajectory.
        let untracked = FraBuilder::new(10, 30.0).grid(grid()).run(&f).unwrap();
        assert_eq!(untracked.delta_trajectory, None);
    }
}
