//! OSD: spatial distribution of stationary nodes (Section 4 of the
//! paper).
//!
//! The problem is NP-hard (Theorem 4.1, by reduction from surface
//! approximation); [`FraBuilder`] runs the paper's foresighted
//! refinement algorithm (Table 1), and [`baselines`] provides the
//! random deployment the paper compares against (Fig. 7) plus the
//! uniform grid of Fig. 3(b).

pub mod baselines;

mod fra;
mod local_error;

pub use fra::{FraBuilder, FraResult};
pub use local_error::LocalErrorGrid;
