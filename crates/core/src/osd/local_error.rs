//! The local-error array driving FRA's refinement choice.
//!
//! The paper adopts Garland & Heckbert's *local error* measure: for each
//! candidate position, the vertical distance between the reference
//! surface and the current triangulated approximation,
//! `Err[i][j] = |f(xᵢ, yⱼ) − DT(xᵢ, yⱼ)|` (Table 1 lines 2–3), updated
//! after every insertion only where new triangles appeared (line 11).
//!
//! Recomputation is a dense grid sweep — the FRA hot path — so it runs
//! on the row-sharded evaluation engine of [`cps_field::par`]: one
//! point-location cache per refresh, one locate cursor per row, rows
//! written back in order. [`LocalErrorGrid::recompute_region`] and
//! [`LocalErrorGrid::recompute_region_with`] produce bit-identical
//! error arrays at any thread count.

use cps_field::par::{map_rows, Parallelism};
use cps_field::raster::NO_OWNER;
use cps_field::{Field, Kernel, RasterPlan};
use cps_geometry::{GridSpec, LocateCache, LocateCursor, Point2, Triangulation};

/// The error grid `Err[√A][√A]` of FRA, with used-position tracking.
#[derive(Debug, Clone)]
pub struct LocalErrorGrid {
    grid: GridSpec,
    errors: Vec<f64>,
    used: Vec<bool>,
}

impl LocalErrorGrid {
    /// Builds the grid and computes every local error against the
    /// current triangulated surface.
    ///
    /// `samples[i]` is the surface value at the triangulation's
    /// `VertexId(i)`.
    pub fn new<F: Field>(grid: GridSpec, field: &F, dt: &Triangulation, samples: &[f64]) -> Self {
        let mut this = LocalErrorGrid::empty(grid);
        this.recompute_region(grid.rect().min(), grid.rect().max(), field, dt, samples);
        this
    }

    /// Like [`LocalErrorGrid::new`], but sweeps the grid on the parallel
    /// evaluation engine. The resulting error array is bit-identical to
    /// the serial constructor's at any thread count.
    pub fn new_with<F: Field + Sync>(
        grid: GridSpec,
        field: &F,
        dt: &Triangulation,
        samples: &[f64],
        par: Parallelism,
    ) -> Self {
        let mut this = LocalErrorGrid::empty(grid);
        this.recompute_region_with(
            grid.rect().min(),
            grid.rect().max(),
            field,
            dt,
            samples,
            par,
        );
        this
    }

    /// Like [`LocalErrorGrid::new_with`] with an explicit quadrature
    /// [`Kernel`].
    pub fn new_kernel_with<F: Field + Sync>(
        grid: GridSpec,
        field: &F,
        dt: &Triangulation,
        samples: &[f64],
        par: Parallelism,
        kernel: Kernel,
    ) -> Self {
        let mut this = LocalErrorGrid::empty(grid);
        this.recompute_region_kernel(
            grid.rect().min(),
            grid.rect().max(),
            field,
            dt,
            samples,
            par,
            kernel,
        );
        this
    }

    fn empty(grid: GridSpec) -> Self {
        LocalErrorGrid {
            grid,
            errors: vec![0.0; grid.len()],
            used: vec![false; grid.len()],
        }
    }

    /// The underlying grid.
    pub fn grid(&self) -> &GridSpec {
        &self.grid
    }

    /// Current error at grid point `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics when `(i, j)` lies outside the grid; use
    /// [`LocalErrorGrid::try_error_at`] for fallible probes.
    pub fn error_at(&self, i: usize, j: usize) -> f64 {
        self.errors[self.grid.flat_index(i, j)]
    }

    /// Current error at grid point `(i, j)`, or `None` when the indices
    /// fall outside the grid.
    pub fn try_error_at(&self, i: usize, j: usize) -> Option<f64> {
        if i < self.grid.nx() && j < self.grid.ny() {
            Some(self.errors[self.grid.flat_index(i, j)])
        } else {
            None
        }
    }

    /// Flat index of the grid point nearest `p` — the one shared lookup
    /// behind [`LocalErrorGrid::mark_used`], [`LocalErrorGrid::is_used`]
    /// and [`LocalErrorGrid::flat_index_of`].
    fn nearest_flat(&self, p: Point2) -> usize {
        let (i, j) = self.grid.nearest_index(p);
        self.grid.flat_index(i, j)
    }

    /// Marks the grid point nearest `p` as used (it can no longer be
    /// selected).
    pub fn mark_used(&mut self, p: Point2) {
        let idx = self.nearest_flat(p);
        self.used[idx] = true;
    }

    /// Whether the grid point nearest `p` is already used.
    pub fn is_used(&self, p: Point2) -> bool {
        self.used[self.nearest_flat(p)]
    }

    /// Clips the axis-aligned box `[lo, hi]` to inclusive grid index
    /// ranges, expanding outward so every point inside (or on the edge
    /// of) the box is covered; recomputing a ring of extra points is
    /// harmless.
    fn clip_box(&self, lo: Point2, hi: Point2) -> (usize, usize, usize, usize) {
        let g = &self.grid;
        let fi0 = ((lo.x - g.rect().min().x) / g.dx()).floor();
        let fj0 = ((lo.y - g.rect().min().y) / g.dy()).floor();
        let fi1 = ((hi.x - g.rect().min().x) / g.dx()).ceil();
        let fj1 = ((hi.y - g.rect().min().y) / g.dy()).ceil();
        let i0 = fi0.clamp(0.0, (g.nx() - 1) as f64) as usize;
        let j0 = fj0.clamp(0.0, (g.ny() - 1) as f64) as usize;
        let i1 = fi1.clamp(0.0, (g.nx() - 1) as f64) as usize;
        let j1 = fj1.clamp(0.0, (g.ny() - 1) as f64) as usize;
        (i0, i1, j0, j1)
    }

    /// Copies one recomputed row segment back into the flat error array.
    fn write_row(&mut self, i0: usize, j: usize, row: &[f64]) {
        let base = self.grid.flat_index(i0, j);
        self.errors[base..base + row.len()].copy_from_slice(row);
    }

    /// Recomputes local errors for every grid point inside the
    /// axis-aligned box `[lo, hi]` (clipped to the grid), against the
    /// given surface.
    pub fn recompute_region<F: Field>(
        &mut self,
        lo: Point2,
        hi: Point2,
        field: &F,
        dt: &Triangulation,
        samples: &[f64],
    ) {
        let (i0, i1, j0, j1) = self.clip_box(lo, hi);
        let g = self.grid;
        let cache = dt.locate_cache();
        for j in j0..=j1 {
            let row = row_errors(&g, i0, i1, j, field, dt, &cache, samples);
            self.write_row(i0, j, &row);
        }
    }

    /// Row-parallel variant of [`LocalErrorGrid::recompute_region`]:
    /// rows are sharded across `par.threads()` workers, each walking its
    /// row left-to-right behind a private [`LocateCursor`], and written
    /// back in row order — the refreshed errors are bit-identical to the
    /// serial sweep at any thread count.
    pub fn recompute_region_with<F: Field + Sync>(
        &mut self,
        lo: Point2,
        hi: Point2,
        field: &F,
        dt: &Triangulation,
        samples: &[f64],
        par: Parallelism,
    ) {
        let (i0, i1, j0, j1) = self.clip_box(lo, hi);
        let g = self.grid;
        let cache = dt.locate_cache();
        let cache = &cache;
        let rows = map_rows(j1 - j0 + 1, par, |r| {
            row_errors(&g, i0, i1, j0 + r, field, dt, cache, samples)
        });
        for (r, row) in rows.iter().enumerate() {
            self.write_row(i0, j0 + r, row);
        }
    }

    /// [`LocalErrorGrid::recompute_region_with`] with an explicit
    /// quadrature [`Kernel`].
    ///
    /// Under [`Kernel::Raster`] each row's cells are attributed to
    /// triangles by scanline spans in *locate mode*: a cell is claimed
    /// only when it is strictly inside a triangle beyond the walk's
    /// orientation tolerance, in which case the walk provably lands in
    /// the same triangle and the raster error reproduces the walk's
    /// bit-for-bit. The remaining cells (hull boundary and exterior)
    /// run the ordinary per-cell walk/extrapolation fallback.
    // Mirrors `recompute_region_with`, whose argument-list rationale
    // applies here too.
    #[allow(clippy::too_many_arguments)]
    pub fn recompute_region_kernel<F: Field + Sync>(
        &mut self,
        lo: Point2,
        hi: Point2,
        field: &F,
        dt: &Triangulation,
        samples: &[f64],
        par: Parallelism,
        kernel: Kernel,
    ) {
        if kernel == Kernel::Walk {
            return self.recompute_region_with(lo, hi, field, dt, samples, par);
        }
        let (i0, i1, j0, j1) = self.clip_box(lo, hi);
        let g = self.grid;
        let plan = RasterPlan::build(dt, samples, &g);
        let cache = dt.locate_cache();
        let cache = &cache;
        let plan = &plan;
        let rows = map_rows(j1 - j0 + 1, par, |r| {
            row_errors_raster(&g, i0, i1, j0 + r, field, dt, cache, samples, plan)
        });
        for (r, row) in rows.iter().enumerate() {
            self.write_row(i0, j0 + r, row);
        }
    }

    /// The unused grid point with the largest local error, skipping the
    /// flat indices listed in `rejected`. Returns `None` when every
    /// position is used or rejected.
    pub fn argmax(&self, rejected: &[usize]) -> Option<(Point2, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for idx in 0..self.errors.len() {
            if self.used[idx] || rejected.contains(&idx) {
                continue;
            }
            let e = self.errors[idx];
            if best.is_none_or(|(_, be)| e > be) {
                best = Some((idx, e));
            }
        }
        best.map(|(idx, e)| {
            let i = idx % self.grid.nx();
            let j = idx / self.grid.nx();
            (self.grid.point(i, j), e)
        })
    }

    /// Flat index of the grid point nearest `p` (for rejection lists).
    pub fn flat_index_of(&self, p: Point2) -> usize {
        self.nearest_flat(p)
    }

    /// Sum of all current local errors (a cheap convergence indicator).
    pub fn total_error(&self) -> f64 {
        self.errors.iter().sum()
    }
}

/// One row of `|f − DT|` values over `i0..=i1` at row `j`, walked
/// left-to-right behind a fresh cursor. Both the serial and the parallel
/// sweep delegate here, which is what makes them bit-identical.
// The argument list is the full per-row closure environment; bundling
// it into a struct would just move the same eight names one hop away.
#[allow(clippy::too_many_arguments)]
fn row_errors<F: Field>(
    g: &GridSpec,
    i0: usize,
    i1: usize,
    j: usize,
    field: &F,
    dt: &Triangulation,
    cache: &LocateCache,
    samples: &[f64],
) -> Vec<f64> {
    let mut cursor = LocateCursor::new();
    (i0..=i1)
        .map(|i| {
            let p = g.point(i, j);
            let approx = dt
                .interpolate_with(cache, &mut cursor, p, samples)
                .unwrap_or_else(|| {
                    // Outside the hull of inserted vertices (possible
                    // before the scaffold corners exist): nearest value.
                    dt.nearest_vertex(p).map(|id| samples[id.0]).unwrap_or(0.0)
                });
            (field.value(p) - approx).abs()
        })
        .collect()
}

/// Raster variant of [`row_errors`]: span-claimed cells interpolate
/// from their owning plan triangle (bit-identical to the walk by the
/// locate-mode claim rule); unclaimed cells fall through to the same
/// walk/extrapolation chain as [`row_errors`].
#[allow(clippy::too_many_arguments)]
fn row_errors_raster<F: Field>(
    g: &GridSpec,
    i0: usize,
    i1: usize,
    j: usize,
    field: &F,
    dt: &Triangulation,
    cache: &LocateCache,
    samples: &[f64],
    plan: &RasterPlan,
) -> Vec<f64> {
    let mut owners = vec![NO_OWNER; i1 - i0 + 1];
    plan.fill_row_owners(j, i0, i1, &mut owners);
    let mut cursor = LocateCursor::new();
    (i0..=i1)
        .map(|i| {
            let p = g.point(i, j);
            let approx = match plan.interpolate_owned(owners[i - i0], p, samples) {
                Some(v) => v,
                None => dt
                    .interpolate_with(cache, &mut cursor, p, samples)
                    .unwrap_or_else(|| dt.nearest_vertex(p).map(|id| samples[id.0]).unwrap_or(0.0)),
            };
            (field.value(p) - approx).abs()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_field::{GaussianBlob, PlaneField};
    use cps_geometry::Rect;

    fn setup<F: Field>(field: &F) -> (GridSpec, Triangulation, Vec<f64>) {
        let rect = Rect::square(10.0).unwrap();
        let grid = GridSpec::new(rect, 11, 11).unwrap();
        let mut dt = Triangulation::new(rect);
        let mut zs = Vec::new();
        for c in rect.corners() {
            dt.insert(c).unwrap();
            zs.push(field.value(c));
        }
        (grid, dt, zs)
    }

    #[test]
    fn plane_has_zero_error_everywhere() {
        let f = PlaneField::new(1.0, -2.0, 3.0);
        let (grid, dt, zs) = setup(&f);
        let errs = LocalErrorGrid::new(grid, &f, &dt, &zs);
        assert!(errs.total_error() < 1e-6);
        // argmax still returns something (the max of zeros).
        assert!(errs.argmax(&[]).is_some());
    }

    #[test]
    fn blob_error_peaks_at_blob_center() {
        let f = GaussianBlob::isotropic(Point2::new(5.0, 5.0), 10.0, 1.5);
        let (grid, dt, zs) = setup(&f);
        let errs = LocalErrorGrid::new(grid, &f, &dt, &zs);
        let (p, e) = errs.argmax(&[]).unwrap();
        assert_eq!(p, Point2::new(5.0, 5.0));
        assert!((e - 10.0).abs() < 1.0);
    }

    #[test]
    fn mark_used_excludes_position() {
        let f = GaussianBlob::isotropic(Point2::new(5.0, 5.0), 10.0, 1.5);
        let (grid, dt, zs) = setup(&f);
        let mut errs = LocalErrorGrid::new(grid, &f, &dt, &zs);
        let (p1, _) = errs.argmax(&[]).unwrap();
        errs.mark_used(p1);
        assert!(errs.is_used(p1));
        let (p2, _) = errs.argmax(&[]).unwrap();
        assert_ne!(p1, p2);
    }

    #[test]
    fn rejection_list_is_honoured() {
        let f = GaussianBlob::isotropic(Point2::new(5.0, 5.0), 10.0, 1.5);
        let (grid, dt, zs) = setup(&f);
        let errs = LocalErrorGrid::new(grid, &f, &dt, &zs);
        let (p1, _) = errs.argmax(&[]).unwrap();
        let rejected = vec![errs.flat_index_of(p1)];
        let (p2, _) = errs.argmax(&rejected).unwrap();
        assert_ne!(p1, p2);
    }

    #[test]
    fn insertion_update_reduces_local_error() {
        let f = GaussianBlob::isotropic(Point2::new(5.0, 5.0), 10.0, 1.5);
        let (grid, mut dt, mut zs) = setup(&f);
        let mut errs = LocalErrorGrid::new(grid, &f, &dt, &zs);
        let before = errs.error_at(5, 5);
        // Insert the blob centre and update the dirtied area.
        let center = Point2::new(5.0, 5.0);
        dt.insert(center).unwrap();
        zs.push(f.value(center));
        let (lo, hi) = dt.last_insert_bbox().unwrap();
        errs.recompute_region(lo, hi, &f, &dt, &zs);
        let after = errs.error_at(5, 5);
        assert!(after < before);
        assert!(after < 1e-9);
    }

    #[test]
    fn try_error_at_bounds_checks() {
        let f = PlaneField::new(1.0, -2.0, 3.0);
        let (grid, dt, zs) = setup(&f);
        let errs = LocalErrorGrid::new(grid, &f, &dt, &zs);
        assert_eq!(errs.try_error_at(5, 5), Some(errs.error_at(5, 5)));
        assert_eq!(errs.try_error_at(10, 10), Some(errs.error_at(10, 10)));
        assert_eq!(errs.try_error_at(11, 5), None);
        assert_eq!(errs.try_error_at(5, 11), None);
        assert_eq!(errs.try_error_at(usize::MAX, 0), None);
    }

    #[test]
    fn parallel_recompute_is_bit_identical_to_serial() {
        let f = GaussianBlob::isotropic(Point2::new(5.0, 5.0), 10.0, 1.5);
        let (grid, dt, zs) = setup(&f);
        let serial = LocalErrorGrid::new(grid, &f, &dt, &zs);
        for par in [
            Parallelism::serial(),
            Parallelism::fixed(2),
            Parallelism::fixed(3),
            Parallelism::auto(),
        ] {
            let parallel = LocalErrorGrid::new_with(grid, &f, &dt, &zs, par);
            for j in 0..grid.ny() {
                for i in 0..grid.nx() {
                    assert_eq!(
                        serial.error_at(i, j).to_bits(),
                        parallel.error_at(i, j).to_bits(),
                        "({i}, {j}) with {par:?}"
                    );
                }
            }
        }
    }
}
