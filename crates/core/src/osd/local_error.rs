//! The local-error array driving FRA's refinement choice.
//!
//! The paper adopts Garland & Heckbert's *local error* measure: for each
//! candidate position, the vertical distance between the reference
//! surface and the current triangulated approximation,
//! `Err[i][j] = |f(xᵢ, yⱼ) − DT(xᵢ, yⱼ)|` (Table 1 lines 2–3), updated
//! after every insertion only where new triangles appeared (line 11).

use cps_field::Field;
use cps_geometry::{GridSpec, Point2, Triangulation};

/// The error grid `Err[√A][√A]` of FRA, with used-position tracking.
#[derive(Debug, Clone)]
pub struct LocalErrorGrid {
    grid: GridSpec,
    errors: Vec<f64>,
    used: Vec<bool>,
}

impl LocalErrorGrid {
    /// Builds the grid and computes every local error against the
    /// current triangulated surface.
    ///
    /// `samples[i]` is the surface value at the triangulation's
    /// `VertexId(i)`.
    pub fn new<F: Field>(
        grid: GridSpec,
        field: &F,
        dt: &Triangulation,
        samples: &[f64],
    ) -> Self {
        let mut this = LocalErrorGrid {
            grid,
            errors: vec![0.0; grid.len()],
            used: vec![false; grid.len()],
        };
        this.recompute_region(grid.rect().min(), grid.rect().max(), field, dt, samples);
        this
    }

    /// The underlying grid.
    pub fn grid(&self) -> &GridSpec {
        &self.grid
    }

    /// Current error at grid point `(i, j)`.
    pub fn error_at(&self, i: usize, j: usize) -> f64 {
        self.errors[self.grid.flat_index(i, j)]
    }

    /// Marks the grid point nearest `p` as used (it can no longer be
    /// selected).
    pub fn mark_used(&mut self, p: Point2) {
        let (i, j) = self.grid.nearest_index(p);
        self.used[self.grid.flat_index(i, j)] = true;
    }

    /// Whether the grid point nearest `p` is already used.
    pub fn is_used(&self, p: Point2) -> bool {
        let (i, j) = self.grid.nearest_index(p);
        self.used[self.grid.flat_index(i, j)]
    }

    /// Recomputes local errors for every grid point inside the
    /// axis-aligned box `[lo, hi]` (clipped to the grid), against the
    /// given surface.
    pub fn recompute_region<F: Field>(
        &mut self,
        lo: Point2,
        hi: Point2,
        field: &F,
        dt: &Triangulation,
        samples: &[f64],
    ) {
        let g = self.grid;
        // Clip to grid indices, expanding outward so every point inside
        // (or on the edge of) the rect is covered; recomputing a ring of
        // extra points is harmless.
        let fi0 = ((lo.x - g.rect().min().x) / g.dx()).floor();
        let fj0 = ((lo.y - g.rect().min().y) / g.dy()).floor();
        let fi1 = ((hi.x - g.rect().min().x) / g.dx()).ceil();
        let fj1 = ((hi.y - g.rect().min().y) / g.dy()).ceil();
        let i0 = fi0.clamp(0.0, (g.nx() - 1) as f64) as usize;
        let j0 = fj0.clamp(0.0, (g.ny() - 1) as f64) as usize;
        let i1 = fi1.clamp(0.0, (g.nx() - 1) as f64) as usize;
        let j1 = fj1.clamp(0.0, (g.ny() - 1) as f64) as usize;
        for j in j0..=j1 {
            for i in i0..=i1 {
                let p = g.point(i, j);
                let approx = dt.interpolate(p, samples).unwrap_or_else(|| {
                    // Outside the hull of inserted vertices (possible
                    // before the scaffold corners exist): nearest value.
                    dt.nearest_vertex(p)
                        .map(|id| samples[id.0])
                        .unwrap_or(0.0)
                });
                self.errors[g.flat_index(i, j)] = (field.value(p) - approx).abs();
            }
        }
    }

    /// The unused grid point with the largest local error, skipping the
    /// flat indices listed in `rejected`. Returns `None` when every
    /// position is used or rejected.
    pub fn argmax(&self, rejected: &[usize]) -> Option<(Point2, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for idx in 0..self.errors.len() {
            if self.used[idx] || rejected.contains(&idx) {
                continue;
            }
            let e = self.errors[idx];
            if best.map_or(true, |(_, be)| e > be) {
                best = Some((idx, e));
            }
        }
        best.map(|(idx, e)| {
            let i = idx % self.grid.nx();
            let j = idx / self.grid.nx();
            (self.grid.point(i, j), e)
        })
    }

    /// Flat index of the grid point nearest `p` (for rejection lists).
    pub fn flat_index_of(&self, p: Point2) -> usize {
        let (i, j) = self.grid.nearest_index(p);
        self.grid.flat_index(i, j)
    }

    /// Sum of all current local errors (a cheap convergence indicator).
    pub fn total_error(&self) -> f64 {
        self.errors.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_field::{GaussianBlob, PlaneField};
    use cps_geometry::Rect;

    fn setup<F: Field>(field: &F) -> (GridSpec, Triangulation, Vec<f64>) {
        let rect = Rect::square(10.0).unwrap();
        let grid = GridSpec::new(rect, 11, 11).unwrap();
        let mut dt = Triangulation::new(rect);
        let mut zs = Vec::new();
        for c in rect.corners() {
            dt.insert(c).unwrap();
            zs.push(field.value(c));
        }
        (grid, dt, zs)
    }

    #[test]
    fn plane_has_zero_error_everywhere() {
        let f = PlaneField::new(1.0, -2.0, 3.0);
        let (grid, dt, zs) = setup(&f);
        let errs = LocalErrorGrid::new(grid, &f, &dt, &zs);
        assert!(errs.total_error() < 1e-6);
        // argmax still returns something (the max of zeros).
        assert!(errs.argmax(&[]).is_some());
    }

    #[test]
    fn blob_error_peaks_at_blob_center() {
        let f = GaussianBlob::isotropic(Point2::new(5.0, 5.0), 10.0, 1.5);
        let (grid, dt, zs) = setup(&f);
        let errs = LocalErrorGrid::new(grid, &f, &dt, &zs);
        let (p, e) = errs.argmax(&[]).unwrap();
        assert_eq!(p, Point2::new(5.0, 5.0));
        assert!((e - 10.0).abs() < 1.0);
    }

    #[test]
    fn mark_used_excludes_position() {
        let f = GaussianBlob::isotropic(Point2::new(5.0, 5.0), 10.0, 1.5);
        let (grid, dt, zs) = setup(&f);
        let mut errs = LocalErrorGrid::new(grid, &f, &dt, &zs);
        let (p1, _) = errs.argmax(&[]).unwrap();
        errs.mark_used(p1);
        assert!(errs.is_used(p1));
        let (p2, _) = errs.argmax(&[]).unwrap();
        assert_ne!(p1, p2);
    }

    #[test]
    fn rejection_list_is_honoured() {
        let f = GaussianBlob::isotropic(Point2::new(5.0, 5.0), 10.0, 1.5);
        let (grid, dt, zs) = setup(&f);
        let errs = LocalErrorGrid::new(grid, &f, &dt, &zs);
        let (p1, _) = errs.argmax(&[]).unwrap();
        let rejected = vec![errs.flat_index_of(p1)];
        let (p2, _) = errs.argmax(&rejected).unwrap();
        assert_ne!(p1, p2);
    }

    #[test]
    fn insertion_update_reduces_local_error() {
        let f = GaussianBlob::isotropic(Point2::new(5.0, 5.0), 10.0, 1.5);
        let (grid, mut dt, mut zs) = setup(&f);
        let mut errs = LocalErrorGrid::new(grid, &f, &dt, &zs);
        let before = errs.error_at(5, 5);
        // Insert the blob centre and update the dirtied area.
        let center = Point2::new(5.0, 5.0);
        dt.insert(center).unwrap();
        zs.push(f.value(center));
        let (lo, hi) = dt.last_insert_bbox().unwrap();
        errs.recompute_region(lo, hi, &f, &dt, &zs);
        let after = errs.error_at(5, 5);
        assert!(after < before);
        assert!(after < 1e-9);
    }
}
