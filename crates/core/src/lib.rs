//! The paper's contribution: optimal spatio-temporal distribution of CPS
//! nodes for environment abstraction.
//!
//! Two problems from Kong, Jiang & Wu (ICDCS 2010):
//!
//! * **OSD** — optimal *spatial* distribution of stationary nodes given a
//!   historical reference surface. NP-hard (Theorem 4.1); solved
//!   approximately by the **foresighted refinement algorithm**
//!   ([`osd::FraBuilder`], Table 1 of the paper): greedy Delaunay
//!   refinement at the maximum-local-error position, with a foresight
//!   step that reserves exactly enough of the node budget to stitch the
//!   deployment into one connected network via MST relays.
//!
//! * **OSTD** — optimal *spatio-temporal* distribution of mobile nodes
//!   over a time-varying field with no reference. Solved by the
//!   **coordinated movement algorithm** ([`ostd::cma_step`], Table 2):
//!   each node estimates local Gaussian curvature by a least-squares
//!   quadric fit (Eqns. 11–13), combines curvature-weighted attraction
//!   and spacing repulsion into a virtual-force resultant
//!   (Eqns. 14–18), and preserves connectivity with the local
//!   connectivity mechanism ([`ostd::lcm`]).
//!
//! The target configuration of OSTD is the **curvature-weighted
//! distribution** (CWD, Eqns. 9–10), whose residuals are measured in
//! [`ostd::cwd`].
//!
//! # Example: FRA on a known surface
//!
//! ```
//! use cps_core::osd::FraBuilder;
//! use cps_core::DeltaEvaluator;
//! use cps_field::PeaksField;
//! use cps_geometry::{GridSpec, Rect};
//!
//! let region = Rect::square(100.0).unwrap();
//! let grid = GridSpec::new(region, 51, 51).unwrap();
//! let reference = PeaksField::new(region, 8.0);
//! let result = FraBuilder::new(30, 10.0)
//!     .grid(grid)
//!     .run(&reference)
//!     .unwrap();
//! assert_eq!(result.positions.len(), 30);
//! let eval = DeltaEvaluator::new(&reference, &grid, 10.0)
//!     .evaluate(&result.positions)
//!     .unwrap();
//! assert!(eval.connected);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod config;
mod coverage;
mod error;
mod evaluate;
pub mod osd;
pub mod ostd;
mod problem;
mod report;

pub use config::CpsConfig;
pub use coverage::{coverage_histogram, sensing_coverage};
pub use cps_field::Kernel;
pub use error::CoreError;
pub use evaluate::{DeltaEvaluator, DeploymentEvaluation, EvalOptions};
pub use problem::{OsdProblem, OstdProblem};
pub use report::{
    analyze_deployment, analyze_deployment_with, DeploymentReport, SurvivabilityReport,
    SurvivabilityState, SurvivabilityTracker,
};
