//! Sensing-coverage analysis.
//!
//! The paper explains Fig. 7's flattening by coverage saturation: "the
//! total coverage of these nodes are almost fully cover the region"
//! once `k ≥ 125` at `Rs = 5`. This module quantifies that: the
//! fraction of the region within sensing range of at least one node,
//! and the `k`-coverage profile.

use cps_geometry::{GridSpec, Point2};

/// Fraction of the grid's region within `sensing_radius` of at least
/// one node (1.0 = full sensing coverage).
///
/// # Example
///
/// ```
/// use cps_core::sensing_coverage;
/// use cps_geometry::{GridSpec, Point2, Rect};
///
/// let region = Rect::square(10.0).unwrap();
/// let grid = GridSpec::new(region, 21, 21).unwrap();
/// // One node in the centre with Rs = 20 covers everything.
/// let full = sensing_coverage(&[Point2::new(5.0, 5.0)], 20.0, &grid);
/// assert_eq!(full, 1.0);
/// let partial = sensing_coverage(&[Point2::new(5.0, 5.0)], 2.0, &grid);
/// assert!(partial > 0.0 && partial < 0.5);
/// ```
pub fn sensing_coverage(positions: &[Point2], sensing_radius: f64, grid: &GridSpec) -> f64 {
    if grid.is_empty() {
        return 0.0;
    }
    let r2 = sensing_radius * sensing_radius;
    let covered = grid
        .iter()
        .filter(|&(_, _, p)| positions.iter().any(|n| n.distance_squared(p) <= r2))
        .count();
    covered as f64 / grid.len() as f64
}

/// The coverage-multiplicity histogram: `result[c]` is the fraction of
/// the region sensed by exactly `c` nodes, for `c` in
/// `0..=max_multiplicity` (the last bucket absorbs higher counts).
pub fn coverage_histogram(
    positions: &[Point2],
    sensing_radius: f64,
    grid: &GridSpec,
    max_multiplicity: usize,
) -> Vec<f64> {
    let mut buckets = vec![0usize; max_multiplicity + 1];
    let r2 = sensing_radius * sensing_radius;
    for (_, _, p) in grid.iter() {
        let c = positions
            .iter()
            .filter(|n| n.distance_squared(p) <= r2)
            .count()
            .min(max_multiplicity);
        buckets[c] += 1;
    }
    let total = grid.len() as f64;
    buckets.into_iter().map(|b| b as f64 / total).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_geometry::Rect;

    fn grid() -> GridSpec {
        GridSpec::new(Rect::square(100.0).unwrap(), 51, 51).unwrap()
    }

    #[test]
    fn no_nodes_no_coverage() {
        assert_eq!(sensing_coverage(&[], 5.0, &grid()), 0.0);
        let h = coverage_histogram(&[], 5.0, &grid(), 3);
        assert_eq!(h[0], 1.0);
    }

    #[test]
    fn coverage_grows_with_node_count_and_radius() {
        let few = crate::osd::baselines::uniform_grid_deployment(grid().rect(), 9);
        let many = crate::osd::baselines::uniform_grid_deployment(grid().rect(), 100);
        let c_few = sensing_coverage(&few, 5.0, &grid());
        let c_many = sensing_coverage(&many, 5.0, &grid());
        assert!(c_few < c_many);
        let c_bigger_radius = sensing_coverage(&few, 15.0, &grid());
        assert!(c_bigger_radius > c_few);
    }

    #[test]
    fn the_papers_saturation_point_holds() {
        // ~127 nodes at Rs = 5 m: π·25·127 ≈ 10 000 m² — the paper's
        // "almost fully cover" claim. A uniform layout of 121 nodes
        // covers most of the region.
        let nodes = crate::osd::baselines::uniform_grid_deployment(grid().rect(), 121);
        let c = sensing_coverage(&nodes, 5.0, &grid());
        assert!(c > 0.8, "coverage only {c}");
    }

    #[test]
    fn histogram_sums_to_one_and_caps_multiplicity() {
        let nodes = crate::osd::baselines::uniform_grid_deployment(grid().rect(), 49);
        let h = coverage_histogram(&nodes, 12.0, &grid(), 4);
        let sum: f64 = h.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(h.len(), 5);
        // With Rs larger than half the spacing, overlap exists.
        assert!(h[0] < 1.0);
    }
}
