//! Shared node-capability configuration.

use crate::CoreError;

/// Physical capabilities of a CPS node, shared by both problems
/// (Section 3.1 of the paper: communication radius `Rc`, sensing radius
/// `Rs`, speed `v`) plus the CMA force-balance weight `β` (Eqn. 18).
///
/// Built with a validating builder:
///
/// ```
/// use cps_core::CpsConfig;
///
/// // The paper's simulation setting (Section 6.1).
/// let cfg = CpsConfig::builder()
///     .comm_radius(10.0)
///     .sensing_radius(5.0)
///     .max_speed(1.0)
///     .beta(2.0)
///     .build()
///     .unwrap();
/// assert_eq!(cfg.comm_radius(), 10.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpsConfig {
    comm_radius: f64,
    sensing_radius: f64,
    max_speed: f64,
    beta: f64,
}

impl CpsConfig {
    /// Starts a builder with the paper's defaults: `Rc = 10`, `Rs = 5`,
    /// `v = 1`, `β = 2`.
    pub fn builder() -> CpsConfigBuilder {
        CpsConfigBuilder::default()
    }

    /// Communication radius `Rc`.
    #[inline]
    pub fn comm_radius(&self) -> f64 {
        self.comm_radius
    }

    /// Sensing radius `Rs`.
    #[inline]
    pub fn sensing_radius(&self) -> f64 {
        self.sensing_radius
    }

    /// Maximum node speed `v` (region units per time unit).
    #[inline]
    pub fn max_speed(&self) -> f64 {
        self.max_speed
    }

    /// Repulsion weight `β` in `Fs = Fa + β·Fr`.
    #[inline]
    pub fn beta(&self) -> f64 {
        self.beta
    }
}

impl Default for CpsConfig {
    /// The paper's simulation setting (Section 6.1).
    fn default() -> Self {
        CpsConfig {
            comm_radius: 10.0,
            sensing_radius: 5.0,
            max_speed: 1.0,
            beta: 2.0,
        }
    }
}

/// Builder for [`CpsConfig`]; all parameters validated at
/// [`CpsConfigBuilder::build`].
#[derive(Debug, Clone, Default)]
pub struct CpsConfigBuilder {
    cfg: CpsConfig,
}

impl CpsConfigBuilder {
    /// Sets the communication radius `Rc` (must be positive, finite).
    pub fn comm_radius(&mut self, rc: f64) -> &mut Self {
        self.cfg.comm_radius = rc;
        self
    }

    /// Sets the sensing radius `Rs` (must be positive, finite).
    pub fn sensing_radius(&mut self, rs: f64) -> &mut Self {
        self.cfg.sensing_radius = rs;
        self
    }

    /// Sets the maximum speed `v` (must be positive, finite).
    pub fn max_speed(&mut self, v: f64) -> &mut Self {
        self.cfg.max_speed = v;
        self
    }

    /// Sets the repulsion weight `β` (must be non-negative, finite).
    pub fn beta(&mut self, beta: f64) -> &mut Self {
        self.cfg.beta = beta;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] naming the first
    /// offending parameter.
    pub fn build(&self) -> Result<CpsConfig, CoreError> {
        let c = self.cfg;
        if !c.comm_radius.is_finite() || c.comm_radius <= 0.0 {
            return Err(CoreError::InvalidParameter {
                name: "comm_radius",
                requirement: "must be positive and finite",
            });
        }
        if !c.sensing_radius.is_finite() || c.sensing_radius <= 0.0 {
            return Err(CoreError::InvalidParameter {
                name: "sensing_radius",
                requirement: "must be positive and finite",
            });
        }
        if !c.max_speed.is_finite() || c.max_speed <= 0.0 {
            return Err(CoreError::InvalidParameter {
                name: "max_speed",
                requirement: "must be positive and finite",
            });
        }
        if c.beta < 0.0 || !c.beta.is_finite() {
            return Err(CoreError::InvalidParameter {
                name: "beta",
                requirement: "must be non-negative and finite",
            });
        }
        Ok(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = CpsConfig::default();
        assert_eq!(c.comm_radius(), 10.0);
        assert_eq!(c.sensing_radius(), 5.0);
        assert_eq!(c.max_speed(), 1.0);
        assert_eq!(c.beta(), 2.0);
        assert_eq!(CpsConfig::builder().build().unwrap(), c);
    }

    #[test]
    fn builder_overrides() {
        let c = CpsConfig::builder()
            .comm_radius(30.0)
            .sensing_radius(8.0)
            .max_speed(2.0)
            .beta(0.0)
            .build()
            .unwrap();
        assert_eq!(c.comm_radius(), 30.0);
        assert_eq!(c.sensing_radius(), 8.0);
        assert_eq!(c.max_speed(), 2.0);
        assert_eq!(c.beta(), 0.0);
    }

    #[test]
    fn builder_rejects_bad_values() {
        assert!(CpsConfig::builder().comm_radius(0.0).build().is_err());
        assert!(CpsConfig::builder().comm_radius(f64::NAN).build().is_err());
        assert!(CpsConfig::builder().sensing_radius(-1.0).build().is_err());
        assert!(CpsConfig::builder().max_speed(0.0).build().is_err());
        assert!(CpsConfig::builder().beta(-0.1).build().is_err());
        assert!(CpsConfig::builder().beta(f64::INFINITY).build().is_err());
    }
}
