//! Typed problem statements — the paper's Definitions 3.1 (OSD) and
//! 3.2 (OSTD) as validated, solvable objects.

use cps_field::Field;
use cps_geometry::{GridSpec, Point2, Rect};

use crate::osd::{FraBuilder, FraResult};
use crate::{CoreError, CpsConfig};

/// The optimal spatial distribution problem (Definition 3.1):
/// given `k`, a referential surface, `Rc` and the region `A`, choose
/// `k` positions minimizing δ subject to `G(V, E)` connected.
///
/// # Example
///
/// ```
/// use cps_core::OsdProblem;
/// use cps_field::PeaksField;
/// use cps_geometry::Rect;
///
/// let region = Rect::square(100.0).unwrap();
/// let problem = OsdProblem::new(region, 20, 15.0).unwrap();
/// let solution = problem.solve(&PeaksField::new(region, 8.0)).unwrap();
/// assert_eq!(solution.positions.len(), 20);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OsdProblem {
    region: Rect,
    k: usize,
    comm_radius: f64,
    resolution: usize,
}

impl OsdProblem {
    /// Default candidate-grid resolution: ~1 position per metre on the
    /// paper's 100 m region, scaled with the region.
    fn default_resolution(region: Rect) -> usize {
        (region.width().max(region.height()).round() as usize + 1).clamp(11, 201)
    }

    /// States the problem.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] for `k == 0` or a non-positive
    /// communication radius.
    pub fn new(region: Rect, k: usize, comm_radius: f64) -> Result<Self, CoreError> {
        if k == 0 {
            return Err(CoreError::BudgetTooSmall { k: 0, minimum: 1 });
        }
        if !comm_radius.is_finite() || comm_radius <= 0.0 {
            return Err(CoreError::InvalidParameter {
                name: "comm_radius",
                requirement: "must be positive and finite",
            });
        }
        Ok(OsdProblem {
            region,
            k,
            comm_radius,
            resolution: Self::default_resolution(region),
        })
    }

    /// Overrides the candidate-grid resolution (positions per side).
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] when below 2.
    pub fn with_resolution(mut self, resolution: usize) -> Result<Self, CoreError> {
        if resolution < 2 {
            return Err(CoreError::InvalidParameter {
                name: "resolution",
                requirement: "needs at least a 2x2 candidate grid",
            });
        }
        self.resolution = resolution;
        Ok(self)
    }

    /// The region of interest `A`.
    pub fn region(&self) -> Rect {
        self.region
    }

    /// The node budget `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The communication radius `Rc`.
    pub fn comm_radius(&self) -> f64 {
        self.comm_radius
    }

    /// The candidate grid the solver searches.
    ///
    /// # Errors
    ///
    /// Propagates grid-construction failures (cannot occur for a
    /// validated problem).
    pub fn candidate_grid(&self) -> Result<GridSpec, CoreError> {
        GridSpec::new(self.region, self.resolution, self.resolution).map_err(CoreError::from)
    }

    /// Solves the problem with the paper's FRA heuristic (the exact
    /// problem is NP-hard, Theorem 4.1).
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn solve<F: Field + Sync>(&self, reference: &F) -> Result<FraResult, CoreError> {
        FraBuilder::new(self.k, self.comm_radius)
            .grid(self.candidate_grid()?)
            .run(reference)
    }
}

/// The optimal spatio-temporal distribution problem (Definition 3.2):
/// `k` mobile nodes with capabilities `cfg` must track a time-varying
/// field over `region`, connected at every time slot. Solved by running
/// CMA in the `cps-sim` simulator; this type validates and packages the
/// inputs the simulator needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OstdProblem {
    region: Rect,
    k: usize,
    cfg: CpsConfig,
}

impl OstdProblem {
    /// States the problem.
    ///
    /// # Errors
    ///
    /// [`CoreError::BudgetTooSmall`] for `k == 0`.
    pub fn new(region: Rect, k: usize, cfg: CpsConfig) -> Result<Self, CoreError> {
        if k == 0 {
            return Err(CoreError::BudgetTooSmall { k: 0, minimum: 1 });
        }
        Ok(OstdProblem { region, k, cfg })
    }

    /// The region of interest.
    pub fn region(&self) -> Rect {
        self.region
    }

    /// The node budget.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The node capabilities.
    pub fn config(&self) -> &CpsConfig {
        &self.cfg
    }

    /// The paper's initial state: a connected grid. Spacing is 93 % of
    /// `Rc` so the lattice starts with connectivity slack (see the
    /// simulator's scenario docs).
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] when the grid cannot fit in the
    /// region at that spacing.
    pub fn initial_positions(&self) -> Result<Vec<Point2>, CoreError> {
        let n = (self.k as f64).sqrt().ceil();
        let spacing = 0.93 * self.cfg.comm_radius();
        let span = spacing * (n - 1.0);
        if span > self.region.width() || span > self.region.height() {
            return Err(CoreError::InvalidParameter {
                name: "k",
                requirement: "connected grid start does not fit the region at 0.93*Rc spacing",
            });
        }
        let x0 = self.region.center().x - span / 2.0;
        let y0 = self.region.center().y - span / 2.0;
        let n = n as usize;
        let mut out = Vec::with_capacity(self.k);
        'outer: for j in 0..n {
            for i in 0..n {
                if out.len() == self.k {
                    break 'outer;
                }
                out.push(Point2::new(
                    x0 + spacing * i as f64,
                    y0 + spacing * j as f64,
                ));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_field::PeaksField;
    use cps_network::UnitDiskGraph;

    #[test]
    fn osd_validation_and_accessors() {
        let region = Rect::square(50.0).unwrap();
        assert!(matches!(
            OsdProblem::new(region, 0, 10.0),
            Err(CoreError::BudgetTooSmall { .. })
        ));
        assert!(OsdProblem::new(region, 5, 0.0).is_err());
        let p = OsdProblem::new(region, 5, 10.0).unwrap();
        assert_eq!(p.k(), 5);
        assert_eq!(p.comm_radius(), 10.0);
        assert_eq!(p.region(), region);
        assert_eq!(p.candidate_grid().unwrap().nx(), 51);
        assert!(p.with_resolution(1).is_err());
    }

    #[test]
    fn osd_solve_produces_a_feasible_plan() {
        let region = Rect::square(60.0).unwrap();
        let problem = OsdProblem::new(region, 12, 15.0)
            .unwrap()
            .with_resolution(31)
            .unwrap();
        let field = PeaksField::new(region, 8.0);
        let solution = problem.solve(&field).unwrap();
        assert_eq!(solution.positions.len(), 12);
        assert!(UnitDiskGraph::new(solution.positions, 15.0)
            .unwrap()
            .is_connected());
    }

    #[test]
    fn ostd_initial_grid_is_connected_and_fits() {
        let region = Rect::square(100.0).unwrap();
        let problem = OstdProblem::new(region, 100, CpsConfig::default()).unwrap();
        let start = problem.initial_positions().unwrap();
        assert_eq!(start.len(), 100);
        assert!(start.iter().all(|p| region.contains(*p)));
        assert!(UnitDiskGraph::new(start, problem.config().comm_radius())
            .unwrap()
            .is_connected());
    }

    #[test]
    fn ostd_rejects_impossible_grids() {
        // 400 nodes at 0.93·10 m spacing span ~177 m: too big for 100 m.
        let region = Rect::square(100.0).unwrap();
        let problem = OstdProblem::new(region, 400, CpsConfig::default()).unwrap();
        assert!(problem.initial_positions().is_err());
        assert!(matches!(
            OstdProblem::new(region, 0, CpsConfig::default()),
            Err(CoreError::BudgetTooSmall { .. })
        ));
    }
}
