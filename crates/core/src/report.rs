//! Full deployment analysis: reconstruction quality plus network
//! health plus coverage balance, in one report.
//!
//! [`evaluate_deployment`](crate::evaluate_deployment) answers the
//! paper's question (δ and connectivity); this report adds the
//! operational questions a deployment owner asks next: how fragile is
//! the network (articulation points), how long are the data paths
//! (diameter), and how evenly is the region split between nodes
//! (Voronoi coverage areas)?

use cps_field::{Field, Parallelism};
use cps_geometry::{coverage_areas, GridSpec, Point2, Rect, Triangulation};
use cps_linalg::Summary;
use cps_network::{articulation_points, criticality, network_diameter, UnitDiskGraph};

use crate::evaluate::evaluate_deployment_with;
use crate::{evaluate_deployment, CoreError, DeploymentEvaluation};

/// The full analysis of a deployment.
#[derive(Debug, Clone)]
pub struct DeploymentReport {
    /// Reconstruction quality (δ, rms, connectivity).
    pub evaluation: DeploymentEvaluation,
    /// Nodes whose single failure would disconnect the network.
    pub articulation_points: Vec<usize>,
    /// Fraction of nodes that are articulation points (0 = fully
    /// redundant).
    pub criticality: f64,
    /// Longest shortest communication path (metres), `None` when
    /// disconnected.
    pub network_diameter: Option<f64>,
    /// Summary of per-node Voronoi coverage areas over the region.
    pub coverage: Summary,
}

impl DeploymentReport {
    /// Ratio of the largest to the smallest per-node coverage area — 1
    /// for a perfectly even split, large when a few nodes carry most of
    /// the region.
    pub fn coverage_imbalance(&self) -> f64 {
        if self.coverage.min > 0.0 {
            self.coverage.max / self.coverage.min
        } else {
            f64::INFINITY
        }
    }
}

/// Computes the [`DeploymentReport`] for node `positions` against
/// `reference` over `grid`, at communication radius `comm_radius`.
///
/// # Errors
///
/// Propagates [`evaluate_deployment`] errors (too few nodes, positions
/// outside the region) and geometry errors from the coverage
/// computation.
///
/// # Example
///
/// ```
/// use cps_core::analyze_deployment;
/// use cps_field::PeaksField;
/// use cps_geometry::{GridSpec, Rect};
/// use cps_core::osd::baselines::uniform_grid_deployment;
///
/// let region = Rect::square(100.0).unwrap();
/// let grid = GridSpec::new(region, 41, 41).unwrap();
/// let field = PeaksField::new(region, 8.0);
/// let nodes = uniform_grid_deployment(region, 16);
/// let report = analyze_deployment(&field, &nodes, 30.0, &grid).unwrap();
/// assert!(report.evaluation.connected);
/// assert!((report.coverage_imbalance() - 1.0).abs() < 1e-6); // even grid
/// ```
pub fn analyze_deployment<F: Field>(
    reference: &F,
    positions: &[Point2],
    comm_radius: f64,
    grid: &GridSpec,
) -> Result<DeploymentReport, CoreError> {
    let evaluation = evaluate_deployment(reference, positions, comm_radius, grid)?;
    finish_report(evaluation, positions, comm_radius, grid)
}

/// Like [`analyze_deployment`], but runs the δ/RMS quadratures on the
/// parallel evaluation engine; the report is bit-identical to the
/// serial one at any thread count.
///
/// # Errors
///
/// Same contract as [`analyze_deployment`].
pub fn analyze_deployment_with<F: Field + Sync>(
    reference: &F,
    positions: &[Point2],
    comm_radius: f64,
    grid: &GridSpec,
    par: Parallelism,
) -> Result<DeploymentReport, CoreError> {
    let evaluation = evaluate_deployment_with(reference, positions, comm_radius, grid, par)?;
    finish_report(evaluation, positions, comm_radius, grid)
}

/// The network-health and coverage half of the report, shared by the
/// serial and parallel entry points.
fn finish_report(
    evaluation: DeploymentEvaluation,
    positions: &[Point2],
    comm_radius: f64,
    grid: &GridSpec,
) -> Result<DeploymentReport, CoreError> {
    let graph = UnitDiskGraph::new(positions.to_vec(), comm_radius)?;
    let cuts = articulation_points(&graph);
    let crit = criticality(&graph);
    let diameter = if evaluation.connected {
        network_diameter(&graph)
    } else {
        None
    };

    // Coverage: Voronoi cells of the deployment over the region.
    let region: Rect = grid.rect();
    let mut dt = Triangulation::new(region);
    for &p in positions {
        match dt.insert(p) {
            Ok(_) => {}
            Err(cps_geometry::GeometryError::DuplicatePoint { .. }) => {}
            Err(e) => return Err(CoreError::Geometry(e)),
        }
    }
    let coverage = Summary::from_values(&coverage_areas(&dt));

    Ok(DeploymentReport {
        evaluation,
        articulation_points: cuts,
        criticality: crit,
        network_diameter: diameter,
        coverage,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::osd::{baselines, FraBuilder};
    use cps_field::PeaksField;

    fn setting() -> (Rect, GridSpec, PeaksField) {
        let region = Rect::square(100.0).unwrap();
        let grid = GridSpec::new(region, 41, 41).unwrap();
        (region, grid, PeaksField::new(region, 8.0))
    }

    #[test]
    fn uniform_grid_report_is_balanced_and_redundant() {
        let (region, grid, field) = setting();
        let nodes = baselines::uniform_grid_deployment(region, 25);
        // Rc = 25 comfortably exceeds the 20 m grid spacing including
        // diagonals (28 > 25): rich connectivity without full mesh.
        let report = analyze_deployment(&field, &nodes, 25.0, &grid).unwrap();
        assert!(report.evaluation.connected);
        assert!((report.coverage_imbalance() - 1.0).abs() < 1e-6);
        // Diagonal links exist (20·√2 = 28.3 > 25: no diagonals, but
        // row/column redundancy still removes most cut vertices).
        assert!(report.criticality < 0.5);
        assert!(report.network_diameter.unwrap() > 0.0);
    }

    #[test]
    fn relay_chains_show_up_as_articulation_points() {
        let (_, grid, field) = setting();
        // Tight radius: FRA must build relay chains, which are
        // inherently fragile.
        let fra = FraBuilder::new(30, 8.0).grid(grid).run(&field).unwrap();
        let report = analyze_deployment(&field, &fra.positions, 8.0, &grid).unwrap();
        assert!(report.evaluation.connected);
        assert!(
            !report.articulation_points.is_empty(),
            "relay chains should contain cut vertices"
        );
        assert!(report.coverage_imbalance() > 1.0);
    }

    #[test]
    fn disconnected_deployment_has_no_diameter() {
        let (_, grid, field) = setting();
        let nodes = vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(99.0, 99.0),
        ];
        let report = analyze_deployment(&field, &nodes, 5.0, &grid).unwrap();
        assert!(!report.evaluation.connected);
        assert_eq!(report.network_diameter, None);
    }
}
