//! Full deployment analysis: reconstruction quality plus network
//! health plus coverage balance, in one report.
//!
//! [`DeltaEvaluator`](crate::DeltaEvaluator) answers the paper's
//! question (δ and connectivity); this report adds the operational
//! questions a deployment owner asks next: how fragile is the network
//! (articulation points), how long are the data paths (diameter), and
//! how evenly is the region split between nodes (Voronoi coverage
//! areas)?

use cps_field::{Field, Parallelism};
use cps_geometry::{coverage_areas, GridSpec, Point2, Rect, Triangulation};
use cps_linalg::Summary;
use cps_network::{articulation_points, criticality, network_diameter, UnitDiskGraph};

use crate::{CoreError, DeltaEvaluator, DeploymentEvaluation};

/// The full analysis of a deployment.
#[derive(Debug, Clone)]
pub struct DeploymentReport {
    /// Reconstruction quality (δ, rms, connectivity).
    pub evaluation: DeploymentEvaluation,
    /// Nodes whose single failure would disconnect the network.
    pub articulation_points: Vec<usize>,
    /// Fraction of nodes that are articulation points (0 = fully
    /// redundant).
    pub criticality: f64,
    /// Longest shortest communication path (metres), `None` when
    /// disconnected.
    pub network_diameter: Option<f64>,
    /// Summary of per-node Voronoi coverage areas over the region.
    pub coverage: Summary,
}

impl DeploymentReport {
    /// Ratio of the largest to the smallest per-node coverage area — 1
    /// for a perfectly even split, large when a few nodes carry most of
    /// the region.
    pub fn coverage_imbalance(&self) -> f64 {
        if self.coverage.min > 0.0 {
            self.coverage.max / self.coverage.min
        } else {
            f64::INFINITY
        }
    }
}

/// Computes the [`DeploymentReport`] for node `positions` against
/// `reference` over `grid`, at communication radius `comm_radius`.
///
/// # Errors
///
/// Propagates [`DeltaEvaluator::evaluate`] errors (too few nodes,
/// positions outside the region) and geometry errors from the coverage
/// computation.
///
/// # Example
///
/// ```
/// use cps_core::analyze_deployment;
/// use cps_field::PeaksField;
/// use cps_geometry::{GridSpec, Rect};
/// use cps_core::osd::baselines::uniform_grid_deployment;
///
/// let region = Rect::square(100.0).unwrap();
/// let grid = GridSpec::new(region, 41, 41).unwrap();
/// let field = PeaksField::new(region, 8.0);
/// let nodes = uniform_grid_deployment(region, 16);
/// let report = analyze_deployment(&field, &nodes, 30.0, &grid).unwrap();
/// assert!(report.evaluation.connected);
/// assert!((report.coverage_imbalance() - 1.0).abs() < 1e-6); // even grid
/// ```
pub fn analyze_deployment<F: Field + Sync>(
    reference: &F,
    positions: &[Point2],
    comm_radius: f64,
    grid: &GridSpec,
) -> Result<DeploymentReport, CoreError> {
    analyze_deployment_with(
        reference,
        positions,
        comm_radius,
        grid,
        Parallelism::serial(),
    )
}

/// Like [`analyze_deployment`], but runs the δ/RMS quadratures on the
/// parallel evaluation engine; the report is bit-identical to the
/// serial one at any thread count.
///
/// # Errors
///
/// Same contract as [`analyze_deployment`].
pub fn analyze_deployment_with<F: Field + Sync>(
    reference: &F,
    positions: &[Point2],
    comm_radius: f64,
    grid: &GridSpec,
    par: Parallelism,
) -> Result<DeploymentReport, CoreError> {
    let evaluation = DeltaEvaluator::new(reference, grid, comm_radius)
        .parallelism(par)
        .evaluate(positions)?;
    finish_report(evaluation, positions, comm_radius, grid)
}

/// The network-health and coverage half of the report, shared by the
/// serial and parallel entry points.
fn finish_report(
    evaluation: DeploymentEvaluation,
    positions: &[Point2],
    comm_radius: f64,
    grid: &GridSpec,
) -> Result<DeploymentReport, CoreError> {
    let graph = UnitDiskGraph::new(positions.to_vec(), comm_radius)?;
    let cuts = articulation_points(&graph);
    let crit = criticality(&graph);
    let diameter = if evaluation.connected {
        network_diameter(&graph)
    } else {
        None
    };

    // Coverage: Voronoi cells of the deployment over the region.
    let region: Rect = grid.rect();
    let mut dt = Triangulation::new(region);
    for &p in positions {
        match dt.insert(p) {
            Ok(_) => {}
            Err(cps_geometry::GeometryError::DuplicatePoint { .. }) => {}
            Err(e) => return Err(CoreError::Geometry(e)),
        }
    }
    let coverage = Summary::from_values(&coverage_areas(&dt));

    Ok(DeploymentReport {
        evaluation,
        articulation_points: cuts,
        criticality: crit,
        network_diameter: diameter,
        coverage,
    })
}

/// How gracefully a deployment degraded under a fault schedule: the δ
/// cost of attrition, partition/recovery timing, and the message-level
/// price of lossy links. Built incrementally by [`SurvivabilityTracker`]
/// as a faulty simulation runs.
#[derive(Debug, Clone, PartialEq)]
pub struct SurvivabilityReport {
    /// Fleet size at deployment.
    pub initial_nodes: usize,
    /// Nodes still alive at the end of the run.
    pub surviving_nodes: usize,
    /// `1 − surviving/initial`.
    pub fraction_dead: f64,
    /// First recorded δ (None when no δ sample was taken).
    pub baseline_delta: Option<f64>,
    /// Last recorded δ.
    pub final_delta: Option<f64>,
    /// The degradation curve: `(fraction dead, δ)` at every δ sample,
    /// in record order.
    pub degradation: Vec<(f64, f64)>,
    /// Times the surviving network split into multiple components.
    pub partitions: usize,
    /// Times it healed back into one component.
    pub reconnects: usize,
    /// Time (simulation minutes) each healed partition stayed open, in
    /// order of recovery.
    pub reconnect_times: Vec<f64>,
    /// Whether the run ended partitioned.
    pub unresolved_partition: bool,
    /// Total single-hop message attempts across the run.
    pub messages: usize,
    /// Delivery attempts that were retries of lost messages.
    pub retried: usize,
    /// Directed link-slots whose whole retry budget failed.
    pub dropped: usize,
    /// Articulation points of the final surviving network — the nodes
    /// whose loss would partition it again.
    pub critical_nodes: Vec<usize>,
}

impl SurvivabilityReport {
    /// δ degradation factor `final/baseline` (None without two δ
    /// samples or with a zero baseline).
    pub fn degradation_factor(&self) -> Option<f64> {
        match (self.baseline_delta, self.final_delta) {
            (Some(base), Some(end)) if base > 0.0 => Some(end / base),
            _ => None,
        }
    }

    /// Serializes the report as a JSON object (hand-rolled: the report
    /// must survive environments without a serializer).
    pub fn to_json(&self) -> String {
        fn num(x: f64) -> String {
            if x.is_finite() {
                format!("{x}")
            } else {
                "null".to_string()
            }
        }
        fn opt(x: Option<f64>) -> String {
            x.map(num).unwrap_or_else(|| "null".to_string())
        }
        let degradation: Vec<String> = self
            .degradation
            .iter()
            .map(|&(dead, delta)| format!("[{},{}]", num(dead), num(delta)))
            .collect();
        let reconnect_times: Vec<String> = self.reconnect_times.iter().map(|&t| num(t)).collect();
        let critical: Vec<String> = self.critical_nodes.iter().map(|c| c.to_string()).collect();
        format!(
            "{{\"initial_nodes\":{},\"surviving_nodes\":{},\"fraction_dead\":{},\
             \"baseline_delta\":{},\"final_delta\":{},\"degradation\":[{}],\
             \"partitions\":{},\"reconnects\":{},\"reconnect_times\":[{}],\
             \"unresolved_partition\":{},\"messages\":{},\"retried\":{},\
             \"dropped\":{},\"critical_nodes\":[{}]}}",
            self.initial_nodes,
            self.surviving_nodes,
            num(self.fraction_dead),
            opt(self.baseline_delta),
            opt(self.final_delta),
            degradation.join(","),
            self.partitions,
            self.reconnects,
            reconnect_times.join(","),
            self.unresolved_partition,
            self.messages,
            self.retried,
            self.dropped,
            critical.join(","),
        )
    }
}

/// Accumulates a [`SurvivabilityReport`] from per-slot observations of
/// a running (possibly faulty) simulation. Deliberately decoupled from
/// the simulation types: feed it alive counts, component counts, δ
/// samples, and message counters from any loop.
#[derive(Debug, Clone)]
pub struct SurvivabilityTracker {
    initial_nodes: usize,
    last_alive: usize,
    baseline_delta: Option<f64>,
    final_delta: Option<f64>,
    degradation: Vec<(f64, f64)>,
    partitions: usize,
    reconnects: usize,
    reconnect_times: Vec<f64>,
    partition_open_since: Option<f64>,
    messages: usize,
    retried: usize,
    dropped: usize,
    critical_nodes: Vec<usize>,
}

/// The complete mutable state of a [`SurvivabilityTracker`], with every
/// field public — the serializable face of the tracker, used by
/// checkpoint/restore so an interrupted run's report picks up exactly
/// where it stopped.
#[derive(Debug, Clone, PartialEq)]
pub struct SurvivabilityState {
    /// Fleet size at deployment.
    pub initial_nodes: usize,
    /// Survivor count at the last observed slot.
    pub last_alive: usize,
    /// First recorded δ, if any.
    pub baseline_delta: Option<f64>,
    /// Last recorded δ, if any.
    pub final_delta: Option<f64>,
    /// `(fraction dead, δ)` at every δ sample so far.
    pub degradation: Vec<(f64, f64)>,
    /// Partitions opened so far.
    pub partitions: usize,
    /// Partitions healed so far.
    pub reconnects: usize,
    /// Minutes each healed partition stayed open.
    pub reconnect_times: Vec<f64>,
    /// When the currently-open partition started (None when whole).
    pub partition_open_since: Option<f64>,
    /// Message attempts so far.
    pub messages: usize,
    /// Retried attempts so far.
    pub retried: usize,
    /// Dropped directed link-slots so far.
    pub dropped: usize,
    /// Articulation points recorded for the final network.
    pub critical_nodes: Vec<usize>,
}

impl SurvivabilityTracker {
    /// A tracker for a fleet of `initial_nodes`.
    pub fn new(initial_nodes: usize) -> Self {
        SurvivabilityTracker {
            initial_nodes,
            last_alive: initial_nodes,
            baseline_delta: None,
            final_delta: None,
            degradation: Vec::new(),
            partitions: 0,
            reconnects: 0,
            reconnect_times: Vec::new(),
            partition_open_since: None,
            messages: 0,
            retried: 0,
            dropped: 0,
            critical_nodes: Vec::new(),
        }
    }

    /// Feeds one slot: simulation time, survivor count, component count
    /// of the surviving network, and optionally a fresh δ sample.
    pub fn observe_slot(&mut self, time: f64, alive: usize, components: usize, delta: Option<f64>) {
        self.last_alive = alive;
        if components >= 2 {
            if self.partition_open_since.is_none() {
                self.partition_open_since = Some(time);
                self.partitions += 1;
            }
        } else if components == 1 {
            if let Some(since) = self.partition_open_since.take() {
                self.reconnects += 1;
                self.reconnect_times.push(time - since);
            }
        }
        if let Some(delta) = delta {
            if self.baseline_delta.is_none() {
                self.baseline_delta = Some(delta);
            }
            self.final_delta = Some(delta);
            let dead = if self.initial_nodes == 0 {
                0.0
            } else {
                1.0 - alive as f64 / self.initial_nodes as f64
            };
            self.degradation.push((dead, delta));
        }
    }

    /// Adds one slot's message accounting (attempts, retries, drops).
    pub fn observe_messages(&mut self, messages: usize, retried: usize, dropped: usize) {
        self.messages += messages;
        self.retried += retried;
        self.dropped += dropped;
    }

    /// Records the articulation points of the final surviving network.
    pub fn set_critical_nodes(&mut self, nodes: Vec<usize>) {
        self.critical_nodes = nodes;
    }

    /// Copies the tracker's full mutable state (for checkpointing).
    pub fn state(&self) -> SurvivabilityState {
        SurvivabilityState {
            initial_nodes: self.initial_nodes,
            last_alive: self.last_alive,
            baseline_delta: self.baseline_delta,
            final_delta: self.final_delta,
            degradation: self.degradation.clone(),
            partitions: self.partitions,
            reconnects: self.reconnects,
            reconnect_times: self.reconnect_times.clone(),
            partition_open_since: self.partition_open_since,
            messages: self.messages,
            retried: self.retried,
            dropped: self.dropped,
            critical_nodes: self.critical_nodes.clone(),
        }
    }

    /// Rebuilds a tracker from a previously captured state; observing
    /// the same remaining slots yields the same report an uninterrupted
    /// tracker would produce.
    pub fn from_state(state: SurvivabilityState) -> Self {
        SurvivabilityTracker {
            initial_nodes: state.initial_nodes,
            last_alive: state.last_alive,
            baseline_delta: state.baseline_delta,
            final_delta: state.final_delta,
            degradation: state.degradation,
            partitions: state.partitions,
            reconnects: state.reconnects,
            reconnect_times: state.reconnect_times,
            partition_open_since: state.partition_open_since,
            messages: state.messages,
            retried: state.retried,
            dropped: state.dropped,
            critical_nodes: state.critical_nodes,
        }
    }

    /// Finalizes the report.
    pub fn finish(self) -> SurvivabilityReport {
        let fraction_dead = if self.initial_nodes == 0 {
            0.0
        } else {
            1.0 - self.last_alive as f64 / self.initial_nodes as f64
        };
        SurvivabilityReport {
            initial_nodes: self.initial_nodes,
            surviving_nodes: self.last_alive,
            fraction_dead,
            baseline_delta: self.baseline_delta,
            final_delta: self.final_delta,
            degradation: self.degradation,
            partitions: self.partitions,
            reconnects: self.reconnects,
            reconnect_times: self.reconnect_times,
            unresolved_partition: self.partition_open_since.is_some(),
            messages: self.messages,
            retried: self.retried,
            dropped: self.dropped,
            critical_nodes: self.critical_nodes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::osd::{baselines, FraBuilder};
    use cps_field::PeaksField;

    fn setting() -> (Rect, GridSpec, PeaksField) {
        let region = Rect::square(100.0).unwrap();
        let grid = GridSpec::new(region, 41, 41).unwrap();
        (region, grid, PeaksField::new(region, 8.0))
    }

    #[test]
    fn uniform_grid_report_is_balanced_and_redundant() {
        let (region, grid, field) = setting();
        let nodes = baselines::uniform_grid_deployment(region, 25);
        // Rc = 25 comfortably exceeds the 20 m grid spacing including
        // diagonals (28 > 25): rich connectivity without full mesh.
        let report = analyze_deployment(&field, &nodes, 25.0, &grid).unwrap();
        assert!(report.evaluation.connected);
        assert!((report.coverage_imbalance() - 1.0).abs() < 1e-6);
        // Diagonal links exist (20·√2 = 28.3 > 25: no diagonals, but
        // row/column redundancy still removes most cut vertices).
        assert!(report.criticality < 0.5);
        assert!(report.network_diameter.unwrap() > 0.0);
    }

    #[test]
    fn relay_chains_show_up_as_articulation_points() {
        let (_, grid, field) = setting();
        // Tight radius: FRA must build relay chains, which are
        // inherently fragile.
        let fra = FraBuilder::new(30, 8.0).grid(grid).run(&field).unwrap();
        let report = analyze_deployment(&field, &fra.positions, 8.0, &grid).unwrap();
        assert!(report.evaluation.connected);
        assert!(
            !report.articulation_points.is_empty(),
            "relay chains should contain cut vertices"
        );
        assert!(report.coverage_imbalance() > 1.0);
    }

    #[test]
    fn survivability_tracker_times_partitions() {
        let mut t = SurvivabilityTracker::new(10);
        t.observe_slot(0.0, 10, 1, Some(100.0));
        t.observe_slot(1.0, 8, 2, None); // partition opens
        t.observe_slot(2.0, 8, 2, Some(180.0)); // still open: counted once
        t.observe_slot(5.0, 8, 1, Some(150.0)); // healed after 4 minutes
        t.observe_messages(40, 3, 1);
        t.observe_messages(38, 2, 0);
        t.set_critical_nodes(vec![2, 5]);
        let report = t.finish();
        assert_eq!(report.initial_nodes, 10);
        assert_eq!(report.surviving_nodes, 8);
        assert!((report.fraction_dead - 0.2).abs() < 1e-12);
        assert_eq!(report.partitions, 1);
        assert_eq!(report.reconnects, 1);
        assert_eq!(report.reconnect_times, vec![4.0]);
        assert!(!report.unresolved_partition);
        assert_eq!(report.baseline_delta, Some(100.0));
        assert_eq!(report.final_delta, Some(150.0));
        assert_eq!(report.degradation_factor(), Some(1.5));
        assert_eq!(report.degradation.len(), 3);
        assert_eq!(
            (report.messages, report.retried, report.dropped),
            (78, 5, 1)
        );
        assert_eq!(report.critical_nodes, vec![2, 5]);
    }

    #[test]
    fn survivability_state_round_trip_matches_uninterrupted() {
        let feed = |t: &mut SurvivabilityTracker, slots: std::ops::Range<usize>| {
            for s in slots {
                let alive = 10 - s.min(3);
                let comps = if s == 2 { 2 } else { 1 };
                let delta = (s % 2 == 0).then_some(100.0 + s as f64);
                t.observe_slot(s as f64, alive, comps, delta);
                t.observe_messages(30 + s, s, 0);
            }
        };
        let mut whole = SurvivabilityTracker::new(10);
        feed(&mut whole, 0..8);
        whole.set_critical_nodes(vec![1, 4]);

        let mut first = SurvivabilityTracker::new(10);
        feed(&mut first, 0..3); // interrupted mid-partition
        let mut resumed = SurvivabilityTracker::from_state(first.state());
        feed(&mut resumed, 3..8);
        resumed.set_critical_nodes(vec![1, 4]);
        assert_eq!(whole.state(), resumed.state());
        assert_eq!(whole.finish(), resumed.finish());
    }

    #[test]
    fn survivability_tracker_flags_unresolved_partition() {
        let mut t = SurvivabilityTracker::new(4);
        t.observe_slot(0.0, 4, 1, None);
        t.observe_slot(1.0, 3, 2, None);
        let report = t.finish();
        assert_eq!(report.partitions, 1);
        assert_eq!(report.reconnects, 0);
        assert!(report.unresolved_partition);
        assert_eq!(report.degradation_factor(), None);
    }

    #[test]
    fn survivability_json_is_well_formed() {
        let mut t = SurvivabilityTracker::new(3);
        t.observe_slot(0.0, 3, 1, Some(12.5));
        t.observe_slot(1.0, 2, 2, Some(20.0));
        t.set_critical_nodes(vec![1]);
        let json = t.finish().to_json();
        // Structural spot checks (no serializer available here).
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"initial_nodes\":3"));
        assert!(json.contains("\"surviving_nodes\":2"));
        assert!(json.contains("\"baseline_delta\":12.5"));
        assert!(json.contains("\"unresolved_partition\":true"));
        assert!(json.contains("\"critical_nodes\":[1]"));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn disconnected_deployment_has_no_diameter() {
        let (_, grid, field) = setting();
        let nodes = vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(99.0, 99.0),
        ];
        let report = analyze_deployment(&field, &nodes, 5.0, &grid).unwrap();
        assert!(!report.evaluation.connected);
        assert_eq!(report.network_diameter, None);
    }
}
