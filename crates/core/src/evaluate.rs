//! Deployment evaluation: reconstruct from the node samples and measure
//! the paper's δ against the reference surface.
//!
//! The single entry point is [`DeltaEvaluator`]: a builder holding the
//! reference field, grid, and communication radius, with options for
//! the thread policy, survivor-mask graceful degradation, and the
//! incremental tile cache ([`cps_field::DeltaCache`]).

use cps_field::{
    delta, DeltaCache, Field, FieldError, Kernel, Parallelism, PlaneField, ReconstructedSurface,
};
use cps_geometry::{GridSpec, Point2};
use cps_network::UnitDiskGraph;

use crate::CoreError;

/// Quality report for a node deployment against a reference field.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeploymentEvaluation {
    /// The paper's δ: `∬ |f − DT| dA` (Eqn. 2).
    pub delta: f64,
    /// Root-mean-square pointwise error (secondary metric).
    pub rms: f64,
    /// Whether the deployment's unit-disk graph is connected — the
    /// feasibility constraint of Definitions 3.1/3.2.
    pub connected: bool,
    /// Number of nodes evaluated.
    pub node_count: usize,
}

/// Evaluation knobs shared by everything that measures δ:
/// [`DeltaEvaluator`] itself, plus the FRA and CMA builders via their
/// `.evaluator(...)` option.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EvalOptions {
    /// Thread policy for grid sweeps. Results are bit-identical at any
    /// thread count; this only changes wall-clock time.
    pub parallelism: Parallelism,
    /// Whether δ quadratures go through the incremental tile cache
    /// ([`cps_field::DeltaCache`]) instead of re-walking the full grid.
    /// Off by default; pays off when the same evaluator sees a sequence
    /// of slowly changing deployments against a static reference.
    pub cached: bool,
    /// Which quadrature kernel grid sweeps run:
    /// [`Kernel::Raster`] (default) planes each alive triangle once and
    /// DDA-sweeps its row spans; [`Kernel::Walk`] locates the
    /// containing triangle per grid cell (the original path). Both
    /// agree within 1e-9 (relative) and each is bit-identical across
    /// thread counts.
    pub kernel: Kernel,
}

impl EvalOptions {
    /// The defaults: [`Parallelism::auto`], cache off, raster kernel.
    pub fn new() -> Self {
        EvalOptions::default()
    }

    /// Sets the thread policy.
    pub fn parallelism(mut self, par: Parallelism) -> Self {
        self.parallelism = par;
        self
    }

    /// Enables or disables the incremental tile cache.
    pub fn cached(mut self, cached: bool) -> Self {
        self.cached = cached;
        self
    }

    /// Selects the quadrature kernel.
    pub fn kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = kernel;
        self
    }
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            parallelism: Parallelism::auto(),
            cached: false,
            kernel: Kernel::Raster,
        }
    }
}

/// The unified deployment-evaluation builder: samples the reference at
/// the node positions, rebuilds `z* = DT(x, y)`, and measures δ and RMS
/// over the grid, along with unit-disk connectivity.
///
/// Replaces the removed legacy `evaluate_deployment` /
/// `evaluate_deployment_with` / `evaluate_survivors` /
/// `evaluate_survivors_with` quartet:
///
/// | legacy call | `DeltaEvaluator` equivalent |
/// |---|---|
/// | `evaluate_deployment(f, ps, rc, g)` | `DeltaEvaluator::new(f, g, rc).parallelism(Parallelism::serial()).evaluate(ps)` |
/// | `evaluate_deployment_with(.., par)` | `.parallelism(par).evaluate(ps)` |
/// | `evaluate_survivors(..)` | `.survivors(true)` before `.evaluate(ps)` |
///
/// The evaluator is stateful only when [`cached`](DeltaEvaluator::cached)
/// is on: the tile cache persists across [`evaluate`](DeltaEvaluator::evaluate)
/// calls, so a sequence of slowly changing deployments re-integrates
/// only the tiles whose reconstruction triangles changed. Cached and
/// uncached results agree within 1e-9 (relative); the uncached path is
/// bit-identical to the legacy functions at any thread count.
///
/// # Example
///
/// ```
/// use cps_core::DeltaEvaluator;
/// use cps_field::PlaneField;
/// use cps_geometry::{GridSpec, Point2, Rect};
///
/// let region = Rect::square(10.0).unwrap();
/// let grid = GridSpec::new(region, 21, 21).unwrap();
/// let f = PlaneField::new(1.0, 1.0, 0.0);
/// let nodes: Vec<Point2> = region.corners().to_vec();
/// let eval = DeltaEvaluator::new(&f, &grid, 15.0).evaluate(&nodes).unwrap();
/// assert!(eval.delta < 1e-9); // planes reconstruct exactly
/// assert!(eval.connected);
/// ```
#[derive(Debug, Clone)]
pub struct DeltaEvaluator<'f, F> {
    reference: &'f F,
    grid: GridSpec,
    comm_radius: f64,
    opts: EvalOptions,
    survivors: bool,
    mask: Option<Vec<bool>>,
    cache: Option<DeltaCache>,
}

impl<'f, F: Field + Sync> DeltaEvaluator<'f, F> {
    /// Creates an evaluator for `reference` over `grid` with the given
    /// communication radius ([`EvalOptions::default`] options: auto
    /// parallelism, cache off, hard errors below three distinct nodes).
    pub fn new(reference: &'f F, grid: &GridSpec, comm_radius: f64) -> Self {
        DeltaEvaluator {
            reference,
            grid: *grid,
            comm_radius,
            opts: EvalOptions::default(),
            survivors: false,
            mask: None,
            cache: None,
        }
    }

    /// Replaces all evaluation options at once (the struct shared with
    /// the FRA/CMA builders).
    pub fn options(mut self, opts: EvalOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Sets the thread policy for the δ and RMS sweeps.
    pub fn parallelism(mut self, par: Parallelism) -> Self {
        self.opts.parallelism = par;
        self
    }

    /// Turns the incremental tile cache on or off.
    pub fn cached(mut self, cached: bool) -> Self {
        self.opts.cached = cached;
        self
    }

    /// Selects the quadrature kernel (raster by default).
    pub fn kernel(mut self, kernel: Kernel) -> Self {
        self.opts.kernel = kernel;
        self
    }

    /// Enables graceful degradation under attrition: with fewer than
    /// three distinct positions the abstraction collapses to the best
    /// constant surface — the mean of the survivor samples (0 with no
    /// survivors) — instead of erroring, so the honest, large δ shows
    /// up in survivability curves instead of aborting them.
    pub fn survivors(mut self, survivors: bool) -> Self {
        self.survivors = survivors;
        self
    }

    /// Restricts evaluation to the positions whose mask flag is `true`
    /// (one flag per position passed to
    /// [`evaluate`](DeltaEvaluator::evaluate)). Implies
    /// [`survivors(true)`](DeltaEvaluator::survivors), since a mask
    /// exists precisely to model attrition.
    pub fn survivor_mask(mut self, mask: &[bool]) -> Self {
        self.mask = Some(mask.to_vec());
        self.survivors = true;
        self
    }

    /// Adopts a previously detached tile cache (see
    /// [`take_cache`](DeltaEvaluator::take_cache)); implies
    /// [`cached(true)`](DeltaEvaluator::cached). A cache built over a
    /// different grid is discarded and rebuilt on first use; a cache
    /// whose reference probes no longer match is re-primed.
    pub fn with_cache(mut self, cache: DeltaCache) -> Self {
        self.cache = Some(cache);
        self.opts.cached = true;
        self
    }

    /// Detaches the tile cache so it can outlive this evaluator (e.g.
    /// across the short-lived frozen-field evaluators a δ timeline
    /// builds every recording).
    pub fn take_cache(&mut self) -> Option<DeltaCache> {
        self.cache.take()
    }

    /// The active options.
    pub fn eval_options(&self) -> EvalOptions {
        self.opts
    }

    /// Evaluates one deployment. With the cache on, successive calls
    /// re-integrate only the tiles invalidated by the dirty-triangle
    /// diff against the previous call's reconstruction.
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidParameter`] — a survivor mask whose length
    ///   differs from `positions`.
    /// * [`CoreError::Field`] — fewer than 3 distinct positions (unless
    ///   [`survivors`](DeltaEvaluator::survivors) absorbs it), a
    ///   position outside the grid's region, or non-finite values.
    /// * [`CoreError::Network`] — invalid communication radius.
    pub fn evaluate(&mut self, positions: &[Point2]) -> Result<DeploymentEvaluation, CoreError> {
        let masked;
        let positions = match &self.mask {
            Some(mask) => {
                if mask.len() != positions.len() {
                    return Err(CoreError::InvalidParameter {
                        name: "survivor_mask",
                        requirement: "must carry exactly one flag per position",
                    });
                }
                masked = positions
                    .iter()
                    .zip(mask)
                    .filter_map(|(&p, &alive)| alive.then_some(p))
                    .collect::<Vec<Point2>>();
                &masked[..]
            }
            None => positions,
        };
        let par = self.opts.parallelism;
        let samples: Vec<f64> = positions.iter().map(|&p| self.reference.value(p)).collect();
        match ReconstructedSurface::from_samples(self.grid.rect(), positions, &samples) {
            Ok(surface) => {
                let graph = UnitDiskGraph::new(positions.to_vec(), self.comm_radius)?;
                let (delta, rms) = if self.opts.cached {
                    self.cached_quadrature(&surface)
                } else {
                    let totals = delta::surface_delta_rms_with(
                        self.reference,
                        &surface,
                        &self.grid,
                        par,
                        self.opts.kernel,
                    );
                    (totals.delta, totals.rms)
                };
                Ok(DeploymentEvaluation {
                    delta,
                    rms,
                    connected: graph.is_connected(),
                    node_count: positions.len(),
                })
            }
            Err(FieldError::TooFewSamples { .. }) if self.survivors => {
                // The one and only constant-surface fallback: measured
                // uncached (a plane has no triangles to diff).
                cps_obs::count(cps_obs::Counter::SurvivorFallbacks);
                let graph = UnitDiskGraph::new(positions.to_vec(), self.comm_radius)?;
                let surface = constant_fallback(&samples);
                Ok(DeploymentEvaluation {
                    delta: delta::volume_difference_with(self.reference, &surface, &self.grid, par),
                    rms: delta::rms_difference_with(self.reference, &surface, &self.grid, par),
                    connected: graph.is_connected(),
                    node_count: positions.len(),
                })
            }
            Err(e) => Err(e.into()),
        }
    }

    fn cached_quadrature(&mut self, surface: &ReconstructedSurface) -> (f64, f64) {
        let par = self.opts.parallelism;
        let mut cache = match self.cache.take() {
            Some(mut c) if c.compatible(&self.grid) => {
                if !c.reference_matches(self.reference) {
                    cps_obs::count(cps_obs::Counter::CacheReprimes);
                    c.reprime(self.reference, par);
                }
                c
            }
            _ => DeltaCache::new(self.reference, &self.grid, par),
        };
        let totals = cache.refresh_with_kernel(surface, par, self.opts.kernel);
        self.cache = Some(cache);
        (totals.delta, totals.rms)
    }
}

/// The degraded abstraction when a Delaunay reconstruction is
/// impossible: the constant surface through the survivor-sample mean
/// (0 with no survivors at all). Defined in exactly one place.
pub(crate) fn constant_fallback(samples: &[f64]) -> PlaneField {
    let mean = if samples.is_empty() {
        0.0
    } else {
        samples.iter().sum::<f64>() / samples.len() as f64
    };
    PlaneField::new(0.0, 0.0, mean)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_field::PeaksField;
    use cps_geometry::Rect;

    fn setting() -> (Rect, GridSpec) {
        let region = Rect::square(100.0).unwrap();
        (region, GridSpec::new(region, 41, 41).unwrap())
    }

    #[test]
    fn plane_reconstructs_exactly() {
        let (region, grid) = setting();
        let f = cps_field::PlaneField::new(0.5, -0.3, 2.0);
        let nodes: Vec<Point2> = region.corners().to_vec();
        let e = DeltaEvaluator::new(&f, &grid, 150.0)
            .evaluate(&nodes)
            .unwrap();
        assert!(e.delta < 1e-9);
        assert!(e.rms < 1e-12);
        assert!(e.connected);
        assert_eq!(e.node_count, 4);
    }

    #[test]
    fn more_nodes_reduce_delta_on_peaks() {
        let (region, grid) = setting();
        let f = PeaksField::new(region, 8.0);
        // 3×3 vs 7×7 uniform grids of nodes.
        let mk = |n: usize| -> Vec<Point2> {
            let mut v = Vec::new();
            for j in 0..n {
                for i in 0..n {
                    v.push(Point2::new(
                        100.0 * i as f64 / (n - 1) as f64,
                        100.0 * j as f64 / (n - 1) as f64,
                    ));
                }
            }
            v
        };
        let mut ev = DeltaEvaluator::new(&f, &grid, 200.0);
        let coarse = ev.evaluate(&mk(3)).unwrap();
        let fine = ev.evaluate(&mk(7)).unwrap();
        assert!(fine.delta < coarse.delta);
        assert!(fine.rms < coarse.rms);
    }

    #[test]
    fn parallel_evaluation_is_bit_identical() {
        let (region, grid) = setting();
        let f = PeaksField::new(region, 8.0);
        let mut nodes: Vec<Point2> = region.corners().to_vec();
        nodes.push(Point2::new(37.0, 61.0));
        nodes.push(Point2::new(70.0, 20.0));
        let serial = DeltaEvaluator::new(&f, &grid, 200.0)
            .parallelism(Parallelism::serial())
            .evaluate(&nodes)
            .unwrap();
        for par in [
            Parallelism::serial(),
            Parallelism::fixed(3),
            Parallelism::auto(),
        ] {
            let p = DeltaEvaluator::new(&f, &grid, 200.0)
                .parallelism(par)
                .evaluate(&nodes)
                .unwrap();
            assert_eq!(serial.delta.to_bits(), p.delta.to_bits(), "{par:?}");
            assert_eq!(serial.rms.to_bits(), p.rms.to_bits(), "{par:?}");
            assert_eq!(serial.connected, p.connected);
            assert_eq!(serial.node_count, p.node_count);
        }
    }

    #[test]
    fn cached_evaluation_matches_uncached_across_a_sequence() {
        let (region, grid) = setting();
        let f = PeaksField::new(region, 8.0);
        let mut cached = DeltaEvaluator::new(&f, &grid, 200.0).cached(true);
        let mut uncached = DeltaEvaluator::new(&f, &grid, 200.0);
        let mut nodes: Vec<Point2> = region.corners().to_vec();
        for p in [
            Point2::new(37.0, 61.0),
            Point2::new(70.0, 20.0),
            Point2::new(12.0, 88.0),
            Point2::new(55.0, 44.0),
        ] {
            nodes.push(p);
            let a = cached.evaluate(&nodes).unwrap();
            let b = uncached.evaluate(&nodes).unwrap();
            assert!(
                (a.delta - b.delta).abs() <= 1e-9 * b.delta.abs().max(1.0),
                "delta {} vs {}",
                a.delta,
                b.delta
            );
            assert!((a.rms - b.rms).abs() <= 1e-9 * b.rms.abs().max(1.0));
            assert_eq!(a.connected, b.connected);
            assert_eq!(a.node_count, b.node_count);
        }
    }

    #[test]
    fn cache_detaches_and_reattaches() {
        let (region, grid) = setting();
        let f = PeaksField::new(region, 8.0);
        let nodes: Vec<Point2> = region
            .corners()
            .into_iter()
            .chain([Point2::new(40.0, 30.0)])
            .collect();
        let mut ev = DeltaEvaluator::new(&f, &grid, 200.0).cached(true);
        let first = ev.evaluate(&nodes).unwrap();
        let cache = ev.take_cache().expect("cache primed by evaluate");
        let mut ev2 = DeltaEvaluator::new(&f, &grid, 200.0).with_cache(cache);
        let second = ev2.evaluate(&nodes).unwrap();
        assert_eq!(first.delta.to_bits(), second.delta.to_bits());
    }

    #[test]
    fn survivor_mask_filters_positions() {
        let (region, grid) = setting();
        let f = PeaksField::new(region, 8.0);
        let nodes: Vec<Point2> = region
            .corners()
            .into_iter()
            .chain([Point2::new(50.0, 50.0)])
            .collect();
        // Mask away the centre: equivalent to evaluating the corners.
        let e = DeltaEvaluator::new(&f, &grid, 200.0)
            .survivor_mask(&[true, true, true, true, false])
            .evaluate(&nodes)
            .unwrap();
        let corners = DeltaEvaluator::new(&f, &grid, 200.0)
            .evaluate(&nodes[..4])
            .unwrap();
        assert_eq!(e.delta.to_bits(), corners.delta.to_bits());
        assert_eq!(e.node_count, 4);
        // Mask below three nodes: graceful degradation kicks in.
        let e = DeltaEvaluator::new(&f, &grid, 200.0)
            .survivor_mask(&[true, false, false, false, true])
            .evaluate(&nodes)
            .unwrap();
        assert!(e.delta.is_finite() && e.delta > 0.0);
        assert_eq!(e.node_count, 2);
        // Length mismatch is a parameter error.
        assert!(matches!(
            DeltaEvaluator::new(&f, &grid, 200.0)
                .survivor_mask(&[true, true])
                .evaluate(&nodes),
            Err(CoreError::InvalidParameter {
                name: "survivor_mask",
                ..
            })
        ));
    }

    #[test]
    fn disconnected_deployment_is_flagged() {
        let (region, grid) = setting();
        let f = PeaksField::new(region, 8.0);
        let nodes = vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(99.0, 99.0),
        ];
        let e = DeltaEvaluator::new(&f, &grid, 5.0)
            .evaluate(&nodes)
            .unwrap();
        assert!(!e.connected);
    }

    #[test]
    fn too_few_nodes_error() {
        let (_, grid) = setting();
        let f = PeaksField::new(grid.rect(), 8.0);
        let nodes = vec![Point2::new(1.0, 1.0), Point2::new(2.0, 2.0)];
        assert!(matches!(
            DeltaEvaluator::new(&f, &grid, 5.0).evaluate(&nodes),
            Err(CoreError::Field(_))
        ));
    }

    #[test]
    fn survivors_match_full_evaluation_when_enough_nodes() {
        let (region, grid) = setting();
        let f = PeaksField::new(region, 8.0);
        let nodes: Vec<Point2> = region.corners().to_vec();
        let full = DeltaEvaluator::new(&f, &grid, 150.0)
            .evaluate(&nodes)
            .unwrap();
        let surv = DeltaEvaluator::new(&f, &grid, 150.0)
            .survivors(true)
            .evaluate(&nodes)
            .unwrap();
        assert_eq!(full.delta.to_bits(), surv.delta.to_bits());
        assert_eq!(full.rms.to_bits(), surv.rms.to_bits());
        assert_eq!(full.connected, surv.connected);
    }

    #[test]
    fn survivors_degrade_to_constant_surface_below_three_nodes() {
        let (region, grid) = setting();
        let f = PeaksField::new(region, 8.0);
        // Two survivors: the full evaluation errors, the degraded one
        // measures against the constant surface through their mean.
        let nodes = vec![Point2::new(10.0, 10.0), Point2::new(15.0, 10.0)];
        assert!(DeltaEvaluator::new(&f, &grid, 10.0)
            .evaluate(&nodes)
            .is_err());
        let e = DeltaEvaluator::new(&f, &grid, 10.0)
            .survivors(true)
            .evaluate(&nodes)
            .unwrap();
        assert!(e.delta.is_finite() && e.delta > 0.0);
        assert!(e.connected);
        assert_eq!(e.node_count, 2);
        // Zero survivors: δ against the zero plane — the volume itself.
        let e = DeltaEvaluator::new(&f, &grid, 10.0)
            .survivors(true)
            .evaluate(&[])
            .unwrap();
        assert!(e.delta.is_finite() && e.delta > 0.0);
        assert_eq!(e.node_count, 0);
        // Parallel path is bit-identical.
        let nodes = vec![Point2::new(10.0, 10.0), Point2::new(15.0, 10.0)];
        let serial = DeltaEvaluator::new(&f, &grid, 10.0)
            .parallelism(Parallelism::serial())
            .survivors(true)
            .evaluate(&nodes)
            .unwrap();
        for par in [Parallelism::fixed(3), Parallelism::auto()] {
            let p = DeltaEvaluator::new(&f, &grid, 10.0)
                .parallelism(par)
                .survivors(true)
                .evaluate(&nodes)
                .unwrap();
            assert_eq!(serial.delta.to_bits(), p.delta.to_bits(), "{par:?}");
            assert_eq!(serial.rms.to_bits(), p.rms.to_bits(), "{par:?}");
        }
    }
}
