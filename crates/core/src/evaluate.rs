//! Deployment evaluation: reconstruct from the node samples and measure
//! the paper's δ against the reference surface.

use cps_field::{delta, Field, FieldError, Parallelism, PlaneField, ReconstructedSurface};
use cps_geometry::{GridSpec, Point2};
use cps_network::UnitDiskGraph;

use crate::CoreError;

/// Quality report for a node deployment against a reference field.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeploymentEvaluation {
    /// The paper's δ: `∬ |f − DT| dA` (Eqn. 2).
    pub delta: f64,
    /// Root-mean-square pointwise error (secondary metric).
    pub rms: f64,
    /// Whether the deployment's unit-disk graph is connected — the
    /// feasibility constraint of Definitions 3.1/3.2.
    pub connected: bool,
    /// Number of nodes evaluated.
    pub node_count: usize,
}

/// Samples `reference` at the node positions, rebuilds the surface
/// `z* = DT(x, y)`, and measures δ over `grid`, along with the
/// connectivity of the communication graph at `comm_radius`.
///
/// # Errors
///
/// * [`CoreError::Field`] — fewer than 3 distinct positions, a position
///   outside the grid's region, or non-finite values.
/// * [`CoreError::Network`] — invalid communication radius.
///
/// # Example
///
/// ```
/// use cps_core::evaluate_deployment;
/// use cps_field::PlaneField;
/// use cps_geometry::{GridSpec, Point2, Rect};
///
/// let region = Rect::square(10.0).unwrap();
/// let grid = GridSpec::new(region, 21, 21).unwrap();
/// let f = PlaneField::new(1.0, 1.0, 0.0);
/// let nodes: Vec<Point2> = region.corners().to_vec();
/// let eval = evaluate_deployment(&f, &nodes, 15.0, &grid).unwrap();
/// assert!(eval.delta < 1e-9); // planes reconstruct exactly
/// assert!(eval.connected);
/// ```
pub fn evaluate_deployment<F: Field>(
    reference: &F,
    positions: &[Point2],
    comm_radius: f64,
    grid: &GridSpec,
) -> Result<DeploymentEvaluation, CoreError> {
    let samples: Vec<f64> = positions.iter().map(|&p| reference.value(p)).collect();
    let surface = ReconstructedSurface::from_samples(grid.rect(), positions, &samples)?;
    let graph = UnitDiskGraph::new(positions.to_vec(), comm_radius)?;
    Ok(DeploymentEvaluation {
        delta: delta::volume_difference(reference, &surface, grid),
        rms: delta::rms_difference(reference, &surface, grid),
        connected: graph.is_connected(),
        node_count: positions.len(),
    })
}

/// Like [`evaluate_deployment`], but runs the δ and RMS quadratures on
/// the row-sharded parallel engine. Both metrics are bit-identical to
/// the serial evaluation at any thread count.
///
/// # Errors
///
/// Same contract as [`evaluate_deployment`].
pub fn evaluate_deployment_with<F: Field + Sync>(
    reference: &F,
    positions: &[Point2],
    comm_radius: f64,
    grid: &GridSpec,
    par: Parallelism,
) -> Result<DeploymentEvaluation, CoreError> {
    let samples: Vec<f64> = positions.iter().map(|&p| reference.value(p)).collect();
    let surface = ReconstructedSurface::from_samples(grid.rect(), positions, &samples)?;
    let graph = UnitDiskGraph::new(positions.to_vec(), comm_radius)?;
    Ok(DeploymentEvaluation {
        delta: delta::volume_difference_with(reference, &surface, grid, par),
        rms: delta::rms_difference_with(reference, &surface, grid, par),
        connected: graph.is_connected(),
        node_count: positions.len(),
    })
}

/// Like [`evaluate_deployment`], but degrades gracefully instead of
/// erroring when attrition leaves too few survivors for a Delaunay
/// reconstruction: with fewer than three distinct positions the
/// abstraction collapses to the best constant surface — the mean of the
/// survivor samples (0 with no survivors at all) — and δ is measured
/// against that. The honest, large δ shows up in survivability curves
/// instead of aborting them.
///
/// On three or more distinct positions this is exactly
/// [`evaluate_deployment`].
///
/// # Errors
///
/// Same contract as [`evaluate_deployment`] except that
/// [`FieldError::TooFewSamples`] is absorbed by the constant-surface
/// fallback.
pub fn evaluate_survivors<F: Field>(
    reference: &F,
    positions: &[Point2],
    comm_radius: f64,
    grid: &GridSpec,
) -> Result<DeploymentEvaluation, CoreError> {
    match evaluate_deployment(reference, positions, comm_radius, grid) {
        Err(CoreError::Field(FieldError::TooFewSamples { .. })) => {
            cps_obs::count(cps_obs::Counter::SurvivorFallbacks);
            let graph = UnitDiskGraph::new(positions.to_vec(), comm_radius)?;
            let surface = constant_fallback(reference, positions);
            Ok(DeploymentEvaluation {
                delta: delta::volume_difference(reference, &surface, grid),
                rms: delta::rms_difference(reference, &surface, grid),
                connected: graph.is_connected(),
                node_count: positions.len(),
            })
        }
        other => other,
    }
}

/// Like [`evaluate_survivors`], on the parallel evaluation engine;
/// bit-identical to the serial version at any thread count.
///
/// # Errors
///
/// Same contract as [`evaluate_survivors`].
pub fn evaluate_survivors_with<F: Field + Sync>(
    reference: &F,
    positions: &[Point2],
    comm_radius: f64,
    grid: &GridSpec,
    par: Parallelism,
) -> Result<DeploymentEvaluation, CoreError> {
    match evaluate_deployment_with(reference, positions, comm_radius, grid, par) {
        Err(CoreError::Field(FieldError::TooFewSamples { .. })) => {
            cps_obs::count(cps_obs::Counter::SurvivorFallbacks);
            let graph = UnitDiskGraph::new(positions.to_vec(), comm_radius)?;
            let surface = constant_fallback(reference, positions);
            Ok(DeploymentEvaluation {
                delta: delta::volume_difference_with(reference, &surface, grid, par),
                rms: delta::rms_difference_with(reference, &surface, grid, par),
                connected: graph.is_connected(),
                node_count: positions.len(),
            })
        }
        other => other,
    }
}

/// The degraded abstraction when a Delaunay reconstruction is
/// impossible: the constant surface through the survivor-sample mean.
fn constant_fallback<F: Field>(reference: &F, positions: &[Point2]) -> PlaneField {
    let mean = if positions.is_empty() {
        0.0
    } else {
        positions.iter().map(|&p| reference.value(p)).sum::<f64>() / positions.len() as f64
    };
    PlaneField::new(0.0, 0.0, mean)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_field::PeaksField;
    use cps_geometry::Rect;

    fn setting() -> (Rect, GridSpec) {
        let region = Rect::square(100.0).unwrap();
        (region, GridSpec::new(region, 41, 41).unwrap())
    }

    #[test]
    fn plane_reconstructs_exactly() {
        let (region, grid) = setting();
        let f = cps_field::PlaneField::new(0.5, -0.3, 2.0);
        let nodes: Vec<Point2> = region.corners().to_vec();
        let e = evaluate_deployment(&f, &nodes, 150.0, &grid).unwrap();
        assert!(e.delta < 1e-9);
        assert!(e.rms < 1e-12);
        assert!(e.connected);
        assert_eq!(e.node_count, 4);
    }

    #[test]
    fn more_nodes_reduce_delta_on_peaks() {
        let (region, grid) = setting();
        let f = PeaksField::new(region, 8.0);
        // 3×3 vs 7×7 uniform grids of nodes.
        let mk = |n: usize| -> Vec<Point2> {
            let mut v = Vec::new();
            for j in 0..n {
                for i in 0..n {
                    v.push(Point2::new(
                        100.0 * i as f64 / (n - 1) as f64,
                        100.0 * j as f64 / (n - 1) as f64,
                    ));
                }
            }
            v
        };
        let coarse = evaluate_deployment(&f, &mk(3), 200.0, &grid).unwrap();
        let fine = evaluate_deployment(&f, &mk(7), 200.0, &grid).unwrap();
        assert!(fine.delta < coarse.delta);
        assert!(fine.rms < coarse.rms);
    }

    #[test]
    fn parallel_evaluation_is_bit_identical() {
        let (region, grid) = setting();
        let f = PeaksField::new(region, 8.0);
        let mut nodes: Vec<Point2> = region.corners().to_vec();
        nodes.push(Point2::new(37.0, 61.0));
        nodes.push(Point2::new(70.0, 20.0));
        let serial = evaluate_deployment(&f, &nodes, 200.0, &grid).unwrap();
        for par in [
            Parallelism::serial(),
            Parallelism::fixed(3),
            Parallelism::auto(),
        ] {
            let p = evaluate_deployment_with(&f, &nodes, 200.0, &grid, par).unwrap();
            assert_eq!(serial.delta.to_bits(), p.delta.to_bits(), "{par:?}");
            assert_eq!(serial.rms.to_bits(), p.rms.to_bits(), "{par:?}");
            assert_eq!(serial.connected, p.connected);
            assert_eq!(serial.node_count, p.node_count);
        }
    }

    #[test]
    fn disconnected_deployment_is_flagged() {
        let (region, grid) = setting();
        let f = PeaksField::new(region, 8.0);
        let nodes = vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(99.0, 99.0),
        ];
        let e = evaluate_deployment(&f, &nodes, 5.0, &grid).unwrap();
        assert!(!e.connected);
    }

    #[test]
    fn too_few_nodes_error() {
        let (_, grid) = setting();
        let f = PeaksField::new(grid.rect(), 8.0);
        let nodes = vec![Point2::new(1.0, 1.0), Point2::new(2.0, 2.0)];
        assert!(matches!(
            evaluate_deployment(&f, &nodes, 5.0, &grid),
            Err(CoreError::Field(_))
        ));
    }

    #[test]
    fn survivors_match_full_evaluation_when_enough_nodes() {
        let (region, grid) = setting();
        let f = PeaksField::new(region, 8.0);
        let nodes: Vec<Point2> = region.corners().to_vec();
        let full = evaluate_deployment(&f, &nodes, 150.0, &grid).unwrap();
        let surv = evaluate_survivors(&f, &nodes, 150.0, &grid).unwrap();
        assert_eq!(full.delta.to_bits(), surv.delta.to_bits());
        assert_eq!(full.rms.to_bits(), surv.rms.to_bits());
        assert_eq!(full.connected, surv.connected);
    }

    #[test]
    fn survivors_degrade_to_constant_surface_below_three_nodes() {
        let (region, grid) = setting();
        let f = PeaksField::new(region, 8.0);
        // Two survivors: the full evaluation errors, the degraded one
        // measures against the constant surface through their mean.
        let nodes = vec![Point2::new(10.0, 10.0), Point2::new(15.0, 10.0)];
        assert!(evaluate_deployment(&f, &nodes, 10.0, &grid).is_err());
        let e = evaluate_survivors(&f, &nodes, 10.0, &grid).unwrap();
        assert!(e.delta.is_finite() && e.delta > 0.0);
        assert!(e.connected);
        assert_eq!(e.node_count, 2);
        // Zero survivors: δ against the zero plane — the volume itself.
        let e = evaluate_survivors(&f, &[], 10.0, &grid).unwrap();
        assert!(e.delta.is_finite() && e.delta > 0.0);
        assert_eq!(e.node_count, 0);
        // Parallel path is bit-identical.
        let nodes = vec![Point2::new(10.0, 10.0), Point2::new(15.0, 10.0)];
        let serial = evaluate_survivors(&f, &nodes, 10.0, &grid).unwrap();
        for par in [Parallelism::fixed(3), Parallelism::auto()] {
            let p = evaluate_survivors_with(&f, &nodes, 10.0, &grid, par).unwrap();
            assert_eq!(serial.delta.to_bits(), p.delta.to_bits(), "{par:?}");
            assert_eq!(serial.rms.to_bits(), p.rms.to_bits(), "{par:?}");
        }
    }
}
