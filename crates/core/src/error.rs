//! Error type for the distribution algorithms.

use std::error::Error;
use std::fmt;

/// Errors produced by the distribution algorithms.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A configuration parameter was out of range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Human-readable requirement.
        requirement: &'static str,
    },
    /// The node budget `k` is too small for the requested operation.
    BudgetTooSmall {
        /// Requested budget.
        k: usize,
        /// Minimum budget required.
        minimum: usize,
    },
    /// Too few samples for the least-squares quadric fit (needs ≥ 3).
    TooFewSamplesForFit {
        /// Samples available.
        count: usize,
    },
    /// The quadric fit was degenerate (e.g. all samples collinear).
    DegenerateFit,
    /// An underlying field operation failed.
    Field(cps_field::FieldError),
    /// An underlying geometric operation failed.
    Geometry(cps_geometry::GeometryError),
    /// An underlying network operation failed.
    Network(cps_network::NetworkError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidParameter { name, requirement } => {
                write!(f, "invalid parameter {name}: {requirement}")
            }
            CoreError::BudgetTooSmall { k, minimum } => {
                write!(f, "node budget {k} is below the minimum {minimum}")
            }
            CoreError::TooFewSamplesForFit { count } => {
                write!(f, "quadric fit needs at least 3 samples, got {count}")
            }
            CoreError::DegenerateFit => write!(f, "quadric fit was degenerate"),
            CoreError::Field(e) => write!(f, "field error: {e}"),
            CoreError::Geometry(e) => write!(f, "geometry error: {e}"),
            CoreError::Network(e) => write!(f, "network error: {e}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Field(e) => Some(e),
            CoreError::Geometry(e) => Some(e),
            CoreError::Network(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cps_field::FieldError> for CoreError {
    fn from(e: cps_field::FieldError) -> Self {
        CoreError::Field(e)
    }
}

impl From<cps_geometry::GeometryError> for CoreError {
    fn from(e: cps_geometry::GeometryError) -> Self {
        CoreError::Geometry(e)
    }
}

impl From<cps_network::NetworkError> for CoreError {
    fn from(e: cps_network::NetworkError) -> Self {
        CoreError::Network(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e = CoreError::BudgetTooSmall { k: 2, minimum: 4 };
        assert!(e.to_string().contains("budget 2"));
        let f: CoreError = cps_field::FieldError::NonFiniteValue.into();
        assert!(Error::source(&f).is_some());
        let g: CoreError = cps_geometry::GeometryError::EmptyGrid.into();
        assert!(g.to_string().contains("geometry"));
        let n: CoreError = cps_network::NetworkError::InvalidRadius.into();
        assert!(n.to_string().contains("network"));
    }
}
