//! Error type for the distribution algorithms.

use std::error::Error;
use std::fmt;

/// Errors produced by the distribution algorithms.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A configuration parameter was out of range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Human-readable requirement.
        requirement: &'static str,
    },
    /// The node budget `k` is too small for the requested operation.
    BudgetTooSmall {
        /// Requested budget.
        k: usize,
        /// Minimum budget required.
        minimum: usize,
    },
    /// Too few samples for the least-squares quadric fit (needs ≥ 3).
    TooFewSamplesForFit {
        /// Samples available.
        count: usize,
    },
    /// The quadric fit was degenerate (e.g. all samples collinear).
    DegenerateFit,
    /// A snapshot file could not be read or written.
    SnapshotIo {
        /// Path of the offending file (or directory).
        path: String,
        /// The underlying I/O failure, rendered as text (kept as a
        /// `String` so the error stays `Clone + PartialEq`).
        message: String,
    },
    /// A snapshot failed its integrity check: bad magic, a checksum
    /// mismatch, a truncated payload, or a malformed field.
    SnapshotCorrupt {
        /// Path of the offending file (empty for in-memory snapshots).
        path: String,
        /// What exactly failed to verify.
        reason: String,
    },
    /// A snapshot was written by an incompatible format version.
    SnapshotVersion {
        /// Version found in the file.
        found: u32,
        /// Newest version this build understands.
        supported: u32,
    },
    /// An underlying field operation failed.
    Field(cps_field::FieldError),
    /// An underlying geometric operation failed.
    Geometry(cps_geometry::GeometryError),
    /// An underlying network operation failed.
    Network(cps_network::NetworkError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidParameter { name, requirement } => {
                write!(f, "invalid parameter {name}: {requirement}")
            }
            CoreError::BudgetTooSmall { k, minimum } => {
                write!(f, "node budget {k} is below the minimum {minimum}")
            }
            CoreError::TooFewSamplesForFit { count } => {
                write!(f, "quadric fit needs at least 3 samples, got {count}")
            }
            CoreError::DegenerateFit => write!(f, "quadric fit was degenerate"),
            CoreError::SnapshotIo { path, message } => {
                write!(f, "snapshot I/O failed for {path}: {message}")
            }
            CoreError::SnapshotCorrupt { path, reason } => {
                if path.is_empty() {
                    write!(f, "snapshot corrupt: {reason}")
                } else {
                    write!(f, "snapshot {path} corrupt: {reason}")
                }
            }
            CoreError::SnapshotVersion { found, supported } => {
                write!(
                    f,
                    "snapshot format version {found} is not supported (newest understood: {supported})"
                )
            }
            CoreError::Field(e) => write!(f, "field error: {e}"),
            CoreError::Geometry(e) => write!(f, "geometry error: {e}"),
            CoreError::Network(e) => write!(f, "network error: {e}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Field(e) => Some(e),
            CoreError::Geometry(e) => Some(e),
            CoreError::Network(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cps_field::FieldError> for CoreError {
    fn from(e: cps_field::FieldError) -> Self {
        CoreError::Field(e)
    }
}

impl From<cps_geometry::GeometryError> for CoreError {
    fn from(e: cps_geometry::GeometryError) -> Self {
        CoreError::Geometry(e)
    }
}

impl From<cps_network::NetworkError> for CoreError {
    fn from(e: cps_network::NetworkError) -> Self {
        CoreError::Network(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_errors_display_their_context() {
        let io = CoreError::SnapshotIo {
            path: "/tmp/x.cpsnap".into(),
            message: "permission denied".into(),
        };
        assert!(io.to_string().contains("/tmp/x.cpsnap"));
        assert!(io.to_string().contains("permission denied"));
        let corrupt = CoreError::SnapshotCorrupt {
            path: String::new(),
            reason: "checksum mismatch".into(),
        };
        assert_eq!(corrupt.to_string(), "snapshot corrupt: checksum mismatch");
        let version = CoreError::SnapshotVersion {
            found: 9,
            supported: 1,
        };
        assert!(version.to_string().contains("version 9"));
        // The snapshot variants stay cloneable and comparable.
        assert_eq!(corrupt.clone(), corrupt);
    }

    #[test]
    fn display_and_conversions() {
        let e = CoreError::BudgetTooSmall { k: 2, minimum: 4 };
        assert!(e.to_string().contains("budget 2"));
        let f: CoreError = cps_field::FieldError::NonFiniteValue.into();
        assert!(Error::source(&f).is_some());
        let g: CoreError = cps_geometry::GeometryError::EmptyGrid.into();
        assert!(g.to_string().contains("geometry"));
        let n: CoreError = cps_network::NetworkError::InvalidRadius.into();
        assert!(n.to_string().contains("network"));
    }
}
