//! Local Gaussian-curvature estimation (Eqns. 11–13 of the paper).
//!
//! A node senses `m = ⌊πRs²⌋` positions in its sensing range and fits
//! the quadric `a·x² + b·xy + c·y² = z` (coordinates and values relative
//! to the node) by least squares — the *m nearest-neighbors method*. The
//! principal curvatures follow in closed form:
//!
//! ```text
//! g₁ = a + c − √((a−c)² + b²)          (Eqn. 12)
//! g₂ = a + c + √((a−c)² + b²)          (Eqn. 13)
//! G  = g₁ · g₂
//! ```

use cps_field::Field;
use cps_geometry::Point2;
use cps_linalg::solve_3x3;

use crate::CoreError;

/// The fitted quadric `z = a·x² + b·xy + c·y²` around a node (relative
/// coordinates).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuadricFit {
    /// Coefficient of `x²`.
    pub a: f64,
    /// Coefficient of `xy`.
    pub b: f64,
    /// Coefficient of `y²`.
    pub c: f64,
}

impl QuadricFit {
    /// Principal curvatures `(g₁, g₂)` per Eqns. 12–13.
    pub fn principal_curvatures(&self) -> (f64, f64) {
        let s = ((self.a - self.c) * (self.a - self.c) + self.b * self.b).sqrt();
        (self.a + self.c - s, self.a + self.c + s)
    }

    /// Gaussian curvature `G = g₁·g₂`.
    pub fn gaussian_curvature(&self) -> f64 {
        let (g1, g2) = self.principal_curvatures();
        g1 * g2
    }

    /// `|G|` — the non-negative curvature *weight* used by the
    /// force and balance computations. The paper assumes convex
    /// surfaces where `G ≥ 0`; taking the magnitude extends the
    /// leverage semantics to saddle regions of real data.
    pub fn curvature_weight(&self) -> f64 {
        self.gaussian_curvature().abs()
    }
}

/// Fits the quadric of Eqn. 11 to samples around `center`.
///
/// `samples` are `(position, value)` pairs — typically everything a node
/// sensed within `Rs`; the sample at the centre itself (if present) is
/// skipped because its design row is identically zero.
///
/// # Errors
///
/// * [`CoreError::TooFewSamplesForFit`] — fewer than 3 usable samples.
/// * [`CoreError::DegenerateFit`] — the normal equations are singular
///   (e.g. all samples collinear through the centre).
///
/// # Example
///
/// ```
/// use cps_core::ostd::fit_quadric;
/// use cps_geometry::Point2;
///
/// // Samples of the bowl z = x² + y² around the origin.
/// let samples: Vec<(Point2, f64)> = [
///     (1.0, 0.0), (0.0, 1.0), (-1.0, 0.0), (0.0, -1.0), (1.0, 1.0),
/// ]
/// .iter()
/// .map(|&(x, y)| (Point2::new(x, y), x * x + y * y))
/// .collect();
/// let fit = fit_quadric(Point2::new(0.0, 0.0), 0.0, &samples).unwrap();
/// assert!((fit.gaussian_curvature() - 4.0).abs() < 1e-9);
/// ```
pub fn fit_quadric(
    center: Point2,
    center_value: f64,
    samples: &[(Point2, f64)],
) -> Result<QuadricFit, CoreError> {
    // Accumulate the 3×3 normal equations directly — the design matrix
    // has only three columns, so this is both exact and allocation-free
    // (important: this runs for every sensed position of every node at
    // every time step).
    let mut ata = [[0.0f64; 3]; 3];
    let mut atz = [0.0f64; 3];
    let mut used = 0usize;
    for &(p, z) in samples {
        let x = p.x - center.x;
        let y = p.y - center.y;
        if x == 0.0 && y == 0.0 {
            continue; // the centre row is identically zero
        }
        let row = [x * x, x * y, y * y];
        let rel_z = z - center_value;
        for r in 0..3 {
            for c in 0..3 {
                ata[r][c] += row[r] * row[c];
            }
            atz[r] += row[r] * rel_z;
        }
        used += 1;
    }
    if used < 3 {
        return Err(CoreError::TooFewSamplesForFit { count: used });
    }
    let coef = solve_3x3(&ata, &atz).map_err(|_| CoreError::DegenerateFit)?;
    Ok(QuadricFit {
        a: coef[0],
        b: coef[1],
        c: coef[2],
    })
}

/// Gaussian curvature of an arbitrary [`Field`] at `p`, estimated by the
/// same quadric fit over a ring of probes at spacing `h` — the
/// "global-information" curvature used by the CWD reference solver and
/// the simulator's sensing model.
///
/// # Errors
///
/// Propagates [`fit_quadric`] errors (degenerate only for pathological
/// `h`).
pub fn gaussian_curvature_at<F: Field>(field: &F, p: Point2, h: f64) -> Result<f64, CoreError> {
    debug_assert!(h > 0.0, "probe spacing must be positive");
    let mut samples = Vec::with_capacity(8);
    for (dx, dy) in [
        (1.0, 0.0),
        (-1.0, 0.0),
        (0.0, 1.0),
        (0.0, -1.0),
        (1.0, 1.0),
        (1.0, -1.0),
        (-1.0, 1.0),
        (-1.0, -1.0),
    ] {
        let q = Point2::new(p.x + dx * h, p.y + dy * h);
        samples.push((q, field.value(q)));
    }
    let fit = fit_quadric(p, field.value(p), &samples)?;
    Ok(fit.gaussian_curvature())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_field::{ParaboloidField, PlaneField};

    fn disc_samples<F: Field>(field: &F, center: Point2, radius: f64) -> Vec<(Point2, f64)> {
        // Integer-offset positions within the sensing disc, the paper's
        // m = ⌊πRs²⌋ model.
        let mut out = Vec::new();
        let r = radius.ceil() as i32;
        for dx in -r..=r {
            for dy in -r..=r {
                let p = Point2::new(center.x + dx as f64, center.y + dy as f64);
                if center.distance(p) <= radius {
                    out.push((p, field.value(p)));
                }
            }
        }
        out
    }

    #[test]
    fn recovers_analytic_curvature_of_bowl() {
        let f = ParaboloidField::new(Point2::new(3.0, 4.0), 0.5, 0.0, 0.5);
        let samples = disc_samples(&f, Point2::new(3.0, 4.0), 5.0);
        let fit = fit_quadric(Point2::new(3.0, 4.0), 0.0, &samples).unwrap();
        assert!((fit.gaussian_curvature() - f.gaussian_curvature()).abs() < 1e-9);
        let (g1, g2) = fit.principal_curvatures();
        assert!((g1 - 1.0).abs() < 1e-9);
        assert!((g2 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn recovers_saddle_sign() {
        let f = ParaboloidField::new(Point2::ORIGIN, 1.0, 0.0, -1.0);
        let samples = disc_samples(&f, Point2::ORIGIN, 3.0);
        let fit = fit_quadric(Point2::ORIGIN, 0.0, &samples).unwrap();
        assert!(fit.gaussian_curvature() < 0.0);
        assert!((fit.gaussian_curvature() + 4.0).abs() < 1e-9);
        assert_eq!(fit.curvature_weight(), -fit.gaussian_curvature());
    }

    #[test]
    fn cross_term_is_recovered() {
        let f = ParaboloidField::new(Point2::ORIGIN, 0.0, 1.0, 0.0);
        let samples = disc_samples(&f, Point2::ORIGIN, 3.0);
        let fit = fit_quadric(Point2::ORIGIN, 0.0, &samples).unwrap();
        assert!(fit.a.abs() < 1e-9);
        assert!((fit.b - 1.0).abs() < 1e-9);
        assert!(fit.c.abs() < 1e-9);
        // G = g1·g2 = (0 − 1)(0 + 1) = −1.
        assert!((fit.gaussian_curvature() + 1.0).abs() < 1e-9);
    }

    #[test]
    fn plane_has_zero_curvature() {
        let f = PlaneField::new(2.0, -3.0, 1.0);
        let samples = disc_samples(&f, Point2::new(1.0, 1.0), 3.0);
        // Relative z on a plane is linear, and the quadric basis can
        // only fit it with a ≈ b ≈ c ≈ 0 on symmetric discs... not
        // exactly (linear terms alias into the quadric); what must hold
        // is |G| far smaller than a genuinely curved surface's.
        let fit = fit_quadric(
            Point2::new(1.0, 1.0),
            f.value(Point2::new(1.0, 1.0)),
            &samples,
        )
        .unwrap();
        assert!(
            fit.curvature_weight() < 0.3,
            "weight {}",
            fit.curvature_weight()
        );
    }

    #[test]
    fn too_few_or_degenerate_samples() {
        let p = Point2::ORIGIN;
        assert!(matches!(
            fit_quadric(p, 0.0, &[]),
            Err(CoreError::TooFewSamplesForFit { count: 0 })
        ));
        // Centre sample must not count toward the minimum.
        let only_center = [(p, 0.0)];
        assert!(matches!(
            fit_quadric(p, 0.0, &only_center),
            Err(CoreError::TooFewSamplesForFit { count: 0 })
        ));
        // Collinear through the centre: rank-deficient for the 3-basis.
        let collinear: Vec<(Point2, f64)> = (1..=4)
            .map(|i| (Point2::new(i as f64, 0.0), (i * i) as f64))
            .collect();
        assert!(matches!(
            fit_quadric(p, 0.0, &collinear),
            Err(CoreError::DegenerateFit)
        ));
    }

    #[test]
    fn field_probe_matches_closed_form() {
        let f = ParaboloidField::new(Point2::new(5.0, 5.0), 0.3, 0.1, 0.4);
        let g = gaussian_curvature_at(&f, Point2::new(5.0, 5.0), 0.5).unwrap();
        assert!((g - f.gaussian_curvature()).abs() < 1e-9);
    }
}
