//! OSTD: spatio-temporal distribution of mobile nodes (Section 5 of the
//! paper).
//!
//! * [`curvature`] — local Gaussian-curvature estimation by
//!   least-squares quadric fit (Eqns. 11–13);
//! * [`forces`] — the virtual forces `F1`, `F2`, `Fr` and the resultant
//!   `Fs` (Eqns. 14–18);
//! * [`lcm`] — the local connectivity mechanism (Fig. 4);
//! * [`cma_step`] — one iteration of the coordinated movement algorithm
//!   (Table 2) for a single node;
//! * [`cwd`] — curvature-weighted-distribution residual metrics
//!   (Eqns. 9–10) and a global-information relaxation used as the
//!   Fig. 3 reference.

pub mod curvature;
pub mod cwd;
pub mod forces;
pub mod lcm;

mod cma;

pub use cma::{cma_step, CmaAction, CmaConfig, CmaOutcome, NeighborInfo};
pub use curvature::{fit_quadric, gaussian_curvature_at, QuadricFit};
