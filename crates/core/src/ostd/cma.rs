//! One node-local iteration of the coordinated movement algorithm
//! (CMA, Table 2 of the paper).
//!
//! A node knows only what it sensed within `Rs` and what single-hop
//! neighbors reported within `Rc`. Each iteration it:
//!
//! 1. estimates its own Gaussian curvature by the quadric fit
//!    (Eqns. 11–13, lines 2–3);
//! 2. estimates the curvature at every sensed position and picks the
//!    hottest one `p_c` (lines 6–7);
//! 3. assembles the virtual forces `F1`, `F2`, `Fr` and the resultant
//!    `Fs = F1 + F2 + β·Fr` (lines 8–12);
//! 4. stops if balanced, otherwise heads a sensing-radius step in the
//!    `Fs` direction (lines 13–18).
//!
//! The complexity is `O(m + q)` per node and iteration (Theorem 5.1)
//! up to the curvature map of step 2, which the paper folds into its
//! `CdG` primitive; see the crate benches for the measured scaling.

use cps_geometry::Point2;
use cps_linalg::Vec2;

use super::curvature::fit_quadric;
use super::forces;
use crate::{CoreError, CpsConfig};

/// Curvature weights below this are treated as "flat" (no attraction)
/// rather than normalized up from numerical noise.
const CURVATURE_FLOOR: f64 = 1e-9;

/// Fraction of `Rc` at which the repulsion force rests. The paper's
/// Eqn. 17 rests exactly at `Rc`, parking every neighbor pair on the
/// connectivity cliff; a 5% margin keeps the discrete-time dynamics off
/// the cliff so edges survive one-slot jitter.
const REST_FRACTION: f64 = 0.95;

/// Parameters of a CMA iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CmaConfig {
    /// Communication radius `Rc`.
    pub comm_radius: f64,
    /// Sensing radius `Rs` — the farthest a node will aim per iteration
    /// (Table 2 line 16 caps the desired step at `Rs`).
    pub sensing_radius: f64,
    /// Repulsion weight `β` (Eqn. 18).
    pub beta: f64,
    /// Gain applied to the (normalized) curvature attraction forces
    /// `F1` and `F2` relative to the repulsion `Fr`. The paper leaves
    /// the relative magnitude implicit; the gain decides how strongly
    /// nodes densify at curved terrain versus keeping uniform spacing.
    pub curvature_gain: f64,
    /// Gain applied to the peak-attraction force `F1` (Eqn. 14). Unit
    /// scale keeps it comparable to one neighbor's spring force; zero
    /// disables peak chasing entirely (ablation).
    pub peak_gain: f64,
    /// Reference curvature used to normalize weights: a weight equal to
    /// the reference maps to 1.0 (then multiplied by the gain); larger
    /// weights are clamped. In the distributed setting this is the
    /// gossiped network-wide maximum curvature (the single-hop exchange
    /// of Table 2 propagates it one hop per slot); the simulator keeps
    /// it as a decaying running maximum. Non-positive values disable
    /// the curvature forces.
    pub curvature_scale: f64,
    /// Exponent applied to normalized weights (`(w/scale)^exponent`).
    /// Gaussian curvature spans orders of magnitude on real terrain; a
    /// compressive exponent (mesh-adaptation theory suggests ¼–½ for
    /// piecewise-linear interpolation) lets moderate features
    /// participate instead of being drowned by the hottest peak.
    pub weight_exponent: f64,
    /// Normalized weights below this fraction of the reference are
    /// treated as flat terrain (zero weight). Without the floor, the
    /// residual curvature texture of real sensed data — noise, kernel
    /// artefacts, feature tails — feeds Eqn. 15's distance-weighted
    /// attraction everywhere and the whole lattice slowly collapses
    /// toward the curvature clusters.
    pub weight_floor: f64,
    /// Force magnitude below which the node declares itself balanced
    /// and stops (`Fs == 0` in the paper's idealized arithmetic).
    pub stop_threshold: f64,
}

impl CmaConfig {
    /// Derives CMA parameters from the shared node configuration, with
    /// a stop threshold scaled to the communication radius and the
    /// default curvature gain.
    pub fn from_cps(cfg: &CpsConfig) -> Self {
        CmaConfig {
            comm_radius: cfg.comm_radius(),
            sensing_radius: cfg.sensing_radius(),
            beta: cfg.beta(),
            curvature_gain: 0.5,
            peak_gain: 0.5,
            curvature_scale: 1.0,
            weight_exponent: 0.5,
            weight_floor: 0.3,
            stop_threshold: 0.04 * cfg.comm_radius(),
        }
    }
}

impl Default for CmaConfig {
    fn default() -> Self {
        CmaConfig::from_cps(&CpsConfig::default())
    }
}

/// What a node learned about one single-hop neighbor from the periodic
/// `(x, y, G)` exchange (Table 2 lines 4–5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NeighborInfo {
    /// Neighbor position.
    pub position: Point2,
    /// Neighbor's self-reported Gaussian curvature.
    pub curvature: f64,
}

/// The movement decision of a CMA iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CmaAction {
    /// Forces are balanced; the node stays (Table 2 line 14).
    Stay,
    /// The node wants to move to this destination (Table 2 line 16);
    /// the simulator clamps the actual displacement to the node speed.
    MoveTo(Point2),
}

/// Everything a CMA iteration produces for one node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CmaOutcome {
    /// The node's own estimated Gaussian curvature `G(nᵢ)`.
    pub curvature: f64,
    /// The hottest sensed position `p_c` and its curvature weight.
    pub peak: (Point2, f64),
    /// The peak-attraction component `F1` (Eqn. 14).
    pub f1: Vec2,
    /// The neighbor curvature-balance component `F2` (Eqn. 15).
    pub f2: Vec2,
    /// The spacing repulsion `Fr` (Eqn. 17), before the `β` weight.
    pub fr: Vec2,
    /// The resultant force `Fs` (Eqn. 18).
    pub force: Vec2,
    /// The movement decision.
    pub action: CmaAction,
}

/// Runs one CMA iteration for the node at `position` with sensed value
/// `value`.
///
/// * `sensed` — `(position, value)` pairs within `Rs` (the paper's
///   `M[m][3]`), typically including the node's own position;
/// * `neighbors` — single-hop neighbor reports (the paper's `N[q][3]`).
///
/// # Errors
///
/// * [`CoreError::TooFewSamplesForFit`] / [`CoreError::DegenerateFit`]
///   — the node's own curvature cannot be estimated from `sensed`.
///   (Curvature estimates at *other* sensed positions that fail are
///   skipped with weight zero rather than failing the step.)
///
/// # Example
///
/// ```
/// use cps_core::ostd::{cma_step, CmaAction, CmaConfig, NeighborInfo};
/// use cps_geometry::Point2;
///
/// // Sense a bowl z = x² + y² centred at (3, 0): the node at the
/// // origin should be pulled toward positive x.
/// let f = |x: f64, y: f64| (x - 3.0) * (x - 3.0) + y * y;
/// let mut sensed = Vec::new();
/// for dx in -3i32..=3 {
///     for dy in -3i32..=3 {
///         let (x, y) = (dx as f64, dy as f64);
///         if x * x + y * y <= 9.0 {
///             sensed.push((Point2::new(x, y), f(x, y)));
///         }
///     }
/// }
/// let out = cma_step(
///     Point2::new(0.0, 0.0),
///     f(0.0, 0.0),
///     &sensed,
///     &[],
///     &CmaConfig::default(),
/// )
/// .unwrap();
/// assert!(matches!(out.action, CmaAction::MoveTo(_)));
/// ```
pub fn cma_step(
    position: Point2,
    value: f64,
    sensed: &[(Point2, f64)],
    neighbors: &[NeighborInfo],
    cfg: &CmaConfig,
) -> Result<CmaOutcome, CoreError> {
    // Lines 2–3: own curvature from the local quadric fit.
    let own_fit = fit_quadric(position, value, sensed)?;
    let own_curvature = own_fit.gaussian_curvature();

    // Lines 6–7: curvature at sensed positions; hottest wins. Only
    // positions within Rs/2 are candidates, and each is fitted over the
    // samples within Rs/2 of *itself*: a candidate near the edge of the
    // sensing disc would otherwise be fitted from one-sided samples,
    // and such extrapolative fits report wildly inflated curvature
    // (phantom peaks at the disc boundary that keep every node moving
    // forever). Degenerate fits get weight zero instead of failing the
    // whole step.
    let half = cfg.sensing_radius / 2.0;
    let mut peak = (position, own_fit.curvature_weight());
    let mut local: Vec<(Point2, f64)> = Vec::with_capacity(sensed.len());
    for &(p, z) in sensed {
        if p.distance(position) <= f64::EPSILON || p.distance(position) > half {
            continue;
        }
        local.clear();
        local.extend(
            sensed
                .iter()
                .filter(|(s, _)| s.distance(p) <= half)
                .copied(),
        );
        let weight = fit_quadric(p, z, &local)
            .map(|fit| fit.curvature_weight())
            .unwrap_or(0.0);
        if weight > peak.1 {
            peak = (p, weight);
        }
    }

    // Lines 8–12: virtual forces. Curvature weights are normalized by
    // the network-wide reference scale: raw Gaussian curvatures scale
    // with the inverse square of the region size (a surface stretched
    // over a 100 m region has |G| ~ 10⁻³), which would let the
    // repulsion term drown the curvature terms for any fixed β.
    // Normalizing by a *global* reference (rather than the local
    // maximum) matters: a local normalization makes the faintest
    // neighborhood look maximally curved and the node never settles.
    // See DESIGN.md.
    let norm = |w: f64| -> f64 {
        if cfg.curvature_scale > CURVATURE_FLOOR {
            let nw = (w.abs() / cfg.curvature_scale)
                .min(1.0)
                .powf(cfg.weight_exponent);
            if nw < cfg.weight_floor {
                0.0
            } else {
                nw
            }
        } else {
            0.0
        }
    };
    // The gain applies to the *pairwise* F2 term only. Combined with
    // the repulsion, each neighbor pair behaves as a spring with rest
    // length `rest·β/(β + w·gain)` — hot pairs compress, cold pairs
    // keep the uniform spacing. Amplifying F1 as well would let nodes
    // pile onto curvature peaks with nothing to balance them.
    let nbr_pairs: Vec<(Point2, f64)> = neighbors
        .iter()
        .map(|n| (n.position, norm(n.curvature) * cfg.curvature_gain))
        .collect();
    let f1 = forces::attraction_to_peak(position, peak.0, norm(peak.1) * cfg.peak_gain);
    let f2 = forces::neighbor_attraction(position, &nbr_pairs);
    let fr = forces::repulsion(position, &nbr_pairs, REST_FRACTION * cfg.comm_radius);
    let fs = forces::resultant(f1, f2, fr, cfg.beta);

    // Lines 13–18: stop, or head along Fs. The displacement is
    // proportional to the force and capped at Rs: a literal fixed-Rs
    // jump (the pseudocode's reading) makes nodes orbit their
    // equilibrium forever instead of settling — force-proportional
    // steps converge onto the balance point the stop test expects.
    let action = if fs.norm() <= cfg.stop_threshold {
        CmaAction::Stay
    } else {
        CmaAction::MoveTo(position + fs.clamp_norm(cfg.sensing_radius))
    };

    Ok(CmaOutcome {
        curvature: own_curvature,
        peak,
        f1,
        f2,
        fr,
        force: fs,
        action,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_field::{Field, GaussianBlob, PlaneField};

    fn sense<F: Field>(field: &F, center: Point2, rs: f64) -> Vec<(Point2, f64)> {
        let mut out = Vec::new();
        let r = rs.ceil() as i32;
        for dx in -r..=r {
            for dy in -r..=r {
                let p = Point2::new(center.x + dx as f64, center.y + dy as f64);
                if center.distance(p) <= rs {
                    out.push((p, field.value(p)));
                }
            }
        }
        out
    }

    fn cfg() -> CmaConfig {
        CmaConfig::default()
    }

    #[test]
    fn flat_field_with_no_neighbors_is_stationary() {
        let f = PlaneField::new(0.0, 0.0, 5.0);
        let n = Point2::new(50.0, 50.0);
        let out = cma_step(n, f.value(n), &sense(&f, n, 5.0), &[], &cfg()).unwrap();
        assert_eq!(out.action, CmaAction::Stay);
        assert!(out.force.norm() <= cfg().stop_threshold);
        assert!(out.curvature.abs() < 1e-9);
    }

    #[test]
    fn node_heads_toward_curvature_peak() {
        // A sharp blob at (53, 50); node at (50, 50) senses its flank.
        let f = GaussianBlob::isotropic(Point2::new(53.0, 50.0), 10.0, 1.5);
        let n = Point2::new(50.0, 50.0);
        let out = cma_step(n, f.value(n), &sense(&f, n, 5.0), &[], &cfg()).unwrap();
        let CmaAction::MoveTo(dest) = out.action else {
            panic!("expected movement, got {:?}", out.action);
        };
        // Destination is at most Rs away, toward the blob.
        assert!(dest.distance(n) <= 5.0 + 1e-9);
        assert!(dest.distance(n) > 0.0);
        assert!(dest.x > n.x, "moved {dest:?}, expected +x");
        assert!(out.peak.1 > 0.0);
    }

    #[test]
    fn crowded_neighbor_pushes_node_away_on_flat_field() {
        let f = PlaneField::new(0.0, 0.0, 1.0);
        let n = Point2::new(50.0, 50.0);
        // Neighbor very close on the +x side, zero curvature everywhere:
        // only repulsion acts.
        let nbr = [NeighborInfo {
            position: Point2::new(51.0, 50.0),
            curvature: 0.0,
        }];
        let out = cma_step(n, f.value(n), &sense(&f, n, 5.0), &nbr, &cfg()).unwrap();
        let CmaAction::MoveTo(dest) = out.action else {
            panic!("expected repulsion to move the node");
        };
        assert!(dest.x < n.x);
    }

    #[test]
    fn neighbor_curvature_balance_holds_node() {
        // Symmetric equal-curvature neighbors + flat sensing: balanced.
        let f = PlaneField::new(0.0, 0.0, 1.0);
        let n = Point2::new(50.0, 50.0);
        let nbrs = [
            NeighborInfo {
                position: Point2::new(58.0, 50.0),
                curvature: 3.0,
            },
            NeighborInfo {
                position: Point2::new(42.0, 50.0),
                curvature: 3.0,
            },
            NeighborInfo {
                position: Point2::new(50.0, 58.0),
                curvature: 3.0,
            },
            NeighborInfo {
                position: Point2::new(50.0, 42.0),
                curvature: 3.0,
            },
        ];
        let out = cma_step(n, f.value(n), &sense(&f, n, 5.0), &nbrs, &cfg()).unwrap();
        assert_eq!(out.action, CmaAction::Stay, "force {:?}", out.force);
    }

    #[test]
    fn beta_scales_repulsion_influence() {
        let f = PlaneField::new(0.0, 0.0, 1.0);
        let n = Point2::new(50.0, 50.0);
        let nbr = [NeighborInfo {
            position: Point2::new(52.0, 50.0),
            curvature: 0.0,
        }];
        let weak = CmaConfig { beta: 0.5, ..cfg() };
        let strong = CmaConfig { beta: 4.0, ..cfg() };
        let s = sense(&f, n, 5.0);
        let fw = cma_step(n, f.value(n), &s, &nbr, &weak).unwrap().force;
        let fs = cma_step(n, f.value(n), &s, &nbr, &strong).unwrap().force;
        assert!(fs.norm() > fw.norm());
    }

    #[test]
    fn insufficient_sensing_is_an_error() {
        let n = Point2::new(0.0, 0.0);
        let err = cma_step(n, 0.0, &[], &[], &cfg()).unwrap_err();
        assert!(matches!(err, CoreError::TooFewSamplesForFit { .. }));
    }

    #[test]
    fn config_from_cps_defaults() {
        let c = CmaConfig::default();
        assert_eq!(c.comm_radius, 10.0);
        assert_eq!(c.sensing_radius, 5.0);
        assert_eq!(c.beta, 2.0);
        assert!(c.stop_threshold > 0.0);
    }
}
