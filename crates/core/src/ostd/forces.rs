//! Virtual forces of the coordinated movement algorithm (Eqns. 14–18).
//!
//! Three forces act on node `nᵢ`:
//!
//! * `F1 = d(nᵢ, p_c) · G(p_c)` — attraction toward the
//!   highest-curvature position `p_c` sensed within `Rs` (Eqn. 14);
//! * `F2 = Σⱼ d(nᵢ, nⱼ) · G(nⱼ)` — attraction toward the pivot that
//!   balances the curvature weights of the single-hop neighbors
//!   (Eqn. 15); `F2 → 0` exactly when Eqn. 9's balance holds;
//! * `Fr = Σⱼ (Rc − d(nᵢ, nⱼ))` directed away from each neighbor —
//!   repulsion that keeps spacing (Eqn. 17);
//!
//! combined as `Fs = F1 + F2 + β·Fr` (Eqn. 18). Curvature weights are
//! magnitudes (`|G|`): the paper assumes convex surfaces with `G ≥ 0`,
//! and the magnitude generalizes the leverage to saddle regions.

use cps_geometry::Point2;
use cps_linalg::Vec2;

/// Attraction `F1` toward the highest-curvature sensed position
/// (Eqn. 14): the vector from `node` to `peak`, scaled by the peak's
/// curvature weight.
///
/// # Example
///
/// ```
/// use cps_core::ostd::forces::attraction_to_peak;
/// use cps_geometry::Point2;
///
/// let f1 = attraction_to_peak(Point2::new(0.0, 0.0), Point2::new(3.0, 0.0), 2.0);
/// assert_eq!(f1.x, 6.0); // d · G = 3 · 2, pointing at the peak
/// assert_eq!(f1.y, 0.0);
/// ```
pub fn attraction_to_peak(node: Point2, peak: Point2, peak_curvature: f64) -> Vec2 {
    (peak - node) * peak_curvature.abs()
}

/// Attraction `F2` toward the curvature-weight pivot of the single-hop
/// neighbors (Eqn. 15): `Σⱼ d(nᵢ, nⱼ)·G(nⱼ)`.
///
/// Zero exactly when the node balances its neighbors' curvature weights
/// (Eqn. 9).
pub fn neighbor_attraction(node: Point2, neighbors: &[(Point2, f64)]) -> Vec2 {
    neighbors.iter().map(|&(p, g)| (p - node) * g.abs()).sum()
}

/// Repulsion `Fr` from the single-hop neighbors (Eqn. 17): each
/// neighbor at distance `d ≤ rest_distance` pushes with magnitude
/// `rest_distance − d` directly away from itself; farther neighbors
/// contribute nothing.
///
/// The paper uses `rest_distance = Rc`, which parks every pair exactly
/// on the connectivity cliff; discrete-time callers pass a slightly
/// smaller rest distance so the equilibrium keeps a safety margin
/// inside `Rc` (see [`super::CmaConfig`]).
///
/// A coincident neighbor (`d = 0`) has no defined direction and is
/// skipped; the surrounding simulation treats such overlaps through the
/// movement noise of its integrator.
pub fn repulsion(node: Point2, neighbors: &[(Point2, f64)], rest_distance: f64) -> Vec2 {
    let mut total = Vec2::ZERO;
    for &(p, _) in neighbors {
        let away = node - p;
        let d = away.norm();
        if d > rest_distance || d <= f64::EPSILON {
            continue;
        }
        total += away.normalized() * (rest_distance - d);
    }
    total
}

/// The resultant `Fs = F1 + F2 + β·Fr` (Eqn. 18).
pub fn resultant(f1: Vec2, f2: Vec2, fr: Vec2, beta: f64) -> Vec2 {
    f1 + f2 + fr * beta
}

#[cfg(test)]
mod tests {
    use super::*;

    const RC: f64 = 10.0;

    #[test]
    fn peak_attraction_scales_with_distance_and_curvature() {
        let n = Point2::new(1.0, 1.0);
        let f_near = attraction_to_peak(n, Point2::new(2.0, 1.0), 1.0);
        let f_far = attraction_to_peak(n, Point2::new(5.0, 1.0), 1.0);
        assert!(f_far.norm() > f_near.norm());
        let f_hot = attraction_to_peak(n, Point2::new(2.0, 1.0), 5.0);
        assert!((f_hot.norm() - 5.0 * f_near.norm()).abs() < 1e-12);
        // Negative curvature (saddle) still attracts by weight.
        let f_neg = attraction_to_peak(n, Point2::new(2.0, 1.0), -5.0);
        assert_eq!(f_neg, f_hot);
    }

    #[test]
    fn balanced_neighbors_produce_zero_f2() {
        // Two equal-curvature neighbors symmetric about the node: Eqn. 9
        // holds, so F2 = 0.
        let n = Point2::new(0.0, 0.0);
        let nbrs = [(Point2::new(5.0, 0.0), 2.0), (Point2::new(-5.0, 0.0), 2.0)];
        assert!(neighbor_attraction(n, &nbrs).norm() < 1e-12);
    }

    #[test]
    fn unbalanced_neighbors_pull_toward_heavier_side() {
        let n = Point2::new(0.0, 0.0);
        let nbrs = [
            (Point2::new(5.0, 0.0), 3.0), // heavier on +x
            (Point2::new(-5.0, 0.0), 1.0),
        ];
        let f2 = neighbor_attraction(n, &nbrs);
        assert!(f2.x > 0.0);
        assert_eq!(f2.y, 0.0);
    }

    #[test]
    fn repulsion_grows_as_nodes_close_in() {
        let n = Point2::new(0.0, 0.0);
        let near = [(Point2::new(1.0, 0.0), 1.0)];
        let far = [(Point2::new(9.0, 0.0), 1.0)];
        let f_near = repulsion(n, &near, RC);
        let f_far = repulsion(n, &far, RC);
        assert!(f_near.norm() > f_far.norm());
        // Pushes away from the neighbor.
        assert!(f_near.x < 0.0);
        assert!((f_near.norm() - 9.0).abs() < 1e-12); // Rc − d = 10 − 1
    }

    #[test]
    fn repulsion_ignores_out_of_range_and_coincident() {
        let n = Point2::new(0.0, 0.0);
        let out = [(Point2::new(11.0, 0.0), 1.0)];
        assert_eq!(repulsion(n, &out, RC), Vec2::ZERO);
        let coincident = [(n, 1.0)];
        assert_eq!(repulsion(n, &coincident, RC), Vec2::ZERO);
    }

    #[test]
    fn repulsion_of_symmetric_ring_cancels() {
        let n = Point2::new(0.0, 0.0);
        let nbrs: Vec<(Point2, f64)> = (0..6)
            .map(|i| {
                let a = std::f64::consts::TAU * i as f64 / 6.0;
                (Point2::new(4.0 * a.cos(), 4.0 * a.sin()), 1.0)
            })
            .collect();
        assert!(repulsion(n, &nbrs, RC).norm() < 1e-9);
    }

    #[test]
    fn resultant_weights_repulsion_by_beta() {
        let f1 = Vec2::new(1.0, 0.0);
        let f2 = Vec2::new(0.0, 1.0);
        let fr = Vec2::new(-1.0, 0.0);
        let fs = resultant(f1, f2, fr, 2.0);
        assert_eq!(fs, Vec2::new(-1.0, 1.0));
        // β = 0 disables repulsion entirely.
        assert_eq!(resultant(f1, f2, fr, 0.0), Vec2::new(1.0, 1.0));
    }
}
