//! Curvature-weighted distribution (CWD) metrics and the
//! global-information reference solver (Section 5.1, Eqns. 9–10).
//!
//! A deployment follows the CWD when every node balances the curvature
//! weights of its single-hop neighbors:
//!
//! ```text
//! Σ_{j : d(nᵢ,nⱼ) ≤ Rc}  d⃗(nᵢ, nⱼ) · G(nⱼ) = 0        (Eqn. 9)
//! ```
//!
//! with ties broken by maximizing the total curvature Σ G(nᵢ)
//! (Eqn. 10). [`cwd_metrics`] quantifies how far a deployment is from
//! that fixed point; [`relax_to_cwd`] iterates the virtual-force update
//! with *exact* field curvature (global information) to produce the
//! Fig. 3(c)-style reference configuration.

use cps_field::Field;
use cps_geometry::{Point2, Rect};
use cps_network::UnitDiskGraph;

use super::curvature::gaussian_curvature_at;
use super::forces;
use crate::{CoreError, CpsConfig};

/// How closely a deployment matches the curvature-weighted
/// distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CwdMetrics {
    /// Mean over nodes of `‖Σ d⃗·G‖` (Eqn. 9 residual); zero at a
    /// perfect CWD.
    pub mean_balance_residual: f64,
    /// Worst single-node balance residual.
    pub max_balance_residual: f64,
    /// Σᵢ G(nᵢ) — the tie-breaking objective of Eqn. 10.
    pub total_curvature: f64,
}

/// Balance residual of one node (the norm of Eqn. 9's left side) given
/// its single-hop neighbors' positions and curvature weights.
pub fn balance_residual(node: Point2, neighbors: &[(Point2, f64)]) -> f64 {
    forces::neighbor_attraction(node, neighbors).norm()
}

/// Computes CWD metrics for a deployment.
///
/// `curvatures[i]` is the curvature weight of `positions[i]` (from the
/// node's own quadric fit, or [`gaussian_curvature_at`] when global
/// information is available).
///
/// # Errors
///
/// * [`CoreError::InvalidParameter`] — `positions` and `curvatures`
///   differ in length.
/// * [`CoreError::Network`] — invalid communication radius.
pub fn cwd_metrics(
    positions: &[Point2],
    curvatures: &[f64],
    comm_radius: f64,
) -> Result<CwdMetrics, CoreError> {
    if positions.len() != curvatures.len() {
        return Err(CoreError::InvalidParameter {
            name: "curvatures",
            requirement: "must match positions in length",
        });
    }
    let graph = UnitDiskGraph::new(positions.to_vec(), comm_radius)?;
    let mut mean = 0.0;
    let mut max: f64 = 0.0;
    for i in 0..positions.len() {
        let nbrs: Vec<(Point2, f64)> = graph
            .neighbors(i)
            .iter()
            .map(|&j| (positions[j], curvatures[j].abs()))
            .collect();
        let r = balance_residual(positions[i], &nbrs);
        mean += r;
        max = max.max(r);
    }
    if !positions.is_empty() {
        mean /= positions.len() as f64;
    }
    Ok(CwdMetrics {
        mean_balance_residual: mean,
        max_balance_residual: max,
        total_curvature: curvatures.iter().map(|g| g.abs()).sum(),
    })
}

/// Iterates the virtual-force update with exact field curvature to relax
/// a deployment toward the CWD — the "global information" construction
/// behind the paper's Fig. 3(c).
///
/// Each iteration probes the field's Gaussian curvature at every node,
/// finds each node's local curvature peak within `Rs` (on a small polar
/// probe pattern), applies `Fs = F1 + F2 + β·Fr`, and moves every node
/// at most `step` along its resultant, clamped to `region`.
///
/// Returns the final positions after `iterations` rounds (earlier if
/// every node balances).
///
/// # Errors
///
/// Propagates curvature-probe failures ([`CoreError::DegenerateFit`])
/// — not expected for smooth fields.
pub fn relax_to_cwd<F: Field>(
    field: &F,
    region: Rect,
    mut positions: Vec<Point2>,
    cfg: &CpsConfig,
    iterations: usize,
    step: f64,
) -> Result<Vec<Point2>, CoreError> {
    let probe_h = (cfg.sensing_radius() / 4.0).max(1e-3);
    for _ in 0..iterations {
        // Exact curvature weight at each node and at each node's local
        // curvature peak (within Rs on a polar probe pattern).
        let mut weights = Vec::with_capacity(positions.len());
        let mut peaks = Vec::with_capacity(positions.len());
        for &p in &positions {
            let own = gaussian_curvature_at(field, p, probe_h)?.abs();
            weights.push(own);
            let mut peak = (p, own);
            for ring in [0.5, 1.0] {
                let r = cfg.sensing_radius() * ring;
                for s in 0..8 {
                    let a = std::f64::consts::TAU * s as f64 / 8.0;
                    let q = region.clamp(Point2::new(p.x + r * a.cos(), p.y + r * a.sin()));
                    let w = gaussian_curvature_at(field, q, probe_h)?.abs();
                    if w > peak.1 {
                        peak = (q, w);
                    }
                }
            }
            peaks.push(peak);
        }
        // Normalize curvature weights by the largest one in the network
        // (same rationale as `cma_step`: raw Gaussian curvature scales
        // with the inverse square of the region size).
        let wmax = peaks
            .iter()
            .map(|&(_, w)| w)
            .fold(0.0f64, f64::max)
            .max(weights.iter().copied().fold(0.0, f64::max));
        let scale = if wmax > 1e-9 { 1.0 / wmax } else { 0.0 };

        let graph = UnitDiskGraph::new(positions.clone(), cfg.comm_radius())?;
        let mut next = positions.clone();
        let mut any_moved = false;
        for (i, &p) in positions.iter().enumerate() {
            let peak = peaks[i];
            let nbrs: Vec<(Point2, f64)> = graph
                .neighbors(i)
                .iter()
                .map(|&j| (positions[j], weights[j] * scale))
                .collect();
            let f1 = forces::attraction_to_peak(p, peak.0, peak.1 * scale);
            let f2 = forces::neighbor_attraction(p, &nbrs);
            let fr = forces::repulsion(p, &nbrs, cfg.comm_radius());
            let fs = forces::resultant(f1, f2, fr, cfg.beta());
            if fs.norm() > 1e-3 {
                next[i] = region.clamp(p + fs.clamp_norm(step));
                any_moved = true;
            }
        }
        positions = next;
        if !any_moved {
            break;
        }
    }
    Ok(positions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_field::{GaussianBlob, PeaksField};

    #[test]
    fn metrics_of_perfectly_balanced_pair() {
        // Symmetric nodes around the middle one.
        let positions = vec![
            Point2::new(45.0, 50.0),
            Point2::new(50.0, 50.0),
            Point2::new(55.0, 50.0),
        ];
        let curv = vec![1.0, 1.0, 1.0];
        let m = cwd_metrics(&positions, &curv, 6.0).unwrap();
        // The middle node is balanced; the outer ones are pulled inward
        // (their only neighbor is the centre), so residuals are nonzero
        // but the mean reflects the balanced middle.
        assert!(m.total_curvature == 3.0);
        assert!(m.max_balance_residual > 0.0);
        let middle_nbrs = [(positions[0], 1.0), (positions[2], 1.0)];
        assert!(balance_residual(positions[1], &middle_nbrs) < 1e-12);
    }

    #[test]
    fn metrics_validate_lengths() {
        let e = cwd_metrics(&[Point2::ORIGIN], &[], 1.0).unwrap_err();
        assert!(matches!(e, CoreError::InvalidParameter { .. }));
        let empty = cwd_metrics(&[], &[], 1.0).unwrap();
        assert_eq!(empty.mean_balance_residual, 0.0);
        assert_eq!(empty.total_curvature, 0.0);
    }

    #[test]
    fn lone_node_climbs_to_the_curvature_peak() {
        // One node, no neighbors: pure F1 hill-climbing toward the
        // blob's curvature, the mechanism behind CWD formation.
        let region = Rect::square(100.0).unwrap();
        let target = Point2::new(70.0, 70.0);
        let field = GaussianBlob::isotropic(target, 50.0, 20.0);
        let cfg = CpsConfig::default();
        let initial = vec![Point2::new(20.0, 20.0)];
        let before = initial[0].distance(target);
        let after_positions = relax_to_cwd(&field, region, initial, &cfg, 150, 2.0).unwrap();
        let after = after_positions[0].distance(target);
        assert!(
            after < 0.5 * before,
            "node did not approach the blob: {after} vs {before}"
        );
        assert!(region.contains(after_positions[0]));
    }

    #[test]
    fn relaxation_improves_total_curvature_on_peaks() {
        let region = Rect::square(100.0).unwrap();
        let field = PeaksField::new(region, 8.0);
        // Rc below the 25 m grid spacing: no repulsion/balance coupling
        // at the start, so the curvature attraction is what moves nodes.
        let cfg = CpsConfig::builder()
            .comm_radius(20.0)
            .beta(1.0)
            .build()
            .unwrap();
        // 4×4 uniform start (the paper's Fig. 3(b)).
        let mut initial = Vec::new();
        for j in 0..4 {
            for i in 0..4 {
                initial.push(Point2::new(12.5 + 25.0 * i as f64, 12.5 + 25.0 * j as f64));
            }
        }
        let probe = |ps: &[Point2]| -> f64 {
            ps.iter()
                .map(|&p| gaussian_curvature_at(&field, p, 1.0).unwrap().abs())
                .sum()
        };
        let before = probe(&initial);
        let relaxed = relax_to_cwd(&field, region, initial, &cfg, 60, 2.0).unwrap();
        let after = probe(&relaxed);
        assert!(
            after > before,
            "total curvature did not increase: {after} vs {before}"
        );
    }
}
