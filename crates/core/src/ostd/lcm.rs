//! The local connectivity mechanism (LCM, Section 5.2 and Fig. 4).
//!
//! When a node announces a move to destination `nd` together with its
//! current single-hop neighbor list `N`, each former neighbor checks
//! whether it will still reach the mover — directly (within `Rc` of
//! `nd`) or through some other neighbor in `N` that stays put. A
//! neighbor that would be stranded moves along with the mover, stopping
//! at exactly `Rc` from the destination.

use cps_geometry::Point2;

/// Whether `node` (a current single-hop neighbor of a mover) remains
/// connected to the mover after it relocates to `mover_dest`.
///
/// `mover_neighbors` are the positions of the mover's *other* single-hop
/// neighbors (the `N[q]` broadcast in Table 2); entries coincident with
/// `node` are ignored. Connection is direct (`d(node, nd) ≤ Rc`) or via
/// one intermediate neighbor `nₖ` with `d(node, nₖ) ≤ Rc` and
/// `d(nₖ, nd) ≤ Rc` — exactly the Fig. 4 rule that lets `n4` stay
/// (bridged by `n3`) while `n5` must follow.
pub fn stays_connected(
    node: Point2,
    mover_dest: Point2,
    mover_neighbors: &[Point2],
    comm_radius: f64,
) -> bool {
    if node.distance(mover_dest) <= comm_radius {
        return true;
    }
    mover_neighbors.iter().any(|&nk| {
        nk.distance(node) > f64::EPSILON // skip self
            && node.distance(nk) <= comm_radius
            && nk.distance(mover_dest) <= comm_radius
    })
}

/// The position a stranded neighbor moves to: on the segment from
/// `node` toward `mover_dest`, at distance exactly `Rc` from the
/// destination (`|d(nᵢ, nd)| = Rc`, Table 2 line 21).
///
/// If `node` is already within `Rc` of the destination it stays put.
pub fn follow_position(node: Point2, mover_dest: Point2, comm_radius: f64) -> Point2 {
    let d = node.distance(mover_dest);
    if d <= comm_radius {
        return node;
    }
    // Walk toward the destination until exactly Rc away.
    node.lerp(mover_dest, (d - comm_radius) / d)
}

/// Applies the LCM to one announced move: returns the adjusted position
/// for `node`, either unchanged (still connected) or the
/// [`follow_position`].
pub fn adjust_for_move(
    node: Point2,
    mover_dest: Point2,
    mover_neighbors: &[Point2],
    comm_radius: f64,
) -> Point2 {
    if stays_connected(node, mover_dest, mover_neighbors, comm_radius) {
        node
    } else {
        follow_position(node, mover_dest, comm_radius)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RC: f64 = 10.0;

    /// Mirror of the paper's Fig. 4 scenario: n1 moves; n3 stays in
    /// range, n4 is bridged by n3, n5 is stranded and must follow, n2
    /// becomes a new neighbor (not LCM's concern).
    #[test]
    fn figure4_scenario() {
        let n1_dest = Point2::new(0.0, 0.0);
        let n3 = Point2::new(8.0, 0.0); // within Rc of dest: stays
        let n4 = Point2::new(16.0, 0.0); // out of range, but n3 bridges
        let n5 = Point2::new(0.0, 25.0); // stranded: nothing bridges

        let others_for_n4 = [n3, n5];
        let others_for_n5 = [n3, n4];

        assert!(stays_connected(n3, n1_dest, &[n4, n5], RC));
        assert!(stays_connected(n4, n1_dest, &others_for_n4, RC));
        assert!(!stays_connected(n5, n1_dest, &others_for_n5, RC));

        let n5_new = adjust_for_move(n5, n1_dest, &others_for_n5, RC);
        assert!((n5_new.distance(n1_dest) - RC).abs() < 1e-9);
        // n5 moved straight toward the destination.
        assert_eq!(n5_new.x, 0.0);
        assert!((n5_new.y - 10.0).abs() < 1e-9);
    }

    #[test]
    fn direct_connection_needs_no_bridge() {
        assert!(stays_connected(
            Point2::new(5.0, 0.0),
            Point2::ORIGIN,
            &[],
            RC
        ));
    }

    #[test]
    fn bridge_must_reach_both_sides() {
        let node = Point2::new(18.0, 0.0);
        let dest = Point2::ORIGIN;
        // Bridge within Rc of the node but not of the destination.
        let bad_bridge = [Point2::new(14.0, 0.0)];
        assert!(!stays_connected(node, dest, &bad_bridge, RC));
        // Bridge reaching both (9 from each side).
        let good_bridge = [Point2::new(9.0, 0.0)];
        assert!(stays_connected(node, dest, &good_bridge, RC));
    }

    #[test]
    fn self_entry_in_neighbor_list_is_ignored() {
        let node = Point2::new(25.0, 0.0);
        // The node itself appearing in the broadcast list must not count
        // as a bridge.
        assert!(!stays_connected(node, Point2::ORIGIN, &[node], RC));
    }

    #[test]
    fn follow_position_preserves_direction_and_distance() {
        let node = Point2::new(30.0, 40.0); // 50 from origin
        let new = follow_position(node, Point2::ORIGIN, RC);
        assert!((new.distance(Point2::ORIGIN) - RC).abs() < 1e-9);
        // Same ray: components keep the 3:4 ratio.
        assert!((new.x / new.y - 0.75).abs() < 1e-9);
        // Already in range: unchanged.
        let near = Point2::new(3.0, 0.0);
        assert_eq!(follow_position(near, Point2::ORIGIN, RC), near);
    }

    #[test]
    fn adjust_keeps_connected_nodes_in_place() {
        let node = Point2::new(5.0, 5.0);
        assert_eq!(adjust_for_move(node, Point2::ORIGIN, &[], RC), node);
    }
}
